#!/usr/bin/env python3
"""Compare a fresh BENCH_region_exec.json against the committed baseline.

Prints a per-scenario delta table and warns when a scenario's wall time
regressed by more than --threshold (default 10%). Deliberately NON-GATING:
the exit code is 0 even on regression, because shared CI runners make
timing noise routine and a perf gate that cries wolf gets deleted. The
warnings land in the job log (and ::warning annotations on GitHub) where
a human deciding about a perf-sensitive change will actually look.

Exit codes: 0 = compared (regressions included), 2 = bad input.

Usage:
  tools/bench_compare.py --baseline BENCH_region_exec.json \
      --current bench_results/BENCH_region_exec.json [--threshold 0.10]
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as err:
        print(f"bench_compare: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def scenario_seconds(doc):
    """Flatten one result document into {scenario: wall_seconds}.

    Engine scenarios carry `wall_seconds`; the iACT scan scenario carries
    off/best pairs, which are tracked as two scenarios so a dispatch-layer
    regression (best) is distinguishable from a scalar one (off).
    """
    out = {}
    for key, value in doc.items():
        if not isinstance(value, dict):
            continue
        if "wall_seconds" in value:
            out[key] = float(value["wall_seconds"])
        if "off_seconds" in value:
            out[f"{key}/off"] = float(value["off_seconds"])
        if "best_seconds" in value:
            out[f"{key}/best"] = float(value["best_seconds"])
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative slowdown that triggers a warning")
    args = parser.parse_args()

    baseline = scenario_seconds(load(args.baseline))
    current = scenario_seconds(load(args.current))
    if not baseline or not current:
        print("bench_compare: no scenarios found in input", file=sys.stderr)
        sys.exit(2)

    github = os.environ.get("GITHUB_ACTIONS") == "true"
    regressions = []
    width = max(len(name) for name in sorted(set(baseline) | set(current)))
    print(f"{'scenario':<{width}}  {'baseline':>10}  {'current':>10}  delta")
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            print(f"{name:<{width}}  {'-':>10}  {current[name]:>9.3f}s  (new scenario)")
            continue
        if name not in current:
            print(f"{name:<{width}}  {baseline[name]:>9.3f}s  {'-':>10}  (scenario dropped)")
            regressions.append((name, None))
            continue
        base, cur = baseline[name], current[name]
        delta = (cur - base) / base if base > 0 else 0.0
        marker = "  << regressed" if delta > args.threshold else ""
        print(f"{name:<{width}}  {base:>9.3f}s  {cur:>9.3f}s  {delta:+7.1%}{marker}")
        if delta > args.threshold:
            regressions.append((name, delta))

    if regressions:
        for name, delta in regressions:
            text = (f"perf scenario '{name}' dropped from results"
                    if delta is None else
                    f"perf scenario '{name}' slowed {delta:+.1%} vs committed baseline")
            if github:
                print(f"::warning title=bench_compare::{text}")
            else:
                print(f"WARNING: {text}", file=sys.stderr)
        print(f"bench_compare: {len(regressions)} warning(s), threshold "
              f"{args.threshold:.0%} (non-gating)")
    else:
        print("bench_compare: all scenarios within threshold "
              f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
