// Seeded violation: independent_items without commit_extents.
// This file is a lint fixture — it is never compiled.

struct Binding {
  bool independent_items = false;
};

void make_binding() {
  Binding binding;
  binding.independent_items = true;  // no commit_extents anywhere below
  (void)binding;
}
