// Seeded violations: banned non-reproducible / locale-dependent calls.
// This file is a lint fixture — it is never compiled.

#include <cstdlib>
#include <ctime>

int seeded_violations() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));
  const int noise = std::rand();
  const int parsed = std::atoi("42");
  return noise + parsed;
}
