// Seeded violation: raw std::thread outside the allowlist.
// This file is a lint fixture — it is never compiled.

#include <thread>

void spawn_unmanaged() {
  std::thread worker([] {});
  worker.join();
}
