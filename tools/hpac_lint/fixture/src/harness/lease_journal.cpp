// Seeded violation: a lease_journal.cpp with neither the compile-time
// record-size bound against the pipe atomicity limit nor the append-path
// runtime bound. This file is a lint fixture — it is never compiled.

#include <string>

struct LeaseJournalFixture {
  void append_record(const std::string& body);
};

void LeaseJournalFixture::append_record(const std::string& body) {
  (void)body;  // writes without any record-size bound
}
