// Seeded violation: raw x86 intrinsics outside the per-ISA kernel TUs.
// This file is a lint fixture — it is never compiled. A real TU doing
// this would bake SSE codegen into a file the scalar dispatch level
// still executes, breaking the HPAC_SIMD=off bit-identity reference.

#include <emmintrin.h>

double seeded_intrinsic_violation(const double* a, const double* b) {
  const __m128d va = _mm_loadu_pd(a);
  const __m128d vb = _mm_loadu_pd(b);
  const __m128d sum = _mm_add_pd(va, vb);
  double out[2];
  _mm_storeu_pd(out, sum);
  return out[0] + out[1];
}
