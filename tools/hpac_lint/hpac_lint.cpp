// hpac_lint — checker for repo-specific invariants no compiler knows.
//
// Rules:
//   independent-items-extents  every app binding that declares
//                              `independent_items = true` must also declare
//                              commit extents (directly or via
//                              bind_row_commit_extents) so the audit layer
//                              can verify the independence claim.
//   banned-function            no rand()/time()/locale-dependent parsing
//                              (strtod, atoi, sscanf, ...) anywhere in src/:
//                              results must be reproducible and checkpoint
//                              parsing locale-proof.
//   raw-thread                 no raw std::thread construction outside the
//                              scheduler, the server's thread-per-connection
//                              registry and the dist-campaign heartbeat —
//                              everything else must fan out through
//                              hpac::Scheduler so parallelism composes.
//   lease-record-bound         lease_journal.cpp must keep its
//                              static_assert(kMaxRecordBytes < PIPE_BUF)
//                              and the append-path runtime bound, the pair
//                              that makes atomic-append records untearable.
//   simd-isolation             x86 vector intrinsics (_mm_*, __m128, ...)
//                              may appear only in the per-ISA kernel TUs and
//                              the dispatch shim. Everywhere else calls
//                              through dispatched function pointers, so the
//                              scalar build stays the bit-identity reference
//                              and -mavx2 never leaks past its own TU.
//
// A finding on a given line is suppressed by a trailing
// `// hpac-lint: allow(<rule>)` comment naming the rule.
//
// Input selection is compile_commands-driven: pass the build tree's
// compile_commands.json and every first-party .cpp it lists under
// <root>/src is scanned (headers under src/ are always walked). Without
// it, src/ is walked for both. `--expect-all-rules` inverts the exit
// logic for the seeded-violation fixture: success means every rule fired.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Does `line` contain `token` preceded by a non-word character (or line
/// start)? Occurrences inside line comments are already stripped by the
/// caller.
bool has_bounded_token(const std::string& line, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    if (pos == 0 || !is_word_char(line[pos - 1])) return true;
    pos += 1;
  }
  return false;
}

/// The line with any // comment removed — except that the allow() marker
/// is extracted first, so suppressions live in the stripped part.
std::string strip_line_comment(const std::string& line) {
  const std::size_t pos = line.find("//");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

bool line_allows(const std::string& raw_line, const std::string& rule) {
  return raw_line.find("hpac-lint: allow(" + rule + ")") != std::string::npos;
}

std::vector<std::string> read_lines(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

bool path_ends_with(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// --- rule: banned-function ---------------------------------------------------

const std::vector<std::string>& banned_tokens() {
  static const std::vector<std::string> tokens = {
      "rand(",   "srand(",  "time(",      "strtod(", "strtof(",  "strtol(",
      "atof(",   "atoi(",   "atol(",      "sscanf(", "setlocale(",
      "stod(",   "stof(",
  };
  return tokens;
}

void check_banned_functions(const std::string& file,
                            const std::vector<std::string>& lines,
                            std::vector<Finding>& findings) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (line_allows(lines[i], "banned-function")) continue;
    const std::string code = strip_line_comment(lines[i]);
    for (const std::string& token : banned_tokens()) {
      if (has_bounded_token(code, token)) {
        findings.push_back({file, i + 1, "banned-function",
                            "call to " + token.substr(0, token.size() - 1) +
                                "() — non-reproducible or locale-dependent; use "
                                "common/rng.hpp or strings::parse_*"});
      }
    }
  }
}

// --- rule: raw-thread --------------------------------------------------------

bool thread_allowlisted(const std::string& file) {
  static const std::vector<std::string> allowed = {
      "common/scheduler.hpp",    "common/scheduler.cpp", "service/server.hpp",
      "service/server.cpp",      "harness/dist_campaign.hpp",
      "harness/dist_campaign.cpp",
  };
  for (const std::string& suffix : allowed) {
    if (path_ends_with(file, suffix)) return true;
  }
  return false;
}

void check_raw_threads(const std::string& file, const std::vector<std::string>& lines,
                       std::vector<Finding>& findings) {
  if (thread_allowlisted(file)) return;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (line_allows(lines[i], "raw-thread")) continue;
    const std::string code = strip_line_comment(lines[i]);
    for (const std::string& token : {std::string("std::thread"), std::string("std::jthread")}) {
      std::size_t pos = 0;
      while ((pos = code.find(token, pos)) != std::string::npos) {
        std::size_t after = pos + token.size();
        if (after < code.size() && is_word_char(code[after])) {  // std::threads_...
          pos = after;
          continue;
        }
        while (after < code.size() &&
               std::isspace(static_cast<unsigned char>(code[after]))) {
          ++after;
        }
        // Static member access (std::thread::hardware_concurrency) reads
        // platform facts; only *owning* a thread is restricted.
        if (after + 1 < code.size() && code[after] == ':' && code[after + 1] == ':') {
          pos = after;
          continue;
        }
        findings.push_back({file, i + 1, "raw-thread",
                            "raw " + token +
                                " outside the scheduler/server/heartbeat "
                                "allowlist; fan out via hpac::Scheduler"});
        pos = after;
      }
    }
  }
}

// --- rule: simd-isolation ----------------------------------------------------

bool simd_allowlisted(const std::string& file) {
  // The shim (level probing) plus the per-ISA TUs that CMake compiles with
  // their own -m flags. The templated *_impl.hpp bodies are deliberately
  // absent: they must stay expressed in Ops-traits calls, never raw
  // intrinsics, or including them from a scalar TU would break.
  static const std::vector<std::string> allowed = {
      "common/simd.hpp",           "common/simd.cpp",
      "approx/iact_scan_sse2.cpp", "approx/iact_scan_avx2.cpp",
      "apps/app_kernels_sse2.cpp", "apps/app_kernels_avx2.cpp",
  };
  for (const std::string& suffix : allowed) {
    if (path_ends_with(file, suffix)) return true;
  }
  return false;
}

void check_simd_isolation(const std::string& file, const std::vector<std::string>& lines,
                          std::vector<Finding>& findings) {
  if (simd_allowlisted(file)) return;
  static const std::vector<std::string> tokens = {
      "_mm_",        "_mm256_",     "__m128",
      "__m256",      "immintrin.h", "emmintrin.h",
      "xmmintrin.h",
  };
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (line_allows(lines[i], "simd-isolation")) continue;
    const std::string code = strip_line_comment(lines[i]);
    for (const std::string& token : tokens) {
      if (has_bounded_token(code, token)) {
        findings.push_back({file, i + 1, "simd-isolation",
                            "x86 intrinsic '" + token +
                                "' outside the per-ISA kernel TUs; call through "
                                "the hpac::simd dispatch layer instead"});
        break;  // one finding per line is enough
      }
    }
  }
}

// --- rule: independent-items-extents ----------------------------------------

void check_independent_items(const std::string& file,
                             const std::vector<std::string>& lines,
                             std::vector<Finding>& findings) {
  if (file.find("/apps/") == std::string::npos || !path_ends_with(file, ".cpp")) {
    return;
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (line_allows(lines[i], "independent-items-extents")) continue;
    const std::string code = strip_line_comment(lines[i]);
    const std::size_t pos = code.find(".independent_items");
    if (pos == std::string::npos) continue;
    // Require `<var>.independent_items = true` (not a comment mention).
    std::size_t var_begin = pos;
    while (var_begin > 0 && is_word_char(code[var_begin - 1])) --var_begin;
    const std::string var = code.substr(var_begin, pos - var_begin);
    const std::size_t eq = code.find('=', pos);
    if (var.empty() || eq == std::string::npos ||
        code.find("true", eq) == std::string::npos) {
      continue;
    }
    // The matching extents declaration must follow nearby: either
    // `<var>.commit_extents = ...` or `bind_row_commit_extents(<var>, ...)`.
    constexpr std::size_t kWindow = 20;
    bool declared = false;
    for (std::size_t j = i + 1; j < lines.size() && j <= i + kWindow; ++j) {
      const std::string nearby = strip_line_comment(lines[j]);
      if (nearby.find(var + ".commit_extents") != std::string::npos ||
          nearby.find("bind_row_commit_extents(" + var) != std::string::npos) {
        declared = true;
        break;
      }
    }
    if (!declared) {
      findings.push_back({file, i + 1, "independent-items-extents",
                          "binding '" + var +
                              "' declares independent_items but no "
                              "commit_extents — the audit layer cannot check "
                              "the independence claim"});
    }
  }
}

// --- rule: lease-record-bound ------------------------------------------------

void check_lease_record_bound(const std::string& file,
                              const std::vector<std::string>& lines,
                              std::vector<Finding>& findings) {
  if (!path_ends_with(file, "harness/lease_journal.cpp")) return;
  bool has_static_assert = false;
  bool has_runtime_bound = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].find("static_assert") != std::string::npos &&
        lines[i].find("PIPE_BUF") != std::string::npos) {
      has_static_assert = true;
    }
    if (lines[i].find("::append_record(") != std::string::npos) {
      constexpr std::size_t kWindow = 30;
      for (std::size_t j = i; j < lines.size() && j <= i + kWindow; ++j) {
        if (lines[j].find("kMaxRecordBytes") != std::string::npos) {
          has_runtime_bound = true;
          break;
        }
      }
    }
  }
  if (!has_static_assert) {
    findings.push_back({file, 1, "lease-record-bound",
                        "missing static_assert(kMaxRecordBytes < PIPE_BUF) — "
                        "atomic-append records must provably fit one write(2)"});
  }
  if (!has_runtime_bound) {
    findings.push_back({file, 1, "lease-record-bound",
                        "append_record lacks the kMaxRecordBytes runtime "
                        "check guarding the PIPE_BUF atomicity window"});
  }
}

// --- input selection ---------------------------------------------------------

/// Minimal extraction of "file" entries from compile_commands.json: finds
/// every `"file": "<path>"` pair, handling the \\ and \" escapes CMake
/// emits. No general JSON parser needed for that shape.
std::vector<std::string> compile_commands_files(const fs::path& json_path) {
  std::ifstream in(json_path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::vector<std::string> files;
  const std::string key = "\"file\"";
  std::size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    pos += key.size();
    pos = text.find('"', text.find(':', pos));
    if (pos == std::string::npos) break;
    std::string value;
    for (++pos; pos < text.size() && text[pos] != '"'; ++pos) {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      value.push_back(text[pos]);
    }
    files.push_back(value);
  }
  return files;
}

std::vector<std::string> collect_inputs(const fs::path& root,
                                        const fs::path& compile_commands) {
  const fs::path src = root / "src";
  std::set<std::string> inputs;
  const auto canonical_src = fs::weakly_canonical(src).string();
  if (!compile_commands.empty()) {
    for (const std::string& file : compile_commands_files(compile_commands)) {
      const std::string resolved = fs::weakly_canonical(fs::path(file)).string();
      if (resolved.rfind(canonical_src, 0) == 0) inputs.insert(resolved);
    }
  }
  if (fs::is_directory(src)) {
    for (const auto& entry : fs::recursive_directory_iterator(src)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || (compile_commands.empty() && ext == ".cpp")) {
        inputs.insert(fs::weakly_canonical(entry.path()).string());
      }
    }
  }
  return {inputs.begin(), inputs.end()};
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root;
  fs::path compile_commands;
  bool expect_all_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--compile-commands" && i + 1 < argc) {
      compile_commands = argv[++i];
    } else if (arg == "--expect-all-rules") {
      expect_all_rules = true;
    } else {
      std::fprintf(stderr,
                   "usage: hpac_lint --root DIR [--compile-commands FILE] "
                   "[--expect-all-rules]\n");
      return 2;
    }
  }
  if (root.empty() || !fs::is_directory(root / "src")) {
    std::fprintf(stderr, "hpac_lint: --root must name a directory with src/\n");
    return 2;
  }
  if (!compile_commands.empty() && !fs::is_regular_file(compile_commands)) {
    std::fprintf(stderr, "hpac_lint: no compile_commands.json at %s\n",
                 compile_commands.string().c_str());
    return 2;
  }

  const std::vector<std::string> inputs = collect_inputs(root, compile_commands);
  if (inputs.empty()) {
    std::fprintf(stderr, "hpac_lint: nothing to scan under %s/src\n",
                 root.string().c_str());
    return 2;
  }

  std::vector<Finding> findings;
  for (const std::string& file : inputs) {
    const std::vector<std::string> lines = read_lines(file);
    check_banned_functions(file, lines, findings);
    check_raw_threads(file, lines, findings);
    check_simd_isolation(file, lines, findings);
    check_independent_items(file, lines, findings);
    check_lease_record_bound(file, lines, findings);
  }

  for (const Finding& finding : findings) {
    std::printf("%s:%zu: [%s] %s\n", finding.file.c_str(), finding.line,
                finding.rule.c_str(), finding.message.c_str());
  }

  if (expect_all_rules) {
    // Fixture self-test: the seeded violations must trip EVERY rule, so a
    // rule that silently stopped matching cannot gate anything.
    const std::vector<std::string> rules = {
        "independent-items-extents", "banned-function", "raw-thread",
        "lease-record-bound", "simd-isolation"};
    bool all_fired = true;
    for (const std::string& rule : rules) {
      const bool fired =
          std::any_of(findings.begin(), findings.end(),
                      [&rule](const Finding& f) { return f.rule == rule; });
      if (!fired) {
        std::fprintf(stderr, "hpac_lint: self-test rule never fired: %s\n",
                     rule.c_str());
        all_fired = false;
      }
    }
    std::printf("hpac_lint: self-test %s (%zu findings)\n",
                all_fired ? "ok" : "FAILED", findings.size());
    return all_fired ? 0 : 1;
  }

  if (!findings.empty()) {
    std::fprintf(stderr, "hpac_lint: %zu violation(s) in %zu file(s) scanned\n",
                 findings.size(), inputs.size());
    return 1;
  }
  std::printf("hpac_lint: clean (%zu files scanned)\n", inputs.size());
  return 0;
}
