// hpac_campaign — resumable suite-wide sweeps across devices.
//
// Evaluates the cross product of benchmarks x device presets x curated
// approximation specs x items-per-thread on a thread pool, checkpointing
// every completed record to the --csv file. Kill it at any point and run
// the identical command again: already-evaluated configurations are
// restored from the checkpoint and only the missing ones run, ending with
// the same CSV an uninterrupted campaign would have produced.
//
// Examples:
//   hpac_campaign --csv=campaign.csv
//   hpac_campaign --benchmarks=kmeans,lulesh --devices=v100,mi250x,a100
//                 --ipt=8,64 --csv=campaign.csv   (one command line)
//   hpac_campaign --sweep=perfo --threads=4 --csv=perfo.csv

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "approx/audit.hpp"
#include "approx/region.hpp"
#include "apps/registry.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "harness/analysis.hpp"
#include "harness/campaign.hpp"
#include "harness/params.hpp"

using namespace hpac;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--benchmarks=a,b,...] [--devices=v100,mi250x,a100]\n"
               "          [--sweep=curated|taf|iact|perfo] [--ipt=8,64]\n"
               "          [--threads=N] [--max-error=PCT] [--csv=FILE]\n"
               "          [--audit=off|report|enforce]\n\n"
               "Defaults: all benchmarks, the paper's two devices, the curated\n"
               "spec sets. --csv doubles as the resume checkpoint. --audit runs\n"
               "the whole campaign under the commit-conflict auditor.\n\nbenchmarks:",
               argv0);
  for (const auto& name : apps::benchmark_names()) std::fprintf(stderr, " %s", name.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

std::vector<std::string> parse_list(const std::string& csv_list) {
  std::vector<std::string> out;
  for (const auto& item : strings::split(csv_list, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

[[noreturn]] void bad_value(const char* flag, const std::string& value) {
  std::fprintf(stderr, "error: %s needs a positive number, got \"%s\"\n", flag, value.c_str());
  std::exit(2);
}

std::uint64_t parse_count(const char* flag, const std::string& value, bool allow_zero) {
  long long parsed = 0;
  if (!strings::parse_int(value, parsed) || parsed < 0 || (!allow_zero && parsed == 0)) {
    bad_value(flag, value);
  }
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace

int main(int argc, char** argv) {
  harness::CampaignPlan plan;
  plan.benchmarks = apps::benchmark_names();
  plan.devices = {"v100", "mi250x"};
  std::string sweep = "curated";
  std::string audit = "off";
  double max_error = 10.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string(key) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value("--benchmarks")) plan.benchmarks = parse_list(*v);
    else if (auto v2 = value("--devices")) plan.devices = parse_list(*v2);
    else if (auto v3 = value("--sweep")) sweep = *v3;
    else if (auto v4 = value("--csv")) plan.output_path = *v4;
    else if (auto v5 = value("--threads")) {
      plan.num_threads = parse_count("--threads", *v5, /*allow_zero=*/true);
    } else if (auto v6 = value("--max-error")) {
      if (!strings::parse_double(*v6, max_error) || max_error <= 0) {
        bad_value("--max-error", *v6);
      }
    } else if (auto v7 = value("--ipt")) {
      plan.items_per_thread.clear();
      for (const auto& item : parse_list(*v7)) {
        plan.items_per_thread.push_back(parse_count("--ipt", item, /*allow_zero=*/false));
      }
    } else if (auto v8 = value("--audit")) {
      audit = *v8;
    } else {
      usage(argv[0]);
    }
  }
  const auto audit_mode = approx::audit::audit_mode_from_string(audit);
  if (!audit_mode) usage(argv[0]);
  if (*audit_mode != approx::audit::AuditMode::kOff) {
    approx::RegionExecutor::set_default_audit(*audit_mode);
    std::printf("commit-conflict audit: %s (with differential re-runs)\n",
                approx::audit::to_string(*audit_mode));
  }
  if (sweep == "taf") {
    plan.specs_for = [](const sim::DeviceConfig&) {
      return harness::curated_taf_specs(harness::table2::hierarchies());
    };
  } else if (sweep == "iact") {
    plan.specs_for = [](const sim::DeviceConfig& d) {
      return harness::curated_iact_specs(d.warp_size, harness::table2::hierarchies());
    };
  } else if (sweep == "perfo") {
    plan.specs_for = [](const sim::DeviceConfig&) { return harness::curated_perfo_specs(); };
  } else if (sweep != "curated") {
    usage(argv[0]);
  }

  std::size_t progress = 0;
  plan.on_record = [&progress](const harness::RunRecord& r) {
    ++progress;
    if (progress % 50 == 0) {
      std::printf("  ... %zu records (latest: %s on %s)\n", progress, r.benchmark.c_str(),
                  r.device.c_str());
    }
  };

  try {
    harness::Campaign campaign(plan);
    std::printf("campaign: %zu benchmarks x %zu devices, %zu items-per-thread values%s\n",
                plan.benchmarks.size(), plan.devices.size(), plan.items_per_thread.size(),
                plan.output_path.empty() ? " (in-memory, no checkpoint)" : "");
    const harness::CampaignResult result = campaign.run();
    std::printf("planned %zu tuples: %zu restored from checkpoint, %zu evaluated, "
                "%zu feasible%s\n",
                result.planned, result.restored, result.evaluated, result.feasible,
                result.stale ? strings::format(" (%zu stale rows dropped)", result.stale).c_str()
                             : "");
    if (*audit_mode != approx::audit::AuditMode::kOff) {
      std::printf("audit (%s): %zu record(s) flagged with commit conflicts\n",
                  approx::audit::to_string(*audit_mode), result.audit_flagged);
    }

    TextTable table({"device", "geomean best", "feasible", "configs"});
    for (const auto& row :
         harness::per_device_geomean_best(result.db.records(), max_error)) {
      table.add_row({row.device,
                     row.geomean_best > 0 ? strings::format("%.2fx", row.geomean_best) : "-",
                     std::to_string(row.feasible), std::to_string(row.total)});
    }
    std::printf("\nper-device best under %.1f%% error (the paper's portability view):\n%s",
                max_error, table.render().c_str());
    if (!plan.output_path.empty()) {
      std::printf("\nresults in %s — rerun the same command to verify resume is a no-op\n",
                  plan.output_path.c_str());
    }
  } catch (const hpac::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
