// hpac_campaign — resumable suite-wide sweeps across devices.
//
// Evaluates the cross product of benchmarks x device presets x curated
// approximation specs x items-per-thread on a thread pool, checkpointing
// every completed record to the --csv file. Kill it at any point and run
// the identical command again: already-evaluated configurations are
// restored from the checkpoint and only the missing ones run, ending with
// the same CSV an uninterrupted campaign would have produced.
//
// Examples:
//   hpac_campaign --csv=campaign.csv
//   hpac_campaign --benchmarks=kmeans,lulesh --devices=v100,mi250x,a100
//                 --ipt=8,64 --csv=campaign.csv   (one command line)
//   hpac_campaign --sweep=perfo --threads=4 --csv=perfo.csv
//
// Distributed mode (lease-coordinated multi-process sweeps, see the
// README's "Distributed sweeps" section): every invocation must use the
// identical plan flags, or the shared lease journal rejects the joiner.
//   hpac_campaign --dist-dir=sweep/ --workers=4        (fork a local fleet)
//   hpac_campaign --dist-dir=sweep/ --worker-id=nodeA  (join as one worker)
//   hpac_campaign --dist-dir=sweep/ --finalize-only    (merge results.csv)
//   hpac_campaign --dist-dir=sweep/ --dist-status      (who holds what)

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "approx/audit.hpp"
#include "approx/region.hpp"
#include "apps/registry.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "harness/analysis.hpp"
#include "harness/campaign.hpp"
#include "harness/dist_campaign.hpp"
#include "harness/lease_journal.hpp"
#include "harness/params.hpp"
#include "harness/record.hpp"

using namespace hpac;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--benchmarks=a,b,...] [--devices=v100,mi250x,a100]\n"
               "          [--sweep=curated|taf|iact|perfo] [--ipt=8,64]\n"
               "          [--threads=N] [--max-error=PCT] [--csv=FILE]\n"
               "          [--audit=off|report|enforce]\n"
               "          [--dist-dir=DIR [--workers=N | --worker-id=NAME |\n"
               "           --finalize-only | --dist-status] [--lease-ttl-ms=N]\n"
               "           [--heartbeat-ms=N] [--claim-chunk=N]\n"
               "           [--journal-mode=append|rename]]\n\n"
               "Defaults: all benchmarks, the paper's two devices, the curated\n"
               "spec sets. --csv doubles as the resume checkpoint. --audit runs\n"
               "the whole campaign under the commit-conflict auditor. --dist-dir\n"
               "switches to lease-coordinated multi-process mode: --workers forks\n"
               "a local fleet and merges, --worker-id joins DIR as one worker\n"
               "(merge later with --finalize-only), --dist-status prints who\n"
               "holds what (heartbeat ages judged against --lease-ttl-ms).\n\nbenchmarks:",
               argv0);
  for (const auto& name : apps::benchmark_names()) std::fprintf(stderr, " %s", name.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

std::vector<std::string> parse_list(const std::string& csv_list) {
  std::vector<std::string> out;
  for (const auto& item : strings::split(csv_list, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

[[noreturn]] void bad_value(const char* flag, const std::string& value) {
  std::fprintf(stderr, "error: %s needs a positive number, got \"%s\"\n", flag, value.c_str());
  std::exit(2);
}

std::uint64_t parse_count(const char* flag, const std::string& value, bool allow_zero) {
  long long parsed = 0;
  if (!strings::parse_int(value, parsed) || parsed < 0 || (!allow_zero && parsed == 0)) {
    bad_value(flag, value);
  }
  return static_cast<std::uint64_t>(parsed);
}

void print_per_device_table(const std::vector<harness::RunRecord>& records,
                            double max_error) {
  TextTable table({"device", "geomean best", "feasible", "configs"});
  for (const auto& row : harness::per_device_geomean_best(records, max_error)) {
    table.add_row({row.device,
                   row.geomean_best > 0 ? strings::format("%.2fx", row.geomean_best) : "-",
                   std::to_string(row.feasible), std::to_string(row.total)});
  }
  std::printf("\nper-device best under %.1f%% error (the paper's portability view):\n%s",
              max_error, table.render().c_str());
}

int finalize_and_report(const harness::DistributedCampaign& dist, double max_error) {
  const auto merge = dist.finalize();
  std::printf("finalized %s: %zu tuples merged from %zu worker journal(s)"
              " (%zu duplicate row(s) dropped%s%s)\n",
              dist.results_path().c_str(), merge.merged, merge.journals,
              merge.duplicates,
              merge.conflicting
                  ? strings::format(", %zu CONFLICTING", merge.conflicting).c_str()
                  : "",
              merge.stale ? strings::format(", %zu stale", merge.stale).c_str() : "");
  const harness::ResultDb db = harness::ResultDb::load(dist.results_path());
  print_per_device_table(db.records(), max_error);
  return merge.conflicting == 0 ? 0 : 1;
}

/// Human-readable view over the shared lease journal (--dist-status):
/// who holds what, how stale each incarnation's heartbeat is relative to
/// the TTL, and how much of the journal was unparseable. Pure read — it
/// never joins the fleet, appends nothing, and needs no plan flags.
int print_dist_status(const std::string& dist_dir, std::uint32_t ttl_ms) {
  const std::string path = harness::DistributedCampaign::lease_path_in(dist_dir);
  const harness::LeaseJournal::Inspection ins = harness::LeaseJournal::inspect(path);
  const std::uint64_t now = harness::LeaseJournal::now_ms();

  std::printf("lease journal %s: mode %s, %zu tuples, plan %016llx\n", path.c_str(),
              ins.mode.c_str(), ins.domain,
              static_cast<unsigned long long>(ins.fingerprint));
  std::printf("records: %zu valid (%zu claims, %zu heartbeats, %zu releases, "
              "%zu reclaims), %zu invalid line(s)\n",
              ins.valid_records, ins.claims, ins.heartbeats, ins.releases,
              ins.reclaims, ins.invalid_lines);

  // Aggregate live holdings per incarnation (worker#nonce); released
  // tuples no longer belong to anyone.
  struct Holder {
    std::string worker;
    std::uint64_t nonce = 0;
    std::size_t held = 0;
  };
  std::map<std::string, Holder> holders;
  std::size_t released = 0;
  std::size_t held = 0;
  std::size_t unclaimed = 0;
  for (const auto& tuple : ins.tuples) {
    if (tuple.released) {
      ++released;
    } else if (tuple.claimed) {
      ++held;
      Holder& holder = holders[tuple.worker + "#" + std::to_string(tuple.nonce)];
      holder.worker = tuple.worker;
      holder.nonce = tuple.nonce;
      ++holder.held;
    } else {
      ++unclaimed;
    }
  }
  std::printf("tuples: %zu released, %zu held, %zu unclaimed\n", released, held,
              unclaimed);

  if (!holders.empty()) {
    TextTable table({"worker", "nonce", "held", "last heartbeat", "lease"});
    std::size_t expired = 0;
    for (const auto& [key, holder] : holders) {
      const auto seen_it = ins.last_seen.find(key);
      const std::uint64_t seen = seen_it != ins.last_seen.end() ? seen_it->second : 0;
      const std::uint64_t age = now >= seen ? now - seen : 0;
      const bool live = seen != 0 && age <= ttl_ms;
      if (!live) ++expired;
      table.add_row({holder.worker, strings::format("%016llx",
                                                    static_cast<unsigned long long>(
                                                        holder.nonce)),
                     std::to_string(holder.held),
                     seen == 0 ? "never" : strings::format("%.1fs ago", age / 1000.0),
                     live ? "live" : "EXPIRED (reclaimable)"});
    }
    std::printf("\nholders (TTL %ums):\n%s", ttl_ms, table.render().c_str());
    if (expired > 0) {
      std::printf("%zu incarnation(s) past the TTL — their tuples are "
                  "reclaimable by any live worker\n",
                  expired);
    }
  }
  return 0;
}

/// Run the lease-coordinated multi-process mode (--dist-dir).
int run_distributed(const harness::Campaign& campaign, const std::string& dist_dir,
                    const std::string& worker_id, std::uint64_t workers,
                    bool finalize_only, harness::DistributedCampaign::Options opt,
                    double max_error) {
  opt.dir = dist_dir;
  opt.worker =
      worker_id.empty() ? strings::format("w%d", static_cast<int>(::getpid())) : worker_id;
  harness::DistributedCampaign dist(campaign, opt);
  std::printf("distributed campaign in %s: %zu tuples, %zu shards (plan %s)\n",
              dist_dir.c_str(), campaign.tuple_count(), campaign.shard_count(),
              strings::format("%016llx",
                              static_cast<unsigned long long>(
                                  harness::DistributedCampaign::plan_fingerprint(campaign)))
                  .c_str());
  if (finalize_only) return finalize_and_report(dist, max_error);

  if (workers > 1) {
    // Fork a local fleet: each child is a full worker process with its own
    // journal; the parent waits and merges.
    std::vector<pid_t> pids;
    for (std::uint64_t i = 0; i < workers; ++i) {
      const pid_t pid = ::fork();
      if (pid == 0) {
        try {
          harness::DistributedCampaign::Options child_opt = opt;
          child_opt.worker = opt.worker + "." + std::to_string(i);
          harness::DistributedCampaign child(campaign, child_opt);
          const auto stats = child.run_worker();
          std::printf("  worker %s: %zu evaluated, %zu restored, %zu reclaimed\n",
                      child_opt.worker.c_str(), stats.evaluated, stats.restored,
                      stats.reclaimed);
          std::_Exit(0);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "worker %llu failed: %s\n",
                       static_cast<unsigned long long>(i), e.what());
          std::_Exit(1);
        }
      }
      pids.push_back(pid);
    }
    bool ok = true;
    for (const pid_t pid : pids) {
      int status = 0;
      ::waitpid(pid, &status, 0);
      ok = ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
    }
    if (!ok) {
      std::fprintf(stderr, "error: a worker failed; rerun to resume, then "
                           "--finalize-only to merge\n");
      return 1;
    }
    return finalize_and_report(dist, max_error);
  }

  const auto stats = dist.run_worker();
  std::printf("worker %s done: %zu evaluated, %zu restored from own journal, "
              "%zu lease(s) reclaimed, %zu lost, baselines %zu computed / %zu loaded\n",
              opt.worker.c_str(), stats.evaluated, stats.restored, stats.reclaimed,
              stats.lost, stats.baselines_computed, stats.baselines_loaded);
  std::printf("merge the fleet's journals with: --dist-dir=%s --finalize-only\n",
              dist_dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  harness::CampaignPlan plan;
  plan.benchmarks = apps::benchmark_names();
  plan.devices = {"v100", "mi250x"};
  std::string sweep = "curated";
  std::string audit = "off";
  double max_error = 10.0;
  std::string dist_dir;
  std::string worker_id;
  std::uint64_t workers = 0;
  bool finalize_only = false;
  bool dist_status = false;
  harness::DistributedCampaign::Options dist_opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string(key) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value("--benchmarks")) plan.benchmarks = parse_list(*v);
    else if (auto v2 = value("--devices")) plan.devices = parse_list(*v2);
    else if (auto v3 = value("--sweep")) sweep = *v3;
    else if (auto v4 = value("--csv")) plan.output_path = *v4;
    else if (auto v5 = value("--threads")) {
      plan.num_threads = parse_count("--threads", *v5, /*allow_zero=*/true);
    } else if (auto v6 = value("--max-error")) {
      if (!strings::parse_double(*v6, max_error) || max_error <= 0) {
        bad_value("--max-error", *v6);
      }
    } else if (auto v7 = value("--ipt")) {
      plan.items_per_thread.clear();
      for (const auto& item : parse_list(*v7)) {
        plan.items_per_thread.push_back(parse_count("--ipt", item, /*allow_zero=*/false));
      }
    } else if (auto v8 = value("--audit")) {
      audit = *v8;
    } else if (auto v9 = value("--dist-dir")) {
      dist_dir = *v9;
    } else if (auto v10 = value("--worker-id")) {
      worker_id = *v10;
    } else if (auto v11 = value("--workers")) {
      workers = parse_count("--workers", *v11, /*allow_zero=*/false);
    } else if (arg == "--finalize-only") {
      finalize_only = true;
    } else if (arg == "--dist-status") {
      dist_status = true;
    } else if (auto v12 = value("--lease-ttl-ms")) {
      dist_opt.ttl_ms =
          static_cast<std::uint32_t>(parse_count("--lease-ttl-ms", *v12, false));
    } else if (auto v13 = value("--heartbeat-ms")) {
      dist_opt.heartbeat_ms =
          static_cast<std::uint32_t>(parse_count("--heartbeat-ms", *v13, true));
    } else if (auto v14 = value("--claim-chunk")) {
      dist_opt.claim_chunk =
          static_cast<std::size_t>(parse_count("--claim-chunk", *v14, false));
    } else if (auto v15 = value("--journal-mode")) {
      if (*v15 == "append") {
        dist_opt.mode = harness::LeaseJournal::AppendMode::kAtomicAppend;
      } else if (*v15 == "rename") {
        dist_opt.mode = harness::LeaseJournal::AppendMode::kRenameRewrite;
      } else {
        usage(argv[0]);
      }
    } else {
      usage(argv[0]);
    }
  }
  if (dist_dir.empty() &&
      (!worker_id.empty() || workers > 0 || finalize_only || dist_status)) {
    std::fprintf(stderr,
                 "error: --workers/--worker-id/--finalize-only/--dist-status "
                 "need --dist-dir\n");
    return 2;
  }
  if (dist_status) {
    // Pure inspection: no plan construction, no journal join — works even
    // while a fleet is mid-sweep or after it crashed.
    try {
      return print_dist_status(dist_dir, dist_opt.ttl_ms);
    } catch (const hpac::Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  const auto audit_mode = approx::audit::audit_mode_from_string(audit);
  if (!audit_mode) usage(argv[0]);
  if (*audit_mode != approx::audit::AuditMode::kOff) {
    approx::RegionExecutor::set_default_audit(*audit_mode);
    std::printf("commit-conflict audit: %s (with differential re-runs)\n",
                approx::audit::to_string(*audit_mode));
  }
  if (sweep == "taf") {
    plan.specs_for = [](const sim::DeviceConfig&) {
      return harness::curated_taf_specs(harness::table2::hierarchies());
    };
  } else if (sweep == "iact") {
    plan.specs_for = [](const sim::DeviceConfig& d) {
      return harness::curated_iact_specs(d.warp_size, harness::table2::hierarchies());
    };
  } else if (sweep == "perfo") {
    plan.specs_for = [](const sim::DeviceConfig&) { return harness::curated_perfo_specs(); };
  } else if (sweep != "curated") {
    usage(argv[0]);
  }

  std::size_t progress = 0;
  plan.on_record = [&progress](const harness::RunRecord& r) {
    ++progress;
    if (progress % 50 == 0) {
      std::printf("  ... %zu records (latest: %s on %s)\n", progress, r.benchmark.c_str(),
                  r.device.c_str());
    }
  };

  try {
    harness::Campaign campaign(plan);
    if (!dist_dir.empty()) {
      return run_distributed(campaign, dist_dir, worker_id, workers, finalize_only,
                             dist_opt, max_error);
    }
    std::printf("campaign: %zu benchmarks x %zu devices, %zu items-per-thread values%s\n",
                plan.benchmarks.size(), plan.devices.size(), plan.items_per_thread.size(),
                plan.output_path.empty() ? " (in-memory, no checkpoint)" : "");
    const harness::CampaignResult result = campaign.run();
    std::printf("planned %zu tuples: %zu restored from checkpoint, %zu evaluated, "
                "%zu feasible%s\n",
                result.planned, result.restored, result.evaluated, result.feasible,
                result.stale ? strings::format(" (%zu stale rows dropped)", result.stale).c_str()
                             : "");
    if (*audit_mode != approx::audit::AuditMode::kOff) {
      std::printf("audit (%s): %zu record(s) flagged with commit conflicts\n",
                  approx::audit::to_string(*audit_mode), result.audit_flagged);
    }

    print_per_device_table(result.db.records(), max_error);
    if (!plan.output_path.empty()) {
      std::printf("\nresults in %s — rerun the same command to verify resume is a no-op\n",
                  plan.output_path.c_str());
    }
  } catch (const hpac::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
