// Quickstart: approximate an expensive function over a vector, the
// library analogue of the paper's Figure 5 example.
//
//   #pragma omp target teams distribute parallel for
//   for (size_t i = 0; i < n; ++i) {
//     #pragma approx memo(out:3:8:0.5) level(warp) out(y[i])
//     y[i] = foo(x[i]);
//   }
//
// Build: cmake --build build --target quickstart
// Run:   ./build/examples/quickstart

#include <cmath>
#include <cstdio>
#include <vector>

#include "approx/region.hpp"
#include "common/stats.hpp"
#include "offload/device.hpp"
#include "offload/target.hpp"
#include "sim/device.hpp"

using namespace hpac;

namespace {

// An expensive device function: a truncated series evaluation.
double foo(double x) {
  double acc = 0.0;
  for (int k = 1; k <= 64; ++k) acc += std::sin(k * x) / (k * k);
  return acc;
}

}  // namespace

int main() {
  const std::uint64_t n = 1u << 18;

  // A slowly varying input: exactly the temporal output locality TAF
  // exploits across each thread's grid-stride iterations.
  std::vector<double> x(n), y(n, 0.0);
  for (std::uint64_t i = 0; i < n; ++i) x[i] = 0.5 + 1e-5 * static_cast<double>(i);

  offload::Device device(sim::v100());
  approx::RegionExecutor executor(device.config());

  approx::RegionBinding region;
  region.in_dims = 1;
  region.out_dims = 1;
  region.gather = [&](std::uint64_t i, std::span<double> in) { in[0] = x[i]; };
  region.accurate = [&](std::uint64_t i, std::span<const double>, std::span<double> out) {
    out[0] = foo(x[i]);
  };
  region.accurate_cost = [](std::uint64_t) { return 64.0 * 22.0; };  // 64 sin() terms
  region.commit = [&](std::uint64_t i, std::span<const double> out) { y[i] = out[0]; };

  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(n, 64, 128);

  // Accurate reference.
  auto accurate = offload::target_parallel_for(device, executor, "none", region, n, launch);
  std::vector<double> reference = y;

  // Approximated run: TAF output memoization with warp-level decisions.
  std::fill(y.begin(), y.end(), 0.0);
  auto approx = offload::target_parallel_for(
      device, executor, "memo(out:3:8:0.5) level(warp) out(y[i])", region, n, launch);

  const double speedup = accurate.timing.seconds / approx.timing.seconds;
  const double mape = stats::mape_percent(reference, y);
  std::printf("quickstart: n=%llu grid-stride items/thread=64\n",
              static_cast<unsigned long long>(n));
  std::printf("  accurate kernel: %.3f ms\n", accurate.timing.seconds * 1e3);
  std::printf("  approx   kernel: %.3f ms (%.0f%% of items memoized)\n",
              approx.timing.seconds * 1e3, 100.0 * approx.stats.approx_ratio());
  std::printf("  speedup: %.2fx   MAPE: %.4f%%\n", speedup, mape);

  // Composition (the paper's Figure 2): perforation on the loop plus
  // memoization inside the surviving iterations.
  std::fill(y.begin(), y.end(), 0.0);
  auto composed = offload::target_parallel_for(
      device, executor, "perfo(small:4)", "memo(out:3:8:0.5) level(warp) out(y[i])", region,
      n, launch);
  std::printf("  composed perfo(small:4)+memo: %.3f ms (%.0f%% skipped, %.0f%% memoized)\n",
              composed.timing.seconds * 1e3,
              100.0 * static_cast<double>(composed.stats.skipped_items) / n,
              100.0 * static_cast<double>(composed.stats.approx_items) / n);
  return 0;
}
