// hpac_explore — the execution-harness workflow as a command-line tool.
//
// Runs one of the reproduced benchmarks under an approximation directive
// (or a whole curated sweep) on a chosen platform and reports speedup,
// quality loss and approximation counters; optionally saves the result
// database as CSV. This is the library analogue of the paper's harness
// that "builds and executes the program ... and saves runtime
// information and error to a database" (§2.3).
//
// Examples:
//   hpac_explore --benchmark=lulesh --clause="memo(out:3:8:0.5) level(warp)" --ipt=8
//   hpac_explore --benchmark=kmeans --device=mi250x --sweep=taf --csv=kmeans.csv
//   hpac_explore --benchmark=blackscholes --clause="perfo(fini:0.3)" --ipt=1

#include <cstdio>
#include <cstdlib>
#include <string>

#include "approx/audit.hpp"
#include "approx/region.hpp"
#include "apps/registry.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "harness/analysis.hpp"
#include "harness/explorer.hpp"
#include "harness/params.hpp"
#include "pragma/parser.hpp"
#include "sim/device.hpp"

using namespace hpac;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --benchmark=NAME [--device=v100|mi250x] [--ipt=N]\n"
               "          (--clause=\"...\" [--perfo=\"...\"] | --sweep=taf|iact|perfo)\n"
               "          [--csv=FILE] [--audit=off|report|enforce]\n\n"
               "--audit validates every independent_items declaration at runtime\n"
               "(address-range tagging + a differential re-run); report annotates\n"
               "flagged records, enforce makes them infeasible.\n\nbenchmarks:",
               argv0);
  for (const auto& name : apps::benchmark_names()) std::fprintf(stderr, " %s", name.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

void print_record(const harness::RunRecord& r) {
  if (!r.feasible) {
    std::printf("%-44s ipt=%-4llu INFEASIBLE: %s\n", r.spec_text.c_str(),
                static_cast<unsigned long long>(r.items_per_thread), r.note.c_str());
    return;
  }
  std::printf("%-44s ipt=%-4llu speedup %6.2fx  error %10.4g%%  approx %5.1f%%\n",
              r.spec_text.c_str(), static_cast<unsigned long long>(r.items_per_thread),
              r.speedup, r.error_percent, 100.0 * r.approx_ratio);
  if (!r.note.empty()) {
    std::printf("%-44s      ^ %s\n", "", r.note.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string benchmark, clause, perfo_clause, sweep, csv;
  std::string device = "v100";
  std::string audit = "off";
  std::uint64_t ipt = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string(key) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value("--benchmark")) benchmark = *v;
    else if (auto v2 = value("--device")) device = *v2;
    else if (auto v3 = value("--clause")) clause = *v3;
    else if (auto v4 = value("--perfo")) perfo_clause = *v4;
    else if (auto v5 = value("--sweep")) sweep = *v5;
    else if (auto v6 = value("--csv")) csv = *v6;
    else if (auto v7 = value("--ipt")) ipt = std::strtoull(v7->c_str(), nullptr, 10);
    else if (auto v8 = value("--audit")) audit = *v8;
    else usage(argv[0]);
  }
  if (benchmark.empty() || (clause.empty() && sweep.empty())) usage(argv[0]);

  const auto audit_mode = approx::audit::audit_mode_from_string(audit);
  if (!audit_mode) usage(argv[0]);
  if (*audit_mode != approx::audit::AuditMode::kOff) {
    approx::RegionExecutor::set_default_audit(*audit_mode);
    std::printf("commit-conflict audit: %s (with differential re-runs)\n",
                approx::audit::to_string(*audit_mode));
  }

  try {
    auto app = apps::make_benchmark(benchmark);
    const sim::DeviceConfig dev = sim::device_by_name(device);
    harness::Explorer explorer(*app, dev);
    std::printf("benchmark %s on %s (%d SMs, warp %d), metric %s\n\n", benchmark.c_str(),
                dev.name.c_str(), dev.num_sms, dev.warp_size,
                app->error_metric() == harness::ErrorMetric::kMcr ? "MCR" : "MAPE");

    if (!clause.empty()) {
      // Single configuration; --perfo adds Figure-2 style composition by
      // evaluating the perforation and memoization directives together.
      if (!perfo_clause.empty()) {
        std::fprintf(stderr,
                     "note: composed directives are evaluated per-kernel by apps that use "
                     "target_parallel_for's composed overload; the registry benchmarks "
                     "evaluate --clause only.\n");
      }
      print_record(explorer.run_config(pragma::parse_approx(clause), ipt));
    } else {
      std::vector<pragma::ApproxSpec> specs;
      if (sweep == "taf") {
        specs = harness::curated_taf_specs(harness::table2::hierarchies());
      } else if (sweep == "iact") {
        specs = harness::curated_iact_specs(dev.warp_size, harness::table2::hierarchies());
      } else if (sweep == "perfo") {
        specs = harness::curated_perfo_specs();
      } else {
        usage(argv[0]);
      }
      explorer.sweep(specs, app->memo_items_axis());
      for (const auto& r : explorer.db().records()) print_record(r);
      const auto best = harness::best_under_error(explorer.db().records(), 10.0);
      if (best) {
        std::printf("\nbest under 10%% error: ");
        print_record(*best);
      } else {
        std::printf("\nno configuration under 10%% error\n");
      }
    }
    if (!csv.empty()) {
      explorer.db().save(csv);
      std::printf("saved %zu records to %s\n", explorer.db().size(), csv.c_str());
    }
  } catch (const hpac::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
