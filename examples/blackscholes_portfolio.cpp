// Domain example: approximate option pricing for a Blackscholes
// portfolio, the paper's Figure 10 scenario.
//
// Shows the workflow a quant-library user would follow:
//   1. price the portfolio accurately (the reference),
//   2. sweep TAF prediction sizes and RSD thresholds at kernel scope
//      (transfers dominate this benchmark, so kernel time is what the
//      approximation can buy back),
//   3. inspect how the threshold shifts the *distribution* of prices,
//      not just the mean error — the paper's panel (c) lesson.
//
// Run: ./build/examples/blackscholes_portfolio

#include <cstdio>

#include "apps/blackscholes.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "harness/explorer.hpp"
#include "pragma/parser.hpp"
#include "sim/device.hpp"

using namespace hpac;

int main() {
  apps::Blackscholes portfolio;
  harness::Explorer explorer(portfolio, sim::mi250x());

  std::printf("portfolio: %llu options (kernel-only timing, as in the paper)\n\n",
              static_cast<unsigned long long>(portfolio.params().num_options));

  TextTable sweep({"config", "speedup", "MAPE %", "% approximated"});
  for (int psize : {8, 64, 512}) {
    for (double threshold : {0.3, 1.5, 5.0}) {
      const std::string clause = strings::format(
          "memo(out:5:%d:%g) level(warp) out(price[i])", psize, threshold);
      const auto record = explorer.run_config(pragma::parse_approx(clause), 64);
      sweep.add_row({clause, strings::format("%.2fx", record.speedup),
                     strings::format("%.4f", record.error_percent),
                     strings::format("%.0f", 100 * record.approx_ratio)});
    }
  }
  std::printf("%s\n", sweep.render().c_str());

  // Distribution check: a low MAPE can still hide a shifted price
  // distribution; compare quantiles like Figure 10c.
  const auto& exact = explorer.baseline();
  apps::Blackscholes fresh;
  const auto approx = fresh.run(
      pragma::parse_approx("memo(out:5:512:5) level(warp) out(price[i])"), 64,
      sim::mi250x());
  TextTable dist({"series", "p5", "median", "p95"});
  dist.add_row({"exact", strings::format("%.3f", stats::percentile(exact.qoi, 5)),
                strings::format("%.3f", stats::percentile(exact.qoi, 50)),
                strings::format("%.3f", stats::percentile(exact.qoi, 95))});
  dist.add_row({"TAF(5:512:5)", strings::format("%.3f", stats::percentile(approx.qoi, 5)),
                strings::format("%.3f", stats::percentile(approx.qoi, 50)),
                strings::format("%.3f", stats::percentile(approx.qoi, 95))});
  std::printf("%s\n", dist.render().c_str());
  return 0;
}
