// Custom application example: how a downstream user plugs their own
// offload kernel into HPAC-Offload and explores approximation configs.
//
// The "application" is a toy radial heat-diffusion stencil; the exercise
// shows the three integration steps:
//   1. describe the annotated region as a RegionBinding closure,
//   2. implement harness::Benchmark so the Explorer can drive it,
//   3. sweep clause configurations and pick one under an error budget.
//
// Run: ./build/examples/custom_app

#include <cmath>
#include <cstdio>
#include <vector>

#include "harness/analysis.hpp"
#include "harness/explorer.hpp"
#include "pragma/parser.hpp"
#include "apps/support.hpp"
#include "sim/device.hpp"

using namespace hpac;

namespace {

class HeatStencil : public harness::Benchmark {
 public:
  HeatStencil() : grid_(1u << 14, 0.0) {
    for (std::size_t i = 0; i < grid_.size(); ++i) {
      grid_[i] = std::exp(-1e-6 * static_cast<double>(i * i));  // hot spot at 0
    }
  }

  std::string name() const override { return "heat_stencil"; }

  harness::RunOutput run(const pragma::ApproxSpec& spec, std::uint64_t items_per_thread,
                         const sim::DeviceConfig& device) override {
    const std::uint64_t n = grid_.size();
    offload::Device dev(device);
    approx::RegionExecutor executor(device);
    std::vector<double> field = grid_;
    std::vector<double> next = field;
    harness::RunOutput output;

    approx::RegionBinding region;
    region.in_dims = 3;
    region.out_dims = 1;
    region.gather = [&](std::uint64_t i, std::span<double> in) {
      in[0] = field[i > 0 ? i - 1 : 0];
      in[1] = field[i];
      in[2] = field[i + 1 < n ? i + 1 : n - 1];
    };
    region.accurate = [&](std::uint64_t i, std::span<const double>, std::span<double> out) {
      const double left = field[i > 0 ? i - 1 : 0];
      const double right = field[i + 1 < n ? i + 1 : n - 1];
      out[0] = field[i] + 0.2 * (left - 2.0 * field[i] + right);
    };
    region.accurate_cost = [](std::uint64_t) { return 40.0; };
    region.commit = [&](std::uint64_t i, std::span<const double> out) { next[i] = out[0]; };

    const sim::LaunchConfig launch =
        sim::launch_for_items_per_thread(n, items_per_thread, threads_per_team());
    for (int step = 0; step < 50; ++step) {
      apps::launch_kernel(dev, executor, spec, region, n, launch, &output.stats);
      std::swap(field, next);
      next = field;
    }
    output.timeline = dev.timeline();
    output.qoi = std::move(field);
    return output;
  }

 private:
  std::vector<double> grid_;
};

}  // namespace

int main() {
  HeatStencil app;
  harness::Explorer explorer(app, sim::v100());

  // Sweep a handful of TAF configurations at two launch geometries.
  for (const char* clause :
       {"memo(out:3:8:0.1) level(warp)", "memo(out:3:32:0.5) level(warp)",
        "memo(out:5:128:1.5) level(warp)", "perfo(small:4)", "perfo(fini:0.3)"}) {
    for (std::uint64_t ipt : {8ull, 64ull}) {
      auto record = explorer.run_config(pragma::parse_approx(clause), ipt);
      std::printf("%-32s ipt=%-3llu speedup %5.2fx  error %8.4f%%  approx %3.0f%%\n", clause,
                  static_cast<unsigned long long>(ipt), record.speedup, record.error_percent,
                  100.0 * record.approx_ratio);
    }
  }

  // Pick the best configuration under a 1% error budget, Figure-6 style.
  auto best = harness::best_under_error(explorer.db().records(), 1.0);
  if (best) {
    std::printf("\nbest under 1%% error: %s (ipt=%llu) -> %.2fx, %.4f%%\n",
                best->spec_text.c_str(),
                static_cast<unsigned long long>(best->items_per_thread), best->speedup,
                best->error_percent);
  }
  return 0;
}
