// Suite tour: run every reproduced benchmark (Table 1) once accurately and
// once under a representative TAF configuration on the V100-like device,
// and print speedup and quality loss — a miniature of the paper's Figure 6.
//
// Run: ./build/examples/suite_tour

#include <cstdio>

#include "apps/registry.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "harness/analysis.hpp"
#include "harness/explorer.hpp"
#include "pragma/parser.hpp"
#include "sim/device.hpp"

using namespace hpac;

int main() {
  TextTable table({"benchmark", "metric", "best spec", "speedup", "error %", "approx %"});

  for (const std::string& name : apps::benchmark_names()) {
    auto bench = apps::make_benchmark(name);
    harness::Explorer explorer(*bench, sim::v100());

    // A handful of representative configurations per technique; the
    // per-figure benches do the real sweeps.
    for (const char* clause :
         {"memo(out:1:64:1.5) level(warp) out(q)", "memo(out:3:8:0.3) level(warp) out(q)",
          "memo(out:3:2:0.3) level(warp) out(q)", "perfo(fini:0.3)", "perfo(large:16)"}) {
      for (std::uint64_t ipt : bench->memo_items_axis()) {
        explorer.run_config(pragma::parse_approx(clause), ipt);
      }
    }
    const auto best = harness::best_under_error(explorer.db().records(), 10.0);
    if (best) {
      table.add_row({name,
                     bench->error_metric() == harness::ErrorMetric::kMcr ? "MCR" : "MAPE",
                     best->spec_text, strings::format("%.2fx", best->speedup),
                     strings::format("%.3g", best->error_percent),
                     strings::format("%.0f", 100.0 * best->approx_ratio)});
    } else {
      table.add_row({name,
                     bench->error_metric() == harness::ErrorMetric::kMcr ? "MCR" : "MAPE",
                     "none under 10% error", "-", "-", "-"});
    }
  }

  std::printf("%s", table.render().c_str());
  return 0;
}
