// hpacd — the HPAC-Offload tuning daemon.
//
// Serves tuning queries over a Unix-domain socket against a persistent
// result store: memoized tuples answer from an immutable store snapshot
// without touching the scheduler, missing tuples are admitted (bounded,
// per-connection fair) and evaluated on demand, with baselines cached per
// (benchmark, device). Point it at an existing campaign CSV and it serves
// everything the campaign already measured; every cold answer is appended
// to the same journal, so the store only ever grows.
//
// Examples:
//   hpacd --socket=/tmp/hpacd.sock --store=campaign.csv
//   hpacd --socket=/tmp/hpacd.sock --store=campaign.csv --max-pending=16
//   hpacd --socket=/tmp/hpacd.sock --store=final.csv --read-only
//
// A client connects, sends framed queries (see src/service/protocol.hpp),
// and may send a shutdown frame to stop the daemon gracefully. Signals:
// SIGTERM drains — new connections are refused, requests already received
// finish and their replies are delivered, then the daemon exits (the
// journal needs no extra flush: every append is flushed when written).
// SIGINT stops immediately. --read-only serves a finalized CSV (or a
// journal owned by another process) without ever opening it for writing:
// cold tuples answer degraded from the nearest known config.

#include <poll.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "harness/result_store.hpp"
#include "service/server.hpp"

using namespace hpac;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [--store=FILE] [--max-pending=N]\n"
               "          [--threads=N] [--read-only]\n\n"
               "--socket     Unix-domain socket to listen on (required)\n"
               "--store      result CSV to serve and append to (default: in-memory)\n"
               "--max-pending  admission bound for cold tuples (default 64)\n"
               "--threads    worker bound for cold evaluations (default: hardware)\n"
               "--read-only  serve an existing --store without writing to it;\n"
               "             cold tuples answer degraded from the nearest config\n",
               argv0);
  std::exit(2);
}

std::uint64_t parse_count(const char* flag, const std::string& value, bool allow_zero) {
  long long parsed = 0;
  if (!strings::parse_int(value, parsed) || parsed < 0 || (!allow_zero && parsed == 0)) {
    std::fprintf(stderr, "error: %s needs a positive number, got \"%s\"\n", flag,
                 value.c_str());
    std::exit(2);
  }
  return static_cast<std::uint64_t>(parsed);
}

// Self-pipe: the handler only writes one byte (async-signal-safe), and a
// plain thread blocked in poll(2) performs the actual drain/stop — which
// takes locks and joins threads, none of it legal inside a handler.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int signo) {
  const unsigned char byte = static_cast<unsigned char>(signo);
  // A full pipe just means a signal is already queued for handling.
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  service::TuningServer::Options options;
  std::string store_path;
  bool read_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string(key) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value("--socket")) options.socket_path = *v;
    else if (auto v2 = value("--store")) store_path = *v2;
    else if (auto v3 = value("--max-pending")) {
      options.service.max_pending =
          parse_count("--max-pending", *v3, /*allow_zero=*/false);
    } else if (auto v4 = value("--threads")) {
      options.service.num_threads = parse_count("--threads", *v4, /*allow_zero=*/true);
    } else if (arg == "--read-only") {
      read_only = true;
    } else {
      usage(argv[0]);
    }
  }
  if (options.socket_path.empty()) usage(argv[0]);
  if (read_only && store_path.empty()) {
    std::fprintf(stderr, "error: --read-only needs a --store to serve\n");
    return 2;
  }
  options.service.read_only = read_only;

  try {
    harness::ResultStore store(store_path, read_only);
    if (store.persistent()) {
      std::printf("hpacd: store %s%s (%zu records restored, %zu duplicate rows dropped)\n",
                  store.path().c_str(), read_only ? " [read-only]" : "",
                  store.load_stats().restored, store.load_stats().duplicates);
    } else {
      std::printf("hpacd: in-memory store (answers are not persisted)\n");
    }
    service::TuningServer server(store, options);

    HPAC_REQUIRE(::pipe(g_signal_pipe) == 0, "cannot create signal pipe");
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::thread signal_thread([&server] {
      pollfd pfd{g_signal_pipe[0], POLLIN, 0};
      for (;;) {
        if (::poll(&pfd, 1, -1) < 0) {
          if (errno == EINTR) continue;
          return;
        }
        unsigned char signo = 0;
        if (::read(g_signal_pipe[0], &signo, 1) != 1) return;  // pipe closed: exit
        if (signo == SIGTERM) {
          std::printf("hpacd: draining (finishing in-flight requests)\n");
          std::fflush(stdout);
          server.drain();
        } else {
          server.stop();
        }
        return;
      }
    });

    server.start();
    std::printf("hpacd: listening on %s\n", options.socket_path.c_str());
    std::fflush(stdout);
    server.wait();
    server.stop();  // no-op after a signal-driven drain/stop
    // Wake the signal thread if no signal ever fired (protocol shutdown).
    ::close(g_signal_pipe[1]);
    g_signal_pipe[1] = -1;
    signal_thread.join();
    ::close(g_signal_pipe[0]);

    const auto stats = server.service().stats();
    std::printf("hpacd: served %llu queries (%llu memoized, %llu evaluated, "
                "%llu coalesced, %llu rejected, %llu degraded, "
                "%llu past deadline, %llu eval failures, %llu quarantined)\n",
                static_cast<unsigned long long>(stats.queries),
                static_cast<unsigned long long>(stats.memoized),
                static_cast<unsigned long long>(stats.evaluated),
                static_cast<unsigned long long>(stats.coalesced),
                static_cast<unsigned long long>(stats.rejected),
                static_cast<unsigned long long>(stats.degraded),
                static_cast<unsigned long long>(stats.deadline_exceeded),
                static_cast<unsigned long long>(stats.eval_failures),
                static_cast<unsigned long long>(stats.quarantined));
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
