// hpacd — the HPAC-Offload tuning daemon.
//
// Serves tuning queries over a Unix-domain socket against a persistent
// result store: memoized tuples answer from an immutable store snapshot
// without touching the scheduler, missing tuples are admitted (bounded,
// per-connection fair) and evaluated on demand, with baselines cached per
// (benchmark, device). Point it at an existing campaign CSV and it serves
// everything the campaign already measured; every cold answer is appended
// to the same journal, so the store only ever grows.
//
// Examples:
//   hpacd --socket=/tmp/hpacd.sock --store=campaign.csv
//   hpacd --socket=/tmp/hpacd.sock --store=campaign.csv --max-pending=16
//
// A client connects, sends framed queries (see src/service/protocol.hpp),
// and may send a shutdown frame to stop the daemon gracefully; SIGINT and
// SIGTERM stop it too.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "harness/result_store.hpp"
#include "service/server.hpp"

using namespace hpac;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [--store=FILE] [--max-pending=N]\n"
               "          [--threads=N]\n\n"
               "--socket     Unix-domain socket to listen on (required)\n"
               "--store      result CSV to serve and append to (default: in-memory)\n"
               "--max-pending  admission bound for cold tuples (default 64)\n"
               "--threads    worker bound for cold evaluations (default: hardware)\n",
               argv0);
  std::exit(2);
}

std::uint64_t parse_count(const char* flag, const std::string& value, bool allow_zero) {
  long long parsed = 0;
  if (!strings::parse_int(value, parsed) || parsed < 0 || (!allow_zero && parsed == 0)) {
    std::fprintf(stderr, "error: %s needs a positive number, got \"%s\"\n", flag,
                 value.c_str());
    std::exit(2);
  }
  return static_cast<std::uint64_t>(parsed);
}

service::TuningServer* g_server = nullptr;

void on_signal(int) {
  // async-signal-safe enough for a demo daemon: stop() only touches our
  // own synchronization, and the handler fires once per signal.
  if (g_server != nullptr) g_server->stop();
}

}  // namespace

int main(int argc, char** argv) {
  service::TuningServer::Options options;
  std::string store_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string(key) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value("--socket")) options.socket_path = *v;
    else if (auto v2 = value("--store")) store_path = *v2;
    else if (auto v3 = value("--max-pending")) {
      options.service.max_pending =
          parse_count("--max-pending", *v3, /*allow_zero=*/false);
    } else if (auto v4 = value("--threads")) {
      options.service.num_threads = parse_count("--threads", *v4, /*allow_zero=*/true);
    } else {
      usage(argv[0]);
    }
  }
  if (options.socket_path.empty()) usage(argv[0]);

  try {
    harness::ResultStore store(store_path);
    if (store.persistent()) {
      std::printf("hpacd: store %s (%zu records restored, %zu duplicate rows dropped)\n",
                  store.path().c_str(), store.load_stats().restored,
                  store.load_stats().duplicates);
    } else {
      std::printf("hpacd: in-memory store (answers are not persisted)\n");
    }
    service::TuningServer server(store, options);
    g_server = &server;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    server.start();
    std::printf("hpacd: listening on %s\n", options.socket_path.c_str());
    std::fflush(stdout);
    server.wait();
    server.stop();
    const auto stats = server.service().stats();
    std::printf("hpacd: served %llu queries (%llu memoized, %llu evaluated, "
                "%llu coalesced, %llu rejected)\n",
                static_cast<unsigned long long>(stats.queries),
                static_cast<unsigned long long>(stats.memoized),
                static_cast<unsigned long long>(stats.evaluated),
                static_cast<unsigned long long>(stats.coalesced),
                static_cast<unsigned long long>(stats.rejected));
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
