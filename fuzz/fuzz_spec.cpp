#include "targets.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  return hpac::fuzz::run_spec(data, size);
}
