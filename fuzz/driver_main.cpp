// Standalone replay driver substituted for libFuzzer when the toolchain
// has no -fsanitize=fuzzer (gcc builds): runs every corpus file named on
// the command line (directories are walked) through the fuzz target once.
// No mutation — this is the "corpus stays green" half of the contract;
// actual fuzzing happens in the clang CI job.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

int replay_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read corpus input: %s\n", path.c_str());
    return 1;
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') continue;  // ignore libFuzzer flags
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path().string());
      }
    } else {
      inputs.push_back(arg);
    }
  }
  int failures = 0;
  for (const std::string& path : inputs) failures += replay_file(path);
  std::printf("replayed %zu corpus inputs\n", inputs.size());
  return failures == 0 ? 0 : 1;
}
