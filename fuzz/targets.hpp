#pragma once

#include <cstddef>
#include <cstdint>

/// The four untrusted-input parser entry points, packaged with their
/// round-trip invariant checks as plain functions. Each is the body of one
/// libFuzzer harness (fuzz_*.cpp wraps it as LLVMFuzzerTestOneInput), and
/// the same functions are linked into the regular test suite, which
/// replays the checked-in seed corpora through them in every build — so a
/// corpus input that once crashed a parser keeps failing loudly even in
/// configurations that cannot run libFuzzer at all.
///
/// Contract (inherited from libFuzzer): return 0, never crash, never
/// leak, and treat any parse failure as an expected, catchable error. The
/// functions abort() on a violated round-trip invariant so the fuzzer
/// registers it as a finding.
namespace hpac::fuzz {

/// service/protocol.cpp: frame + query/answer/stats body decoding. The
/// first input byte selects the decoder; the rest is the payload.
int run_protocol(const std::uint8_t* data, std::size_t size);

/// common/csv.cpp: CsvTable::load (first byte selects drop_torn_tail),
/// checking write/load round-trip stability of whatever is accepted.
int run_csv(const std::uint8_t* data, std::size_t size);

/// harness/lease_journal.cpp: LeaseJournal::inspect_bytes over a raw
/// journal image — torn tails, mangled checksums, glued lines.
int run_lease_journal(const std::uint8_t* data, std::size_t size);

/// pragma/parser.cpp + common/strings.cpp: the `#pragma approx` clause
/// grammar behind every --spec CLI flag, plus the int/double primitives
/// under flag parsing, checking parse(to_string(s)) canonicality.
int run_spec(const std::uint8_t* data, std::size_t size);

}  // namespace hpac::fuzz
