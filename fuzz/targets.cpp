#include "targets.hpp"

#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "harness/lease_journal.hpp"
#include "pragma/parser.hpp"
#include "service/protocol.hpp"

namespace hpac::fuzz {

namespace {

/// Inputs past this are truncated-by-ignoring: the parsers are all linear,
/// but a fuzzer exploring multi-megabyte inputs wastes its budget.
constexpr std::size_t kMaxInput = 1u << 20;

void check(bool invariant_held) {
  if (!invariant_held) std::abort();
}

std::string_view as_text(const std::uint8_t* data, std::size_t size) {
  return {reinterpret_cast<const char*>(data), size};
}

}  // namespace

int run_protocol(const std::uint8_t* data, std::size_t size) {
  if (size == 0 || size > kMaxInput) return 0;
  const std::string_view body = as_text(data + 1, size - 1);
  try {
    switch (data[0] & 3) {
      case 0: {
        const service::Frame frame = service::decode_frame(body);
        // encode_frame prepends the u32 length prefix decode_frame never
        // sees; strip it again for the round trip.
        const std::string encoded = service::encode_frame(frame.type, frame.body);
        const service::Frame again =
            service::decode_frame(std::string_view(encoded).substr(4));
        check(again.type == frame.type && again.body == frame.body);
        break;
      }
      case 1: {
        // Idempotence, not inversion: the decoder may ignore trailing
        // bytes, so encode(decode(x)) need not equal x — but it must be a
        // fixed point of decode-then-encode.
        const std::string once = service::encode_query(service::decode_query(body));
        check(once == service::encode_query(service::decode_query(once)));
        break;
      }
      case 2: {
        const std::string once = service::encode_answer(service::decode_answer(body));
        check(once == service::encode_answer(service::decode_answer(once)));
        break;
      }
      case 3: {
        const std::string once = service::encode_stats(service::decode_stats(body));
        check(once == service::encode_stats(service::decode_stats(once)));
        break;
      }
    }
  } catch (const service::ProtocolError&) {
    // Rejecting malformed input with a clean error is the contract.
  }
  return 0;
}

int run_csv(const std::uint8_t* data, std::size_t size) {
  if (size == 0 || size > kMaxInput) return 0;
  const bool drop_torn_tail = (data[0] & 1) != 0;
  std::istringstream in{std::string(as_text(data + 1, size - 1))};
  try {
    const CsvTable table = CsvTable::load(in, drop_torn_tail);
    // Whatever load accepted must re-serialize stably: write -> load ->
    // write is byte-identical (the property the result-store journal and
    // its canonical rewrite rely on).
    std::ostringstream first;
    table.write(first);
    std::istringstream again{first.str()};
    std::ostringstream second;
    CsvTable::load(again).write(second);
    check(first.str() == second.str());
  } catch (const Error&) {
  }
  return 0;
}

int run_lease_journal(const std::uint8_t* data, std::size_t size) {
  if (size > kMaxInput) return 0;
  using harness::LeaseJournal;
  const std::string_view bytes = as_text(data, size);
  // inspect_bytes is tolerant by contract: it never throws, it skips and
  // counts what it cannot parse.
  const LeaseJournal::Inspection out = LeaseJournal::inspect_bytes(bytes);
  check(out.tuples.size() == out.domain);
  check(out.valid_records ==
        out.claims + out.heartbeats + out.releases + out.reclaims);
  // Determinism: the same bytes replay to the same state.
  const LeaseJournal::Inspection again = LeaseJournal::inspect_bytes(bytes);
  check(again.valid_records == out.valid_records &&
        again.invalid_lines == out.invalid_lines &&
        again.last_seen == out.last_seen);
  return 0;
}

int run_spec(const std::uint8_t* data, std::size_t size) {
  if (size > kMaxInput) return 0;
  const std::string text(as_text(data, size));
  // The primitives under every CLI flag: must classify, never crash.
  long long integer = 0;
  double real = 0.0;
  (void)strings::parse_int(text, integer);
  (void)strings::parse_double(text, real);
  try {
    const pragma::ApproxSpec spec = pragma::parse_approx(text);
    // Canonical form is a fixed point: parse(to_string(s)) == s.
    const std::string canonical = spec.to_string();
    check(canonical == pragma::parse_approx(canonical).to_string());
  } catch (const Error&) {
  }
  return 0;
}

}  // namespace hpac::fuzz
