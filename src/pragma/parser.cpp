#include "pragma/parser.hpp"

#include <cctype>
#include <string>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hpac::pragma {

namespace {

/// Minimal recursive-descent scanner over the clause text.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void skip_space() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool at_end() {
    skip_space();
    return pos_ >= text_.size();
  }

  char peek() {
    skip_space();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool consume(char c) {
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  /// Identifier: [A-Za-z_][A-Za-z0-9_]*
  std::string ident() {
    skip_space();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Raw text up to the matching close paren, handling nested brackets and
  /// parens (array sections like input[i*5:5:N] contain ':' and '[').
  std::string balanced_until_close() {
    skip_space();
    std::string out;
    int depth = 0;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '(' || c == '[') ++depth;
      if (c == ')' || c == ']') {
        if (c == ')' && depth == 0) return std::string(strings::trim(out));
        --depth;
        if (depth < 0) fail("unbalanced brackets");
      }
      out.push_back(c);
      ++pos_;
    }
    fail("unterminated clause argument");
    return {};
  }

  /// Numeric token for colon-separated argument lists.
  std::string number_token() {
    skip_space();
    std::size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' || c == '+' ||
          c == 'e' || c == 'E' || c == 'f' || c == 'F') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected number");
    return std::string(text_.substr(start, pos_ - start));
  }

  [[noreturn]] void fail(const std::string& what) {
    throw ParseError(what + " at offset " + std::to_string(pos_) + " in \"" +
                     std::string(text_) + "\"");
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

int to_int(Scanner& s, const std::string& token, const char* what) {
  long long v = 0;
  if (!strings::parse_int(token, v)) s.fail(std::string("invalid integer for ") + what);
  return static_cast<int>(v);
}

double to_double(Scanner& s, const std::string& token, const char* what) {
  double v = 0;
  if (!strings::parse_double(token, v)) s.fail(std::string("invalid number for ") + what);
  return v;
}

void parse_memo(Scanner& s, ApproxSpec& spec) {
  if (spec.technique != Technique::kNone) s.fail("multiple techniques in one directive");
  s.expect('(');
  const std::string kind = strings::to_lower(s.ident());
  s.expect(':');
  if (kind == "out") {
    TafParams taf;
    taf.history_size = to_int(s, s.number_token(), "TAF history size");
    s.expect(':');
    taf.prediction_size = to_int(s, s.number_token(), "TAF prediction size");
    s.expect(':');
    taf.rsd_threshold = to_double(s, s.number_token(), "TAF RSD threshold");
    spec.technique = Technique::kTafMemo;
    spec.taf = taf;
  } else if (kind == "in") {
    IactParams iact;
    iact.table_size = to_int(s, s.number_token(), "iACT table size");
    s.expect(':');
    iact.threshold = to_double(s, s.number_token(), "iACT threshold");
    if (s.consume(':')) {
      iact.tables_per_warp = to_int(s, s.number_token(), "tables per warp");
    }
    spec.technique = Technique::kIactMemo;
    spec.iact = iact;
  } else {
    s.fail("memo kind must be 'in' or 'out'");
  }
  s.expect(')');
}

void parse_perfo(Scanner& s, ApproxSpec& spec) {
  if (spec.technique != Technique::kNone) s.fail("multiple techniques in one directive");
  s.expect('(');
  const std::string kind = strings::to_lower(s.ident());
  s.expect(':');
  PerfoParams perfo;
  if (kind == "small" || kind == "large") {
    perfo.kind = kind == "small" ? PerfoKind::kSmall : PerfoKind::kLarge;
    perfo.stride = to_int(s, s.number_token(), "perforation stride");
  } else if (kind == "ini" || kind == "fini") {
    perfo.kind = kind == "ini" ? PerfoKind::kIni : PerfoKind::kFini;
    perfo.fraction = to_double(s, s.number_token(), "perforation fraction");
  } else {
    s.fail("perfo kind must be small, large, ini or fini");
  }
  s.expect(')');
  spec.technique = Technique::kPerforation;
  spec.perfo = perfo;
}

void parse_level(Scanner& s, ApproxSpec& spec) {
  s.expect('(');
  const std::string level = strings::to_lower(s.ident());
  s.expect(')');
  if (level == "thread") {
    spec.level = HierarchyLevel::kThread;
  } else if (level == "warp") {
    spec.level = HierarchyLevel::kWarp;
  } else if (level == "team" || level == "block") {
    spec.level = HierarchyLevel::kBlock;
  } else {
    s.fail("level must be thread, warp or team");
  }
}

}  // namespace

ApproxSpec parse_approx(std::string_view text) {
  // Tolerate the full pragma line: strip an optional leading
  // "#pragma approx" so code can pass the directive verbatim.
  std::string_view body = strings::trim(text);
  for (std::string_view prefix : {std::string_view("#pragma"), std::string_view("approx")}) {
    std::string_view trimmed = strings::trim(body);
    if (trimmed.substr(0, prefix.size()) == prefix) {
      body = trimmed.substr(prefix.size());
    } else {
      body = trimmed;
    }
  }

  Scanner s(body);
  ApproxSpec spec;
  while (!s.at_end()) {
    const std::string clause = strings::to_lower(s.ident());
    if (clause == "memo") {
      parse_memo(s, spec);
    } else if (clause == "perfo") {
      parse_perfo(s, spec);
    } else if (clause == "level") {
      parse_level(s, spec);
    } else if (clause == "herded") {
      bool value = true;
      if (s.consume('(')) {
        value = to_int(s, s.number_token(), "herded flag") != 0;
        s.expect(')');
      }
      if (!spec.perfo) s.fail("herded(...) must follow a perfo(...) clause");
      spec.perfo->herded = value;
    } else if (clause == "in") {
      s.expect('(');
      spec.in_sections.push_back(s.balanced_until_close());
      s.expect(')');
    } else if (clause == "out") {
      s.expect('(');
      spec.out_sections.push_back(s.balanced_until_close());
      s.expect(')');
    } else if (clause == "replacement") {
      s.expect('(');
      const std::string policy = strings::to_lower(s.ident());
      s.expect(')');
      if (!spec.iact) s.fail("replacement(...) must follow a memo(in:...) clause");
      if (policy == "clock") {
        spec.iact->clock_replacement = true;
      } else if (policy == "rr" || policy == "roundrobin" || policy == "round_robin") {
        spec.iact->clock_replacement = false;
      } else {
        s.fail("replacement must be rr or clock");
      }
    } else if (clause == "label") {
      s.expect('(');
      spec.label = s.balanced_until_close();
      s.expect(')');
    } else if (clause == "none") {
      // explicit accurate-only directive; nothing to record
    } else {
      s.fail("unknown clause '" + clause + "'");
    }
  }
  spec.validate();
  return spec;
}

}  // namespace hpac::pragma
