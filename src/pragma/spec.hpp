#pragma once

#include <optional>
#include <string>
#include <vector>

namespace hpac::pragma {

/// Which approximation technique an `approx` directive selects.
enum class Technique {
  kNone,         ///< no approximation: accurate path only (baseline runs)
  kTafMemo,      ///< output memoization, `memo(out:...)` (TAF, paper §3.1.3)
  kIactMemo,     ///< input memoization, `memo(in:...)` (iACT, paper §3.1.4)
  kPerforation,  ///< loop perforation, `perfo(...)` (paper §3.1.5)
};

/// `level(...)` clause values (paper §3.2). `team` is accepted as a synonym
/// for block, matching the OpenMP teams terminology the paper uses.
enum class HierarchyLevel {
  kThread,  ///< each thread decides independently (default; CPU-HPAC behavior)
  kWarp,    ///< majority ballot across the warp
  kBlock,   ///< majority across the whole thread block (two-phase tally)
};

/// Perforation patterns (paper §2.3): `small` skips one of every M
/// iterations, `large` executes one of every M, `ini`/`fini` drop a
/// fraction of the first/last iterations.
enum class PerfoKind { kSmall, kLarge, kIni, kFini };

/// Parameters of `memo(out: hSize : pSize : rsdThreshold)`.
struct TafParams {
  int history_size = 3;       ///< hSize: sliding window length
  int prediction_size = 8;    ///< pSize: approximations per stable regime
  double rsd_threshold = 0.5; ///< activation when window RSD falls below
};

/// Parameters of `memo(in: tSize : threshold [: tablesPerWarp])`.
struct IactParams {
  int table_size = 4;        ///< entries per memoization table
  double threshold = 0.5;    ///< Euclidean-distance activation threshold
  int tables_per_warp = 0;   ///< 0 = default = warp size (private tables)
  /// `replacement(clock)` selects CLOCK eviction instead of the default
  /// round-robin (the paper implemented both and found no effect —
  /// footnote 3; `bench/ablation_iact_replacement` reproduces that).
  bool clock_replacement = false;
};

/// Parameters of `perfo(kind : value)`.
struct PerfoParams {
  PerfoKind kind = PerfoKind::kSmall;
  int stride = 2;          ///< M for small/large
  double fraction = 0.0;   ///< dropped fraction for ini/fini, in (0,1)
  /// GPU-herded perforation (paper §3.1.5): drop the same grid-stride
  /// steps in every thread, keeping warp control flow uniform. Defaults to
  /// on; `herded(0)` restores the CPU per-iteration pattern for ablations.
  bool herded = true;
};

/// A parsed and validated `#pragma approx ...` directive.
struct ApproxSpec {
  Technique technique = Technique::kNone;
  HierarchyLevel level = HierarchyLevel::kThread;
  std::optional<TafParams> taf;
  std::optional<IactParams> iact;
  std::optional<PerfoParams> perfo;
  /// Raw `in(...)` / `out(...)` array sections, kept for diagnostics and
  /// for checking technique requirements (TAF needs out; iACT needs both).
  std::vector<std::string> in_sections;
  std::vector<std::string> out_sections;
  /// Optional `label(...)` used as the key in the harness result database.
  std::string label;

  /// Throws hpac::ParseError when clauses are inconsistent (e.g. both memo
  /// kinds, perfo together with memo, missing required parameters).
  void validate() const;

  /// Canonical single-line clause text (parse(to_string(s)) == s).
  std::string to_string() const;
};

/// Human-readable names used across tables, CSV output and tests.
std::string technique_name(Technique t);
std::string hierarchy_name(HierarchyLevel level);
std::string perfo_kind_name(PerfoKind kind);

/// Inverse lookups, used when rehydrating persisted result databases.
/// Throw hpac::ParseError for names no *_name overload produces.
Technique technique_from_name(const std::string& name);
HierarchyLevel hierarchy_from_name(const std::string& name);

}  // namespace hpac::pragma
