#include "pragma/spec.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hpac::pragma {

std::string technique_name(Technique t) {
  switch (t) {
    case Technique::kNone: return "none";
    case Technique::kTafMemo: return "taf";
    case Technique::kIactMemo: return "iact";
    case Technique::kPerforation: return "perfo";
  }
  return "unknown";
}

std::string hierarchy_name(HierarchyLevel level) {
  switch (level) {
    case HierarchyLevel::kThread: return "thread";
    case HierarchyLevel::kWarp: return "warp";
    case HierarchyLevel::kBlock: return "block";
  }
  return "unknown";
}

Technique technique_from_name(const std::string& name) {
  if (name == "none") return Technique::kNone;
  if (name == "taf") return Technique::kTafMemo;
  if (name == "iact") return Technique::kIactMemo;
  if (name == "perfo") return Technique::kPerforation;
  throw ParseError("unknown technique name: " + name);
}

HierarchyLevel hierarchy_from_name(const std::string& name) {
  if (name == "thread") return HierarchyLevel::kThread;
  if (name == "warp") return HierarchyLevel::kWarp;
  if (name == "block") return HierarchyLevel::kBlock;
  throw ParseError("unknown hierarchy name: " + name);
}

std::string perfo_kind_name(PerfoKind kind) {
  switch (kind) {
    case PerfoKind::kSmall: return "small";
    case PerfoKind::kLarge: return "large";
    case PerfoKind::kIni: return "ini";
    case PerfoKind::kFini: return "fini";
  }
  return "unknown";
}

void ApproxSpec::validate() const {
  const int selected = (taf ? 1 : 0) + (iact ? 1 : 0) + (perfo ? 1 : 0);
  if (technique == Technique::kNone) {
    if (selected != 0) throw ParseError("technique is none but parameters are present");
    return;
  }
  if (selected != 1) {
    throw ParseError("exactly one approximation technique must be specified");
  }
  switch (technique) {
    case Technique::kTafMemo: {
      if (!taf) throw ParseError("memo(out) directive lacks TAF parameters");
      if (taf->history_size < 1) throw ParseError("TAF history size must be >= 1");
      if (taf->prediction_size < 1) throw ParseError("TAF prediction size must be >= 1");
      if (taf->rsd_threshold < 0) throw ParseError("TAF RSD threshold must be >= 0");
      break;
    }
    case Technique::kIactMemo: {
      if (!iact) throw ParseError("memo(in) directive lacks iACT parameters");
      if (iact->table_size < 1) throw ParseError("iACT table size must be >= 1");
      if (iact->threshold < 0) throw ParseError("iACT threshold must be >= 0");
      if (iact->tables_per_warp < 0) throw ParseError("tables per warp must be >= 0");
      if (in_sections.empty()) {
        throw ParseError("memo(in) requires an in(...) clause declaring region inputs");
      }
      break;
    }
    case Technique::kPerforation: {
      if (!perfo) throw ParseError("perfo directive lacks parameters");
      if (perfo->kind == PerfoKind::kSmall || perfo->kind == PerfoKind::kLarge) {
        if (perfo->stride < 2) throw ParseError("perforation stride must be >= 2");
      } else {
        if (!(perfo->fraction > 0.0 && perfo->fraction < 1.0)) {
          throw ParseError("ini/fini perforation fraction must lie in (0,1)");
        }
      }
      if (level != HierarchyLevel::kThread) {
        throw ParseError("level(...) applies to memoization activation, not perforation");
      }
      break;
    }
    case Technique::kNone: break;  // handled above
  }
}

std::string ApproxSpec::to_string() const {
  std::ostringstream os;
  switch (technique) {
    case Technique::kNone:
      os << "none";
      break;
    case Technique::kTafMemo:
      os << "memo(out:" << taf->history_size << ":" << taf->prediction_size << ":"
         << taf->rsd_threshold << ")";
      break;
    case Technique::kIactMemo:
      os << "memo(in:" << iact->table_size << ":" << iact->threshold;
      if (iact->tables_per_warp > 0) os << ":" << iact->tables_per_warp;
      os << ")";
      if (iact->clock_replacement) os << " replacement(clock)";
      break;
    case Technique::kPerforation:
      os << "perfo(" << perfo_kind_name(perfo->kind) << ":";
      if (perfo->kind == PerfoKind::kSmall || perfo->kind == PerfoKind::kLarge) {
        os << perfo->stride;
      } else {
        os << perfo->fraction;
      }
      os << ")";
      if (!perfo->herded) os << " herded(0)";
      break;
  }
  if (technique != Technique::kPerforation && technique != Technique::kNone &&
      level != HierarchyLevel::kThread) {
    os << " level(" << hierarchy_name(level) << ")";
  }
  for (const auto& section : in_sections) os << " in(" << section << ")";
  for (const auto& section : out_sections) os << " out(" << section << ")";
  if (!label.empty()) os << " label(" << label << ")";
  return os.str();
}

}  // namespace hpac::pragma
