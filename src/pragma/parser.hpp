#pragma once

#include <string_view>

#include "pragma/spec.hpp"

namespace hpac::pragma {

/// Parse the clause list of an HPAC-Offload `approx` directive.
///
/// Accepted grammar (paper §3.2, Figures 2 and 5):
///
///   directive := clause*
///   clause    := 'memo' '(' memo-args ')'
///              | 'perfo' '(' perfo-args ')'
///              | 'level' '(' ('thread'|'warp'|'team'|'block') ')'
///              | 'herded' [ '(' ('0'|'1') ')' ]
///              | 'in' '(' sections ')'
///              | 'out' '(' sections ')'
///              | 'label' '(' ident ')'
///              | 'none'
///   memo-args := 'out' ':' hSize ':' pSize ':' rsdThreshold
///              | 'in' ':' tSize ':' threshold [ ':' tablesPerWarp ]
///   perfo-args:= ('small'|'large') ':' stride
///              | ('ini'|'fini') ':' fraction
///
/// Numeric literals accept a trailing `f` as in the paper's examples
/// (`0.5f`). The leading `#pragma approx` text is optional and skipped if
/// present. Throws hpac::ParseError with a position-annotated message on
/// malformed input; the returned spec has been validate()d.
ApproxSpec parse_approx(std::string_view text);

}  // namespace hpac::pragma
