#pragma once

#include <memory>
#include <string>
#include <vector>

#include "harness/benchmark.hpp"

namespace hpac::apps {

/// Names of all reproduced benchmarks (Table 1), in the paper's order.
std::vector<std::string> benchmark_names();

/// Whether `name` is a registered benchmark, without constructing its
/// (potentially large) synthetic workload — used by campaign planning to
/// reject bad plans before any work starts.
bool is_benchmark(const std::string& name);

/// Construct a benchmark by name with its default (bench-scale) workload.
/// Throws hpac::ConfigError for unknown names.
std::unique_ptr<harness::Benchmark> make_benchmark(const std::string& name);

}  // namespace hpac::apps
