#include "apps/leukocyte.hpp"

#include <cmath>

#include "apps/support.hpp"
#include "common/rng.hpp"

namespace hpac::apps {

Leukocyte::Leukocyte() : Leukocyte(Params{}) {}

Leukocyte::Leukocyte(Params params) : params_(params) {
  Xoshiro256 rng(params_.seed);
  const int s = params_.patch;
  image_.resize(num_pixels(), 0.0);
  true_center_.resize(static_cast<std::size_t>(params_.num_cells) * 2);
  for (int c = 0; c < params_.num_cells; ++c) {
    // An elliptical cell boundary near the patch center: bright ring in
    // the gradient-magnitude image, like the GICOV stage's detections.
    const double cr = s / 2.0 + rng.uniform(-2.0, 2.0);
    const double cc = s / 2.0 + rng.uniform(-2.0, 2.0);
    const double ra = rng.uniform(4.0, 7.0);
    const double rb = rng.uniform(4.0, 7.0);
    true_center_[static_cast<std::size_t>(c) * 2 + 0] = cr;
    true_center_[static_cast<std::size_t>(c) * 2 + 1] = cc;
    for (int i = 0; i < s; ++i) {
      for (int j = 0; j < s; ++j) {
        const double dr = (i - cr) / ra;
        const double dc = (j - cc) / rb;
        const double ring = std::exp(-8.0 * std::pow(std::sqrt(dr * dr + dc * dc) - 1.0, 2));
        const double noise = 0.05 * rng.uniform();
        image_[(static_cast<std::size_t>(c) * s + static_cast<std::size_t>(i)) * s +
               static_cast<std::size_t>(j)] = ring + noise;
      }
    }
  }
}

std::uint64_t Leukocyte::num_pixels() const {
  return static_cast<std::uint64_t>(params_.num_cells) * params_.patch * params_.patch;
}

harness::RunOutput Leukocyte::run(const pragma::ApproxSpec& spec,
                                  std::uint64_t items_per_thread,
                                  const sim::DeviceConfig& device) {
  const int s = params_.patch;
  const std::uint64_t n = num_pixels();
  const double mu = params_.mu;
  const double lambda = params_.lambda;

  offload::Device dev(device);
  approx::RegionExecutor executor(device);
  harness::RunOutput output;

  // IMGVF field, double-buffered across iterations.
  std::vector<double> field(image_);
  std::vector<double> next(field);

  offload::MapScope map_img(dev, n * sizeof(double), offload::MapDir::kTo);
  offload::MapScope map_field(dev, n * sizeof(double), offload::MapDir::kToFrom);

  const auto decode = [s](std::uint64_t item) {
    const int pixel = static_cast<int>(item % static_cast<std::uint64_t>(s * s));
    const auto cell = static_cast<int>(item / static_cast<std::uint64_t>(s * s));
    return std::array<int, 3>{cell, pixel / s, pixel % s};
  };
  const auto at = [this, s, &field](int cell, int i, int j) -> double {
    i = std::clamp(i, 0, s - 1);
    j = std::clamp(j, 0, s - 1);
    return field[(static_cast<std::size_t>(cell) * s + static_cast<std::size_t>(i)) * s +
                 static_cast<std::size_t>(j)];
  };

  approx::RegionBinding imgvf;
  imgvf.name = "leukocyte.imgvf";
  imgvf.in_dims = 6;  // pixel value, image value, 4-neighborhood
  imgvf.out_dims = 1;
  imgvf.in_bytes = 6 * sizeof(double);
  imgvf.out_bytes = sizeof(double);
  const auto gather_one = [&](std::uint64_t item, double* in) {
    const auto [cell, i, j] = decode(item);
    in[0] = at(cell, i, j);
    in[1] = image_[item];
    in[2] = at(cell, i - 1, j);
    in[3] = at(cell, i + 1, j);
    in[4] = at(cell, i, j - 1);
    in[5] = at(cell, i, j + 1);
  };
  bind_gather(imgvf, gather_one);
  const auto imgvf_one = [&](std::uint64_t item, double* out) {
    const auto [cell, i, j] = decode(item);
    const double val = at(cell, i, j);
    // Heaviside-weighted neighbor flow (the IMGVF kernel's directional
    // smoothing), plus the data term pulling toward strong gradients.
    double flow = 0.0;
    const double nbs[4] = {at(cell, i - 1, j), at(cell, i + 1, j), at(cell, i, j - 1),
                           at(cell, i, j + 1)};
    for (double nb : nbs) {
      const double d = nb - val;
      const double h = 1.0 / (1.0 + std::exp(-5.0 * d));  // smoothed heaviside
      flow += h * d;
    }
    const double img = image_[item];
    out[0] = val + mu * flow - lambda * (val - img) * img * img;
  };
  bind_accurate(imgvf, imgvf_one);
  // Four heaviside evaluations (exp) dominate: ~30 cycles each.
  bind_constant_cost(imgvf, 140.0);
  const auto commit_one = [&next](std::uint64_t item, const double* out) {
    next[item] = out[0];
  };
  bind_commit(imgvf, commit_one);
  imgvf.independent_items = true;  // reads `field`, writes only next[item]
  // `next` is captured by reference: the helper resolves the live buffer
  // at audit time, so the swap between launches keeps extents truthful.
  bind_row_commit_extents(imgvf, next, 1);
  // The 5-point stencil reads the *previous* field (ping-ponged, hence the
  // reference capture) plus the pixel's image value — all disjoint from
  // the `next` rows this launch writes, which the auditor's read/write
  // overlap check can now verify instead of taking on faith.
  imgvf.read_extents = [this, s, &field, decode](std::uint64_t item,
                                                 approx::audit::ExtentSink& sink) {
    const auto [cell, i, j] = decode(item);
    const auto point = [&](int row, int col) {
      row = std::clamp(row, 0, s - 1);
      col = std::clamp(col, 0, s - 1);
      const std::size_t index =
          (static_cast<std::size_t>(cell) * s + static_cast<std::size_t>(row)) * s +
          static_cast<std::size_t>(col);
      sink.reads(field.data() + index, sizeof(double));
    };
    sink.reads(image_.data() + item, sizeof(double));
    point(i, j);
    point(i - 1, j);
    point(i + 1, j);
    point(i, j - 1);
    point(i, j + 1);
  };

  const sim::LaunchConfig launch =
      sim::launch_for_items_per_thread(n, items_per_thread, threads_per_team());

  for (int iter = 0; iter < params_.iterations; ++iter) {
    launch_kernel(dev, executor, spec, imgvf, n, launch, &output.stats);
    std::swap(field, next);
    next = field;  // perforated pixels keep their previous value next round
  }

  // Host: cell locations = intensity centroids of the converged field.
  output.qoi.reserve(static_cast<std::size_t>(params_.num_cells) * 2);
  for (int c = 0; c < params_.num_cells; ++c) {
    double wsum = 0, rsum = 0, csum = 0;
    for (int i = 0; i < s; ++i) {
      for (int j = 0; j < s; ++j) {
        const double w =
            field[(static_cast<std::size_t>(c) * s + static_cast<std::size_t>(i)) * s +
                  static_cast<std::size_t>(j)];
        wsum += w;
        rsum += w * i;
        csum += w * j;
      }
    }
    output.qoi.push_back(wsum > 0 ? rsum / wsum : 0.0);
    output.qoi.push_back(wsum > 0 ? csum / wsum : 0.0);
  }
  dev.record_host(static_cast<double>(n) * 3.0 / 10e9);
  output.timeline = dev.timeline();
  output.iterations = params_.iterations;
  return output;
}

}  // namespace hpac::apps
