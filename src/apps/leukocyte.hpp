#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "harness/benchmark.hpp"

namespace hpac::apps {

/// Leukocyte (Rodinia): tracks rolling white blood cells in video
/// microscopy (Table 1). The tracking stage iteratively solves an IMGVF
/// (image gradient vector flow) field over a patch around each detected
/// cell; the paper approximates the per-pixel IMGVF matrix update.
///
/// The workload is synthetic video microscopy: per cell, a gradient-
/// magnitude patch of an elliptical cell boundary plus noise, generated
/// deterministically. QoI: the final location (intensity centroid of the
/// converged IMGVF field) of each leukocyte (MAPE over coordinates).
class Leukocyte : public harness::Benchmark {
 public:
  struct Params {
    int num_cells = 16;
    int patch = 24;        ///< square patch side, pixels
    int iterations = 40;   ///< IMGVF solver iterations
    double mu = 0.2;       ///< smoothing weight
    double lambda = 0.5;   ///< data-term weight
    std::uint64_t seed = 0x1e0cu;
  };

  Leukocyte();
  explicit Leukocyte(Params params);

  std::string name() const override { return "leukocyte"; }
  std::uint64_t default_items_per_thread() const override { return 1; }

  harness::RunOutput run(const pragma::ApproxSpec& spec, std::uint64_t items_per_thread,
                         const sim::DeviceConfig& device) override;

  std::unique_ptr<harness::Benchmark> fork() const override {
    return std::make_unique<Leukocyte>(*this);
  }

  std::uint64_t num_pixels() const;
  const Params& params() const { return params_; }

 private:
  Params params_;
  std::vector<double> image_;        ///< gradient-magnitude patches, cell-major
  std::vector<double> true_center_;  ///< per cell (row, col) of the generated ellipse
};

}  // namespace hpac::apps
