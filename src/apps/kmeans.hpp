#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "harness/benchmark.hpp"

namespace hpac::apps {

/// K-Means (Rodinia): iterative Lloyd clustering (Table 1).
///
/// The approximated kernel computes each observation's distance to the
/// current centroids and assigns the nearest cluster. Memoized assignments
/// herd observations into their previous cluster, which accelerates the
/// convergence criterion (no observation changed cluster) — the paper's
/// Figure 12c shows time speedup is almost entirely convergence speedup.
///
/// QoI: the cluster id of each observation; error metric: MCR.
class KMeans : public harness::Benchmark {
 public:
  struct Params {
    std::uint64_t num_points = 1u << 15;
    int dims = 8;
    int clusters = 8;
    int max_iterations = 60;
    std::uint64_t seed = 0x5eedu;
  };

  KMeans();
  explicit KMeans(Params params);

  std::string name() const override { return "kmeans"; }
  harness::ErrorMetric error_metric() const override { return harness::ErrorMetric::kMcr; }
  std::uint64_t default_items_per_thread() const override { return 1; }

  harness::RunOutput run(const pragma::ApproxSpec& spec, std::uint64_t items_per_thread,
                         const sim::DeviceConfig& device) override;

  std::unique_ptr<harness::Benchmark> fork() const override {
    return std::make_unique<KMeans>(*this);
  }

  const Params& params() const { return params_; }

 private:
  Params params_;
  std::vector<double> points_;  ///< num_points x dims, row-major
};

}  // namespace hpac::apps
