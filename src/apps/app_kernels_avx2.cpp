// AVX2 application kernels (256-bit lanes). Compiled with -mavx2 only
// when CMake's ISA probe passes (HPAC_SIMD_COMPILED_AVX2); reached
// through the dispatchers in simd_kernels.cpp behind the runtime cpuid
// gate. Deliberately no -mfma: lanes must round exactly like the scalar
// build's separate mul and add.

#include "apps/simd_kernels.hpp"

#if defined(HPAC_SIMD_COMPILED_AVX2) && (defined(__x86_64__) || defined(_M_X64))

#include <immintrin.h>

#include "apps/app_kernels_impl.hpp"

namespace hpac::apps::kernels {

namespace {

struct Avx2Ops {
  static constexpr int kWidth = 4;
  using V = __m256d;
  static V broadcast(double x) { return _mm256_set1_pd(x); }
  static V loadu(const double* p) { return _mm256_loadu_pd(p); }
  static void storeu(double* p, V a) { _mm256_storeu_pd(p, a); }
  static V add(V a, V b) { return _mm256_add_pd(a, b); }
  static V sub(V a, V b) { return _mm256_sub_pd(a, b); }
  static V mul(V a, V b) { return _mm256_mul_pd(a, b); }
  static V div(V a, V b) { return _mm256_div_pd(a, b); }
  static V sqrt(V a) { return _mm256_sqrt_pd(a); }
  static V abs(V a) { return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a); }
  static V neg(V a) { return _mm256_xor_pd(a, _mm256_set1_pd(-0.0)); }
  static V select_lt_zero(V x, V if_lt, V if_ge) {
    const V m = _mm256_cmp_pd(x, _mm256_setzero_pd(), _CMP_LT_OQ);
    return _mm256_blendv_pd(if_ge, if_lt, m);
  }
};

}  // namespace

BlackscholesBatchFn blackscholes_batch_avx2() { return &blackscholes_batch_impl<Avx2Ops>; }
BinomialInductFn binomial_induct_avx2() { return &binomial_induct_impl<Avx2Ops>; }

}  // namespace hpac::apps::kernels

#else

namespace hpac::apps::kernels {

BlackscholesBatchFn blackscholes_batch_avx2() { return nullptr; }
BinomialInductFn binomial_induct_avx2() { return nullptr; }

}  // namespace hpac::apps::kernels

#endif
