#pragma once

#include <cstdint>

#include "approx/region.hpp"
#include "offload/device.hpp"
#include "offload/target.hpp"
#include "pragma/spec.hpp"
#include "sim/launch.hpp"

namespace hpac::apps {

/// Accumulate the counters of one kernel launch into an aggregate (apps
/// launch their approximated kernels many times per run).
inline void accumulate_stats(approx::ExecStats& total, const approx::ExecStats& part) {
  total.region_invocations += part.region_invocations;
  total.accurate_items += part.accurate_items;
  total.approx_items += part.approx_items;
  total.skipped_items += part.skipped_items;
  total.forced_approx += part.forced_approx;
  total.forced_accurate += part.forced_accurate;
  total.iact_hits += part.iact_hits;
  total.taf_stable_entries += part.taf_stable_entries;
  if (part.shared_bytes_per_block > total.shared_bytes_per_block) {
    total.shared_bytes_per_block = part.shared_bytes_per_block;
  }
}

/// Launch one kernel: adds its modeled time to the device timeline and,
/// when `aggregate` is given, folds the approximation counters into it.
inline approx::RegionReport launch_kernel(offload::Device& device,
                                          const approx::RegionExecutor& executor,
                                          const pragma::ApproxSpec& spec,
                                          const approx::RegionBinding& binding,
                                          std::uint64_t n, const sim::LaunchConfig& launch,
                                          approx::ExecStats* aggregate = nullptr) {
  approx::RegionReport report =
      offload::target_parallel_for(device, executor, spec, binding, n, launch);
  if (aggregate != nullptr) accumulate_stats(*aggregate, report.stats);
  return report;
}

/// The accurate-only spec used for un-annotated kernels.
inline const pragma::ApproxSpec& accurate_spec() {
  static const pragma::ApproxSpec spec;
  return spec;
}

}  // namespace hpac::apps
