#pragma once

#include <cstdint>

#include "approx/region.hpp"
#include "offload/device.hpp"
#include "offload/target.hpp"
#include "pragma/spec.hpp"
#include "sim/launch.hpp"
#include "sim/warp.hpp"

namespace hpac::apps {

// --- batched-binding builders ---------------------------------------------
//
// Lift a per-item callable over the active lanes of a warp, in ascending
// lane order, with lane l's packed data at offset l * dims — the
// RegionBinding batched-form contract. Apps define each region operation
// once as `fn(item, double* data)` and hand it to both the scalar
// wrapper and one of these builders, so the two forms cannot drift.

/// `gather_batch` from `fn(item, double* in)`.
template <typename Fn>
auto gather_lanes(Fn fn, int in_dims) {
  return [fn, in_dims](std::uint64_t first_item, sim::LaneMask lanes, std::span<double> in) {
    sim::for_each_lane(lanes, [&](int lane) {
      fn(first_item + static_cast<std::uint64_t>(lane),
         in.data() + static_cast<std::size_t>(lane) * static_cast<std::size_t>(in_dims));
    });
  };
}

/// `accurate_batch` from `fn(item, double* out)` (for regions that read
/// their own data and ignore the gathered inputs, as all bundled apps do).
template <typename Fn>
auto accurate_lanes(Fn fn, int out_dims) {
  return [fn, out_dims](std::uint64_t first_item, sim::LaneMask lanes, std::span<const double>,
                        std::span<double> out) {
    sim::for_each_lane(lanes, [&](int lane) {
      fn(first_item + static_cast<std::uint64_t>(lane),
         out.data() + static_cast<std::size_t>(lane) * static_cast<std::size_t>(out_dims));
    });
  };
}

/// `commit_batch` from `fn(item, const double* out)`.
template <typename Fn>
auto commit_lanes(Fn fn, int out_dims) {
  return [fn, out_dims](std::uint64_t first_item, sim::LaneMask lanes,
                        std::span<const double> out) {
    sim::for_each_lane(lanes, [&](int lane) {
      fn(first_item + static_cast<std::uint64_t>(lane),
         out.data() + static_cast<std::size_t>(lane) * static_cast<std::size_t>(out_dims));
    });
  };
}

/// `accurate_cost_batch` for regions whose accurate path costs the same
/// for every item (answers the warp-max query in O(1)).
inline auto constant_cost_lanes(double cycles) {
  return [cycles](std::uint64_t, sim::LaneMask) { return cycles; };
}

// Set both forms of one region operation from a single per-item callable
// (`fn(item, double* data)`). Dims must be assigned on the binding before
// binding the operations. Regions with a genuinely custom shape (e.g.
// minife's data-dependent batched cost) set the members directly.

template <typename Fn>
void bind_gather(approx::RegionBinding& binding, Fn fn) {
  binding.gather = [fn](std::uint64_t i, std::span<double> in) { fn(i, in.data()); };
  binding.gather_batch = gather_lanes(fn, binding.in_dims);
}

template <typename Fn>
void bind_accurate(approx::RegionBinding& binding, Fn fn) {
  binding.accurate = [fn](std::uint64_t i, std::span<const double>, std::span<double> out) {
    fn(i, out.data());
  };
  binding.accurate_batch = accurate_lanes(fn, binding.out_dims);
}

template <typename Fn>
void bind_commit(approx::RegionBinding& binding, Fn fn) {
  binding.commit = [fn](std::uint64_t i, std::span<const double> out) { fn(i, out.data()); };
  binding.commit_batch = commit_lanes(fn, binding.out_dims);
}

inline void bind_constant_cost(approx::RegionBinding& binding, double cycles) {
  binding.accurate_cost = [cycles](std::uint64_t) { return cycles; };
  binding.accurate_cost_batch = constant_cost_lanes(cycles);
}

/// `commit_extents` for the ubiquitous dense-row commit layout: item i's
/// commit writes the `dims` consecutive elements at `target[i * dims]`.
/// The container is captured by reference, so ping-pong buffers that are
/// swapped between launches (leukocyte) resolve to the live buffer at
/// audit time. Bindings with a non-row shape (several arrays, commuting
/// counters) set `commit_extents` directly.
template <typename T>
void bind_row_commit_extents(approx::RegionBinding& binding, const std::vector<T>& target,
                             int dims) {
  binding.commit_extents = [&target, dims](std::uint64_t item,
                                           approx::audit::ExtentSink& sink) {
    sink.writes(target.data() + item * static_cast<std::size_t>(dims),
                static_cast<std::size_t>(dims) * sizeof(T));
  };
}

/// Accumulate the counters of one kernel launch into an aggregate (apps
/// launch their approximated kernels many times per run).
inline void accumulate_stats(approx::ExecStats& total, const approx::ExecStats& part) {
  total.region_invocations += part.region_invocations;
  total.accurate_items += part.accurate_items;
  total.approx_items += part.approx_items;
  total.skipped_items += part.skipped_items;
  total.forced_approx += part.forced_approx;
  total.forced_accurate += part.forced_accurate;
  total.iact_hits += part.iact_hits;
  total.taf_stable_entries += part.taf_stable_entries;
  if (part.shared_bytes_per_block > total.shared_bytes_per_block) {
    total.shared_bytes_per_block = part.shared_bytes_per_block;
  }
  if (part.host_shards > total.host_shards) total.host_shards = part.host_shards;
  if (part.simd_level > total.simd_level) total.simd_level = part.simd_level;
  total.conflicts.insert(total.conflicts.end(), part.conflicts.begin(), part.conflicts.end());
}

/// Launch one kernel: adds its modeled time to the device timeline and,
/// when `aggregate` is given, folds the approximation counters into it.
inline approx::RegionReport launch_kernel(offload::Device& device,
                                          const approx::RegionExecutor& executor,
                                          const pragma::ApproxSpec& spec,
                                          const approx::RegionBinding& binding,
                                          std::uint64_t n, const sim::LaunchConfig& launch,
                                          approx::ExecStats* aggregate = nullptr) {
  approx::RegionReport report =
      offload::target_parallel_for(device, executor, spec, binding, n, launch);
  if (aggregate != nullptr) accumulate_stats(*aggregate, report.stats);
  return report;
}

/// The accurate-only spec used for un-annotated kernels.
inline const pragma::ApproxSpec& accurate_spec() {
  static const pragma::ApproxSpec spec;
  return spec;
}

}  // namespace hpac::apps
