#include "apps/lavamd.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "apps/support.hpp"
#include "common/rng.hpp"

namespace hpac::apps {

namespace {
constexpr double kBoxSize = 1.0;
constexpr double kDt = 1e-3;  ///< relocation step after the force solve
}  // namespace

LavaMd::LavaMd() : LavaMd(Params{}) {}

LavaMd::LavaMd(Params params) : params_(params) {
  Xoshiro256 rng(params_.seed);
  const int nb = params_.boxes_per_dim;
  const int ppb = params_.particles_per_box;
  const std::uint64_t n = num_particles();
  pos_.resize(n * 3);
  charge_.resize(n);
  std::uint64_t p = 0;
  for (int bz = 0; bz < nb; ++bz) {
    for (int by = 0; by < nb; ++by) {
      for (int bx = 0; bx < nb; ++bx) {
        for (int i = 0; i < ppb; ++i, ++p) {
          pos_[p * 3 + 0] = (bx + rng.uniform()) * kBoxSize;
          pos_[p * 3 + 1] = (by + rng.uniform()) * kBoxSize;
          pos_[p * 3 + 2] = (bz + rng.uniform()) * kBoxSize;
          charge_[p] = rng.uniform(0.1, 1.0);
        }
      }
    }
  }
}

std::uint64_t LavaMd::num_particles() const {
  const auto nb = static_cast<std::uint64_t>(params_.boxes_per_dim);
  return nb * nb * nb * static_cast<std::uint64_t>(params_.particles_per_box);
}

harness::RunOutput LavaMd::run(const pragma::ApproxSpec& spec, std::uint64_t items_per_thread,
                               const sim::DeviceConfig& device) {
  // The paper approximates "the force calculation for neighboring boxes":
  // one region invocation accumulates the contribution of *one neighbor
  // box* to one particle. The item space is neighbor-major
  // (item = j * P + particle) with the 27 neighbor offsets sorted by
  // distance, so a thread's successive invocations are the same
  // particle's contributions from increasingly distant boxes — decaying,
  // often negligible values with strong temporal locality.
  const std::uint64_t n_particles = num_particles();
  const int nb = params_.boxes_per_dim;
  const int ppb = params_.particles_per_box;
  const double a2 = params_.alpha * params_.alpha;
  constexpr int kNeighbors = 27;
  const std::uint64_t n_items = n_particles * kNeighbors;

  // Neighbor offsets sorted by center distance: own box first.
  std::array<std::array<int, 3>, kNeighbors> offsets;
  {
    int idx = 0;
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) offsets[static_cast<std::size_t>(idx++)] = {dx, dy, dz};
      }
    }
    // Far-to-near: a thread's invocation sequence starts with the
    // negligible (cutoff-zeroed) far boxes and ends at the home box, so
    // the TAF window stabilizes on the zero tail and deactivates when the
    // signal arrives.
    std::sort(offsets.begin(), offsets.end(), [](const auto& a, const auto& b) {
      const int da = a[0] * a[0] + a[1] * a[1] + a[2] * a[2];
      const int db = b[0] * b[0] + b[1] * b[1] + b[2] * b[2];
      return da > db;
    });
  }

  offload::Device dev(device);
  approx::RegionExecutor executor(device);
  harness::RunOutput output;

  std::vector<double> potential(n_particles, 0.0);
  std::vector<double> force(n_particles * 3, 0.0);
  std::vector<double> new_pos(pos_);

  offload::MapScope map_in(dev, n_particles * 4 * sizeof(double), offload::MapDir::kTo);
  offload::MapScope map_out(dev, n_particles * 7 * sizeof(double), offload::MapDir::kFrom);

  const auto box_coords = [nb, ppb](std::uint64_t particle) {
    const auto box = static_cast<int>(particle / static_cast<std::uint64_t>(ppb));
    return std::array<int, 3>{box % nb, (box / nb) % nb, box / (nb * nb)};
  };

  // --- force-contribution kernel (approximated) --------------------------
  approx::RegionBinding force_binding;
  force_binding.name = "lavamd.force";
  force_binding.in_dims = 4;   // position relative to the neighbor box + charge
  force_binding.out_dims = 4;  // potential + force contribution
  // Traffic: each invocation streams the neighbor box's particles — the
  // warp's lanes share a home box, so the load is a broadcast of about
  // ppb * 32 B per warp, i.e. ~24 B per lane. The accumulator lives in
  // registers and is written back once per particle (charged by the
  // relocation kernel), so the region itself stores nothing.
  force_binding.in_bytes = 24;
  force_binding.out_bytes = 0;
  const auto particle_of = [n_particles](std::uint64_t item) { return item % n_particles; };
  const auto neighbor_of = [n_particles](std::uint64_t item) {
    return static_cast<int>(item / n_particles);
  };
  const auto gather_one = [&](std::uint64_t item, double* in) {
    const std::uint64_t i = particle_of(item);
    const auto [bx, by, bz] = box_coords(i);
    const auto& off = offsets[static_cast<std::size_t>(neighbor_of(item))];
    in[0] = pos_[i * 3 + 0] - (bx + off[0] + 0.5) * kBoxSize;
    in[1] = pos_[i * 3 + 1] - (by + off[1] + 0.5) * kBoxSize;
    in[2] = pos_[i * 3 + 2] - (bz + off[2] + 0.5) * kBoxSize;
    in[3] = charge_[i];
  };
  bind_gather(force_binding, gather_one);
  const auto force_one = [&](std::uint64_t item, double* out) {
    const std::uint64_t i = particle_of(item);
    const auto& off = offsets[static_cast<std::size_t>(neighbor_of(item))];
    const auto [bx, by, bz] = box_coords(i);
    const int nx = bx + off[0], ny = by + off[1], nz = bz + off[2];
    out[0] = out[1] = out[2] = out[3] = 0.0;
    if (nx < 0 || ny < 0 || nz < 0 || nx >= nb || ny >= nb || nz >= nb) return;
    const double xi = pos_[i * 3 + 0];
    const double yi = pos_[i * 3 + 1];
    const double zi = pos_[i * 3 + 2];
    const std::uint64_t first =
        static_cast<std::uint64_t>((nz * nb + ny) * nb + nx) * static_cast<std::uint64_t>(ppb);
    double v = 0, fx = 0, fy = 0, fz = 0;
    // Standard MD cutoff: pairs beyond kBoxSize contribute exactly zero.
    // The SIMD loop still evaluates every pair (no divergent early exit),
    // so the cost model charges the full box — but distant boxes produce
    // exact-zero outputs, the near-constant tail TAF memoizes at ~zero
    // error (the paper's 2.98x @ 0.133% regime).
    const double cutoff2 = kBoxSize * kBoxSize;
    for (int j = 0; j < ppb; ++j) {
      const std::uint64_t q = first + static_cast<std::uint64_t>(j);
      if (q == i) continue;
      const double rx = pos_[q * 3 + 0] - xi;
      const double ry = pos_[q * 3 + 1] - yi;
      const double rz = pos_[q * 3 + 2] - zi;
      const double r2 = rx * rx + ry * ry + rz * rz;
      if (r2 >= cutoff2) continue;
      const double w = charge_[q] * std::exp(-r2 / a2);
      v += w;
      fx += w * rx;
      fy += w * ry;
      fz += w * rz;
    }
    out[0] = v;
    out[1] = fx;
    out[2] = fy;
    out[3] = fz;
  };
  bind_accurate(force_binding, force_one);
  // One neighbor box: ppb interactions of ~14 FLOPs (distance + exp).
  bind_constant_cost(force_binding, ppb * 14.0 + 8.0);
  const auto commit_one = [&](std::uint64_t item, const double* out) {
    const std::uint64_t i = particle_of(item);
    potential[i] += out[0];
    force[i * 3 + 0] += out[1];
    force[i * 3 + 1] += out[2];
    force[i * 3 + 2] += out[3];
  };
  bind_commit(force_binding, commit_one);
  // NOT independent_items: a particle's 27 neighbor contributions +=
  // into the same accumulators, and that floating-point order must match
  // serial execution bit-for-bit.

  // `items_per_thread` counts particles per thread; every particle brings
  // 27 neighbor-box region invocations.
  const std::uint64_t threads_needed = std::max<std::uint64_t>(
      1, n_particles / std::max<std::uint64_t>(1, items_per_thread));
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(
      n_items, n_items / threads_needed, threads_per_team());
  launch_kernel(dev, executor, spec, force_binding, n_items, launch, &output.stats);

  // --- relocation kernel (always accurate) ------------------------------
  approx::RegionBinding move_binding;
  move_binding.name = "lavamd.move";
  move_binding.in_dims = 0;
  move_binding.out_dims = 3;
  move_binding.in_bytes = 6 * sizeof(double);
  move_binding.out_bytes = 3 * sizeof(double);
  const auto move_one = [this, &force](std::uint64_t i, double* out) {
    out[0] = pos_[i * 3 + 0] + kDt * force[i * 3 + 0];
    out[1] = pos_[i * 3 + 1] + kDt * force[i * 3 + 1];
    out[2] = pos_[i * 3 + 2] + kDt * force[i * 3 + 2];
  };
  bind_accurate(move_binding, move_one);
  bind_constant_cost(move_binding, 9.0);
  const auto commit_move = [&new_pos](std::uint64_t i, const double* out) {
    new_pos[i * 3 + 0] = out[0];
    new_pos[i * 3 + 1] = out[1];
    new_pos[i * 3 + 2] = out[2];
  };
  bind_commit(move_binding, commit_move);
  move_binding.independent_items = true;  // each item touches only new_pos[i]
  bind_row_commit_extents(move_binding, new_pos, 3);
  const sim::LaunchConfig move_launch =
      sim::launch_for_items_per_thread(n_particles, 1, threads_per_team());
  launch_kernel(dev, executor, apps::accurate_spec(), move_binding, n_particles, move_launch,
                nullptr);

  output.timeline = dev.timeline();
  // QoI: the final force and location of each particle (Table 1). Force
  // enters as its magnitude — the signed components of a near-equilibrium
  // particle cancel to ~0 and would turn any absolute perturbation into
  // an unbounded *relative* error, which MAPE cannot weigh meaningfully.
  output.qoi.reserve(n_particles * 5);
  for (std::uint64_t i = 0; i < n_particles; ++i) {
    output.qoi.push_back(potential[i]);
    const double fx = force[i * 3 + 0], fy = force[i * 3 + 1], fz = force[i * 3 + 2];
    output.qoi.push_back(std::sqrt(fx * fx + fy * fy + fz * fz));
    for (int c = 0; c < 3; ++c) output.qoi.push_back(new_pos[i * 3 + c]);
  }
  return output;
}

}  // namespace hpac::apps
