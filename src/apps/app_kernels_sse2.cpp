// SSE2 application kernels (128-bit lanes). Part of the x86-64
// baseline, so no special flags; non-x86 hosts get stubs and the apps
// stay scalar.

#include "apps/simd_kernels.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <emmintrin.h>

#include "apps/app_kernels_impl.hpp"

namespace hpac::apps::kernels {

namespace {

struct Sse2Ops {
  static constexpr int kWidth = 2;
  using V = __m128d;
  static V broadcast(double x) { return _mm_set1_pd(x); }
  static V loadu(const double* p) { return _mm_loadu_pd(p); }
  static void storeu(double* p, V a) { _mm_storeu_pd(p, a); }
  static V add(V a, V b) { return _mm_add_pd(a, b); }
  static V sub(V a, V b) { return _mm_sub_pd(a, b); }
  static V mul(V a, V b) { return _mm_mul_pd(a, b); }
  static V div(V a, V b) { return _mm_div_pd(a, b); }
  static V sqrt(V a) { return _mm_sqrt_pd(a); }
  static V abs(V a) { return _mm_andnot_pd(_mm_set1_pd(-0.0), a); }
  static V neg(V a) { return _mm_xor_pd(a, _mm_set1_pd(-0.0)); }
  static V select_lt_zero(V x, V if_lt, V if_ge) {
    // SSE2 has no blendv; exact bitwise select via the full-width mask.
    const V m = _mm_cmplt_pd(x, _mm_setzero_pd());
    return _mm_or_pd(_mm_and_pd(m, if_lt), _mm_andnot_pd(m, if_ge));
  }
};

}  // namespace

BlackscholesBatchFn blackscholes_batch_sse2() { return &blackscholes_batch_impl<Sse2Ops>; }
BinomialInductFn binomial_induct_sse2() { return &binomial_induct_impl<Sse2Ops>; }

}  // namespace hpac::apps::kernels

#else

namespace hpac::apps::kernels {

BlackscholesBatchFn blackscholes_batch_sse2() { return nullptr; }
BinomialInductFn binomial_induct_sse2() { return nullptr; }

}  // namespace hpac::apps::kernels

#endif
