#pragma once

// Vectorized application math for the two apps whose `accurate` paths
// dominate sweep time (ROADMAP item 3): blackscholes batch pricing
// (lanes = option contracts, wired through the warp-per-call
// `accurate_batch` binding hook) and the binomial backward induction
// (lanes = tree nodes of one level, applied inside `tree_price` so both
// binding forms benefit). Every kernel is bit-identical to its scalar
// reference — same per-lane operation order, explicit mul/add (no FMA)
// — so QoI vectors, error metrics and sweep CSVs are invariant across
// dispatch levels (enforced by the `simd` tests and the CI matrix).

#include "common/simd.hpp"

namespace hpac::apps::kernels {

/// Price `n` packed call options; all six arrays have length `n`.
/// Processes lanes of `W` contracts with a scalar remainder that calls
/// `Blackscholes::call_price` verbatim.
using BlackscholesBatchFn = void (*)(const double* spot, const double* strike,
                                     const double* rate, const double* volatility,
                                     const double* expiry, double* out, int n);

/// One full backward induction over `values[0 .. steps]` (leaf payoffs
/// already in place): level `l` updates `values[i] = discount *
/// (p_up * values[i+1] + p_down * values[i])` for `i in [0, l]`.
using BinomialInductFn = void (*)(double* values, int steps, double discount, double p_up,
                                  double p_down);

/// Kernel for the current `simd::active_level()`; nullptr → scalar path.
BlackscholesBatchFn blackscholes_batch_fn();
BinomialInductFn binomial_induct_fn();

/// Per-ISA entry points (nullptr when that ISA is not compiled in).
BlackscholesBatchFn blackscholes_batch_sse2();
BlackscholesBatchFn blackscholes_batch_avx2();
BinomialInductFn binomial_induct_sse2();
BinomialInductFn binomial_induct_avx2();

}  // namespace hpac::apps::kernels
