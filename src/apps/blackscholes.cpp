#include "apps/blackscholes.hpp"

#include <cmath>

#include "apps/simd_kernels.hpp"
#include "apps/support.hpp"
#include "common/rng.hpp"

namespace hpac::apps {

namespace {
/// Cumulative normal distribution (Abramowitz & Stegun 7.1.26 polynomial),
/// the same approximation the PARSEC kernel uses.
double cnd(double d) {
  const double a1 = 0.31938153, a2 = -0.356563782, a3 = 1.781477937, a4 = -1.821255978,
               a5 = 1.330274429;
  const double k = 1.0 / (1.0 + 0.2316419 * std::abs(d));
  double c = 1.0 - 1.0 / std::sqrt(2.0 * M_PI) * std::exp(-0.5 * d * d) *
                       (a1 * k + a2 * k * k + a3 * k * k * k + a4 * k * k * k * k +
                        a5 * k * k * k * k * k);
  return d < 0 ? 1.0 - c : c;
}
}  // namespace

double Blackscholes::call_price(double spot, double strike, double rate, double volatility,
                                double expiry) {
  const double sqrt_t = std::sqrt(expiry);
  const double d1 =
      (std::log(spot / strike) + (rate + 0.5 * volatility * volatility) * expiry) /
      (volatility * sqrt_t);
  const double d2 = d1 - volatility * sqrt_t;
  return spot * cnd(d1) - strike * std::exp(-rate * expiry) * cnd(d2);
}

Blackscholes::Blackscholes() : Blackscholes(Params{}) {}

Blackscholes::Blackscholes(Params params) : params_(params) {
  Xoshiro256 rng(params_.seed);
  const std::uint64_t unique = params_.unique_options;
  std::vector<double> us(unique), uk(unique), ur(unique), uv(unique), ut(unique);
  for (std::uint64_t i = 0; i < unique; ++i) {
    us[i] = rng.uniform(5.0, 100.0);
    uk[i] = rng.uniform(5.0, 100.0);
    ur[i] = rng.uniform(0.01, 0.05);
    uv[i] = rng.uniform(0.05, 0.65);
    ut[i] = rng.uniform(0.1, 1.0);
  }
  const std::uint64_t n = params_.num_options;
  spot_.resize(n);
  strike_.resize(n);
  rate_.resize(n);
  volatility_.resize(n);
  expiry_.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t u = i % unique;  // PARSEC-style tiling of distinct rows
    spot_[i] = us[u];
    strike_[i] = uk[u];
    rate_[i] = ur[u];
    volatility_[i] = uv[u];
    expiry_[i] = ut[u];
  }
}

harness::RunOutput Blackscholes::run(const pragma::ApproxSpec& spec,
                                     std::uint64_t items_per_thread,
                                     const sim::DeviceConfig& device) {
  const std::uint64_t n = params_.num_options;
  offload::Device dev(device);
  approx::RegionExecutor executor(device);

  // Host-side allocation dominates the original benchmark's runtime; model
  // it as memory-bandwidth-bound host work over the five input arrays.
  const double host_alloc_bytes = static_cast<double>(n) * 6 * sizeof(double);
  dev.record_host(host_alloc_bytes / 8e9 + 2e-3);

  std::vector<double> prices(n, 0.0);

  harness::RunOutput output;
  {
    offload::MapScope map_in(dev, n * 5 * sizeof(double), offload::MapDir::kTo);
    offload::MapScope map_out(dev, n * sizeof(double), offload::MapDir::kFrom);

    approx::RegionBinding binding;
    binding.name = "blackscholes.price";
    binding.in_dims = 5;
    binding.out_dims = 1;
    binding.in_bytes = 5 * sizeof(double);
    binding.out_bytes = sizeof(double);
    const auto gather_one = [this](std::uint64_t i, double* in) {
      in[0] = spot_[i];
      in[1] = strike_[i];
      in[2] = rate_[i];
      in[3] = volatility_[i];
      in[4] = expiry_[i];
    };
    const auto price_one = [this](std::uint64_t i, double* out) {
      out[0] = call_price(spot_[i], strike_[i], rate_[i], volatility_[i], expiry_[i]);
    };
    const auto commit_one = [&prices](std::uint64_t i, const double* out) {
      prices[i] = out[0];
    };
    bind_gather(binding, gather_one);
    bind_accurate(binding, price_one);
    // Vector fast path over the warp's active lanes (lanes = option
    // contracts), resolved per run() so HPAC_SIMD / simd::set_level
    // changes take effect. The kernel prices each packed contract with
    // call_price's exact operation sequence, so prices are bit-identical
    // to the scalar adapter above and sweep CSVs are dispatch-invariant.
    if (const kernels::BlackscholesBatchFn batch = kernels::blackscholes_batch_fn()) {
      binding.accurate_batch = [this, batch](std::uint64_t first_item, sim::LaneMask lanes,
                                             std::span<const double>, std::span<double> out) {
        double s[64], k[64], r[64], v[64], t[64], p[64];
        int lane_of[64];
        int count = 0;
        sim::for_each_lane(lanes, [&](int lane) {
          const std::uint64_t i = first_item + static_cast<std::uint64_t>(lane);
          s[count] = spot_[i];
          k[count] = strike_[i];
          r[count] = rate_[i];
          v[count] = volatility_[i];
          t[count] = expiry_[i];
          lane_of[count] = lane;
          ++count;
        });
        batch(s, k, r, v, t, p, count);
        for (int j = 0; j < count; ++j) out[static_cast<std::size_t>(lane_of[j])] = p[j];
      };
    }
    // log, exp, sqrt, the CND polynomial twice: ~60 floating-point
    // operations plus two special functions.
    bind_constant_cost(binding, 180.0);
    bind_commit(binding, commit_one);
    binding.independent_items = true;  // each item touches only prices[i]
    bind_row_commit_extents(binding, prices, 1);
    // Read extents too: the five per-item input rows are disjoint from the
    // committed prices, which the auditor's read/write check confirms.
    binding.read_extents = [this](std::uint64_t i, approx::audit::ExtentSink& sink) {
      sink.reads(spot_.data() + i, sizeof(double));
      sink.reads(strike_.data() + i, sizeof(double));
      sink.reads(rate_.data() + i, sizeof(double));
      sink.reads(volatility_.data() + i, sizeof(double));
      sink.reads(expiry_.data() + i, sizeof(double));
    };

    const sim::LaunchConfig launch =
        sim::launch_for_items_per_thread(n, items_per_thread, threads_per_team());
    launch_kernel(dev, executor, spec, binding, n, launch, &output.stats);
  }

  output.timeline = dev.timeline();
  output.qoi = std::move(prices);
  return output;
}

}  // namespace hpac::apps
