#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "harness/benchmark.hpp"

namespace hpac::apps {

/// LULESH proxy: a staggered-grid Lagrangian hydrodynamics solver modeling
/// a Sedov blast (Table 1). This is a 1-D von Neumann–Richtmyer scheme
/// with the same kernel structure the paper approximates: per timestep,
///
///   1. `CalcHourglassControlForElems` — artificial viscosity + hourglass
///      control per element (approximated),
///   2. `CalcFBHourglassForceForElems` — element stress with hourglass
///      force correction (approximated),
///   3. node update (accurate): force gather, acceleration, velocity,
///      position,
///   4. element update (accurate): volume, energy, EOS pressure,
///
/// plus a host-side timestep (Courant) reduction. The blast deposits
/// energy at the origin, so `ini` perforation (dropping the *first*
/// elements — the blast region) damages the QoI far more than `fini`
/// (dropping the quiescent far field), which is the paper's Figure 7
/// observation.
///
/// QoI: the final origin energy (MAPE).
class Lulesh : public harness::Benchmark {
 public:
  struct Params {
    std::uint64_t num_elems = 8192;
    int num_steps = 100;
    double blast_energy = 10.0;   ///< specific energy deposited at the origin
    double gamma = 1.4;
    double cfl = 0.3;
  };

  Lulesh();
  explicit Lulesh(Params params);

  std::string name() const override { return "lulesh"; }
  std::uint64_t default_items_per_thread() const override { return 1; }

  harness::RunOutput run(const pragma::ApproxSpec& spec, std::uint64_t items_per_thread,
                         const sim::DeviceConfig& device) override;

  std::unique_ptr<harness::Benchmark> fork() const override {
    return std::make_unique<Lulesh>(*this);
  }

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace hpac::apps
