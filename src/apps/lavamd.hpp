#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "harness/benchmark.hpp"

namespace hpac::apps {

/// LavaMD (Rodinia): particle potential and relocation in a 3-D box grid
/// (Table 1). Each region invocation computes one particle's potential and
/// force by summing pairwise interactions with every particle in its own
/// and its 26 neighbor boxes — the expensive force kernel the paper
/// approximates. A cheap accurate kernel then relocates particles.
///
/// QoI: the final potential, force and location of each particle (MAPE).
class LavaMd : public harness::Benchmark {
 public:
  struct Params {
    int boxes_per_dim = 6;          ///< box grid is boxes_per_dim^3
    int particles_per_box = 24;
    double alpha = 0.5;             ///< interaction decay (Rodinia's a2)
    std::uint64_t seed = 0x1a7au;
  };

  LavaMd();
  explicit LavaMd(Params params);

  std::string name() const override { return "lavamd"; }
  std::uint64_t default_items_per_thread() const override { return 1; }
  /// One particle already brings 27 region invocations per thread.
  std::vector<std::uint64_t> memo_items_axis() const override { return {2, 4, 8}; }

  harness::RunOutput run(const pragma::ApproxSpec& spec, std::uint64_t items_per_thread,
                         const sim::DeviceConfig& device) override;

  std::unique_ptr<harness::Benchmark> fork() const override {
    return std::make_unique<LavaMd>(*this);
  }

  std::uint64_t num_particles() const;
  const Params& params() const { return params_; }

 private:
  Params params_;
  std::vector<double> pos_;     ///< particles x 3, box-major ordering
  std::vector<double> charge_;  ///< particles
};

}  // namespace hpac::apps
