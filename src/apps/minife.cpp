#include "apps/minife.hpp"

#include <cmath>

#include "apps/support.hpp"

namespace hpac::apps {

MiniFe::MiniFe() : MiniFe(Params{}) {}

MiniFe::MiniFe(Params params) : params_(params) {
  const int g = params_.grid;
  rows_ = static_cast<std::uint64_t>(g) * g * g;
  row_ptr_.reserve(rows_ + 1);
  row_ptr_.push_back(0);
  const auto index = [g](int i, int j, int k) {
    return static_cast<std::uint64_t>((k * g + j) * g + i);
  };
  for (int k = 0; k < g; ++k) {
    for (int j = 0; j < g; ++j) {
      for (int i = 0; i < g; ++i) {
        // 7-point Laplacian stencil with Dirichlet truncation at the
        // boundary: interior rows have 7 non-zeros, faces fewer — the
        // non-uniform row structure that rules out iACT.
        const auto add = [this](std::uint64_t col, double value) {
          col_idx_.push_back(col);
          values_.push_back(value);
        };
        add(index(i, j, k), 6.0);
        if (i > 0) add(index(i - 1, j, k), -1.0);
        if (i < g - 1) add(index(i + 1, j, k), -1.0);
        if (j > 0) add(index(i, j - 1, k), -1.0);
        if (j < g - 1) add(index(i, j + 1, k), -1.0);
        if (k > 0) add(index(i, j, k - 1), -1.0);
        if (k < g - 1) add(index(i, j, k + 1), -1.0);
        row_ptr_.push_back(col_idx_.size());
      }
    }
  }
  rhs_.assign(rows_, 1.0);  // uniform body load
}

harness::RunOutput MiniFe::run(const pragma::ApproxSpec& spec, std::uint64_t items_per_thread,
                               const sim::DeviceConfig& device) {
  const std::uint64_t n = rows_;
  offload::Device dev(device);
  approx::RegionExecutor executor(device);
  harness::RunOutput output;

  std::vector<double> x(n, 0.0), r(rhs_), p(rhs_), ap(n, 0.0);

  offload::MapScope map_matrix(
      dev, values_.size() * (sizeof(double) + sizeof(std::uint64_t)) + row_ptr_.size() * 8,
      offload::MapDir::kTo);
  offload::MapScope map_vectors(dev, n * 4 * sizeof(double), offload::MapDir::kToFrom);

  // --- SpMV row product (approximated) ------------------------------------
  approx::RegionBinding spmv;
  spmv.name = "minife.spmv";
  spmv.in_dims = 0;  // varying row width: no uniform iACT key (see header)
  spmv.out_dims = 1;
  spmv.in_bytes = 7 * (sizeof(double) + sizeof(std::uint64_t)) + sizeof(double);
  spmv.out_bytes = sizeof(double);
  const auto spmv_one = [&](std::uint64_t row, double* out) {
    double sum = 0.0;
    for (std::uint64_t idx = row_ptr_[row]; idx < row_ptr_[row + 1]; ++idx) {
      sum += values_[idx] * p[col_idx_[idx]];
    }
    out[0] = sum;
  };
  bind_accurate(spmv, spmv_one);
  spmv.accurate_cost = [this](std::uint64_t row) {
    return 6.0 * static_cast<double>(row_ptr_[row + 1] - row_ptr_[row]) + 10.0;
  };
  // Row widths vary (the CSR structure), so the batched cost is a real
  // max over the warp's rows — not a constant_cost_lanes candidate.
  spmv.accurate_cost_batch = [this](std::uint64_t first, sim::LaneMask lanes) {
    double cost = 0.0;
    sim::for_each_lane(lanes, [&](int lane) {
      const std::uint64_t row = first + static_cast<std::uint64_t>(lane);
      cost = std::max(cost, 6.0 * static_cast<double>(row_ptr_[row + 1] - row_ptr_[row]) + 10.0);
    });
    return cost;
  };
  bind_commit(spmv, [&ap](std::uint64_t row, const double* out) { ap[row] = out[0]; });
  spmv.independent_items = true;  // reads p (stable here), writes only ap[row]
  bind_row_commit_extents(spmv, ap, 1);

  // --- vector kernels (accurate) -------------------------------------------
  double dot_acc = 0.0;
  approx::RegionBinding dot_pap;
  dot_pap.name = "minife.dot_pap";
  dot_pap.out_dims = 1;
  dot_pap.in_bytes = 2 * sizeof(double);
  dot_pap.out_bytes = 0;
  bind_accurate(dot_pap, [&](std::uint64_t i, double* out) { out[0] = p[i] * ap[i]; });
  bind_constant_cost(dot_pap, 4.0);
  bind_commit(dot_pap, [&dot_acc](std::uint64_t, const double* out) { dot_acc += out[0]; });
  // NOT independent_items: the dot product accumulates in serial item
  // order, which team sharding would reorder.

  double alpha = 0.0;
  approx::RegionBinding update_x_r;
  update_x_r.name = "minife.update_x_r";
  update_x_r.out_dims = 2;
  update_x_r.in_bytes = 4 * sizeof(double);
  update_x_r.out_bytes = 2 * sizeof(double);
  bind_accurate(update_x_r, [&](std::uint64_t i, double* out) {
    out[0] = x[i] + alpha * p[i];
    out[1] = r[i] - alpha * ap[i];
  });
  bind_constant_cost(update_x_r, 8.0);
  bind_commit(update_x_r, [&](std::uint64_t i, const double* out) {
    x[i] = out[0];
    r[i] = out[1];
  });
  update_x_r.independent_items = true;  // touches only x[i], r[i]
  update_x_r.commit_extents = [&x, &r](std::uint64_t i, approx::audit::ExtentSink& sink) {
    sink.writes(x.data() + i, sizeof(double));
    sink.writes(r.data() + i, sizeof(double));
  };

  double rr_acc = 0.0;
  approx::RegionBinding dot_rr;
  dot_rr.name = "minife.dot_rr";
  dot_rr.out_dims = 1;
  dot_rr.in_bytes = sizeof(double);
  dot_rr.out_bytes = 0;
  bind_accurate(dot_rr, [&](std::uint64_t i, double* out) { out[0] = r[i] * r[i]; });
  bind_constant_cost(dot_rr, 3.0);
  bind_commit(dot_rr, [&rr_acc](std::uint64_t, const double* out) { rr_acc += out[0]; });
  // NOT independent_items: serial-order floating-point reduction.

  double beta = 0.0;
  approx::RegionBinding update_p;
  update_p.name = "minife.update_p";
  update_p.out_dims = 1;
  update_p.in_bytes = 2 * sizeof(double);
  update_p.out_bytes = sizeof(double);
  bind_accurate(update_p, [&](std::uint64_t i, double* out) { out[0] = r[i] + beta * p[i]; });
  bind_constant_cost(update_p, 4.0);
  bind_commit(update_p, [&p](std::uint64_t i, const double* out) { p[i] = out[0]; });
  update_p.independent_items = true;  // touches only p[i]
  bind_row_commit_extents(update_p, p, 1);

  const sim::LaunchConfig spmv_launch =
      sim::launch_for_items_per_thread(n, items_per_thread, threads_per_team());
  const sim::LaunchConfig vec_launch = sim::launch_for_items_per_thread(n, 1, threads_per_team());

  double rr = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) rr += r[i] * r[i];
  const double stop = params_.tolerance * params_.tolerance * rr;

  int iterations = 0;
  for (; iterations < params_.max_iterations && rr > stop; ++iterations) {
    launch_kernel(dev, executor, spec, spmv, n, spmv_launch, &output.stats);
    dot_acc = 0.0;
    launch_kernel(dev, executor, accurate_spec(), dot_pap, n, vec_launch, nullptr);
    if (dot_acc == 0.0 || !std::isfinite(dot_acc)) break;  // solver broke down
    alpha = rr / dot_acc;
    launch_kernel(dev, executor, accurate_spec(), update_x_r, n, vec_launch, nullptr);
    rr_acc = 0.0;
    launch_kernel(dev, executor, accurate_spec(), dot_rr, n, vec_launch, nullptr);
    if (!std::isfinite(rr_acc)) break;
    beta = rr_acc / rr;
    rr = rr_acc;
    launch_kernel(dev, executor, accurate_spec(), update_p, n, vec_launch, nullptr);
  }

  output.timeline = dev.timeline();
  output.qoi = {std::sqrt(std::max(rr, 0.0))};  // final residual norm (Table 1)
  output.iterations = iterations;
  return output;
}

}  // namespace hpac::apps
