#include "apps/registry.hpp"

#include "apps/binomial.hpp"
#include "apps/blackscholes.hpp"
#include "apps/kmeans.hpp"
#include "apps/lavamd.hpp"
#include "apps/leukocyte.hpp"
#include "apps/lulesh.hpp"
#include "apps/minife.hpp"
#include "common/error.hpp"

namespace hpac::apps {

std::vector<std::string> benchmark_names() {
  return {"lulesh",       "leukocyte", "binomial_options", "minife",
          "blackscholes", "lavamd",    "kmeans"};
}

bool is_benchmark(const std::string& name) {
  for (const auto& known : benchmark_names()) {
    if (known == name) return true;
  }
  return false;
}

std::unique_ptr<harness::Benchmark> make_benchmark(const std::string& name) {
  if (name == "lulesh") return std::make_unique<Lulesh>();
  if (name == "leukocyte") return std::make_unique<Leukocyte>();
  if (name == "binomial_options") return std::make_unique<BinomialOptions>();
  if (name == "minife") return std::make_unique<MiniFe>();
  if (name == "blackscholes") return std::make_unique<Blackscholes>();
  if (name == "lavamd") return std::make_unique<LavaMd>();
  if (name == "kmeans") return std::make_unique<KMeans>();
  throw ConfigError("unknown benchmark: " + name);
}

}  // namespace hpac::apps
