#include "apps/lulesh.hpp"

#include <algorithm>
#include <cmath>

#include "apps/support.hpp"

namespace hpac::apps {

namespace {
constexpr double kQuadraticQ = 2.0;  ///< quadratic artificial-viscosity coefficient
constexpr double kLinearQ = 0.25;    ///< linear artificial-viscosity coefficient
constexpr double kHourglassCoef = 0.01;
constexpr double kEnergyFloor = 1e-10;
}  // namespace

Lulesh::Lulesh() : Lulesh(Params{}) {}

Lulesh::Lulesh(Params params) : params_(params) {}

harness::RunOutput Lulesh::run(const pragma::ApproxSpec& spec, std::uint64_t items_per_thread,
                               const sim::DeviceConfig& device) {
  const std::uint64_t n = params_.num_elems;
  const double gamma = params_.gamma;
  const double dx0 = 1.0 / static_cast<double>(n);
  const double elem_mass = dx0;  // rho0 = 1

  // Node fields (n + 1) and element fields (n).
  std::vector<double> x(n + 1), u(n + 1, 0.0);
  std::vector<double> e(n, 1e-6), rho(n, 1.0), p(n), q(n, 0.0), sigma(n), volume(n, dx0);
  for (std::uint64_t i = 0; i <= n; ++i) x[i] = static_cast<double>(i) * dx0;
  e[0] = params_.blast_energy;  // Sedov: energy deposited at the origin
  for (std::uint64_t j = 0; j < n; ++j) p[j] = (gamma - 1.0) * rho[j] * e[j];
  for (std::uint64_t j = 0; j < n; ++j) sigma[j] = p[j];

  offload::Device dev(device);
  approx::RegionExecutor executor(device);
  harness::RunOutput output;

  offload::MapScope map_state(dev, (2 * (n + 1) + 4 * n) * sizeof(double),
                              offload::MapDir::kTo);
  offload::MapScope map_energy(dev, n * sizeof(double), offload::MapDir::kFrom);

  // --- kernel 1: CalcHourglassControlForElems (approximated) -------------
  approx::RegionBinding hourglass_control;
  hourglass_control.name = "lulesh.hourglass_control";
  hourglass_control.in_dims = 3;
  hourglass_control.out_dims = 1;
  hourglass_control.in_bytes = 4 * sizeof(double);
  hourglass_control.out_bytes = sizeof(double);
  const auto hourglass_gather_one = [&](std::uint64_t j, double* in) {
    in[0] = rho[j];
    in[1] = e[j];
    in[2] = u[j + 1] - u[j];
  };
  bind_gather(hourglass_control, hourglass_gather_one);
  const auto hourglass_one = [&](std::uint64_t j, double* out) {
    const double du = u[j + 1] - u[j];
    const double cs = std::sqrt(gamma * std::max(p[j], 0.0) / rho[j]);
    double visc = 0.0;
    if (du < 0.0) {  // element under compression
      visc = rho[j] * (kQuadraticQ * du * du + kLinearQ * cs * (-du));
    }
    // Hourglass-mode damping: keeps spurious modes bounded; stands in for
    // the 3-D kernel's per-mode work.
    visc += kHourglassCoef * rho[j] * cs * std::abs(du);
    out[0] = visc;
  };
  bind_accurate(hourglass_control, hourglass_one);
  // The 3-D kernel loops over 8 hourglass modes per element with gathers
  // from 8 nodes — a few hundred cycles.
  bind_constant_cost(hourglass_control, 220.0);
  bind_commit(hourglass_control, [&](std::uint64_t j, const double* out) { q[j] = out[0]; });
  hourglass_control.independent_items = true;  // writes only q[j]
  bind_row_commit_extents(hourglass_control, q, 1);
  // Element j reads its own state plus the u[j], u[j+1] node pair — the
  // stencil that makes this worth declaring: u is not written here, so
  // the cross-item overlap on u[j+1] is read/read and audits clean.
  hourglass_control.read_extents = [&](std::uint64_t j, approx::audit::ExtentSink& sink) {
    sink.reads(rho.data() + j, sizeof(double));
    sink.reads(e.data() + j, sizeof(double));
    sink.reads(p.data() + j, sizeof(double));
    sink.reads(u.data() + j, 2 * sizeof(double));
  };

  // --- kernel 2: CalcFBHourglassForceForElems (approximated) -------------
  approx::RegionBinding fb_hourglass;
  fb_hourglass.name = "lulesh.fb_hourglass";
  fb_hourglass.in_dims = 2;
  fb_hourglass.out_dims = 1;
  fb_hourglass.in_bytes = 2 * sizeof(double);
  fb_hourglass.out_bytes = sizeof(double);
  const auto fb_gather_one = [&](std::uint64_t j, double* in) {
    in[0] = p[j];
    in[1] = q[j];
  };
  bind_gather(fb_hourglass, fb_gather_one);
  const auto fb_one = [&](std::uint64_t j, double* out) {
    const double cs = std::sqrt(gamma * std::max(p[j], 0.0) / rho[j]);
    const double du = u[j + 1] - u[j];
    // Stress plus an hourglass-force correction term.
    out[0] = p[j] + q[j] + kHourglassCoef * rho[j] * cs * du;
  };
  bind_accurate(fb_hourglass, fb_one);
  bind_constant_cost(fb_hourglass, 180.0);
  bind_commit(fb_hourglass, [&](std::uint64_t j, const double* out) { sigma[j] = out[0]; });
  fb_hourglass.independent_items = true;  // writes only sigma[j]
  bind_row_commit_extents(fb_hourglass, sigma, 1);
  fb_hourglass.read_extents = [&](std::uint64_t j, approx::audit::ExtentSink& sink) {
    sink.reads(p.data() + j, sizeof(double));
    sink.reads(q.data() + j, sizeof(double));
    sink.reads(rho.data() + j, sizeof(double));
    sink.reads(u.data() + j, 2 * sizeof(double));  // u[j], u[j+1]
  };

  // --- kernel 3: node update (accurate) -----------------------------------
  double dt = 1e-6;
  approx::RegionBinding node_update;
  node_update.name = "lulesh.node_update";
  node_update.in_dims = 0;
  node_update.out_dims = 2;
  node_update.in_bytes = 4 * sizeof(double);
  node_update.out_bytes = 2 * sizeof(double);
  const auto node_one = [&](std::uint64_t i, double* out) {
    if (i == 0) {  // reflective wall at the origin
      out[0] = 0.0;
      out[1] = x[0];
      return;
    }
    const double stress_left = sigma[i - 1];
    const double stress_right = i < n ? sigma[i] : 0.0;  // vacuum outside
    const double node_mass = i < n ? elem_mass : elem_mass * 0.5;
    const double accel = (stress_left - stress_right) / node_mass;
    const double vel = u[i] + accel * dt;
    out[0] = vel;
    out[1] = x[i] + vel * dt;
  };
  bind_accurate(node_update, node_one);
  bind_constant_cost(node_update, 16.0);
  bind_commit(node_update, [&](std::uint64_t i, const double* out) {
    u[i] = out[0];
    x[i] = out[1];
  });
  // Item i reads only its own u[i]/x[i] plus sigma (not written here).
  node_update.independent_items = true;
  node_update.commit_extents = [&u, &x](std::uint64_t i, approx::audit::ExtentSink& sink) {
    sink.writes(u.data() + i, sizeof(double));
    sink.writes(x.data() + i, sizeof(double));
  };
  // Node i reads the two adjacent element stresses (sigma is not written
  // by this launch) and its own u/x — the same-item overlap with the
  // writes above is exempt from the read/write check by construction.
  node_update.read_extents = [&, n](std::uint64_t i, approx::audit::ExtentSink& sink) {
    sink.reads(u.data() + i, sizeof(double));
    sink.reads(x.data() + i, sizeof(double));
    if (i > 0) sink.reads(sigma.data() + (i - 1), sizeof(double));
    if (i < n) sink.reads(sigma.data() + i, sizeof(double));
  };

  // --- kernel 4: element update, EOS (accurate) ---------------------------
  approx::RegionBinding elem_update;
  elem_update.name = "lulesh.elem_update";
  elem_update.in_dims = 0;
  elem_update.out_dims = 3;
  elem_update.in_bytes = 5 * sizeof(double);
  elem_update.out_bytes = 3 * sizeof(double);
  const auto elem_one = [&](std::uint64_t j, double* out) {
    const double new_volume = x[j + 1] - x[j];
    const double dv = new_volume - volume[j];
    double energy = e[j] - (p[j] + q[j]) * dv / elem_mass;
    energy = std::max(energy, kEnergyFloor);
    const double density = elem_mass / std::max(new_volume, 1e-12);
    out[0] = energy;
    out[1] = density;
    out[2] = new_volume;
  };
  bind_accurate(elem_update, elem_one);
  bind_constant_cost(elem_update, 24.0);
  bind_commit(elem_update, [&](std::uint64_t j, const double* out) {
    e[j] = out[0];
    rho[j] = out[1];
    volume[j] = out[2];
    p[j] = (gamma - 1.0) * rho[j] * e[j];
  });
  // Item j reads x[j+1] (not written here) and its own element fields.
  elem_update.independent_items = true;
  elem_update.commit_extents = [&e, &rho, &volume, &p](std::uint64_t j,
                                                       approx::audit::ExtentSink& sink) {
    sink.writes(e.data() + j, sizeof(double));
    sink.writes(rho.data() + j, sizeof(double));
    sink.writes(volume.data() + j, sizeof(double));
    sink.writes(p.data() + j, sizeof(double));
  };
  // Element j reads the x[j], x[j+1] node pair (not written here) and its
  // own element fields; q is read-only in this launch.
  elem_update.read_extents = [&](std::uint64_t j, approx::audit::ExtentSink& sink) {
    sink.reads(x.data() + j, 2 * sizeof(double));
    sink.reads(volume.data() + j, sizeof(double));
    sink.reads(e.data() + j, sizeof(double));
    sink.reads(p.data() + j, sizeof(double));
    sink.reads(q.data() + j, sizeof(double));
  };

  const sim::LaunchConfig approx_launch =
      sim::launch_for_items_per_thread(n, items_per_thread, threads_per_team());
  const sim::LaunchConfig node_launch =
      sim::launch_for_items_per_thread(n + 1, 1, threads_per_team());
  const sim::LaunchConfig elem_launch =
      sim::launch_for_items_per_thread(n, 1, threads_per_team());

  for (int step = 0; step < params_.num_steps; ++step) {
    // Host-side Courant reduction (LULESH's CalcTimeConstraints).
    double min_dt = 1e9;
    for (std::uint64_t j = 0; j < n; ++j) {
      const double cs = std::sqrt(gamma * std::max(p[j], 0.0) / rho[j]) + 1e-12;
      min_dt = std::min(min_dt, volume[j] / cs);
    }
    dt = std::min(params_.cfl * min_dt, dt * 1.1);
    dev.record_host(static_cast<double>(n) * 2.0 / 10e9);

    launch_kernel(dev, executor, spec, hourglass_control, n, approx_launch, &output.stats);
    launch_kernel(dev, executor, spec, fb_hourglass, n, approx_launch, &output.stats);
    launch_kernel(dev, executor, accurate_spec(), node_update, n + 1, node_launch, nullptr);
    launch_kernel(dev, executor, accurate_spec(), elem_update, n, elem_launch, nullptr);
  }

  output.timeline = dev.timeline();
  // QoI: the final origin energy (Table 1).
  output.qoi = {e[0]};
  return output;
}

}  // namespace hpac::apps
