#include "apps/binomial.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "apps/simd_kernels.hpp"
#include "apps/support.hpp"
#include "common/rng.hpp"

namespace hpac::apps {

namespace {
constexpr double kRiskFree = 0.02;
constexpr double kVolatility = 0.30;
}  // namespace

double BinomialOptions::tree_price(double spot, double strike, double expiry, int steps,
                                   double rate, double volatility) {
  const double dt = expiry / steps;
  const double v_sqrt_dt = volatility * std::sqrt(dt);
  const double up = std::exp(v_sqrt_dt);
  const double down = 1.0 / up;
  const double growth = std::exp(rate * dt);
  const double p_up = (growth - down) / (up - down);
  const double p_down = 1.0 - p_up;
  const double discount = 1.0 / growth;

  thread_local std::vector<double> values;
  values.assign(static_cast<std::size_t>(steps) + 1, 0.0);
  // Leaf payoffs run from spot*down^steps upward by factors of up^2.
  double price = spot * std::pow(down, steps);
  const double up2 = up * up;
  for (int i = 0; i <= steps; ++i, price *= up2) {
    values[static_cast<std::size_t>(i)] = std::max(price - strike, 0.0);
  }
  // Vector fast path: lanes are the tree nodes of one level. The update
  // is elementwise (both inputs loaded before the store, no reduction),
  // so the kernel is bit-identical to this loop; resolved per call so
  // HPAC_SIMD / simd::set_level changes apply, and shared by both
  // binding forms since they funnel through tree_price.
  if (const kernels::BinomialInductFn induct = kernels::binomial_induct_fn()) {
    induct(values.data(), steps, discount, p_up, p_down);
  } else {
    for (int level = steps - 1; level >= 0; --level) {
      for (int i = 0; i <= level; ++i) {
        values[static_cast<std::size_t>(i)] =
            discount * (p_up * values[static_cast<std::size_t>(i) + 1] +
                        p_down * values[static_cast<std::size_t>(i)]);
      }
    }
  }
  return values[0];
}

BinomialOptions::BinomialOptions() : BinomialOptions(Params{}) {}

BinomialOptions::BinomialOptions(Params params) : params_(params) {
  Xoshiro256 rng(params_.seed);
  const std::uint64_t unique = params_.unique_options;
  std::vector<double> us(unique), uk(unique), ut(unique);
  for (std::uint64_t i = 0; i < unique; ++i) {
    us[i] = rng.uniform(20.0, 40.0);
    // Bounded moneyness keeps prices away from zero, so relative error
    // against near-worthless options stays meaningful.
    uk[i] = us[i] * rng.uniform(0.7, 1.3);
    ut[i] = rng.uniform(0.5, 2.0);
  }
  // The portfolio tiles a small set of distinct contracts, each instance
  // jittered by ~0.5% — a strike-ladder-style input where many rows are
  // near-duplicates. This is the "redundancy in the dataset" §4.1 credits
  // for Binomial Options being an ideal AC candidate: when the tiling
  // period divides the grid-stride, a thread re-prices near-identical
  // contracts and memoization answers them with sub-percent error.
  const std::uint64_t n = params_.num_options;
  spot_.resize(n);
  strike_.resize(n);
  expiry_.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t u = i % unique;
    spot_[i] = us[u] * (1.0 + 0.005 * rng.normal());
    strike_[i] = uk[u] * (1.0 + 0.005 * rng.normal());
    expiry_[i] = ut[u];
  }
}

harness::RunOutput BinomialOptions::run(const pragma::ApproxSpec& spec,
                                        std::uint64_t items_per_thread,
                                        const sim::DeviceConfig& device) {
  const std::uint64_t n = params_.num_options;
  offload::Device dev(device);
  approx::RegionExecutor executor(device);
  std::vector<double> prices(n, 0.0);

  harness::RunOutput output;
  {
    offload::MapScope map_in(dev, n * 3 * sizeof(double), offload::MapDir::kTo);
    offload::MapScope map_out(dev, n * sizeof(double), offload::MapDir::kFrom);

    approx::RegionBinding binding;
    binding.name = "binomial.tree_price";
    binding.in_dims = 3;
    binding.out_dims = 1;
    binding.in_bytes = 3 * sizeof(double);
    binding.out_bytes = sizeof(double);
    const auto gather_one = [this](std::uint64_t i, double* in) {
      in[0] = spot_[i];
      in[1] = strike_[i];
      in[2] = expiry_[i];
    };
    const auto price_one = [this](std::uint64_t i, double* out) {
      out[0] = tree_price(spot_[i], strike_[i], expiry_[i], params_.tree_steps, kRiskFree,
                          kVolatility);
    };
    const auto commit_one = [&prices](std::uint64_t i, const double* out) {
      prices[i] = out[0];
    };
    bind_gather(binding, gather_one);
    bind_accurate(binding, price_one);
    // Backward induction is O(steps^2 / 2) fused multiply-adds plus the
    // leaf setup; the cost model charges the canonical benchmark's tree
    // depth (see Params::modeled_tree_steps).
    const double steps = static_cast<double>(params_.modeled_tree_steps);
    bind_constant_cost(binding, 3.0 * steps * steps / 2.0 + 40.0);
    bind_commit(binding, commit_one);
    binding.independent_items = true;  // each item touches only prices[i]
    bind_row_commit_extents(binding, prices, 1);

    const sim::LaunchConfig launch =
        sim::launch_for_items_per_thread(n, items_per_thread, threads_per_team());
    launch_kernel(dev, executor, spec, binding, n, launch, &output.stats);
  }

  output.timeline = dev.timeline();
  output.qoi = std::move(prices);
  return output;
}

}  // namespace hpac::apps
