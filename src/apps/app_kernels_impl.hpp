#pragma once

// Shared templated bodies of the per-ISA application kernels. Included
// ONLY by the per-ISA translation units (app_kernels_sse2.cpp /
// app_kernels_avx2.cpp), which supply an `Ops` traits type over their
// native vector register; everything here is written against that
// abstract interface so there is exactly one copy of the math to keep
// bit-identical with the scalar reference.
//
// Bit-identity contract (the whole point): each lane executes the exact
// operation sequence of `Blackscholes::call_price` / the binomial
// backward-induction statement — same association, explicit mul/add
// (never FMA; these TUs are compiled without -mfma and intrinsics are
// never contracted), and scalar libm calls (`std::log`, `std::exp`)
// extracted per lane, since no vector math library is allowed to change
// rounding. IEEE-exact operations (sub/mul/add/div/sqrt/abs/select)
// produce the same bits lane-wise as scalar, so prices — and therefore
// QoI vectors, error metrics and sweep CSV bytes — are invariant across
// dispatch levels.

#include <cmath>

#include "apps/blackscholes.hpp"

namespace hpac::apps::kernels {

/// `Ops` traits contract:
///   using V = <native vector of doubles>;
///   static constexpr int kWidth;
///   static V broadcast(double), loadu(const double*), storeu(double*, V);
///   static V add/sub/mul/div(V, V);  static V sqrt(V);
///   static V abs(V);                 // clear sign bit
///   static V neg(V);                 // flip sign bit (exact negation)
///   static V select_lt_zero(V x, V if_lt, V if_ge);  // lane: x<0 ? a : b

/// Apply scalar libm `fn` to every lane. The round-trip through memory
/// is bit-exact; the per-lane calls are the same calls the scalar path
/// makes, so there is no vector-math rounding divergence to reason
/// about.
template <typename Ops, double Fn(double)>
inline typename Ops::V lanes_libm(typename Ops::V x) {
  double tmp[Ops::kWidth];
  Ops::storeu(tmp, x);
  for (int l = 0; l < Ops::kWidth; ++l) tmp[l] = Fn(tmp[l]);
  return Ops::loadu(tmp);
}

inline double libm_log(double x) { return std::log(x); }
inline double libm_exp(double x) { return std::exp(x); }

/// Vector CND replicating blackscholes.cpp's `cnd` term by term:
/// polynomial terms left-associated (`a3*k*k*k` = `((a3*k)*k)*k`), the
/// term sum left-associated, and `1/sqrt(2*pi)` the same compile-time
/// constant the scalar TU folds.
template <typename Ops>
inline typename Ops::V cnd_v(typename Ops::V d) {
  using V = typename Ops::V;
  const V one = Ops::broadcast(1.0);
  const V k = Ops::div(one, Ops::add(one, Ops::mul(Ops::broadcast(0.2316419), Ops::abs(d))));
  const V t1 = Ops::mul(Ops::broadcast(0.31938153), k);
  const V t2 = Ops::mul(Ops::mul(Ops::broadcast(-0.356563782), k), k);
  const V t3 = Ops::mul(Ops::mul(Ops::mul(Ops::broadcast(1.781477937), k), k), k);
  const V t4 = Ops::mul(Ops::mul(Ops::mul(Ops::mul(Ops::broadcast(-1.821255978), k), k), k), k);
  const V t5 =
      Ops::mul(Ops::mul(Ops::mul(Ops::mul(Ops::mul(Ops::broadcast(1.330274429), k), k), k), k), k);
  const V poly = Ops::add(Ops::add(Ops::add(Ops::add(t1, t2), t3), t4), t5);
  const V ex = lanes_libm<Ops, libm_exp>(Ops::mul(Ops::mul(Ops::broadcast(-0.5), d), d));
  const double inv_sqrt_2pi = 1.0 / std::sqrt(2.0 * M_PI);
  const V c = Ops::sub(one, Ops::mul(Ops::mul(Ops::broadcast(inv_sqrt_2pi), ex), poly));
  return Ops::select_lt_zero(d, Ops::sub(one, c), c);
}

/// W packed call options per iteration; scalar remainder defers to
/// `Blackscholes::call_price` itself so the tail is trivially exact.
template <typename Ops>
void blackscholes_batch_impl(const double* spot, const double* strike, const double* rate,
                             const double* volatility, const double* expiry, double* out, int n) {
  using V = typename Ops::V;
  constexpr int kW = Ops::kWidth;
  int j = 0;
  for (; j + kW <= n; j += kW) {
    const V s = Ops::loadu(spot + j);
    const V x = Ops::loadu(strike + j);
    const V r = Ops::loadu(rate + j);
    const V v = Ops::loadu(volatility + j);
    const V t = Ops::loadu(expiry + j);
    const V sqrt_t = Ops::sqrt(t);
    const V log_sx = lanes_libm<Ops, libm_log>(Ops::div(s, x));
    // d1 numerator: log(s/x) + (r + 0.5*v*v) * t, exactly as associated
    // in call_price; denominator v*sqrt_t is reused for d2 (the scalar
    // recomputes it — same operands, same op, same bits).
    const V v_sqrt_t = Ops::mul(v, sqrt_t);
    const V d1 = Ops::div(
        Ops::add(log_sx, Ops::mul(Ops::add(r, Ops::mul(Ops::mul(Ops::broadcast(0.5), v), v)), t)),
        v_sqrt_t);
    const V d2 = Ops::sub(d1, v_sqrt_t);
    const V disc = lanes_libm<Ops, libm_exp>(Ops::neg(Ops::mul(r, t)));
    const V price = Ops::sub(Ops::mul(s, cnd_v<Ops>(d1)), Ops::mul(Ops::mul(x, disc), cnd_v<Ops>(d2)));
    Ops::storeu(out + j, price);
  }
  for (; j < n; ++j) {
    out[j] = Blackscholes::call_price(spot[j], strike[j], rate[j], volatility[j], expiry[j]);
  }
}

/// Backward induction with lanes = tree nodes of one level. The update
/// `values[i] = discount * (p_up*values[i+1] + p_down*values[i])` is
/// elementwise over i (no reduction), and both source vectors are loaded
/// before the store, so vectorizing across i is bit-identical by
/// construction. Highest index read is i + kW <= level + 1 <= steps,
/// within the `steps + 1` array.
template <typename Ops>
void binomial_induct_impl(double* values, int steps, double discount, double p_up, double p_down) {
  using V = typename Ops::V;
  constexpr int kW = Ops::kWidth;
  const V disc = Ops::broadcast(discount);
  const V pu = Ops::broadcast(p_up);
  const V pd = Ops::broadcast(p_down);
  for (int level = steps - 1; level >= 0; --level) {
    int i = 0;
    for (; i + kW <= level + 1; i += kW) {
      const V cur = Ops::loadu(values + i);
      const V next = Ops::loadu(values + i + 1);
      Ops::storeu(values + i, Ops::mul(disc, Ops::add(Ops::mul(pu, next), Ops::mul(pd, cur))));
    }
    for (; i <= level; ++i) {
      values[i] = discount * (p_up * values[i + 1] + p_down * values[i]);
    }
  }
}

}  // namespace hpac::apps::kernels
