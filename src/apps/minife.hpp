#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "harness/benchmark.hpp"

namespace hpac::apps {

/// MiniFE (Mantevo): proxy for unstructured implicit finite-element codes
/// (Table 1). Assembles a sparse (CSR) 7-point Poisson operator on a 3-D
/// hex mesh and solves A x = b with unpreconditioned conjugate gradients.
///
/// The approximated region is the SpMV row product; the dot products and
/// vector updates run as accurate device kernels. Because CG feeds every
/// SpMV result back into the search direction, locally introduced errors
/// propagate and amplify — the paper measures errors between 593% and
/// 3.4e22% and excludes MiniFE from the <10%-error overview.
///
/// iACT is *not applicable*: rows have varying numbers of non-zeros, so
/// the region has no uniform fixed-width input key (in_dims = 0 and the
/// executor rejects `memo(in:...)` with a ConfigError).
///
/// QoI: the final residual norm of the solver (MAPE on the scalar).
class MiniFe : public harness::Benchmark {
 public:
  struct Params {
    int grid = 16;          ///< mesh is grid^3 rows
    int max_iterations = 50;
    double tolerance = 1e-8;
  };

  MiniFe();
  explicit MiniFe(Params params);

  std::string name() const override { return "minife"; }
  std::uint64_t default_items_per_thread() const override { return 1; }

  harness::RunOutput run(const pragma::ApproxSpec& spec, std::uint64_t items_per_thread,
                         const sim::DeviceConfig& device) override;

  std::unique_ptr<harness::Benchmark> fork() const override {
    return std::make_unique<MiniFe>(*this);
  }

  std::uint64_t num_rows() const { return rows_; }
  const Params& params() const { return params_; }

 private:
  Params params_;
  std::uint64_t rows_;
  // CSR storage of the assembled operator.
  std::vector<std::uint64_t> row_ptr_;
  std::vector<std::uint64_t> col_idx_;
  std::vector<double> values_;
  std::vector<double> rhs_;
};

}  // namespace hpac::apps
