#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "harness/benchmark.hpp"

namespace hpac::apps {

/// Binomial Options (CUDA SDK): iterative binomial-tree pricing of
/// American-style options (Table 1). Each region invocation prices one
/// option with a full backward induction over `tree_steps` time steps —
/// an expensive, memoization-friendly region. The portfolio tiles a set
/// of distinct options, providing the dataset redundancy the paper calls
/// "an ideal candidate for AC".
///
/// In the original benchmark an entire block collaboratively computes one
/// option, so the paper uses *block-level* decision-making only; the
/// Figure 8 bench follows suit (the harness can still sweep other levels).
///
/// QoI: the computed prices (MAPE).
class BinomialOptions : public harness::Benchmark {
 public:
  struct Params {
    std::uint64_t num_options = 16384;
    /// Distinct contracts tiled (with ~0.5% jitter) across the portfolio;
    /// a power of two so the tiling period aligns with power-of-two
    /// grid-stride thread counts (the redundancy memoization exploits).
    std::uint64_t unique_options = 64;
    /// Depth of the *functional* tree. The canonical CUDA-SDK benchmark
    /// prices 2048-step trees; evaluating those on the host for every
    /// sweep configuration is intractable, so the values come from a
    /// shallower tree while the cost model charges `modeled_tree_steps`
    /// (same class of substitution as the analytic timing model itself —
    /// error is still always computed, never modeled).
    int tree_steps = 64;
    int modeled_tree_steps = 512;
    std::uint64_t seed = 0xb10au;
  };

  BinomialOptions();
  explicit BinomialOptions(Params params);

  std::string name() const override { return "binomial_options"; }
  std::uint64_t default_items_per_thread() const override { return 1; }
  /// The redundancy period is 64 contracts; resonant strides need >= 16.
  std::vector<std::uint64_t> memo_items_axis() const override { return {16, 64, 256}; }

  harness::RunOutput run(const pragma::ApproxSpec& spec, std::uint64_t items_per_thread,
                         const sim::DeviceConfig& device) override;

  std::unique_ptr<harness::Benchmark> fork() const override {
    return std::make_unique<BinomialOptions>(*this);
  }

  /// Reference binomial-tree price (used by unit tests).
  static double tree_price(double spot, double strike, double expiry, int steps, double rate,
                           double volatility);

  const Params& params() const { return params_; }

 private:
  Params params_;
  std::vector<double> spot_, strike_, expiry_;
};

}  // namespace hpac::apps
