#include "apps/kmeans.hpp"

#include <atomic>
#include <cmath>
#include <cstring>

#include "apps/support.hpp"
#include "common/rng.hpp"

namespace hpac::apps {

KMeans::KMeans() : KMeans(Params{}) {}

KMeans::KMeans(Params params) : params_(params) {
  Xoshiro256 rng(params_.seed);
  const auto n = params_.num_points;
  const int d = params_.dims;
  const int k = params_.clusters;
  // Gaussian mixture: k well-separated components with unit spread, so the
  // accurate clustering is meaningful and misclassification is measurable.
  // Observations arrive in long same-component runs, as in real data files
  // recorded source-by-source — the temporal locality TAF exploits.
  std::vector<double> centers(static_cast<std::size_t>(k) * d);
  for (auto& c : centers) c = rng.uniform(-10.0, 10.0);
  points_.resize(n * static_cast<std::size_t>(d));
  int comp = 0;
  std::uint64_t run_left = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (run_left == 0) {
      comp = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(k)));
      run_left = 2048 + rng.uniform_index(6144);
    }
    --run_left;
    for (int j = 0; j < d; ++j) {
      points_[i * d + j] = centers[static_cast<std::size_t>(comp) * d + j] + rng.normal();
    }
  }
}

harness::RunOutput KMeans::run(const pragma::ApproxSpec& spec, std::uint64_t items_per_thread,
                               const sim::DeviceConfig& device) {
  const std::uint64_t n = params_.num_points;
  const int d = params_.dims;
  const int k = params_.clusters;

  offload::Device dev(device);
  approx::RegionExecutor executor(device);

  std::vector<double> centroids(static_cast<std::size_t>(k) * d, 0.0);
  // Rodinia-style initialization: the first k observations seed the centroids.
  for (int c = 0; c < k; ++c) {
    for (int j = 0; j < d; ++j) {
      centroids[static_cast<std::size_t>(c) * d + j] = points_[static_cast<std::size_t>(c) * d + j];
    }
  }
  std::vector<int> membership(n, -1);

  harness::RunOutput output;
  offload::MapScope map_points(dev, n * static_cast<std::uint64_t>(d) * sizeof(double),
                               offload::MapDir::kTo);
  offload::MapScope map_membership(dev, n * sizeof(int), offload::MapDir::kFrom);

  approx::RegionBinding binding;
  binding.name = "kmeans.assign";
  binding.in_dims = d;  // the observation's features — the iACT key
  binding.out_dims = 1; // assigned cluster id
  binding.in_bytes = static_cast<std::uint32_t>(d) * sizeof(double);
  binding.out_bytes = sizeof(int);
  const auto gather_one = [this, d](std::uint64_t i, double* in) {
    std::memcpy(in, points_.data() + i * static_cast<std::uint64_t>(d),
                static_cast<std::size_t>(d) * sizeof(double));
  };
  const auto assign_one = [this, d, k, &centroids](std::uint64_t i, double* out) {
    int best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (int c = 0; c < k; ++c) {
      double dist = 0;
      for (int j = 0; j < d; ++j) {
        const double diff = points_[i * d + j] - centroids[static_cast<std::size_t>(c) * d + j];
        dist += diff * diff;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    out[0] = static_cast<double>(best);
  };
  bind_gather(binding, gather_one);
  bind_accurate(binding, assign_one);
  bind_constant_cost(binding, 3.0 * d * k + 2.0 * k);

  // `changed` commutes (integer adds), so commits of different items may
  // run on different executor shards; the atomic_ref makes that race-free
  // without affecting the count, while the plain storage lets the audit
  // layer snapshot/restore it as a commuting extent around differential
  // re-runs.
  alignas(8) std::uint64_t changed = 0;
  const auto commit_one = [&membership, &changed](std::uint64_t i, const double* out) {
    const int assigned = static_cast<int>(out[0]);
    if (membership[i] != assigned) {
      membership[i] = assigned;
      std::atomic_ref<std::uint64_t>(changed).fetch_add(1, std::memory_order_relaxed);
    }
  };
  bind_commit(binding, commit_one);
  binding.independent_items = true;  // membership[i] writes + commuting counter
  binding.commit_extents = [&membership, &changed](std::uint64_t i,
                                                   approx::audit::ExtentSink& sink) {
    sink.writes(membership.data() + i, sizeof(int));
    sink.commuting(&changed, sizeof(changed));
  };

  const sim::LaunchConfig launch =
      sim::launch_for_items_per_thread(n, items_per_thread, threads_per_team());

  int iterations = 0;
  for (; iterations < params_.max_iterations; ++iterations) {
    changed = 0;
    // The approximated kernel accounts for a few percent of the per-
    // iteration time (paper: 3.5%); the membership transfer back to the
    // host and the host-side centroid update dominate, which is why the
    // convergence criterion drives the end-to-end speedup.
    launch_kernel(dev, executor, spec, binding, n, launch, &output.stats);
    dev.record_dtoh(n * sizeof(int));

    // Host-side centroid update (reduction over all points).
    std::vector<double> sums(static_cast<std::size_t>(k) * d, 0.0);
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(k), 0);
    for (std::uint64_t i = 0; i < n; ++i) {
      const int c = membership[i];
      if (c < 0) continue;
      ++counts[static_cast<std::size_t>(c)];
      for (int j = 0; j < d; ++j) sums[static_cast<std::size_t>(c) * d + j] += points_[i * d + j];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<std::size_t>(c)] == 0) continue;
      for (int j = 0; j < d; ++j) {
        centroids[static_cast<std::size_t>(c) * d + j] =
            sums[static_cast<std::size_t>(c) * d + j] /
            static_cast<double>(counts[static_cast<std::size_t>(c)]);
      }
    }
    dev.record_host(static_cast<double>(n) * d * 2.0 / 10e9);
    dev.record_htod(static_cast<std::uint64_t>(k) * static_cast<std::uint64_t>(d) *
                    sizeof(double));

    if (changed == 0) {
      ++iterations;
      break;
    }
  }

  output.timeline = dev.timeline();
  output.qoi_labels = std::move(membership);
  output.iterations = iterations;
  return output;
}

}  // namespace hpac::apps
