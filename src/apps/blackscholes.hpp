#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "harness/benchmark.hpp"

namespace hpac::apps {

/// Blackscholes (PARSEC): analytic European option pricing (Table 1).
///
/// The portfolio mirrors the PARSEC input structure: a small set of
/// distinct options tiled to the full problem size, which is the data
/// redundancy memoization exploits. QoI: the computed call prices (MAPE).
///
/// The paper notes 99% of the benchmark's runtime is host allocation and
/// transfers, so §4.1 reports *kernel-only* performance; `timing_scope()`
/// encodes that.
class Blackscholes : public harness::Benchmark {
 public:
  struct Params {
    std::uint64_t num_options = 1u << 18;
    std::uint64_t unique_options = 1024;  ///< distinct rows tiled across the input
    std::uint64_t seed = 0x9d5cu;
  };

  Blackscholes();
  explicit Blackscholes(Params params);

  std::string name() const override { return "blackscholes"; }
  harness::TimingScope timing_scope() const override {
    return harness::TimingScope::kKernelOnly;
  }
  std::uint64_t default_items_per_thread() const override { return 1; }

  harness::RunOutput run(const pragma::ApproxSpec& spec, std::uint64_t items_per_thread,
                         const sim::DeviceConfig& device) override;

  std::unique_ptr<harness::Benchmark> fork() const override {
    return std::make_unique<Blackscholes>(*this);
  }

  /// Reference closed-form call price (used by unit tests).
  static double call_price(double spot, double strike, double rate, double volatility,
                           double expiry);

  const Params& params() const { return params_; }

 private:
  Params params_;
  std::vector<double> spot_, strike_, rate_, volatility_, expiry_;
};

}  // namespace hpac::apps
