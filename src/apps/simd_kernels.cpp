#include "apps/simd_kernels.hpp"

namespace hpac::apps::kernels {

// Widest-first with fall-through, mirroring select_iact_scan: a level
// whose TU was not compiled (or a non-x86 host) degrades to the next
// narrower ISA; kOff always yields nullptr and the apps' scalar path.

BlackscholesBatchFn blackscholes_batch_fn() {
  const simd::Level level = simd::active_level();
  if (level >= simd::Level::kAvx2) {
    if (BlackscholesBatchFn fn = blackscholes_batch_avx2()) return fn;
  }
  if (level >= simd::Level::kSse2) {
    if (BlackscholesBatchFn fn = blackscholes_batch_sse2()) return fn;
  }
  return nullptr;
}

BinomialInductFn binomial_induct_fn() {
  const simd::Level level = simd::active_level();
  if (level >= simd::Level::kAvx2) {
    if (BinomialInductFn fn = binomial_induct_avx2()) return fn;
  }
  if (level >= simd::Level::kSse2) {
    if (BinomialInductFn fn = binomial_induct_sse2()) return fn;
  }
  return nullptr;
}

}  // namespace hpac::apps::kernels
