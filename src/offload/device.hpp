#pragma once

#include <cstdint>

#include "sim/device.hpp"

namespace hpac::offload {

/// Wall-clock decomposition of an offloaded application run. The paper
/// reports *end-to-end* speedups including transfer time for every
/// benchmark except Blackscholes, whose §4.1 analysis uses kernel time
/// only because 99% of its runtime is allocation + transfer.
struct Timeline {
  double htod_seconds = 0;    ///< host-to-device map(to:) traffic
  double dtoh_seconds = 0;    ///< device-to-host map(from:) traffic
  double kernel_seconds = 0;  ///< sum of modeled kernel times
  double host_seconds = 0;    ///< host-side (un-offloaded) work

  double end_to_end_seconds() const {
    return htod_seconds + dtoh_seconds + kernel_seconds + host_seconds;
  }

  Timeline& operator+=(const Timeline& other) {
    htod_seconds += other.htod_seconds;
    dtoh_seconds += other.dtoh_seconds;
    kernel_seconds += other.kernel_seconds;
    host_seconds += other.host_seconds;
    return *this;
  }
};

/// A simulated offload target: a `sim::DeviceConfig` plus the transfer
/// ledger that `map` operations charge into.
class Device {
 public:
  explicit Device(sim::DeviceConfig config);

  const sim::DeviceConfig& config() const { return config_; }
  Timeline& timeline() { return timeline_; }
  const Timeline& timeline() const { return timeline_; }

  /// Charge a host-to-device transfer of `bytes` (a `map(to:)` section).
  void record_htod(std::uint64_t bytes);
  /// Charge a device-to-host transfer of `bytes` (a `map(from:)` section).
  void record_dtoh(std::uint64_t bytes);
  /// Charge host-side computation time (for end-to-end accounting).
  void record_host(double seconds);

  /// Zero the timeline (e.g. between harness trials).
  void reset();

 private:
  sim::DeviceConfig config_;
  Timeline timeline_;
};

/// Map directionality of a buffer section (OpenMP `map` modifiers).
enum class MapDir { kTo, kFrom, kToFrom, kAlloc };

/// RAII mapping of a host array section onto the device, mirroring
/// OpenMP's structured `map` regions: `to`/`tofrom` transfers are charged
/// on entry, `from`/`tofrom` on exit. The data itself stays in host memory
/// (the simulator executes functionally); only time is modeled.
class MapScope {
 public:
  MapScope(Device& device, std::uint64_t bytes, MapDir dir);
  ~MapScope();

  MapScope(const MapScope&) = delete;
  MapScope& operator=(const MapScope&) = delete;

 private:
  Device& device_;
  std::uint64_t bytes_;
  MapDir dir_;
};

}  // namespace hpac::offload
