#include "offload/device.hpp"

namespace hpac::offload {

Device::Device(sim::DeviceConfig config) : config_(std::move(config)) {}

void Device::record_htod(std::uint64_t bytes) {
  timeline_.htod_seconds += config_.transfer_seconds(bytes);
}

void Device::record_dtoh(std::uint64_t bytes) {
  timeline_.dtoh_seconds += config_.transfer_seconds(bytes);
}

void Device::record_host(double seconds) { timeline_.host_seconds += seconds; }

void Device::reset() { timeline_ = Timeline{}; }

MapScope::MapScope(Device& device, std::uint64_t bytes, MapDir dir)
    : device_(device), bytes_(bytes), dir_(dir) {
  if (dir == MapDir::kTo || dir == MapDir::kToFrom) device_.record_htod(bytes_);
}

MapScope::~MapScope() {
  if (dir_ == MapDir::kFrom || dir_ == MapDir::kToFrom) device_.record_dtoh(bytes_);
}

}  // namespace hpac::offload
