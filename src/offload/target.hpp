#pragma once

#include <cstdint>
#include <string_view>

#include "approx/region.hpp"
#include "offload/device.hpp"
#include "pragma/spec.hpp"
#include "sim/launch.hpp"

namespace hpac::offload {

/// Launch an annotated `target teams distribute parallel for` over items
/// [0, n): the library equivalent of
///
///   #pragma approx <spec-clauses>
///   #pragma omp target teams distribute parallel for
///   for (size_t i = 0; i < n; ++i) { <region> }
///
/// Kernel time is added to the device timeline; the region report (timing
/// + approximation counters) is returned for the caller's bookkeeping.
approx::RegionReport target_parallel_for(Device& device,
                                         const approx::RegionExecutor& executor,
                                         const pragma::ApproxSpec& spec,
                                         const approx::RegionBinding& binding, std::uint64_t n,
                                         const sim::LaunchConfig& launch);

/// Convenience overload that parses the clause text on the fly, so call
/// sites read like the paper's pragmas:
///
///   target_parallel_for(dev, exec, "memo(out:3:8:0.5) level(warp)", ...);
approx::RegionReport target_parallel_for(Device& device,
                                         const approx::RegionExecutor& executor,
                                         std::string_view spec_text,
                                         const approx::RegionBinding& binding, std::uint64_t n,
                                         const sim::LaunchConfig& launch);

/// Composed directives (the paper's Figure 2): perforation on the loop,
/// memoization on the body —
///
///   target_parallel_for(dev, exec, "perfo(small:4)",
///                       "memo(in:10:0.5f) in(x[i]) out(y[i])", ...);
approx::RegionReport target_parallel_for(Device& device,
                                         const approx::RegionExecutor& executor,
                                         std::string_view perfo_text,
                                         std::string_view memo_text,
                                         const approx::RegionBinding& binding, std::uint64_t n,
                                         const sim::LaunchConfig& launch);

}  // namespace hpac::offload
