#include "offload/target.hpp"

#include "pragma/parser.hpp"

namespace hpac::offload {

approx::RegionReport target_parallel_for(Device& device,
                                         const approx::RegionExecutor& executor,
                                         const pragma::ApproxSpec& spec,
                                         const approx::RegionBinding& binding, std::uint64_t n,
                                         const sim::LaunchConfig& launch) {
  approx::RegionReport report = executor.run(spec, binding, n, launch);
  device.timeline().kernel_seconds += report.timing.seconds;
  return report;
}

approx::RegionReport target_parallel_for(Device& device,
                                         const approx::RegionExecutor& executor,
                                         std::string_view spec_text,
                                         const approx::RegionBinding& binding, std::uint64_t n,
                                         const sim::LaunchConfig& launch) {
  return target_parallel_for(device, executor, pragma::parse_approx(spec_text), binding, n,
                             launch);
}

approx::RegionReport target_parallel_for(Device& device,
                                         const approx::RegionExecutor& executor,
                                         std::string_view perfo_text,
                                         std::string_view memo_text,
                                         const approx::RegionBinding& binding, std::uint64_t n,
                                         const sim::LaunchConfig& launch) {
  approx::RegionReport report =
      executor.run_composed(pragma::parse_approx(perfo_text), pragma::parse_approx(memo_text),
                            binding, n, launch);
  device.timeline().kernel_seconds += report.timing.seconds;
  return report;
}

}  // namespace hpac::offload
