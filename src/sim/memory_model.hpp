#pragma once

#include <cstdint>
#include <span>

#include "sim/device.hpp"
#include "sim/warp.hpp"

namespace hpac::sim {

/// Global-memory coalescing model.
///
/// A warp's lane accesses are combined into memory transactions of
/// `DeviceConfig::transaction_bytes`; the number of transactions is the
/// number of distinct segments touched by active lanes (CUDA's sector
/// model). Perforation and divergence change which lanes are active, which
/// is how "herded" perforation keeps transactions aligned (paper §3.1.5)
/// while per-thread `small` perforation fragments them.
class CoalescingModel {
 public:
  explicit CoalescingModel(const DeviceConfig& dev) : segment_bytes_(dev.transaction_bytes) {}

  /// Transactions for explicit lane byte-addresses under an active mask.
  std::uint32_t transactions(std::span<const std::uint64_t> lane_addresses,
                             LaneMask active) const;

  /// Transactions for the common pattern "active lane l accesses
  /// base + (item_of_lane l) * elem_bytes" where items are consecutive for
  /// consecutive lanes (unit-stride) — the layout of a grid-stride loop.
  std::uint32_t unit_stride_transactions(std::uint64_t first_item, std::uint32_t elem_bytes,
                                         LaneMask active, int warp_size) const;

  /// Transactions when each active lane accesses `elems_per_lane`
  /// consecutive elements with a stride of `stride_elems` between lanes
  /// (column-major layouts as in Figure 5's array sections).
  std::uint32_t strided_transactions(std::uint32_t elem_bytes, std::uint32_t elems_per_lane,
                                     std::uint64_t stride_elems, LaneMask active,
                                     int warp_size) const;

  std::uint32_t segment_bytes() const { return segment_bytes_; }

 private:
  std::uint32_t segment_bytes_;
};

}  // namespace hpac::sim
