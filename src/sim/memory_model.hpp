#pragma once

#include <cstdint>
#include <span>

#include "sim/device.hpp"
#include "sim/warp.hpp"

namespace hpac::sim {

/// Global-memory coalescing model.
///
/// A warp's lane accesses are combined into memory transactions of
/// `DeviceConfig::transaction_bytes`; the number of transactions is the
/// number of distinct segments touched by active lanes (CUDA's sector
/// model). Perforation and divergence change which lanes are active, which
/// is how "herded" perforation keeps transactions aligned (paper §3.1.5)
/// while per-thread `small` perforation fragments them.
class CoalescingModel {
 public:
  explicit CoalescingModel(const DeviceConfig& dev) : segment_bytes_(dev.transaction_bytes) {
    // Real devices use power-of-two sectors; precompute the shift so the
    // per-warp hot path divides with it instead of a runtime divisor.
    while ((1u << (segment_shift_ + 1)) <= segment_bytes_) ++segment_shift_;
    if ((1u << segment_shift_) != segment_bytes_) segment_shift_ = -1;
  }

  /// Transactions for explicit lane byte-addresses under an active mask.
  std::uint32_t transactions(std::span<const std::uint64_t> lane_addresses,
                             LaneMask active) const;

  /// Transactions for the common pattern "active lane l accesses
  /// base + (item_of_lane l) * elem_bytes" where items are consecutive for
  /// consecutive lanes (unit-stride) — the layout of a grid-stride loop.
  /// Defined inline below: the region executor calls this once per warp
  /// per load/store, making it one of the hottest functions of the
  /// simulator.
  std::uint32_t unit_stride_transactions(std::uint64_t first_item, std::uint32_t elem_bytes,
                                         LaneMask active, int warp_size) const;

  /// Transactions when each active lane accesses `elems_per_lane`
  /// consecutive elements with a stride of `stride_elems` between lanes
  /// (column-major layouts as in Figure 5's array sections).
  std::uint32_t strided_transactions(std::uint32_t elem_bytes, std::uint32_t elems_per_lane,
                                     std::uint64_t stride_elems, LaneMask active,
                                     int warp_size) const;

  std::uint32_t segment_bytes() const { return segment_bytes_; }

 private:
  std::uint64_t segment_of(std::uint64_t addr) const {
    return segment_shift_ >= 0 ? addr >> segment_shift_ : addr / segment_bytes_;
  }

  std::uint32_t segment_bytes_;
  int segment_shift_ = 0;
};

inline std::uint32_t CoalescingModel::unit_stride_transactions(std::uint64_t first_item,
                                                               std::uint32_t elem_bytes,
                                                               LaneMask active,
                                                               int warp_size) const {
  if (active == 0 || elem_bytes == 0) return 0;
  // Active masks are contiguous lane ranges in every common case (full
  // steps, ragged tails, herded perforation), and a contiguous
  // unit-stride range touches exactly the segments between its first and
  // last byte — two shifts, no per-lane work.
  const LaneMask masked = active & full_mask(warp_size);
  if (masked == 0) return 0;
  const int lo = std::countr_zero(masked);
  const int hi = 63 - std::countl_zero(masked);
  if (masked == (full_mask(hi - lo + 1) << lo)) {
    const std::uint64_t first_addr =
        (first_item + static_cast<std::uint64_t>(lo)) * elem_bytes;
    const std::uint64_t last_addr =
        (first_item + static_cast<std::uint64_t>(hi)) * elem_bytes + elem_bytes - 1;
    return static_cast<std::uint32_t>(segment_of(last_addr) - segment_of(first_addr) + 1);
  }
  // Sparse masks (per-thread perforation, split accurate/approximate
  // paths): addresses still grow monotonically with the lane index, so
  // distinct segments are countable with a running high-water mark — no
  // materialized segment list, no sort.
  std::uint32_t count = 0;
  std::uint64_t counted_up_to = 0;  // one past the highest segment counted
  for_each_lane(masked, [&](int lane) {
    const std::uint64_t addr = (first_item + static_cast<std::uint64_t>(lane)) * elem_bytes;
    std::uint64_t first_seg = segment_of(addr);
    const std::uint64_t last_seg = segment_of(addr + elem_bytes - 1);
    if (first_seg < counted_up_to) first_seg = counted_up_to;
    if (first_seg <= last_seg) {
      count += static_cast<std::uint32_t>(last_seg - first_seg + 1);
      counted_up_to = last_seg + 1;
    }
  });
  return count;
}

}  // namespace hpac::sim
