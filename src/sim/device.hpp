#pragma once

#include <cstdint>
#include <string>

namespace hpac::sim {

/// Parameters of a simulated GPU.
///
/// The simulator is *functional + first-order analytic timing*: kernels run
/// lane-by-lane on the host with exact arithmetic, while time is derived
/// from these parameters via the models in `memory_model.hpp` and
/// `timing.hpp` (SIMT divergence serialization, coalesced transaction
/// counting, occupancy-dependent latency hiding). Absolute times are not
/// meaningful; ratios between configurations of the same device are, which
/// is what the paper's evaluation reports (speedup over the accurate run).
struct DeviceConfig {
  std::string name;

  // --- parallelism ---
  int num_sms = 80;            ///< streaming multiprocessors (CUs on AMD)
  int warp_size = 32;          ///< lanes per warp (wavefront = 64 on AMD)
  int max_warps_per_sm = 64;   ///< resident warp contexts per SM
  int max_blocks_per_sm = 32;  ///< resident thread blocks per SM
  int issue_width = 4;         ///< warp schedulers per SM (warps issuing per cycle)

  // --- memories ---
  std::uint64_t global_mem_bytes = 16ull << 30;   ///< device global memory
  std::uint32_t shared_mem_per_block = 96u << 10; ///< bytes of shared memory a block may use
  std::uint32_t shared_mem_per_sm = 96u << 10;    ///< total shared memory per SM
  std::uint32_t transaction_bytes = 32;           ///< coalescing segment size
  double cycles_per_transaction = 2.0;            ///< per-SM DRAM throughput model
  double mem_latency_cycles = 450.0;              ///< exposed DRAM round-trip latency
  double mem_parallelism = 4.0;  ///< outstanding loads per warp (grid-stride MLP)
  double shared_mem_access_cycles = 1.0;          ///< LDS/shared access cost

  // --- clocks and host link ---
  double clock_ghz = 1.38;            ///< SM clock used to convert cycles to seconds
  double host_link_gbps = 16.0;       ///< HtoD/DtoH bandwidth (GB/s)
  double host_link_latency_us = 10.0; ///< fixed per-transfer latency
  double kernel_launch_overhead_us = 0.3;  ///< driver launch latency per kernel

  /// Total thread contexts the device can have resident at once.
  std::uint64_t max_resident_threads() const {
    return static_cast<std::uint64_t>(num_sms) * max_warps_per_sm * warp_size;
  }

  /// Seconds for a host<->device transfer of `bytes`.
  double transfer_seconds(std::uint64_t bytes) const;

  /// Convert SM cycles to seconds at the device clock.
  double cycles_to_seconds(double cycles) const { return cycles / (clock_ghz * 1e9); }
};

/// NVIDIA Tesla V100-like preset (the paper's first platform: 80 SMs,
/// warp size 32, 16 GB HBM2).
DeviceConfig v100();

/// AMD Instinct MI250X-like preset (the paper's second platform: 220 CUs
/// per the paper's description, wavefront size 64, 64 KB LDS).
DeviceConfig mi250x();

/// NVIDIA A100-like preset (108 SMs, warp size 32, 40 GB HBM2e, 164 KB
/// shared memory per SM). Not one of the paper's two platforms; it extends
/// the portability comparison with a third device whose large shared
/// memory admits AC states that are infeasible on the MI250X.
DeviceConfig a100();

/// Look up a preset by name ("v100", "mi250x", "a100", "nvidia", "amd",
/// "ampere"). Throws hpac::ConfigError for unknown names.
DeviceConfig device_by_name(const std::string& name);

}  // namespace hpac::sim
