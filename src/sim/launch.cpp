#include "sim/launch.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hpac::sim {

void LaunchConfig::validate(const DeviceConfig& dev) const {
  if (num_teams == 0) throw ConfigError("num_teams must be positive");
  if (threads_per_team == 0) throw ConfigError("threads_per_team must be positive");
  const std::uint32_t max_threads_per_block = 1024;
  if (threads_per_team > max_threads_per_block) {
    throw ConfigError(strings::format("threads_per_team %u exceeds block limit %u",
                                      threads_per_team, max_threads_per_block));
  }
  if (warps_per_team(dev) > static_cast<std::uint32_t>(dev.max_warps_per_sm)) {
    throw ConfigError("a single team exceeds the SM's resident warp capacity");
  }
}

LaunchConfig launch_for_items_per_thread(std::uint64_t n, std::uint64_t items_per_thread,
                                         std::uint32_t threads_per_team) {
  HPAC_REQUIRE(n > 0, "empty iteration space");
  HPAC_REQUIRE(items_per_thread > 0, "items_per_thread must be positive");
  HPAC_REQUIRE(threads_per_team > 0, "threads_per_team must be positive");
  const std::uint64_t threads_needed =
      std::max<std::uint64_t>(1, (n + items_per_thread - 1) / items_per_thread);
  LaunchConfig cfg;
  // Extreme items-per-thread values (Figure 8c sweeps up to 16384) need
  // fewer threads than one team; shrink the team instead of silently
  // granting more parallelism than requested.
  cfg.threads_per_team = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(threads_per_team, threads_needed));
  cfg.num_teams = std::max<std::uint64_t>(
      1, (threads_needed + cfg.threads_per_team - 1) / cfg.threads_per_team);
  return cfg;
}

}  // namespace hpac::sim
