#include "sim/warp.hpp"

#include "common/error.hpp"

namespace hpac::sim {

LaneMask ballot(std::span<const bool> predicates, LaneMask active) {
  HPAC_REQUIRE(predicates.size() <= 64, "warp size exceeds 64 lanes");
  LaneMask result = 0;
  for (std::size_t lane = 0; lane < predicates.size(); ++lane) {
    if (lane_active(active, static_cast<int>(lane)) && predicates[lane]) {
      result = with_lane(result, static_cast<int>(lane));
    }
  }
  return result;
}

int first_lane(LaneMask mask) {
  if (mask == 0) return -1;
  return std::countr_zero(mask);
}

void WarpLedger::charge_paths(std::span<const double> path_cycles) {
  int taken = 0;
  for (double cycles : path_cycles) {
    if (cycles > 0.0) {
      compute_cycles_ += cycles;
      ++taken;
    }
  }
  if (taken > 1) ++divergent_regions_;
}

void WarpLedger::charge_compute(double cycles) { compute_cycles_ += cycles; }

void WarpLedger::charge_memory(std::uint32_t transactions, std::uint32_t rounds) {
  transactions_ += transactions;
  memory_rounds_ += rounds;
}

void WarpLedger::charge_shared(std::uint32_t accesses, double cycles_per_access) {
  compute_cycles_ += accesses * cycles_per_access;
}

void WarpLedger::charge_barrier(double cycles) { compute_cycles_ += cycles; }

}  // namespace hpac::sim
