#include "sim/device.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hpac::sim {

double DeviceConfig::transfer_seconds(std::uint64_t bytes) const {
  const double bandwidth = host_link_gbps * 1e9;  // bytes per second
  return host_link_latency_us * 1e-6 + static_cast<double>(bytes) / bandwidth;
}

DeviceConfig v100() {
  DeviceConfig d;
  d.name = "v100";
  // SM count scaled by ~1/8 (80 -> 10) so that bench-scale workloads,
  // which must run functionally on one host core, exercise the same
  // occupancy regimes (full device at items/thread ~ 1-8, starvation at
  // large items/thread) as paper-scale workloads did on the real parts.
  // The NVIDIA:AMD SM ratio (80:220) is preserved; see DESIGN.md.
  d.num_sms = 10;
  d.warp_size = 32;
  d.max_warps_per_sm = 64;
  d.max_blocks_per_sm = 32;
  d.issue_width = 4;
  d.global_mem_bytes = 16ull << 30;
  d.shared_mem_per_block = 96u << 10;
  d.shared_mem_per_sm = 96u << 10;
  d.transaction_bytes = 32;
  d.cycles_per_transaction = 2.0;
  d.mem_latency_cycles = 450.0;
  d.clock_ghz = 1.38;
  d.host_link_gbps = 16.0;
  return d;
}

DeviceConfig mi250x() {
  DeviceConfig d;
  d.name = "mi250x";
  // The paper describes each MI250X as having 220 SMs; scaled by ~1/8
  // (220 -> 28) like the V100 preset, preserving the 80:220 ratio that
  // makes the AMD device need more blocks to hide latency (Figure 8c).
  d.num_sms = 28;
  d.warp_size = 64;
  d.max_warps_per_sm = 32;
  d.max_blocks_per_sm = 16;
  d.issue_width = 4;
  d.global_mem_bytes = 64ull << 30;
  d.shared_mem_per_block = 64u << 10;
  d.shared_mem_per_sm = 64u << 10;
  d.transaction_bytes = 64;
  d.cycles_per_transaction = 1.5;
  d.mem_latency_cycles = 600.0;
  d.clock_ghz = 1.7;
  d.host_link_gbps = 36.0;
  return d;
}

DeviceConfig a100() {
  DeviceConfig d;
  d.name = "a100";
  // 108 SMs scaled by ~1/8 (108 -> 14) like the other presets, keeping
  // the V100:A100:MI250X SM ratio (80:108:220) so the occupancy regimes
  // the paper studies stay comparable across all three devices.
  d.num_sms = 14;
  d.warp_size = 32;
  d.max_warps_per_sm = 64;
  d.max_blocks_per_sm = 32;
  d.issue_width = 4;
  d.global_mem_bytes = 40ull << 30;
  d.shared_mem_per_block = 163u << 10;  // 164 KB per SM, 163 KB usable per block
  d.shared_mem_per_sm = 164u << 10;
  d.transaction_bytes = 32;
  d.cycles_per_transaction = 1.6;  // HBM2e: higher bandwidth than the V100
  d.mem_latency_cycles = 400.0;
  d.clock_ghz = 1.41;
  d.host_link_gbps = 25.0;  // PCIe 4.0
  return d;
}

DeviceConfig device_by_name(const std::string& name) {
  const std::string key = strings::to_lower(name);
  if (key == "v100" || key == "nvidia") return v100();
  if (key == "mi250x" || key == "amd") return mi250x();
  if (key == "a100" || key == "ampere") return a100();
  throw ConfigError("unknown device preset: " + name);
}

}  // namespace hpac::sim
