#include "sim/timing.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hpac::sim {

KernelTracker::KernelTracker(const DeviceConfig& dev, const LaunchConfig& launch,
                             std::size_t shared_bytes_per_block)
    : KernelTracker(dev, launch, shared_bytes_per_block, 0, launch.num_teams) {}

KernelTracker::KernelTracker(const DeviceConfig& dev, const LaunchConfig& launch,
                             std::size_t shared_bytes_per_block, std::uint64_t team_begin,
                             std::uint64_t team_end)
    : dev_(dev),
      launch_(launch),
      shared_bytes_per_block_(shared_bytes_per_block),
      warps_per_team_(launch.warps_per_team(dev)),
      team_begin_(team_begin),
      team_end_(team_end) {
  launch.validate(dev);
  HPAC_REQUIRE(shared_bytes_per_block <= dev.shared_mem_per_block,
               "block shared memory exceeds device limit");
  HPAC_REQUIRE(team_begin <= team_end && team_end <= launch.num_teams,
               "tracker team range outside the launch grid");
  ledgers_.resize((team_end - team_begin) * warps_per_team_);
}

WarpLedger& KernelTracker::warp(std::uint64_t team, std::uint32_t warp_in_team) {
  return ledgers_[(team - team_begin_) * warps_per_team_ + warp_in_team];
}

const WarpLedger& KernelTracker::warp(std::uint64_t team, std::uint32_t warp_in_team) const {
  return ledgers_[(team - team_begin_) * warps_per_team_ + warp_in_team];
}

void KernelTracker::merge(const KernelTracker& shard) {
  HPAC_REQUIRE(shard.warps_per_team_ == warps_per_team_,
               "merging trackers of different launch geometries");
  HPAC_REQUIRE(team_begin_ <= shard.team_begin_ && shard.team_end_ <= team_end_,
               "merging a shard outside this tracker's team range");
  for (std::uint64_t team = shard.team_begin_; team < shard.team_end_; ++team) {
    for (std::uint32_t w = 0; w < warps_per_team_; ++w) {
      warp(team, w).merge(shard.warp(team, w));
    }
  }
}

int KernelTracker::resident_blocks_per_sm() const {
  int by_blocks = dev_.max_blocks_per_sm;
  int by_warps = std::max(1u, dev_.max_warps_per_sm / std::max(1u, warps_per_team_));
  int by_shared = dev_.max_blocks_per_sm;
  if (shared_bytes_per_block_ > 0) {
    by_shared = std::max<int>(
        1, static_cast<int>(dev_.shared_mem_per_sm / shared_bytes_per_block_));
  }
  return std::max(1, std::min({by_blocks, by_warps, by_shared}));
}

KernelTiming KernelTracker::finalize() const {
  HPAC_REQUIRE(team_begin_ == 0 && team_end_ == launch_.num_teams,
               "finalize() requires a full-range tracker; merge shards first");
  KernelTiming timing;
  const int resident_blocks = resident_blocks_per_sm();
  timing.resident_blocks_per_sm = resident_blocks;

  const std::uint64_t num_teams = launch_.num_teams;
  const int num_sms = dev_.num_sms;

  double max_sm_cycles = 0;
  for (int sm = 0; sm < num_sms; ++sm) {
    // Blocks are distributed round-robin, the usual hardware rasterization
    // approximation for uniform-cost blocks: SM `sm` runs blocks
    // sm, sm + num_sms, sm + 2*num_sms, ... — membership is arithmetic,
    // so no per-SM block list needs materializing.
    const auto sm_u = static_cast<std::uint64_t>(sm);
    if (sm_u >= num_teams) continue;
    const std::uint64_t sm_blocks =
        (num_teams - sm_u + static_cast<std::uint64_t>(num_sms) - 1) /
        static_cast<std::uint64_t>(num_sms);

    double sm_cycles = 0;
    for (std::uint64_t start = 0; start < sm_blocks;
         start += static_cast<std::uint64_t>(resident_blocks)) {
      const std::uint64_t end =
          std::min(sm_blocks, start + static_cast<std::uint64_t>(resident_blocks));
      double wave_compute = 0;
      double wave_mem = 0;
      std::uint64_t wave_rounds_max = 0;
      std::uint32_t wave_warps = 0;
      for (std::uint64_t i = start; i < end; ++i) {
        const std::uint64_t block = sm_u + i * static_cast<std::uint64_t>(num_sms);
        for (std::uint32_t w = 0; w < warps_per_team_; ++w) {
          const WarpLedger& ledger = warp(block, w);
          wave_compute += ledger.compute_cycles();
          wave_mem += static_cast<double>(ledger.transactions()) * dev_.cycles_per_transaction;
          wave_rounds_max = std::max(wave_rounds_max, ledger.memory_rounds());
          ++wave_warps;
        }
      }
      const int issue = std::min<int>(dev_.issue_width, std::max<std::uint32_t>(1, wave_warps));
      const double compute_time = wave_compute / static_cast<double>(issue);
      // Exposed latency: grid-stride iterations are independent, so each
      // warp keeps `mem_parallelism` loads in flight, and resident warps
      // overlap their stalls; what remains on the critical path per round
      // is latency / (warps x MLP).
      const double overlap =
          std::max(1.0, static_cast<double>(wave_warps) * dev_.mem_parallelism);
      const double exposed =
          static_cast<double>(wave_rounds_max) * dev_.mem_latency_cycles / overlap;
      sm_cycles += std::max(compute_time, wave_mem) + exposed;
    }
    max_sm_cycles = std::max(max_sm_cycles, sm_cycles);
  }

  for (const WarpLedger& ledger : ledgers_) {
    timing.total_transactions += ledger.transactions();
    timing.divergent_regions += ledger.divergent_regions();
    timing.compute_cycles_total += ledger.compute_cycles();
  }

  const std::uint64_t first_wave_blocks =
      std::min<std::uint64_t>(num_teams, static_cast<std::uint64_t>(resident_blocks));
  timing.occupancy = static_cast<double>(first_wave_blocks * warps_per_team_) /
                     static_cast<double>(dev_.max_warps_per_sm);
  timing.occupancy = std::min(1.0, timing.occupancy);

  timing.critical_path_cycles = max_sm_cycles;
  timing.seconds =
      dev_.cycles_to_seconds(max_sm_cycles) + dev_.kernel_launch_overhead_us * 1e-6;
  return timing;
}

}  // namespace hpac::sim
