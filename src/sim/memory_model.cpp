#include "sim/memory_model.hpp"

#include <algorithm>
#include <vector>

namespace hpac::sim {

std::uint32_t CoalescingModel::transactions(std::span<const std::uint64_t> lane_addresses,
                                            LaneMask active) const {
  std::vector<std::uint64_t> segments;
  segments.reserve(lane_addresses.size());
  for (std::size_t lane = 0; lane < lane_addresses.size(); ++lane) {
    if (!lane_active(active, static_cast<int>(lane))) continue;
    segments.push_back(lane_addresses[lane] / segment_bytes_);
  }
  if (segments.empty()) return 0;
  std::sort(segments.begin(), segments.end());
  segments.erase(std::unique(segments.begin(), segments.end()), segments.end());
  return static_cast<std::uint32_t>(segments.size());
}

std::uint32_t CoalescingModel::strided_transactions(std::uint32_t elem_bytes,
                                                    std::uint32_t elems_per_lane,
                                                    std::uint64_t stride_elems, LaneMask active,
                                                    int warp_size) const {
  if (active == 0) return 0;
  std::vector<std::uint64_t> segments;
  for (int lane = 0; lane < warp_size; ++lane) {
    if (!lane_active(active, lane)) continue;
    for (std::uint32_t e = 0; e < elems_per_lane; ++e) {
      // Column-major layout: element e of lane's item lives at
      // (lane + e * stride) — coalesced across lanes for each e.
      const std::uint64_t addr =
          (static_cast<std::uint64_t>(lane) + e * stride_elems) * elem_bytes;
      const std::uint64_t first_seg = addr / segment_bytes_;
      const std::uint64_t last_seg = (addr + elem_bytes - 1) / segment_bytes_;
      for (std::uint64_t s = first_seg; s <= last_seg; ++s) segments.push_back(s);
    }
  }
  std::sort(segments.begin(), segments.end());
  segments.erase(std::unique(segments.begin(), segments.end()), segments.end());
  return static_cast<std::uint32_t>(segments.size());
}

}  // namespace hpac::sim
