#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/device.hpp"

namespace hpac::sim {

/// Block-scoped shared-memory arena.
///
/// HPAC-Offload's central memory decision (paper §3.1.1) is to keep all AC
/// state in the block's shared memory: the state is sized by *resident*
/// threads rather than the kernel's total threads and lives only for the
/// kernel's lifetime. This arena models that: allocation is bump-style,
/// capacity is the device's shared-memory-per-block limit, and `reset()`
/// (called at kernel end) destroys the contents, matching the paper's
/// "once the kernel completes, the internal data are destroyed".
///
/// Functionally the storage is host memory; the value of the class is the
/// exact capacity accounting (a configuration whose AC state cannot fit in
/// shared memory must fail, and occupancy depends on bytes used).
class SharedMemoryArena {
 public:
  explicit SharedMemoryArena(const DeviceConfig& dev);

  /// Allocate `count` doubles aligned storage; throws hpac::ConfigError if
  /// the block's shared-memory budget would be exceeded.
  std::span<double> alloc_doubles(std::size_t count);
  /// Allocate `count` 32-bit ints.
  std::span<std::int32_t> alloc_ints(std::size_t count);

  /// Bytes currently allocated in this block's shared memory.
  std::size_t bytes_used() const { return bytes_used_; }
  /// Largest allocation footprint seen since construction (across resets).
  std::size_t peak_bytes() const { return peak_bytes_; }
  std::size_t capacity() const { return capacity_; }

  /// Kernel completed: contents are destroyed, budget is returned.
  void reset();

 private:
  void charge(std::size_t bytes);

  std::size_t capacity_;
  std::size_t bytes_used_ = 0;
  std::size_t peak_bytes_ = 0;
  // Deques of chunks would avoid invalidation; we use stable per-allocation
  // vectors so spans stay valid until reset().
  std::vector<std::vector<double>> double_chunks_;
  std::vector<std::vector<std::int32_t>> int_chunks_;
};

/// Bytes of shared memory the AC state of one block requires; helper used
/// both by the region executor and by Figure-3-style accounting.
struct AcStateFootprint {
  std::size_t bytes_per_thread = 0;  ///< e.g. TAF window + bookkeeping
  std::size_t bytes_per_table = 0;   ///< e.g. one shared iACT table
  std::size_t tables_per_block = 0;
  std::size_t threads_per_block = 0;

  std::size_t total_bytes() const {
    return bytes_per_thread * threads_per_block + bytes_per_table * tables_per_block;
  }
};

}  // namespace hpac::sim
