#pragma once

#include <bit>
#include <cstdint>
#include <span>

namespace hpac::sim {

/// A warp's active-lane mask. 64 bits covers both NVIDIA (32 lanes) and
/// AMD (64-lane wavefronts).
using LaneMask = std::uint64_t;

/// Mask with the low `warp_size` bits set.
constexpr LaneMask full_mask(int warp_size) {
  return warp_size >= 64 ? ~0ull : ((1ull << warp_size) - 1);
}

constexpr bool lane_active(LaneMask mask, int lane) { return (mask >> lane) & 1ull; }

constexpr LaneMask with_lane(LaneMask mask, int lane) { return mask | (1ull << lane); }

/// Number of active lanes — the paper's `popcount` of a ballot result.
inline int popcount(LaneMask mask) { return std::popcount(mask); }

/// Invoke `fn(lane)` for every set lane in ascending order. The executor's
/// hot loops and the apps' batched bindings iterate warps this way: cost is
/// O(active lanes) with no per-inactive-lane branch.
template <typename Fn>
inline void for_each_lane(LaneMask mask, Fn&& fn) {
  while (mask != 0) {
    const int lane = std::countr_zero(mask);
    mask &= mask - 1;
    fn(lane);
  }
}

/// The `ballot` warp intrinsic (paper §3.3): collects one predicate bit per
/// lane into a mask. Only lanes in `active` contribute.
LaneMask ballot(std::span<const bool> predicates, LaneMask active);

/// Index of the lowest active lane, or -1 when the mask is empty. Used to
/// pick the leader that performs a warp's single-writer operations.
int first_lane(LaneMask mask);

/// Per-warp cycle ledger for one kernel. The region executor charges
/// compute work path-by-path: under SIMT, a warp whose lanes split between
/// the accurate and the approximate execution paths pays the *sum* of both
/// paths' latencies (divergence serialization), which is the performance
/// hazard hierarchical decisions eliminate (paper §3.1.2).
class WarpLedger {
 public:
  /// Charge a region-body execution: `path_cycles` per taken path.
  /// Serialization: total += sum of the costs of paths with >=1 active lane.
  void charge_paths(std::span<const double> path_cycles);

  /// Charge uniform (non-divergent) compute cycles.
  void charge_compute(double cycles);

  /// Charge global-memory transactions; a "round" is one batch of loads a
  /// warp must wait on (used by the latency exposure model).
  void charge_memory(std::uint32_t transactions, std::uint32_t rounds = 1);

  /// Charge shared-memory accesses (cheap, but not free; iACT table scans
  /// are made of these).
  void charge_shared(std::uint32_t accesses, double cycles_per_access);

  /// Charge a block-wide barrier (`__syncthreads`) — modeled as a fixed
  /// cost here; the block-level wait is handled by the timing model since
  /// all warps in a block advance together in the wave model.
  void charge_barrier(double cycles = 20.0);

  /// Fold another ledger's charges into this one. Used by the team-sharded
  /// executor: every warp is charged by exactly one shard, so merging the
  /// shard ledgers reproduces the serial ledger values exactly.
  void merge(const WarpLedger& other) {
    compute_cycles_ += other.compute_cycles_;
    transactions_ += other.transactions_;
    memory_rounds_ += other.memory_rounds_;
    divergent_regions_ += other.divergent_regions_;
  }

  double compute_cycles() const { return compute_cycles_; }
  std::uint64_t transactions() const { return transactions_; }
  std::uint64_t memory_rounds() const { return memory_rounds_; }
  std::uint64_t divergent_regions() const { return divergent_regions_; }

 private:
  double compute_cycles_ = 0;
  std::uint64_t transactions_ = 0;
  std::uint64_t memory_rounds_ = 0;
  std::uint64_t divergent_regions_ = 0;
};

}  // namespace hpac::sim
