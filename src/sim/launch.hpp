#pragma once

#include <cstdint>

#include "sim/device.hpp"

namespace hpac::sim {

/// Kernel launch geometry, mirroring the OpenMP offload knobs the paper's
/// evaluation sweeps: `num_teams` (thread blocks) and the per-team thread
/// count. With a fixed problem size N, fewer teams means more grid-stride
/// iterations ("items per thread"), which is the axis of Figure 8c.
struct LaunchConfig {
  std::uint64_t num_teams = 1;        ///< thread blocks in the grid
  std::uint32_t threads_per_team = 128;

  std::uint64_t total_threads() const {
    return num_teams * threads_per_team;
  }

  std::uint32_t warps_per_team(const DeviceConfig& dev) const {
    return (threads_per_team + dev.warp_size - 1) / static_cast<std::uint32_t>(dev.warp_size);
  }

  std::uint64_t total_warps(const DeviceConfig& dev) const {
    return num_teams * warps_per_team(dev);
  }

  /// Grid-stride steps needed to cover `n` items.
  std::uint64_t steps_for(std::uint64_t n) const {
    const std::uint64_t t = total_threads();
    return (n + t - 1) / t;
  }

  /// Throws hpac::ConfigError when the geometry is not launchable.
  void validate(const DeviceConfig& dev) const;
};

/// Build the launch that gives each thread approximately `items_per_thread`
/// grid-stride iterations over `n` items (the paper's "Items per Thread"
/// sweep axis). The block size is kept at `threads_per_team`.
LaunchConfig launch_for_items_per_thread(std::uint64_t n, std::uint64_t items_per_thread,
                                         std::uint32_t threads_per_team);

}  // namespace hpac::sim
