#include "sim/shared_memory.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hpac::sim {

SharedMemoryArena::SharedMemoryArena(const DeviceConfig& dev)
    : capacity_(dev.shared_mem_per_block) {}

void SharedMemoryArena::charge(std::size_t bytes) {
  if (bytes_used_ + bytes > capacity_) {
    throw ConfigError(strings::format(
        "shared memory exhausted: %zu bytes requested, %zu of %zu in use; "
        "reduce table size, history size, or threads per team",
        bytes, bytes_used_, capacity_));
  }
  bytes_used_ += bytes;
  peak_bytes_ = std::max(peak_bytes_, bytes_used_);
}

std::span<double> SharedMemoryArena::alloc_doubles(std::size_t count) {
  charge(count * sizeof(double));
  double_chunks_.emplace_back(count, 0.0);
  return std::span<double>(double_chunks_.back());
}

std::span<std::int32_t> SharedMemoryArena::alloc_ints(std::size_t count) {
  charge(count * sizeof(std::int32_t));
  int_chunks_.emplace_back(count, 0);
  return std::span<std::int32_t>(int_chunks_.back());
}

void SharedMemoryArena::reset() {
  bytes_used_ = 0;
  double_chunks_.clear();
  int_chunks_.clear();
}

}  // namespace hpac::sim
