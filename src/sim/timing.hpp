#pragma once

#include <cstdint>
#include <vector>

#include "sim/device.hpp"
#include "sim/launch.hpp"
#include "sim/warp.hpp"

namespace hpac::sim {

/// Result of the kernel time model.
struct KernelTiming {
  double seconds = 0;                ///< modeled wall time of the kernel
  double critical_path_cycles = 0;   ///< busiest SM's cycle count
  double occupancy = 0;              ///< resident warps / max resident warps (first wave)
  int resident_blocks_per_sm = 0;    ///< blocks co-resident on one SM
  std::uint64_t total_transactions = 0;
  std::uint64_t divergent_regions = 0;  ///< warp-region executions that split paths
  double compute_cycles_total = 0;      ///< sum over all warps
};

/// Per-kernel cycle tracker and analytic time model.
///
/// The model is deliberately first-order; it captures exactly the effects
/// the paper's analysis turns on:
///
///  * **SIMT divergence** — `WarpLedger::charge_paths` serializes distinct
///    execution paths within a warp.
///  * **Coalescing** — transaction counts come from `CoalescingModel`, so
///    fragmented access (per-thread perforation) costs more than herded
///    access.
///  * **Latency hiding vs. occupancy** (Figure 8c) — each SM executes its
///    blocks in waves of `resident_blocks_per_sm`; per wave the exposed
///    DRAM latency is `rounds * mem_latency / resident_warps`: many
///    resident warps overlap their stalls, few resident warps expose them.
///    Devices with more SMs (AMD) need more blocks to stay hidden, which
///    is why their speedup declines at smaller items-per-thread.
///  * **Shared-memory pressure** — blocks whose shared memory (including
///    AC state) is large reduce `resident_blocks_per_sm` and with it
///    occupancy.
class KernelTracker {
 public:
  KernelTracker(const DeviceConfig& dev, const LaunchConfig& launch,
                std::size_t shared_bytes_per_block = 0);

  /// Shard covering teams [team_begin, team_end) of the launch. The
  /// team-parallel executor gives each worker its own shard so ledgers are
  /// written without synchronization; `merge` folds shards back into a
  /// full-range tracker deterministically.
  KernelTracker(const DeviceConfig& dev, const LaunchConfig& launch,
                std::size_t shared_bytes_per_block, std::uint64_t team_begin,
                std::uint64_t team_end);

  /// Ledger of warp `warp_in_team` of team `team` (must lie in this
  /// tracker's team range).
  WarpLedger& warp(std::uint64_t team, std::uint32_t warp_in_team);
  const WarpLedger& warp(std::uint64_t team, std::uint32_t warp_in_team) const;

  const DeviceConfig& device() const { return dev_; }
  const LaunchConfig& launch() const { return launch_; }
  std::uint64_t team_begin() const { return team_begin_; }
  std::uint64_t team_end() const { return team_end_; }

  /// Fold a shard's ledgers into this tracker. Each warp is charged by
  /// exactly one shard, so merging shards (in any order) reproduces the
  /// serial tracker bit-for-bit.
  void merge(const KernelTracker& shard);

  /// Blocks that fit concurrently on one SM given warp and shared-memory
  /// limits (>= 1: a launchable block always runs, possibly alone).
  int resident_blocks_per_sm() const;

  /// Apply the SM/wave model and produce the kernel timing. Only valid on
  /// a full-range tracker (shards feed `merge` instead).
  KernelTiming finalize() const;

 private:
  DeviceConfig dev_;
  LaunchConfig launch_;
  std::size_t shared_bytes_per_block_;
  std::uint32_t warps_per_team_;
  std::uint64_t team_begin_ = 0;
  std::uint64_t team_end_ = 0;
  std::vector<WarpLedger> ledgers_;
};

}  // namespace hpac::sim
