#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hpac::stats {

/// Arithmetic mean; returns 0 for an empty range.
double mean(std::span<const double> xs);

/// Population variance (divides by N); returns 0 for fewer than 1 element.
double variance(std::span<const double> xs);

/// Population standard deviation.
double stddev(std::span<const double> xs);

/// Relative standard deviation sigma/|mu| as used by TAF's activation
/// function (paper §2.3, footnote 1). Returns +inf when the mean is zero
/// and the deviation is nonzero, and 0 when all values are zero.
double rsd(std::span<const double> xs);

/// Geometric mean of strictly positive values; returns 0 for empty input.
/// Used for the paper's "geomean speedup 1.42x" style summaries.
double geomean(std::span<const double> xs);

/// Linear interpolation percentile, p in [0, 100]. Sorts a copy.
double percentile(std::span<const double> xs, double p);

/// Five-number summary for boxplots (Figure 11c style output).
struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
};
BoxStats box_stats(std::span<const double> xs);

/// Ordinary least squares y = a + b*x with the coefficient of
/// determination R^2 (Figure 12c reports R^2 = 0.95).
struct Regression {
  double intercept = 0;
  double slope = 0;
  double r2 = 0;
};
Regression linear_regression(std::span<const double> x, std::span<const double> y);

/// Mean absolute percentage error between an accurate and an approximate
/// output vector (paper Eq. 1), in percent. Elements whose accurate value
/// is zero are skipped, matching the metric's domain.
double mape_percent(std::span<const double> accurate, std::span<const double> approx);

/// Misclassification rate (paper Eq. 2), in percent.
double mcr_percent(std::span<const int> accurate, std::span<const int> approx);

/// Running one-pass mean/variance (Welford). The device-side TAF window
/// uses a small fixed buffer instead, but the harness uses this for
/// aggregating repeated trials.
class RunningStats {
 public:
  void push(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

}  // namespace hpac::stats
