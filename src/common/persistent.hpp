#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace hpac::common {

/// Structurally-shared immutable containers — the snapshot substrate of
/// `harness::ResultStore`. A writer produces a new value per mutation; the
/// old value stays fully usable and shares all untouched structure with
/// the new one, so publishing a snapshot is a pointer store and holding
/// one costs O(changed nodes), not O(container). Neither type has any
/// internal synchronization: immutability *is* the thread-safety story
/// (concurrent readers of the same value, or of different versions, never
/// race; handing a value between threads is a shared_ptr copy).

/// Persistent vector in the bit-partitioned-trie idiom (Clojure/immer):
/// 32-way branching interior nodes over leaf chunks of 32 elements, plus
/// an immutable shared tail for the last partial chunk. `push_back` copies
/// one root-to-leaf path (log32 n nodes) or just the tail (< 32 elements);
/// everything else is shared with the previous version. Random access is
/// O(log32 n) pointer hops; copying a vector value is two shared_ptr
/// copies.
template <typename T>
class PersistentVector {
 public:
  PersistentVector() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](std::size_t index) const {
    HPAC_REQUIRE(index < size_, "PersistentVector index out of range");
    if (index >= tail_offset()) return (*tail_)[index - tail_offset()];
    const Node* node = root_.get();
    for (std::uint32_t level = shift_; level > 0; level -= kBits) {
      node = node->children[(index >> level) & kMask].get();
    }
    return node->leaf[index & kMask];
  }

  /// The vector with `value` appended. O(32) element copies worst case
  /// (rebuilding the shared tail), plus O(log32 n) node copies when the
  /// full tail spills into the trie.
  PersistentVector push_back(T value) const {
    PersistentVector next(*this);
    if (!tail_ || tail_->size() < kWidth) {
      // Room in the tail: copy-on-append of the partial chunk.
      auto tail = tail_ ? std::make_shared<Tail>(*tail_) : std::make_shared<Tail>();
      tail->push_back(std::move(value));
      next.tail_ = std::move(tail);
      ++next.size_;
      return next;
    }
    // Tail is full: link it into the trie as a leaf, start a fresh tail.
    auto leaf = std::make_shared<Node>();
    leaf->leaf = *tail_;
    const std::size_t trie_size = tail_offset();
    if (!root_) {
      next.root_ = std::move(leaf);
      next.shift_ = 0;
    } else if (trie_size == (std::size_t{kWidth} << shift_)) {
      // Root is full: grow a level.
      auto root = std::make_shared<Node>();
      root->children[0] = root_;
      root->children[1] = path_to(std::move(leaf), shift_);
      next.root_ = std::move(root);
      next.shift_ = shift_ + kBits;
    } else {
      next.root_ = push_leaf(*root_, shift_, trie_size, std::move(leaf));
    }
    auto tail = std::make_shared<Tail>();
    tail->push_back(std::move(value));
    next.tail_ = std::move(tail);
    ++next.size_;
    return next;
  }

  /// Visit every element in index order. Walks the trie directly, so a
  /// full scan costs O(n), not O(n log n) repeated indexing.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (root_) walk(*root_, shift_, fn);
    if (tail_) {
      for (const T& value : *tail_) fn(value);
    }
  }

 private:
  static constexpr std::uint32_t kBits = 5;
  static constexpr std::uint32_t kWidth = 1u << kBits;  // 32
  static constexpr std::uint32_t kMask = kWidth - 1;

  /// Interior nodes use `children` (filled left to right); leaf nodes use
  /// `leaf` (exactly 32 elements once linked). A node is immutable after
  /// it is reachable from any vector value, so both kinds share freely.
  struct Node {
    std::array<std::shared_ptr<const Node>, kWidth> children;
    std::vector<T> leaf;
  };
  using Tail = std::vector<T>;

  std::size_t tail_offset() const { return size_ - (tail_ ? tail_->size() : 0); }

  /// A chain of `levels / kBits` single-child interior nodes down to `leaf`.
  static std::shared_ptr<const Node> path_to(std::shared_ptr<const Node> leaf,
                                             std::uint32_t levels) {
    for (std::uint32_t level = 0; level < levels; level += kBits) {
      auto node = std::make_shared<Node>();
      node->children[0] = std::move(leaf);
      leaf = std::move(node);
    }
    return leaf;
  }

  /// Re-link the root-to-leaf path so that `leaf` sits at element index
  /// `index` (the trie's current size); every node off the path is shared.
  static std::shared_ptr<const Node> push_leaf(const Node& node, std::uint32_t shift,
                                               std::size_t index,
                                               std::shared_ptr<const Node> leaf) {
    auto copy = std::make_shared<Node>(node);
    const std::size_t slot = (index >> shift) & kMask;
    if (shift == kBits) {
      copy->children[slot] = std::move(leaf);
    } else if (const auto& child = copy->children[slot]) {
      copy->children[slot] = push_leaf(*child, shift - kBits, index, std::move(leaf));
    } else {
      copy->children[slot] = path_to(std::move(leaf), shift - kBits);
    }
    return copy;
  }

  template <typename Fn>
  static void walk(const Node& node, std::uint32_t shift, Fn& fn) {
    if (shift == 0) {
      for (const T& value : node.leaf) fn(value);
      return;
    }
    for (const auto& child : node.children) {
      if (!child) break;  // children fill left-to-right
      walk(*child, shift - kBits, fn);
    }
  }

  std::shared_ptr<const Node> root_;
  std::shared_ptr<const Tail> tail_;
  std::uint32_t shift_ = 0;  ///< bit shift of the root level
  std::size_t size_ = 0;
};

/// Persistent hash map in the hash-array-mapped-trie idiom: interior nodes
/// hold a 32-slot bitmap over 5-bit hash chunks and store only occupied
/// slots; `set` copies the root-to-leaf path, `find` walks it. Keys whose
/// full hash collides fall back to a small scanned array at the deepest
/// level.
template <typename K, typename V, typename Hash = std::hash<K>>
class PersistentMap {
 public:
  PersistentMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pointer to the value for `key`, or nullptr. The pointee lives as long
  /// as any version containing it — snapshots may hold the pointer.
  const V* find(const K& key) const {
    const Node* node = root_.get();
    if (node == nullptr) return nullptr;
    const std::size_t hash = Hash{}(key);
    for (std::uint32_t level = 0;; level += kBits) {
      if (node->collisions) {
        for (const Entry& entry : node->entries) {
          if (entry.key == key) return &entry.value;
        }
        return nullptr;
      }
      const std::uint32_t bit = 1u << ((hash >> level) & kMask);
      if (!(node->bitmap & bit)) return nullptr;
      const std::size_t slot = node->slot_of(bit);
      if (node->children[slot]) {
        node = node->children[slot].get();
        continue;
      }
      const Entry& entry = node->entries[slot];
      return entry.key == key ? &entry.value : nullptr;
    }
  }

  bool contains(const K& key) const { return find(key) != nullptr; }

  /// The map with `key` bound to `value` (inserting or replacing).
  PersistentMap set(K key, V value) const {
    PersistentMap next(*this);
    bool added = false;
    const std::size_t hash = Hash{}(key);
    if (!root_) {
      auto node = std::make_shared<Node>();
      node->insert_single(0, hash, std::move(key), std::move(value));
      next.root_ = std::move(node);
      added = true;
    } else {
      next.root_ = set_in(*root_, 0, hash, std::move(key), std::move(value), added);
    }
    next.size_ = size_ + (added ? 1 : 0);
    return next;
  }

 private:
  static constexpr std::uint32_t kBits = 5;
  static constexpr std::uint32_t kMask = (1u << kBits) - 1;
  /// Hash bits are consumed kBits at a time; a node at this level has no
  /// bits left to branch on and scans a collision array instead.
  static constexpr std::uint32_t kMaxLevel = kBits * ((sizeof(std::size_t) * 8) / kBits);

  struct Entry {
    K key;
    V value{};
  };

  /// Occupied slots only: `entries[i]` / `children[i]` belong to the i-th
  /// set bit of `bitmap`. A slot is either a direct entry (null child) or
  /// a subtree (entry unused). Collision nodes scan `entries` linearly.
  struct Node {
    std::uint32_t bitmap = 0;
    bool collisions = false;
    std::vector<Entry> entries;
    std::vector<std::shared_ptr<const Node>> children;

    std::size_t slot_of(std::uint32_t bit) const {
      return static_cast<std::size_t>(__builtin_popcount(bitmap & (bit - 1)));
    }

    /// Seed an empty node with its first entry (collision form past the
    /// last hash level, single-slot bitmap form otherwise).
    void insert_single(std::uint32_t level, std::size_t hash, K key, V value) {
      if (level >= kMaxLevel) {
        collisions = true;
        entries.push_back(Entry{std::move(key), std::move(value)});
        return;
      }
      bitmap = 1u << ((hash >> level) & kMask);
      entries.push_back(Entry{std::move(key), std::move(value)});
      children.push_back(nullptr);
    }
  };

  static std::shared_ptr<const Node> set_in(const Node& node, std::uint32_t level,
                                            std::size_t hash, K key, V value,
                                            bool& added) {
    auto copy = std::make_shared<Node>(node);
    if (node.collisions) {
      for (Entry& entry : copy->entries) {
        if (entry.key == key) {
          entry.value = std::move(value);
          return copy;
        }
      }
      copy->entries.push_back(Entry{std::move(key), std::move(value)});
      added = true;
      return copy;
    }
    const std::uint32_t bit = 1u << ((hash >> level) & kMask);
    const std::size_t slot = copy->slot_of(bit);
    if (!(copy->bitmap & bit)) {
      copy->bitmap |= bit;
      copy->entries.insert(copy->entries.begin() + static_cast<std::ptrdiff_t>(slot),
                           Entry{std::move(key), std::move(value)});
      copy->children.insert(copy->children.begin() + static_cast<std::ptrdiff_t>(slot),
                            nullptr);
      added = true;
      return copy;
    }
    if (copy->children[slot]) {
      copy->children[slot] = set_in(*copy->children[slot], level + kBits, hash,
                                    std::move(key), std::move(value), added);
      return copy;
    }
    Entry& existing = copy->entries[slot];
    if (existing.key == key) {
      existing.value = std::move(value);
      return copy;
    }
    // Two distinct keys in one slot: demote the resident entry one level
    // and insert the new key into the fresh subtree. The hash must be
    // taken before the key is moved into the call (argument evaluation
    // order is unspecified).
    const std::size_t existing_hash = Hash{}(existing.key);
    auto child = std::make_shared<Node>();
    child->insert_single(level + kBits, existing_hash, std::move(existing.key),
                         std::move(existing.value));
    copy->children[slot] = set_in(*child, level + kBits, hash, std::move(key),
                                  std::move(value), added);
    existing = Entry{};  // slot is a subtree now; keep the layout aligned
    return copy;
  }

  std::shared_ptr<const Node> root_;
  std::size_t size_ = 0;
};

}  // namespace hpac::common
