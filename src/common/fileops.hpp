#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hpac::fileops {

/// FNV-1a 64-bit hash — the integrity checksum for lease-journal records
/// and plan fingerprints. Stable across platforms (byte-wise, unsigned).
std::uint64_t fnv1a64(std::string_view bytes);

/// Fixed-width 16-digit lowercase hex of a 64-bit value, and its strict
/// inverse (exactly 16 hex digits, nothing else).
std::string hex16(std::uint64_t value);
bool parse_hex16(std::string_view text, std::uint64_t& out);

/// mkdir -p. Throws hpac::Error when the path exists as a non-directory
/// or creation fails.
void ensure_dir(const std::string& path);

/// Read a whole file into `out`. Returns false when the file does not
/// exist (out untouched); throws hpac::Error on a read failure.
bool read_file(const std::string& path, std::string& out);

/// Write-to-temp + rename(2): readers only ever observe the old bytes or
/// the complete new bytes, never a prefix. The temp file lives in the
/// target's directory so the rename stays within one filesystem.
void write_file_atomic(const std::string& path, std::string_view bytes);

/// Atomically publish `tmp_path` at `target` only if nothing exists there
/// yet, via link(2) — the one create primitive that fails (EEXIST)
/// instead of clobbering, on local filesystems and NFS alike. The temp
/// file is unlinked in both outcomes. Returns true when this caller won
/// the creation race.
bool publish_exclusive(const std::string& tmp_path, const std::string& target);

/// Advisory whole-file exclusive lock (flock) held for the object's
/// lifetime. Opens (creating if needed) `path` and blocks until the lock
/// is acquired. Used to serialize rename-rewrite journal appends and
/// oversized append-mode records.
class FileLock {
 public:
  explicit FileLock(const std::string& path);
  ~FileLock();
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  int fd_ = -1;
};

/// An O_APPEND file descriptor. `append` issues the record as ONE
/// write(2): for records under PIPE_BUF on a local filesystem the kernel
/// serializes the implicit seek-to-end + write against concurrent
/// appenders, so records from many processes never interleave and a
/// SIGKILL cannot leave a partial record (the syscall either ran or it
/// did not). Records at or above PIPE_BUF additionally take an flock on
/// `path + ".lock"` for the duration of the write.
class AppendFile {
 public:
  explicit AppendFile(const std::string& path);
  ~AppendFile();
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  void append(std::string_view record);

  /// Deliberately write only `bytes` — no atomicity, no completion. This
  /// exists for the fault-injection rig to simulate a torn append (a
  /// partial record a crashed writer left behind); production code never
  /// calls it.
  void append_partial_for_test(std::string_view bytes);

 private:
  std::string path_;
  int fd_ = -1;
};

}  // namespace hpac::fileops
