#pragma once

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

namespace hpac {

/// A non-owning, trivially copyable reference to a callable: one data
/// pointer plus one thunk pointer, so invoking it is a single indirect
/// call with no allocation, no virtual dispatch and no wrapper state.
///
/// The region executor binds its hot-path operations (gather / accurate /
/// cost / commit) through `FunctionRef` once per kernel launch instead of
/// going through `std::function` once per item — the devirtualization half
/// of the fast execution path. The referenced callable must outlive the
/// `FunctionRef`; bind named lambdas or long-lived `std::function`
/// members, never temporaries.
template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  constexpr FunctionRef() noexcept = default;

  /// Bind any callable with a compatible signature. Intentionally not
  /// `explicit` so call sites read like assigning a function pointer.
  template <typename F,
            std::enable_if_t<!std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                                 std::is_invocable_r_v<R, F&, Args...>,
                             int> = 0>
  constexpr FunctionRef(F&& callable) noexcept  // NOLINT(google-explicit-constructor)
      : object_(const_cast<void*>(static_cast<const void*>(std::addressof(callable)))),
        thunk_([](void* object, Args... args) -> R {
          return std::invoke(*static_cast<std::remove_reference_t<F>*>(object),
                             std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const { return thunk_(object_, std::forward<Args>(args)...); }

  /// True when a callable is bound.
  constexpr explicit operator bool() const noexcept { return thunk_ != nullptr; }

 private:
  void* object_ = nullptr;
  R (*thunk_)(void*, Args...) = nullptr;
};

}  // namespace hpac
