#include "common/fileops.hpp"

#include <fcntl.h>
#include <limits.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/error.hpp"

namespace hpac::fileops {

namespace {

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw Error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string hex16(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

bool parse_hex16(std::string_view text, std::uint64_t& out) {
  if (text.size() != 16) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
  }
  out = value;
  return true;
}

void ensure_dir(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec || !std::filesystem::is_directory(path)) {
    throw Error("cannot create directory " + path + (ec ? ": " + ec.message() : ""));
  }
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    if (errno == ENOENT || !std::filesystem::exists(path)) return false;
    throw Error("cannot open " + path);
  }
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) throw Error("read failed: " + path);
  out = os.str();
  return true;
}

void write_file_atomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    HPAC_REQUIRE(out.good(), "cannot create " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    HPAC_REQUIRE(out.good(), "write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw_errno("cannot rename", path);
  }
}

bool publish_exclusive(const std::string& tmp_path, const std::string& target) {
  const int rc = ::link(tmp_path.c_str(), target.c_str());
  const int saved_errno = errno;
  ::unlink(tmp_path.c_str());
  if (rc == 0) return true;
  if (saved_errno == EEXIST) return false;
  errno = saved_errno;
  throw_errno("cannot link", target);
}

// --- FileLock ----------------------------------------------------------------

FileLock::FileLock(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) throw_errno("cannot open lock file", path);
  int rc;
  do {
    rc = ::flock(fd_, LOCK_EX);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("cannot lock", path);
  }
}

FileLock::~FileLock() {
  if (fd_ >= 0) ::close(fd_);  // close releases the flock
}

// --- AppendFile --------------------------------------------------------------

AppendFile::AppendFile(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) throw_errno("cannot open for append", path);
}

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
}

void AppendFile::append(std::string_view record) {
  HPAC_REQUIRE(!record.empty(), "empty append record");
  // The atomicity claim only holds for a single write(2); take the
  // sidecar lock for records too large to trust it.
  std::unique_ptr<FileLock> lock;
  if (record.size() >= PIPE_BUF) lock = std::make_unique<FileLock>(path_ + ".lock");
  ssize_t written;
  do {
    written = ::write(fd_, record.data(), record.size());
  } while (written < 0 && errno == EINTR);
  if (written < 0) throw_errno("append failed", path_);
  // A short write of an O_APPEND record would tear it for every reader;
  // there is no safe way to continue (a retry would interleave with
  // concurrent appenders), so treat it as fatal.
  HPAC_REQUIRE(static_cast<std::size_t>(written) == record.size(),
               "short append write: " + path_);
}

void AppendFile::append_partial_for_test(std::string_view bytes) {
  ssize_t written;
  do {
    written = ::write(fd_, bytes.data(), bytes.size());
  } while (written < 0 && errno == EINTR);
  if (written < 0) throw_errno("append failed", path_);
}

}  // namespace hpac::fileops
