#include "common/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>

namespace hpac {

namespace {

constexpr std::size_t kNotAWorker = std::numeric_limits<std::size_t>::max();

/// Home deque index of the current thread within its owning scheduler,
/// paired with that scheduler's identity: a worker of scheduler A that
/// submits to scheduler B must use B's inbox, not deques_[its A-index]
/// (which may not even exist in B). External threads keep kNotAWorker and
/// always submit through the inbox deque.
thread_local std::size_t t_worker_index = kNotAWorker;
thread_local const void* t_worker_owner = nullptr;

/// Depth of parallel_for bodies on this thread's stack (any scheduler,
/// inline path included).
thread_local int t_task_depth = 0;

}  // namespace

/// One fan-out job. Tickets in the deques are join offers, not work items:
/// a thread that redeems a ticket becomes a *participant* and loops
/// claiming indices from `next` until none remain, exactly like the
/// submitting thread does. At most `limit` participants exist because only
/// limit-1 tickets are published and the caller takes the remaining slot.
/// The Job outlives `parallel_for` via shared_ptr (stale tickets may be
/// popped long after the join completes); `body` is a borrowed pointer to
/// the caller's stack, but it is only ever invoked for a successfully
/// claimed index, and no index is claimable once the join has returned.
struct Scheduler::Job {
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t count = 0;
  std::size_t limit = 1;
  std::atomic<std::size_t> next{0};   ///< next unclaimed index
  std::atomic<std::size_t> slots{0};  ///< participant slot allocator
  std::atomic<bool> cancelled{false};
  common::Mutex mutex;
  common::CondVar done_cv;
  std::size_t active GUARDED_BY(mutex) = 0;  ///< participants inside the claim loop
  std::exception_ptr error GUARDED_BY(mutex);  ///< first failure
};

Scheduler::Scheduler(std::size_t num_workers)
    : deques_(num_workers + 1) {  // + the external-submitter inbox
  workers_.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

Scheduler::~Scheduler() {
  {
    common::MutexLock lock(sleep_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool Scheduler::in_task() { return t_task_depth > 0; }

Scheduler& Scheduler::shared() {
  static Scheduler scheduler(
      std::max<std::size_t>(2, std::thread::hardware_concurrency()));
  return scheduler;
}

std::size_t Scheduler::recommended_threads(std::size_t requested, std::size_t count) {
  std::size_t threads = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  return std::min(threads, std::max<std::size_t>(count, 1));
}

void Scheduler::participate(Job& job) {
  // Stale-ticket fast path: a ticket redeemed after its job finished (or
  // failed) must cost one atomic load, not a slot.
  if (job.cancelled.load(std::memory_order_acquire) ||
      job.next.load(std::memory_order_acquire) >= job.count) {
    return;
  }
  const std::size_t slot = job.slots.fetch_add(1, std::memory_order_relaxed);
  if (slot >= job.limit) return;  // limit-1 tickets + the caller: cannot trip
  {
    common::MutexLock lock(job.mutex);
    ++job.active;
  }
  for (;;) {
    if (job.cancelled.load(std::memory_order_acquire)) break;
    const std::size_t index = job.next.fetch_add(1, std::memory_order_acq_rel);
    if (index >= job.count) break;
    ++t_task_depth;
    try {
      (*job.body)(slot, index);
      --t_task_depth;
    } catch (...) {
      --t_task_depth;
      common::MutexLock lock(job.mutex);
      if (!job.error) job.error = std::current_exception();
      job.cancelled.store(true, std::memory_order_release);
    }
  }
  {
    common::MutexLock lock(job.mutex);
    --job.active;
  }
  job.done_cv.notify_all();
}

void Scheduler::push_tickets(const std::shared_ptr<Job>& job, std::size_t n) {
  if (n == 0) return;
  const std::size_t home =
      t_worker_owner == this && t_worker_index != kNotAWorker ? t_worker_index
                                                              : deques_.size() - 1;
  {
    common::MutexLock lock(deques_[home].mutex);
    for (std::size_t i = 0; i < n; ++i) deques_[home].tickets.push_back(job);
  }
  {
    common::MutexLock lock(sleep_mutex_);
    unpopped_tickets_ += n;
  }
  wake_cv_.notify_all();
}

std::shared_ptr<Scheduler::Job> Scheduler::next_ticket(std::size_t home) {
  std::shared_ptr<Job> job;
  const std::size_t n = deques_.size();
  {
    // Own deque, newest first: nested jobs spawned here finish before the
    // deque's older backlog grows a dependent.
    TaskDeque& own = deques_[home];
    common::MutexLock lock(own.mutex);
    if (!own.tickets.empty()) {
      job = std::move(own.tickets.back());
      own.tickets.pop_back();
    }
  }
  for (std::size_t k = 1; !job && k < n; ++k) {
    // Victims round-robin from our right-hand neighbor; steal the oldest
    // ticket so long-waiting fan-outs are helped first.
    TaskDeque& victim = deques_[(home + k) % n];
    common::MutexLock lock(victim.mutex);
    if (!victim.tickets.empty()) {
      job = std::move(victim.tickets.front());
      victim.tickets.pop_front();
    }
  }
  if (job) {
    common::MutexLock lock(sleep_mutex_);
    --unpopped_tickets_;
  }
  return job;
}

void Scheduler::worker_loop(std::size_t worker_index) {
  t_worker_index = worker_index;
  t_worker_owner = this;
  for (;;) {
    if (std::shared_ptr<Job> job = next_ticket(worker_index)) {
      participate(*job);
      continue;
    }
    // Explicit wait loop (not a predicate lambda) so the thread-safety
    // analysis sees the guarded reads under sleep_mutex_.
    common::UniqueMutexLock lock(sleep_mutex_);
    while (!stop_ && unpopped_tickets_ == 0) wake_cv_.wait(lock);
    if (stop_) return;
  }
}

void Scheduler::parallel_for(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t max_participants) {
  if (count == 0) return;
  std::size_t limit = max_participants != 0 ? max_participants : parallelism();
  limit = std::min({limit, count, parallelism()});
  if (limit <= 1 || workers_.empty()) {
    // Serial path: run inline, exceptions propagate directly and abandon
    // the remaining indices — the same contract the parallel path keeps.
    ++t_task_depth;
    try {
      for (std::size_t index = 0; index < count; ++index) body(0, index);
    } catch (...) {
      --t_task_depth;
      throw;
    }
    --t_task_depth;
    return;
  }

  auto job = std::make_shared<Job>();
  job->body = &body;
  job->count = count;
  job->limit = limit;

  push_tickets(job, limit - 1);
  participate(*job);  // the caller claims indices too — it never idles

  common::UniqueMutexLock lock(job->mutex);
  while (!(job->active == 0 &&
           (job->cancelled.load(std::memory_order_acquire) ||
            job->next.load(std::memory_order_acquire) >= job->count))) {
    job->done_cv.wait(lock);
  }
  if (job->error) {
    std::exception_ptr error = job->error;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace hpac
