#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hpac::strings {

/// Remove leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a single character; does not merge adjacent separators.
std::vector<std::string> split(std::string_view s, char sep);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// Strict parse helpers used by the clause parser: the whole token must be
/// consumed, otherwise they return false.
bool parse_int(std::string_view s, long long& out);
bool parse_double(std::string_view s, double& out);

/// printf-style convenience returning std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace hpac::strings
