#include "common/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace hpac::strings {

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool parse_int(std::string_view s, long long& out) {
  s = trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return false;
  out = value;
  return true;
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  // The clause grammar allows a trailing float suffix as in C: 0.5f.
  if (buf.size() > 1 && (buf.back() == 'f' || buf.back() == 'F')) buf.pop_back();
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  out = value;
  return true;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace hpac::strings
