#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <system_error>

namespace hpac::strings {

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

namespace {

/// `std::from_chars` rejects an explicit leading '+' that the strto*
/// family accepted; strip it while keeping "+-5"-style double signs
/// invalid.
bool strip_plus_sign(std::string_view& s) {
  if (s.empty() || s.front() != '+') return true;
  s.remove_prefix(1);
  return !s.empty() && s.front() != '+' && s.front() != '-';
}

}  // namespace

bool parse_int(std::string_view s, long long& out) {
  // from_chars is locale-independent and reports overflow as
  // errc::result_out_of_range, where strtoll silently clamped to
  // LLONG_MAX/MIN (its ERANGE went unchecked here for years).
  s = trim(s);
  if (!strip_plus_sign(s) || s.empty()) return false;
  long long value = 0;
  const auto result = std::from_chars(s.data(), s.data() + s.size(), value, 10);
  if (result.ec != std::errc() || result.ptr != s.data() + s.size()) return false;
  out = value;
  return true;
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  // The clause grammar allows a trailing float suffix as in C: 0.5f.
  if (s.size() > 1 && (s.back() == 'f' || s.back() == 'F')) s.remove_suffix(1);
  if (!strip_plus_sign(s) || s.empty()) return false;
#if defined(__cpp_lib_to_chars)
  // Locale-independent, matching the std::to_chars writer side: CsvTable
  // persists doubles via to_chars, so a checkpoint written under any
  // LC_NUMERIC re-parses exactly — strtod under a comma-decimal locale
  // (de_DE et al.) stopped at the '.' and rejected the file's own rows.
  // Out-of-range literals (1e999) are rejected rather than clamped to inf.
  double value = 0;
  const auto result = std::from_chars(s.data(), s.data() + s.size(), value);
  if (result.ec != std::errc() || result.ptr != s.data() + s.size()) return false;
  out = value;
  return true;
#else
  // Toolchain without floating-point from_chars: legacy strtod fallback
  // (locale-sensitive; the CSV locale round-trip tests will flag it).
  std::string buf(s);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);  // hpac-lint: allow(banned-function)
  if (end != buf.c_str() + buf.size()) return false;
  out = value;
  return true;
#endif
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace hpac::strings
