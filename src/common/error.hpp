#pragma once

#include <stdexcept>
#include <string>

namespace hpac {

/// Base exception type for all errors raised by the HPAC-Offload library.
///
/// Errors are reserved for contract violations that a caller can act on
/// (bad clause syntax, invalid launch configuration, shared-memory
/// overflow). Internal invariants use assertions instead.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an HPAC pragma clause fails to parse or validate.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Raised when a kernel launch or approximation configuration is invalid
/// for the target device (e.g. AC state exceeds shared memory).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  throw Error(std::string("requirement failed: ") + expr + " at " + file + ":" +
              std::to_string(line) + (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace hpac

/// Precondition check that throws hpac::Error with location information.
/// Used on public API boundaries; always enabled (not compiled out).
#define HPAC_REQUIRE(expr, msg)                                             \
  do {                                                                      \
    if (!(expr)) ::hpac::detail::require_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
