#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hpac {

/// A small fixed-size host thread pool for fan-out/join workloads such as
/// the Explorer's configuration sweep. Workers are spawned once and reused
/// across `parallel_for` calls; each invocation hands every worker a stable
/// id in [0, size()) so callers can keep per-worker state (e.g. a forked
/// benchmark) without synchronization.
class ThreadPool {
 public:
  /// Spawn `num_threads` workers. A pool of size 0 is valid: `parallel_for`
  /// then runs every index inline on the calling thread (worker id 0).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run `body(worker_id, index)` for every index in [0, count), blocking
  /// until all indices complete. Indices are claimed dynamically, so uneven
  /// task costs balance across workers. If a body throws, remaining
  /// unstarted indices are abandoned and the first exception is rethrown
  /// here once in-flight work drains.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Worker count worth using for `count` independent tasks: `requested`
  /// if nonzero, otherwise the hardware concurrency; clamped to `count`
  /// and never less than 1.
  static std::size_t recommended_threads(std::size_t requested, std::size_t count);

  /// True when the calling thread is a ThreadPool worker (of any pool).
  /// Nested parallelism guard: the region executor declines to fan out its
  /// team shards when it is already running inside an Explorer/Campaign
  /// sweep worker, where the host cores are spoken for.
  static bool on_worker_thread();

 private:
  void worker_loop(std::size_t worker_id);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t, std::size_t)>* body_ = nullptr;
  std::size_t count_ = 0;   ///< total indices of the current job
  std::size_t next_ = 0;    ///< next unclaimed index
  std::size_t active_ = 0;  ///< workers currently inside `body`
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace hpac
