#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotated_mutex.hpp"

namespace hpac {

/// Process-wide work-stealing task scheduler shared by every host-side
/// fan-out in the harness: the Explorer's configuration sweep, the
/// Campaign's (benchmark, device) shard fan-out and the region executor's
/// team sharding all submit to one set of workers, so inner and outer
/// parallelism cooperate instead of carving up the cores per layer.
///
/// Structure: each worker owns a Chase–Lev-style deque — the owner pushes
/// and pops at the bottom (LIFO, so freshly spawned nested work stays
/// hot), thieves take from the top (FIFO, so the oldest waiting fan-out is
/// helped first). An extra "inbox" deque receives submissions from
/// threads that are not scheduler workers. Tasks here are coarse (a
/// benchmark configuration, a team range — milliseconds and up), so the
/// deques are guarded by plain per-deque mutexes rather than lock-free
/// buffers: contention is negligible at this granularity and every
/// transition stays visible to ThreadSanitizer.
///
/// `parallel_for` is a *blocking join in which the caller works*: the
/// calling thread claims indices exactly like a worker instead of parking
/// on a condition variable while the job runs (the pre-scheduler
/// ThreadPool wasted a core per nesting level that way). Nesting is
/// re-entrant by construction — a body may call `parallel_for` again; the
/// nested job's join tickets go onto the current worker's deque, where any
/// idle worker (including one whose outer shard finished early) can steal
/// them. A thread only ever blocks waiting for indices that are actively
/// executing on other threads, so nested joins cannot deadlock.
class Scheduler {
 public:
  /// Spawn `num_workers` workers. A scheduler with 0 workers is valid:
  /// `parallel_for` then runs every index inline on the calling thread.
  explicit Scheduler(std::size_t num_workers);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  std::size_t workers() const { return workers_.size(); }

  /// Threads that can cooperate on one job: every worker plus the calling
  /// thread itself.
  std::size_t parallelism() const { return workers_.size() + 1; }

  /// Run `body(slot, index)` for every index in [0, count), blocking until
  /// all indices complete. Indices are claimed dynamically (uneven costs
  /// balance); the calling thread participates. `slot` is dense in
  /// [0, limit) where limit = min(max_participants or parallelism(),
  /// count, parallelism()), and is exclusive to one participating thread
  /// for the whole job — callers may index per-participant state (e.g. a
  /// forked benchmark) with it, unsynchronized.
  ///
  /// If a body throws, unstarted indices are abandoned and the first
  /// exception is rethrown here once in-flight indices drain
  /// (first-exception-wins across all participants, stolen or not).
  ///
  /// `max_participants` bounds the number of threads that may execute
  /// bodies concurrently (0 = no bound beyond parallelism()). It is an
  /// upper bound, not a reservation: busy workers simply never join.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t max_participants = 0);

  /// The process-wide instance every harness layer shares. Sized
  /// max(2, hardware_concurrency) so stealing is exercisable even on
  /// one-core machines.
  static Scheduler& shared();

  /// Participant count worth using for `count` independent tasks:
  /// `requested` if nonzero, otherwise the hardware concurrency; clamped
  /// to `count` and never less than 1.
  static std::size_t recommended_threads(std::size_t requested, std::size_t count);

  /// True while the calling thread is inside a `parallel_for` body (of any
  /// Scheduler, inline or not). Diagnostic only — unlike the retired
  /// `ThreadPool::on_worker_thread()`, nothing gates nested fan-out on it.
  static bool in_task();

 private:
  struct Job;

  /// One Chase–Lev-style deque: owner bottom, thieves top.
  struct TaskDeque {
    common::Mutex mutex;
    std::deque<std::shared_ptr<Job>> tickets GUARDED_BY(mutex);
  };

  void worker_loop(std::size_t worker_index);
  std::shared_ptr<Job> next_ticket(std::size_t home);
  void push_tickets(const std::shared_ptr<Job>& job, std::size_t n);
  static void participate(Job& job);

  /// One deque per worker plus the external-submitter inbox at index
  /// workers().
  std::vector<TaskDeque> deques_;
  std::vector<std::thread> workers_;
  common::Mutex sleep_mutex_;
  common::CondVar wake_cv_;
  std::size_t unpopped_tickets_ GUARDED_BY(sleep_mutex_) = 0;
  bool stop_ GUARDED_BY(sleep_mutex_) = false;
};

}  // namespace hpac
