#include "common/rng.hpp"

#include <cmath>

namespace hpac {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::uniform_index(std::uint64_t n) {
  // Bounded rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Xoshiro256::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Xoshiro256::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Xoshiro256::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

}  // namespace hpac
