#pragma once

#include <cstdint>

namespace hpac::simd {

/// Host vector-ISA dispatch level of the SIMD fast paths (ROADMAP item 3).
///
/// Every SIMD kernel in the tree is *bit-identical* to its scalar
/// reference: vectorization always runs across independent lanes (table
/// rows, option contracts, tree nodes) with each lane performing exactly
/// the scalar operation sequence, never by reassociating a single lane's
/// floating-point reduction. That is what lets the dispatch level be a
/// pure execution knob — sweep CSVs are byte-identical at every level —
/// instead of a semantics knob, and it is enforced by the `simd`-labeled
/// tests and the CI dispatch matrix.
///
/// Ordering is meaningful: higher enumerators are wider ISAs, and a level
/// is usable only when both the build compiled it and the CPU reports it.
enum class Level : std::uint8_t {
  kOff = 0,   ///< scalar reference paths only
  kSse2 = 1,  ///< 128-bit lanes (x86-64 baseline, always compiled there)
  kAvx2 = 2,  ///< 256-bit lanes (separate TUs, runtime cpuid-gated)
};

/// Short lowercase name ("off", "sse2", "avx2") — the spelling accepted by
/// the HPAC_SIMD environment override and printed by diagnostics.
const char* level_name(Level level);

/// Widest level this binary contains kernels for (compile-time fact).
Level max_compiled_level();

/// Widest level the running CPU supports among the compiled ones.
Level max_runtime_level();

/// The level SIMD-aware call sites dispatch on. Resolution order:
///   1. `HPAC_SIMD=off|sse2|avx2` environment override, clamped to
///      `max_runtime_level()` (asking for more than the host has degrades
///      to the widest available rather than crashing);
///   2. otherwise `max_runtime_level()`.
/// Resolved once at first use; `set_level()` changes it afterwards.
Level active_level();

/// Override the active level (clamped to `max_runtime_level()`); returns
/// the level actually installed. Tests and benches use this to compare
/// dispatch levels in-process. Kernel choices are made per call or per
/// object construction, so the new level applies to work started after
/// the call, not to objects that cached a kernel earlier.
Level set_level(Level level);

/// Everything a diagnostic line needs about the dispatch decision.
struct DispatchInfo {
  Level active = Level::kOff;
  Level max_runtime = Level::kOff;
  Level max_compiled = Level::kOff;
  bool env_override = false;  ///< HPAC_SIMD was set and parsed
};
DispatchInfo dispatch_info();

}  // namespace hpac::simd
