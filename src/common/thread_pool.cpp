#include "common/thread_pool.hpp"

#include <algorithm>

namespace hpac {

namespace {
thread_local bool t_on_worker_thread = false;
}  // namespace

bool ThreadPool::on_worker_thread() { return t_on_worker_thread; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t w = 0; w < num_threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop(std::size_t worker_id) {
  t_on_worker_thread = true;
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) return;
    seen_generation = generation_;
    while (next_ < count_) {
      const std::size_t index = next_++;
      ++active_;
      lock.unlock();
      std::exception_ptr err;
      try {
        (*body_)(worker_id, index);
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
      --active_;
      if (err) {
        if (!error_) error_ = err;
        next_ = count_;  // abandon unstarted indices
      }
      if (next_ >= count_ && active_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) body(0, i);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  body_ = &body;
  count_ = count;
  next_ = 0;
  active_ = 0;
  error_ = nullptr;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] { return next_ >= count_ && active_ == 0; });
  body_ = nullptr;
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

std::size_t ThreadPool::recommended_threads(std::size_t requested, std::size_t count) {
  std::size_t threads = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  return std::min(threads, std::max<std::size_t>(count, 1));
}

}  // namespace hpac
