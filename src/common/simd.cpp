#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace hpac::simd {

namespace {

#if defined(__x86_64__) || defined(_M_X64)
constexpr bool kHostIsX86 = true;
#else
constexpr bool kHostIsX86 = false;
#endif

Level compiled_level() {
  if (!kHostIsX86) return Level::kOff;
#if defined(HPAC_SIMD_COMPILED_AVX2)
  return Level::kAvx2;
#else
  return Level::kSse2;
#endif
}

Level runtime_level() {
  const Level compiled = compiled_level();
  if (compiled == Level::kOff) return Level::kOff;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(_M_X64))
  if (compiled >= Level::kAvx2 && __builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  // SSE2 is part of the x86-64 baseline: every CPU that runs this binary
  // has it, so the floor among compiled levels is always usable.
  return Level::kSse2;
}

Level clamp_to_runtime(Level level) {
  const Level ceiling = runtime_level();
  return level < ceiling ? level : ceiling;
}

struct Resolution {
  Level level = Level::kOff;
  bool env_override = false;
};

/// One-time HPAC_SIMD resolution. Unknown spellings are ignored (the
/// default wins) rather than fatal: the override is a perf knob, and a
/// typo silently running the default is caught by the diagnostics the
/// CLIs print, while a crash would take the whole sweep down.
Resolution resolve_from_env() {
  Resolution r;
  r.level = runtime_level();
  const char* env = std::getenv("HPAC_SIMD");
  if (env == nullptr) return r;
  const std::string_view text(env);
  if (text == "off" || text == "0" || text == "scalar") {
    r.level = Level::kOff;
    r.env_override = true;
  } else if (text == "sse2") {
    r.level = clamp_to_runtime(Level::kSse2);
    r.env_override = true;
  } else if (text == "avx2") {
    r.level = clamp_to_runtime(Level::kAvx2);
    r.env_override = true;
  }
  return r;
}

const Resolution& startup_resolution() {
  static const Resolution resolution = resolve_from_env();
  return resolution;
}

std::atomic<Level>& active_slot() {
  static std::atomic<Level> slot{startup_resolution().level};
  return slot;
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
    case Level::kOff:
      break;
  }
  return "off";
}

Level max_compiled_level() { return compiled_level(); }

Level max_runtime_level() { return runtime_level(); }

Level active_level() { return active_slot().load(std::memory_order_relaxed); }

Level set_level(Level level) {
  const Level installed = clamp_to_runtime(level);
  active_slot().store(installed, std::memory_order_relaxed);
  return installed;
}

DispatchInfo dispatch_info() {
  DispatchInfo info;
  info.active = active_level();
  info.max_runtime = runtime_level();
  info.max_compiled = compiled_level();
  info.env_override = startup_resolution().env_override;
  return info;
}

}  // namespace hpac::simd
