#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// Clang thread-safety annotations (-Wthread-safety) over the standard
/// synchronization types. The std types themselves carry no capability
/// attributes, so locking discipline stated only in comments ("guarded by
/// head_mutex_") is invisible to the compiler; these wrappers attach the
/// attributes so clang proves, at compile time, that every GUARDED_BY
/// field is touched only under its mutex and every REQUIRES method is
/// called with the right lock held. Under any other compiler the macros
/// expand to nothing and every wrapper is a zero-overhead pass-through —
/// the clang CI job is where the analysis gates (promoted to -Werror).
///
/// Conventions used across the tree:
///  * fields:    `T x GUARDED_BY(mutex_);`
///  * methods:   `void f() REQUIRES(mutex_);` for "caller holds the lock"
///  * waiting:   explicit loops — `while (!cond) cv_.wait(lock);` — never
///    predicate lambdas, which the analysis cannot see into (a lambda body
///    is analyzed as its own function with no capabilities held).

#if defined(__clang__)
#define HPAC_TSA_(x) __attribute__((x))
#else
#define HPAC_TSA_(x)
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) HPAC_TSA_(capability(x))
#endif
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY HPAC_TSA_(scoped_lockable)
#endif
#ifndef GUARDED_BY
#define GUARDED_BY(x) HPAC_TSA_(guarded_by(x))
#endif
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) HPAC_TSA_(pt_guarded_by(x))
#endif
#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) HPAC_TSA_(acquired_before(__VA_ARGS__))
#endif
#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) HPAC_TSA_(acquired_after(__VA_ARGS__))
#endif
#ifndef REQUIRES
#define REQUIRES(...) HPAC_TSA_(requires_capability(__VA_ARGS__))
#endif
#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) HPAC_TSA_(requires_shared_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE
#define ACQUIRE(...) HPAC_TSA_(acquire_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) HPAC_TSA_(acquire_shared_capability(__VA_ARGS__))
#endif
#ifndef RELEASE
#define RELEASE(...) HPAC_TSA_(release_capability(__VA_ARGS__))
#endif
#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) HPAC_TSA_(release_shared_capability(__VA_ARGS__))
#endif
#ifndef RELEASE_GENERIC
#define RELEASE_GENERIC(...) HPAC_TSA_(release_generic_capability(__VA_ARGS__))
#endif
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) HPAC_TSA_(try_acquire_capability(__VA_ARGS__))
#endif
#ifndef TRY_ACQUIRE_SHARED
#define TRY_ACQUIRE_SHARED(...) HPAC_TSA_(try_acquire_shared_capability(__VA_ARGS__))
#endif
#ifndef EXCLUDES
#define EXCLUDES(...) HPAC_TSA_(locks_excluded(__VA_ARGS__))
#endif
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) HPAC_TSA_(assert_capability(x))
#endif
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) HPAC_TSA_(lock_returned(x))
#endif
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS HPAC_TSA_(no_thread_safety_analysis)
#endif

namespace hpac::common {

/// std::mutex with the `capability` attribute. Lock it through MutexLock /
/// UniqueMutexLock in new code; the raw lock()/unlock() exist for the rare
/// REQUIRES method that must drop and retake its caller's lock around a
/// blocking section (TuningService::run_evaluator) — a pattern the
/// analysis tracks precisely on the mutex itself but not through a scoped
/// guard passed by reference.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  friend class UniqueMutexLock;
  std::mutex m_;
};

/// std::shared_mutex with the `capability` attribute: exclusive writers,
/// shared readers.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }
  void lock_shared() ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { m_.unlock_shared(); }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) { return m_.try_lock_shared(); }

 private:
  friend class SharedLock;
  friend class SharedMutexLock;
  std::shared_mutex m_;
};

/// Scoped std::lock_guard equivalent over Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : lock_(mutex.m_) {}
  ~MutexLock() RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  std::lock_guard<std::mutex> lock_;
};

/// Scoped exclusive lock over SharedMutex.
class SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mutex) ACQUIRE(mutex) : lock_(mutex.m_) {}
  ~SharedMutexLock() RELEASE() {}

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  std::lock_guard<std::shared_mutex> lock_;
};

/// Scoped reader lock over SharedMutex.
class SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mutex) ACQUIRE_SHARED(mutex) : lock_(mutex.m_) {}
  ~SharedLock() RELEASE() {}

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

/// Scoped std::unique_lock equivalent over Mutex — the lock type CondVar
/// waits on. Manual unlock()/lock() mid-scope are annotated so the
/// analysis tracks the held state through them.
class SCOPED_CAPABILITY UniqueMutexLock {
 public:
  explicit UniqueMutexLock(Mutex& mutex) ACQUIRE(mutex) : lock_(mutex.m_) {}
  ~UniqueMutexLock() RELEASE() {}

  UniqueMutexLock(const UniqueMutexLock&) = delete;
  UniqueMutexLock& operator=(const UniqueMutexLock&) = delete;

  void lock() ACQUIRE() { lock_.lock(); }
  void unlock() RELEASE() { lock_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable over UniqueMutexLock. Deliberately offers no
/// predicate overloads: the waiting convention is an explicit loop in the
/// caller's body, where the analysis can see the guarded reads.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(UniqueMutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueMutexLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(UniqueMutexLock& lock,
                            const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace hpac::common
