#include "common/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace hpac {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HPAC_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  HPAC_REQUIRE(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i ? "  " : "") << row[i];
      for (std::size_t pad = row[i].size(); pad < widths[i]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < widths.size(); ++i) total += widths[i] + (i ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace hpac
