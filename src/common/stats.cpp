#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace hpac::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 1) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double rsd(std::span<const double> xs) {
  const double mu = mean(xs);
  const double sigma = stddev(xs);
  if (mu == 0.0) {
    return sigma == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return sigma / std::abs(mu);
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    HPAC_REQUIRE(x > 0.0, "geomean requires positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double percentile(std::span<const double> xs, double p) {
  HPAC_REQUIRE(!xs.empty(), "percentile of empty range");
  HPAC_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

BoxStats box_stats(std::span<const double> xs) {
  BoxStats b;
  if (xs.empty()) return b;
  b.min = percentile(xs, 0);
  b.q1 = percentile(xs, 25);
  b.median = percentile(xs, 50);
  b.q3 = percentile(xs, 75);
  b.max = percentile(xs, 100);
  return b;
}

Regression linear_regression(std::span<const double> x, std::span<const double> y) {
  HPAC_REQUIRE(x.size() == y.size(), "regression inputs differ in length");
  HPAC_REQUIRE(x.size() >= 2, "regression needs at least two points");
  const double mx = mean(x);
  const double my = mean(y);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  Regression r;
  if (sxx == 0.0) {
    r.slope = 0.0;
    r.intercept = my;
    r.r2 = 0.0;
    return r;
  }
  r.slope = sxy / sxx;
  r.intercept = my - r.slope * mx;
  r.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return r;
}

double mape_percent(std::span<const double> accurate, std::span<const double> approx) {
  HPAC_REQUIRE(accurate.size() == approx.size(), "MAPE inputs differ in length");
  if (accurate.empty()) return 0.0;
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < accurate.size(); ++i) {
    if (accurate[i] == 0.0) continue;  // percentage error undefined at 0
    sum += std::abs(accurate[i] - approx[i]) / std::abs(accurate[i]);
    ++counted;
  }
  if (counted == 0) return 0.0;
  return 100.0 * sum / static_cast<double>(counted);
}

double mcr_percent(std::span<const int> accurate, std::span<const int> approx) {
  HPAC_REQUIRE(accurate.size() == approx.size(), "MCR inputs differ in length");
  if (accurate.empty()) return 0.0;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < accurate.size(); ++i) {
    if (accurate[i] != approx[i]) ++mismatches;
  }
  return 100.0 * static_cast<double>(mismatches) / static_cast<double>(accurate.size());
}

void RunningStats::push(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace hpac::stats
