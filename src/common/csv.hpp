#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace hpac {

/// A single CSV cell; stored typed so numeric formatting is uniform.
using CsvCell = std::variant<std::string, double, long long>;

/// Append-only CSV table used as the harness "result database" (the paper's
/// execution harness stores runtime/error results in a database the user
/// queries afterwards; we persist plain CSV for the same purpose).
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> columns);

  const std::vector<std::string>& columns() const { return columns_; }
  std::size_t row_count() const { return rows_.size(); }

  /// Append a row; must match the column count.
  void add_row(std::vector<CsvCell> cells);

  /// Cell accessors for tests and aggregation.
  const CsvCell& at(std::size_t row, std::size_t col) const;
  double number_at(std::size_t row, std::size_t col) const;
  const CsvCell& at(std::size_t row, const std::string& column) const;
  double number_at(std::size_t row, const std::string& column) const;

  /// Column index by name; throws if missing.
  std::size_t column_index(const std::string& name) const;

  /// Serialize with a header row. Quotes cells containing separators.
  void write(std::ostream& os) const;
  void save(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<CsvCell>> rows_;
};

}  // namespace hpac
