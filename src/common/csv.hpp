#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace hpac {

/// A single CSV cell; stored typed so numeric formatting is uniform.
using CsvCell = std::variant<std::string, double, long long>;

/// Render one cell exactly as `CsvTable::write` does: strings are quoted
/// when they contain a separator, quote or newline; doubles use the
/// shortest text that parses back to the identical value; integers print
/// verbatim.
void write_csv_cell(std::ostream& os, const CsvCell& cell);

/// Render one full row (separators and trailing newline included).
void write_csv_row(std::ostream& os, const std::vector<CsvCell>& cells);

/// The unquoted text of a cell — what `write_csv_cell` emits before
/// quoting is applied. Numeric cells use the table's canonical formatting.
std::string cell_text(const CsvCell& cell);

/// Streaming row-by-row CSV reader. Understands the quoting `write` emits
/// (RFC-4180 style): quoted cells may contain separators, doubled quotes
/// and embedded newlines; CRLF line endings are accepted. Cells come back
/// as raw strings; `CsvTable::load` layers typed re-parsing on top.
class CsvReader {
 public:
  explicit CsvReader(std::istream& is) : is_(is) {}

  /// The next record, or nullopt at end of input. A record spans multiple
  /// physical lines when a quoted cell contains newlines.
  std::optional<std::vector<std::string>> next_row();

 private:
  std::istream& is_;
};

/// Append-only CSV table used as the harness "result database" (the paper's
/// execution harness stores runtime/error results in a database the user
/// queries afterwards; we persist plain CSV for the same purpose).
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> columns);

  const std::vector<std::string>& columns() const { return columns_; }
  std::size_t row_count() const { return rows_.size(); }

  /// Append a row; must match the column count.
  void add_row(std::vector<CsvCell> cells);

  /// Cell accessors for tests and aggregation.
  const CsvCell& at(std::size_t row, std::size_t col) const;
  double number_at(std::size_t row, std::size_t col) const;
  const CsvCell& at(std::size_t row, const std::string& column) const;
  double number_at(std::size_t row, const std::string& column) const;
  /// Unquoted text of a cell regardless of its stored type.
  std::string text_at(std::size_t row, std::size_t col) const;
  std::string text_at(std::size_t row, const std::string& column) const;

  /// Column index by name; throws if missing.
  std::size_t column_index(const std::string& name) const;

  /// Serialize with a header row. Quotes cells containing separators.
  void write(std::ostream& os) const;
  void save(const std::string& path) const;

  /// Parse a table previously produced by `write`. Unquoted cells that
  /// parse as numbers AND re-format to the identical text are stored
  /// typed; everything else stays a string, so `load` → `write` is
  /// byte-identical and numeric formatting is stable across repeated
  /// round trips. Throws hpac::Error on missing header or ragged rows —
  /// except that with `drop_torn_tail` a malformed *final* record (the
  /// signature of an append-mode journal whose writer died mid-row) is
  /// silently dropped instead.
  static CsvTable load(std::istream& is, bool drop_torn_tail = false);
  static CsvTable load_file(const std::string& path, bool drop_torn_tail = false);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<CsvCell>> rows_;
};

}  // namespace hpac
