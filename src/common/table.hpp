#pragma once

#include <string>
#include <vector>

namespace hpac {

/// Fixed-width console table used by the bench binaries to print the rows
/// and series that correspond to the paper's tables and figures.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Render with column alignment and a header separator line.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hpac
