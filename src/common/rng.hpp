#pragma once

#include <array>
#include <cstdint>

namespace hpac {

/// SplitMix64 — used to seed Xoshiro256** and as a cheap stateless mixer.
/// Deterministic across platforms; all workload generators in this project
/// derive their streams from fixed seeds so experiments are reproducible.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// Xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, deterministic
/// generator used by every synthetic workload generator in `hpac::apps`.
///
/// We implement our own generator instead of `std::mt19937` so that the
/// produced workloads are identical across standard libraries, which keeps
/// recorded experiment outputs comparable between toolchains.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  std::uint64_t next();
  std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ull; }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Standard normal via Box–Muller (uses two uniforms per pair; caches one).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Lognormal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace hpac
