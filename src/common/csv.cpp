#include "common/csv.hpp"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hpac {

namespace {

std::string format_double(double value) {
  // Shortest representation that parses back to the identical double, so
  // persisted databases restore values exactly and repeated round trips
  // are byte-stable.
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof buf, value);
  return std::string(buf, result.ptr);
}

/// Typed re-parse of a raw cell: keep a numeric type only when writing it
/// back reproduces the original bytes, so load → write is an identity.
CsvCell typed_cell(std::string text) {
  long long integer = 0;
  if (strings::parse_int(text, integer) && std::to_string(integer) == text) return integer;
  double real = 0;
  if (strings::parse_double(text, real) && format_double(real) == text) return real;
  return text;
}

}  // namespace

void write_csv_cell(std::ostream& os, const CsvCell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) {
    const bool needs_quotes = s->find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes) {
      os << *s;
      return;
    }
    os << '"';
    for (char c : *s) {
      if (c == '"') os << '"';
      os << c;
    }
    os << '"';
  } else if (const auto* d = std::get_if<double>(&cell)) {
    os << format_double(*d);
  } else {
    os << std::get<long long>(cell);
  }
}

void write_csv_row(std::ostream& os, const std::vector<CsvCell>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os << ',';
    write_csv_cell(os, cells[i]);
  }
  os << '\n';
}

std::string cell_text(const CsvCell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* d = std::get_if<double>(&cell)) return format_double(*d);
  return std::to_string(std::get<long long>(cell));
}

std::optional<std::vector<std::string>> CsvReader::next_row() {
  if (is_.peek() == std::char_traits<char>::eof()) return std::nullopt;
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  char c = 0;
  while (is_.get(c)) {
    if (in_quotes) {
      if (c == '"') {
        if (is_.peek() == '"') {
          is_.get(c);
          cell.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
      continue;
    }
    if (c == '"' && cell.empty()) {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c == '\n') {
      if (!cell.empty() && cell.back() == '\r') cell.pop_back();
      cells.push_back(std::move(cell));
      return cells;
    } else {
      cell.push_back(c);
    }
  }
  HPAC_REQUIRE(!in_quotes, "CSV input ends inside a quoted cell");
  // Final record without a trailing newline.
  cells.push_back(std::move(cell));
  return cells;
}

CsvTable::CsvTable(std::vector<std::string> columns) : columns_(std::move(columns)) {
  HPAC_REQUIRE(!columns_.empty(), "CSV table needs at least one column");
}

void CsvTable::add_row(std::vector<CsvCell> cells) {
  HPAC_REQUIRE(cells.size() == columns_.size(),
               strings::format("row has %zu cells, table has %zu columns", cells.size(),
                               columns_.size()));
  rows_.push_back(std::move(cells));
}

const CsvCell& CsvTable::at(std::size_t row, std::size_t col) const {
  HPAC_REQUIRE(row < rows_.size(), "row out of range");
  HPAC_REQUIRE(col < columns_.size(), "column out of range");
  return rows_[row][col];
}

double CsvTable::number_at(std::size_t row, std::size_t col) const {
  const CsvCell& cell = at(row, col);
  if (const auto* d = std::get_if<double>(&cell)) return *d;
  if (const auto* i = std::get_if<long long>(&cell)) return static_cast<double>(*i);
  throw Error("CSV cell is not numeric");
}

const CsvCell& CsvTable::at(std::size_t row, const std::string& column) const {
  return at(row, column_index(column));
}

double CsvTable::number_at(std::size_t row, const std::string& column) const {
  return number_at(row, column_index(column));
}

std::string CsvTable::text_at(std::size_t row, std::size_t col) const {
  return cell_text(at(row, col));
}

std::string CsvTable::text_at(std::size_t row, const std::string& column) const {
  return cell_text(at(row, column_index(column)));
}

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  throw Error("no such CSV column: " + name);
}

void CsvTable::write(std::ostream& os) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) os << ',';
    os << columns_[i];
  }
  os << '\n';
  for (const auto& row : rows_) write_csv_row(os, row);
}

void CsvTable::save(const std::string& path) const {
  std::ofstream out(path);
  HPAC_REQUIRE(out.good(), "cannot open CSV output file: " + path);
  write(out);
}

CsvTable CsvTable::load(std::istream& is, bool drop_torn_tail) {
  CsvReader reader(is);
  auto header = reader.next_row();
  HPAC_REQUIRE(header.has_value() && !(header->size() == 1 && header->front().empty()),
               "CSV input has no header row");
  CsvTable table(*header);
  std::size_t line = 1;
  for (;;) {
    std::optional<std::vector<std::string>> row;
    try {
      row = reader.next_row();
    } catch (const Error&) {
      // An unterminated quote is necessarily the input's final record.
      if (drop_torn_tail) break;
      throw;
    }
    if (!row) break;
    ++line;
    if (row->size() != table.columns_.size()) {
      const bool is_final = is.peek() == std::char_traits<char>::eof();
      if (drop_torn_tail && is_final) break;
      throw Error(strings::format("CSV record %zu has %zu cells, header has %zu", line,
                                  row->size(), table.columns_.size()));
    }
    std::vector<CsvCell> cells;
    cells.reserve(row->size());
    for (auto& text : *row) cells.push_back(typed_cell(std::move(text)));
    table.rows_.push_back(std::move(cells));
  }
  return table;
}

CsvTable CsvTable::load_file(const std::string& path, bool drop_torn_tail) {
  std::ifstream in(path, std::ios::binary);
  HPAC_REQUIRE(in.good(), "cannot open CSV input file: " + path);
  return load(in, drop_torn_tail);
}

}  // namespace hpac
