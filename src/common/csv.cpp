#include "common/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hpac {

CsvTable::CsvTable(std::vector<std::string> columns) : columns_(std::move(columns)) {
  HPAC_REQUIRE(!columns_.empty(), "CSV table needs at least one column");
}

void CsvTable::add_row(std::vector<CsvCell> cells) {
  HPAC_REQUIRE(cells.size() == columns_.size(),
               strings::format("row has %zu cells, table has %zu columns", cells.size(),
                               columns_.size()));
  rows_.push_back(std::move(cells));
}

const CsvCell& CsvTable::at(std::size_t row, std::size_t col) const {
  HPAC_REQUIRE(row < rows_.size(), "row out of range");
  HPAC_REQUIRE(col < columns_.size(), "column out of range");
  return rows_[row][col];
}

double CsvTable::number_at(std::size_t row, std::size_t col) const {
  const CsvCell& cell = at(row, col);
  if (const auto* d = std::get_if<double>(&cell)) return *d;
  if (const auto* i = std::get_if<long long>(&cell)) return static_cast<double>(*i);
  throw Error("CSV cell is not numeric");
}

const CsvCell& CsvTable::at(std::size_t row, const std::string& column) const {
  return at(row, column_index(column));
}

double CsvTable::number_at(std::size_t row, const std::string& column) const {
  return number_at(row, column_index(column));
}

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  throw Error("no such CSV column: " + name);
}

namespace {
void write_cell(std::ostream& os, const CsvCell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) {
    const bool needs_quotes = s->find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes) {
      os << *s;
      return;
    }
    os << '"';
    for (char c : *s) {
      if (c == '"') os << '"';
      os << c;
    }
    os << '"';
  } else if (const auto* d = std::get_if<double>(&cell)) {
    std::ostringstream tmp;
    tmp.precision(12);
    tmp << *d;
    os << tmp.str();
  } else {
    os << std::get<long long>(cell);
  }
}
}  // namespace

void CsvTable::write(std::ostream& os) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) os << ',';
    os << columns_[i];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      write_cell(os, row[i]);
    }
    os << '\n';
  }
}

void CsvTable::save(const std::string& path) const {
  std::ofstream out(path);
  HPAC_REQUIRE(out.good(), "cannot open CSV output file: " + path);
  write(out);
}

}  // namespace hpac
