#include "service/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "service/socket_io.hpp"

namespace hpac::service {

TuningClient::TuningClient(std::string socket_path, Options options)
    : socket_path_(std::move(socket_path)),
      options_(options),
      jitter_(std::random_device{}()) {
  ensure_connected();  // fail fast when nothing is listening
}

TuningClient::~TuningClient() { disconnect(); }

void TuningClient::ensure_connected() {
  if (fd_ >= 0) return;
  fd_ = connect_unix(socket_path_, options_.connect_timeout_ms);
}

void TuningClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TuningClient::backoff(int attempt) {
  // Full jitter: uniform in (0, min(initial << attempt, max)]. The upper
  // bound doubles per retry; the draw spreads a herd of clients that all
  // saw the same daemon restart across the window instead of having them
  // reconnect in lockstep.
  const int shift = std::min(attempt, 20);  // keep the << well-defined
  const long ceiling = std::min(static_cast<long>(options_.backoff_max_ms),
                                static_cast<long>(options_.backoff_initial_ms) << shift);
  if (ceiling <= 0) return;
  std::uniform_int_distribution<long> draw(1, ceiling);
  std::this_thread::sleep_for(std::chrono::milliseconds(draw(jitter_)));
}

Frame TuningClient::round_trip(MessageType request, std::string_view body,
                               MessageType expected_reply) {
  write_frame(fd_, request, body);
  Frame reply;
  const ReadTimeouts timeouts{options_.request_timeout_ms, options_.frame_timeout_ms};
  if (!read_frame(fd_, reply, timeouts)) {
    // EOF where a reply belonged: daemon stopped or crashed. Transport,
    // not protocol — a retry against a restarted daemon can succeed.
    throw TransportError("daemon closed the connection before replying");
  }
  if (reply.type != expected_reply) {
    throw ProtocolError("unexpected reply type " +
                        std::to_string(static_cast<int>(reply.type)));
  }
  return reply;
}

harness::TuningAnswer TuningClient::query(const harness::TuningQuery& query) {
  const std::string body = encode_query(query);
  for (int attempt = 0;; ++attempt) {
    try {
      ensure_connected();
      const Frame reply =
          round_trip(MessageType::kQueryRequest, body, MessageType::kQueryReply);
      harness::TuningAnswer answer = decode_answer(reply.body);
      if (answer.status == harness::TuningStatus::kRejected &&
          attempt < options_.max_retries) {
        // Backpressure is an invitation to retry later, so honor it —
        // but on the same connection; nothing is wrong with the socket.
        backoff(attempt);
        continue;
      }
      return answer;
    } catch (const ProtocolError&) {
      throw;  // repeating the same bytes cannot fix a protocol mismatch
    } catch (const TransportError&) {
      // Covers TimeoutError too: connection refused/reset, daemon gone
      // mid-request, wedged daemon past the request timeout. Tear the
      // connection down — its stream state is unknowable — and retry
      // fresh. The store dedupes, so a resend after a lost reply is safe.
      disconnect();
      if (attempt >= options_.max_retries) throw;
      backoff(attempt);
    }
  }
}

harness::TuningService::Stats TuningClient::stats() {
  ensure_connected();
  try {
    const Frame reply =
        round_trip(MessageType::kStatsRequest, "", MessageType::kStatsReply);
    return decode_stats(reply.body);
  } catch (const TransportError&) {
    disconnect();  // a half-read stream must not poison the next call
    throw;
  }
}

void TuningClient::shutdown_server() {
  ensure_connected();
  try {
    round_trip(MessageType::kShutdownRequest, "", MessageType::kShutdownReply);
  } catch (const TransportError&) {
    disconnect();
    throw;
  }
}

}  // namespace hpac::service
