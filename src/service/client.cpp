#include "service/client.hpp"

#include <unistd.h>

#include "common/error.hpp"
#include "service/socket_io.hpp"

namespace hpac::service {

TuningClient::TuningClient(const std::string& socket_path)
    : fd_(connect_unix(socket_path)) {}

TuningClient::~TuningClient() {
  if (fd_ >= 0) ::close(fd_);
}

Frame TuningClient::round_trip(MessageType request, std::string_view body,
                               MessageType expected_reply) {
  write_frame(fd_, request, body);
  Frame reply;
  if (!read_frame(fd_, reply)) {
    throw Error("daemon closed the connection before replying");
  }
  if (reply.type != expected_reply) {
    throw ProtocolError("unexpected reply type " +
                        std::to_string(static_cast<int>(reply.type)));
  }
  return reply;
}

harness::TuningAnswer TuningClient::query(const harness::TuningQuery& query) {
  const Frame reply =
      round_trip(MessageType::kQueryRequest, encode_query(query), MessageType::kQueryReply);
  return decode_answer(reply.body);
}

harness::TuningService::Stats TuningClient::stats() {
  const Frame reply =
      round_trip(MessageType::kStatsRequest, "", MessageType::kStatsReply);
  return decode_stats(reply.body);
}

void TuningClient::shutdown_server() {
  round_trip(MessageType::kShutdownRequest, "", MessageType::kShutdownReply);
}

}  // namespace hpac::service
