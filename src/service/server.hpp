#pragma once

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/annotated_mutex.hpp"
#include "harness/tuning_service.hpp"

namespace hpac::service {

/// The hpacd transport: a Unix-domain stream socket speaking the framed
/// protocol, one thread per connection. Each connection is one fairness
/// client of the underlying TuningService, so a flood of queries on one
/// connection cannot starve another connection's single question.
///
/// The server survives any client behavior: a peer that disconnects
/// mid-reply produces EPIPE (never SIGPIPE), a peer that sends garbage is
/// dropped with a ProtocolError, and a peer that starts a frame but
/// trickles it (slow loris) is cut off by the frame timeout — each costs
/// one connection thread, never the daemon.
class TuningServer {
 public:
  struct Options {
    std::string socket_path;
    int backlog = 16;
    harness::TuningServiceConfig service;
    /// Slow-loris guard: once a frame's first byte arrives the whole
    /// frame must follow within this bound or the connection is dropped.
    /// -1 disables. Idle time *between* frames is always unlimited — a
    /// quiet client holding a connection is legitimate.
    int frame_timeout_ms = 10000;
  };

  /// The store is caller-owned: the daemon may resume an existing campaign
  /// journal into it, or share it with an in-process Campaign::run(store).
  TuningServer(harness::ResultStore& store, Options options);
  ~TuningServer();  ///< stop()s if still running

  TuningServer(const TuningServer&) = delete;
  TuningServer& operator=(const TuningServer&) = delete;

  /// Bind, listen and start the accept loop. Throws hpac::Error when the
  /// socket path is unusable.
  void start();

  /// Block until a client sends a shutdown request (or `stop`/`drain` is
  /// called from another thread).
  void wait();

  /// Graceful shutdown: stop accepting, unblock and join every connection
  /// thread, remove the socket file. Idempotent.
  void stop();

  /// Graceful *drain* (the SIGTERM path): refuse new connections and stop
  /// reading new requests, but let every request already received finish
  /// and have its reply delivered before the connection closes. The store
  /// needs no separate flush — every append is flushed when journaled.
  /// Idempotent, and interchangeable with stop() once either has run.
  void drain();

  const harness::TuningService& service() const { return service_; }
  const std::string& socket_path() const { return options_.socket_path; }

 private:
  void accept_loop(int listen_fd);
  void serve_connection(int fd, std::uint64_t connection_id);
  /// Shared body of stop() and drain(): `how` is the shutdown(2) mode for
  /// live connections — SHUT_RDWR aborts their replies, SHUT_RD lets
  /// in-flight replies finish while further reads see EOF.
  void shutdown_connections(int how);

  Options options_;
  harness::TuningService service_;

  common::Mutex mutex_;
  common::CondVar stop_requested_cv_;
  /// Shutdown frame seen or stop() entered.
  bool stop_requested_ GUARDED_BY(mutex_) = false;
  bool running_ GUARDED_BY(mutex_) = false;
  int listen_fd_ GUARDED_BY(mutex_) = -1;
  std::uint64_t next_connection_ GUARDED_BY(mutex_) = 0;
  /// Live connection fds, indexed by connection id; -1 once closed. stop()
  /// shuts these down to unblock their reader threads before joining.
  std::vector<int> connection_fds_ GUARDED_BY(mutex_);
  std::vector<std::thread> connection_threads_ GUARDED_BY(mutex_);
  std::thread accept_thread_ GUARDED_BY(mutex_);
};

}  // namespace hpac::service
