#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/tuning_service.hpp"

namespace hpac::service {

/// The hpacd transport: a Unix-domain stream socket speaking the framed
/// protocol, one thread per connection. Each connection is one fairness
/// client of the underlying TuningService, so a flood of queries on one
/// connection cannot starve another connection's single question.
class TuningServer {
 public:
  struct Options {
    std::string socket_path;
    int backlog = 16;
    harness::TuningServiceConfig service;
  };

  /// The store is caller-owned: the daemon may resume an existing campaign
  /// journal into it, or share it with an in-process Campaign::run(store).
  TuningServer(harness::ResultStore& store, Options options);
  ~TuningServer();  ///< stop()s if still running

  TuningServer(const TuningServer&) = delete;
  TuningServer& operator=(const TuningServer&) = delete;

  /// Bind, listen and start the accept loop. Throws hpac::Error when the
  /// socket path is unusable.
  void start();

  /// Block until a client sends a shutdown request (or `stop` is called
  /// from another thread).
  void wait();

  /// Graceful shutdown: stop accepting, unblock and join every connection
  /// thread, remove the socket file. Idempotent.
  void stop();

  const harness::TuningService& service() const { return service_; }
  const std::string& socket_path() const { return options_.socket_path; }

 private:
  void accept_loop(int listen_fd);
  void serve_connection(int fd, std::uint64_t connection_id);

  Options options_;
  harness::TuningService service_;

  std::mutex mutex_;
  std::condition_variable stop_requested_cv_;
  bool stop_requested_ = false;  ///< shutdown frame seen or stop() entered
  bool running_ = false;
  int listen_fd_ = -1;
  std::uint64_t next_connection_ = 0;
  /// Live connection fds, indexed by connection id; -1 once closed. stop()
  /// shuts these down to unblock their reader threads before joining.
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;
  std::thread accept_thread_;
};

}  // namespace hpac::service
