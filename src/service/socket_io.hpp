#pragma once

#include <string>
#include <string_view>

#include "service/protocol.hpp"

namespace hpac::service {

/// Blocking POSIX helpers shared by the server and the client — the whole
/// transport is these three calls plus close(2).

/// Connect a Unix-domain stream socket to `path`. Throws hpac::Error when
/// the path is too long for sockaddr_un or the connect fails.
int connect_unix(const std::string& path);

/// Bind + listen a Unix-domain stream socket at `path` (unlinking a stale
/// socket file first). Throws hpac::Error on failure.
int listen_unix(const std::string& path, int backlog);

/// Write one complete frame; loops over partial writes and EINTR. Throws
/// hpac::Error when the peer is gone.
void write_frame(int fd, MessageType type, std::string_view body);

/// Read one complete frame. Returns false on clean EOF at a frame
/// boundary (peer closed between messages); throws ProtocolError on a
/// truncated frame and hpac::Error on read failure.
bool read_frame(int fd, Frame& frame);

}  // namespace hpac::service
