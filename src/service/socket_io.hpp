#pragma once

#include <string>
#include <string_view>

#include "service/protocol.hpp"

namespace hpac::service {

/// Blocking POSIX helpers shared by the server and the client — the whole
/// transport is these calls plus close(2). Writes use MSG_NOSIGNAL, so a
/// peer that vanished mid-reply surfaces as a TransportError on this
/// thread instead of a process-wide SIGPIPE.

/// The connection itself failed: refused/reset/closed mid-frame, or a
/// read/write syscall error. Distinct from ProtocolError (the peer spoke,
/// but spoke garbage): transport failures are transient — a client may
/// reconnect and retry — while protocol failures are not.
class TransportError : public Error {
 public:
  explicit TransportError(const std::string& what) : Error("transport error: " + what) {}
};

/// A read deadline elapsed before the peer produced the expected bytes.
class TimeoutError : public TransportError {
 public:
  explicit TimeoutError(const std::string& what) : TransportError("timeout: " + what) {}
};

/// Read deadlines for `read_frame`, both in milliseconds, -1 = infinite.
///  * `idle_ms` bounds the wait for the FIRST byte of a frame — a client
///    uses it as its request timeout, a server usually leaves it infinite
///    (an idle connection between requests is legitimate).
///  * `frame_ms` bounds the time from a frame's first byte to its last —
///    the slow-loris guard: a peer that starts a frame must finish it.
struct ReadTimeouts {
  int idle_ms = -1;
  int frame_ms = -1;
};

/// Connect a Unix-domain stream socket to `path`, waiting at most
/// `timeout_ms` (-1 = forever) for the connect to complete. Throws
/// TransportError when the daemon is not listening, TimeoutError when the
/// connect does not complete in time, hpac::Error when the path is too
/// long for sockaddr_un.
int connect_unix(const std::string& path, int timeout_ms = -1);

/// Bind + listen a Unix-domain stream socket at `path` (unlinking a stale
/// socket file first). Throws hpac::Error on failure.
int listen_unix(const std::string& path, int backlog);

/// Write one complete frame; loops over partial writes and EINTR. Sends
/// with MSG_NOSIGNAL and throws TransportError when the peer is gone.
void write_frame(int fd, MessageType type, std::string_view body);

/// Read one complete frame. Returns false on clean EOF at a frame
/// boundary (peer closed between messages); throws TransportError on EOF
/// mid-frame or read failure, TimeoutError on an elapsed deadline, and
/// ProtocolError on an oversized or malformed frame.
bool read_frame(int fd, Frame& frame, ReadTimeouts timeouts = {});

}  // namespace hpac::service
