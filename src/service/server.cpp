#include "service/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "common/error.hpp"
#include "service/socket_io.hpp"

namespace hpac::service {

TuningServer::TuningServer(harness::ResultStore& store, Options options)
    : options_(std::move(options)), service_(store, options_.service) {
  HPAC_REQUIRE(!options_.socket_path.empty(), "tuning server needs a socket path");
}

TuningServer::~TuningServer() { stop(); }

void TuningServer::start() {
  common::MutexLock lock(mutex_);
  HPAC_REQUIRE(!running_, "tuning server already started");
  listen_fd_ = listen_unix(options_.socket_path, options_.backlog);
  running_ = true;
  // The loop gets the fd by value: stop() reassigns the member under the
  // mutex while accept(2) is still blocked, so the thread must not read it.
  accept_thread_ = std::thread([this, fd = listen_fd_] { accept_loop(fd); });
}

void TuningServer::wait() {
  common::UniqueMutexLock lock(mutex_);
  while (!stop_requested_) stop_requested_cv_.wait(lock);
}

void TuningServer::stop() { shutdown_connections(SHUT_RDWR); }

void TuningServer::drain() {
  // SHUT_RD: blocked readers see EOF and exit at the next frame boundary,
  // but the write side stays open, so a thread mid-query still delivers
  // its reply before its loop observes the EOF. Requests already received
  // are the daemon's obligation; requests not yet sent are not.
  shutdown_connections(SHUT_RD);
}

void TuningServer::shutdown_connections(int how) {
  std::vector<std::thread> to_join;
  std::thread accept_to_join;
  {
    common::MutexLock lock(mutex_);
    stop_requested_ = true;
    stop_requested_cv_.notify_all();
    if (!running_) return;
    running_ = false;
    // Closing the listen socket fails the blocking accept(2); shutting
    // down connection sockets fails (or EOFs) their blocking reads. The
    // threads then drain on their own and we can join without a poll loop.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
    for (int& fd : connection_fds_) {
      if (fd >= 0) ::shutdown(fd, how);
    }
    to_join.swap(connection_threads_);
    accept_to_join = std::move(accept_thread_);
  }
  if (accept_to_join.joinable()) accept_to_join.join();
  for (std::thread& thread : to_join) {
    if (thread.joinable()) thread.join();
  }
  {
    common::MutexLock lock(mutex_);
    for (int& fd : connection_fds_) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
  }
  ::unlink(options_.socket_path.c_str());
}

void TuningServer::accept_loop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed by stop()
    }
    common::MutexLock lock(mutex_);
    if (!running_) {
      ::close(fd);
      return;
    }
    const std::uint64_t id = next_connection_++;
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd, id] { serve_connection(fd, id); });
  }
}

void TuningServer::serve_connection(int fd, std::uint64_t connection_id) {
  // One fairness identity per connection: admission rotates across
  // connections, not across individual frames.
  const std::string client = "conn-" + std::to_string(connection_id);
  // Idle stays unlimited (a quiet client between requests is fine); the
  // frame bound drops a peer that starts a frame and then trickles it.
  const ReadTimeouts timeouts{/*idle_ms=*/-1, options_.frame_timeout_ms};
  try {
    Frame frame;
    while (read_frame(fd, frame, timeouts)) {
      switch (frame.type) {
        case MessageType::kQueryRequest: {
          harness::TuningAnswer answer;
          try {
            answer = service_.query(decode_query(frame.body), client);
          } catch (const Error& e) {
            // Evaluation machinery failure (not a protocol problem):
            // surface it to this client instead of dropping the socket.
            answer.status = harness::TuningStatus::kError;
            answer.error = e.what();
          }
          write_frame(fd, MessageType::kQueryReply, encode_answer(answer));
          break;
        }
        case MessageType::kStatsRequest:
          write_frame(fd, MessageType::kStatsReply, encode_stats(service_.stats()));
          break;
        case MessageType::kShutdownRequest: {
          // Reply first so the client sees the ack, then wake wait();
          // the owner of the server performs the actual stop() — a
          // connection thread cannot join itself.
          write_frame(fd, MessageType::kShutdownReply, "");
          common::MutexLock lock(mutex_);
          stop_requested_ = true;
          stop_requested_cv_.notify_all();
          break;
        }
        default:
          throw ProtocolError("unexpected message type on server");
      }
    }
  } catch (const Error&) {
    // Malformed frame, frame timeout, or vanished peer: drop the
    // connection — never the daemon. The store and service state stay
    // consistent — at worst the client never sees the answer to a query
    // whose record is already journaled (a retry finds it memoized).
  }
  common::MutexLock lock(mutex_);
  ::close(fd);
  if (connection_id < connection_fds_.size()) connection_fds_[connection_id] = -1;
}

}  // namespace hpac::service
