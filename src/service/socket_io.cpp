#include "service/socket_io.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace hpac::service {

namespace {

sockaddr_un address_for(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  HPAC_REQUIRE(path.size() < sizeof(addr.sun_path),
               "socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

void write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("socket write failed: ") + std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

/// Fill `size` bytes. Returns false on EOF before the first byte; throws
/// when EOF lands mid-buffer (the caller was promised a complete frame).
bool read_all(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("socket read failed: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return false;
      throw ProtocolError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int connect_unix(const std::string& path) {
  const sockaddr_un addr = address_for(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  HPAC_REQUIRE(fd >= 0, std::string("cannot create socket: ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    throw Error("cannot connect to " + path + ": " + std::strerror(saved));
  }
  return fd;
}

int listen_unix(const std::string& path, int backlog) {
  const sockaddr_un addr = address_for(path);
  ::unlink(path.c_str());  // stale socket from a killed daemon
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  HPAC_REQUIRE(fd >= 0, std::string("cannot create socket: ") + std::strerror(errno));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    const int saved = errno;
    ::close(fd);
    throw Error("cannot listen on " + path + ": " + std::strerror(saved));
  }
  return fd;
}

void write_frame(int fd, MessageType type, std::string_view body) {
  const std::string frame = encode_frame(type, body);
  write_all(fd, frame.data(), frame.size());
}

bool read_frame(int fd, Frame& frame) {
  char prefix[4];
  if (!read_all(fd, prefix, sizeof(prefix))) return false;
  std::size_t offset = 0;
  const std::uint32_t length =
      get_u32(std::string_view(prefix, sizeof(prefix)), offset);
  if (length > kMaxPayload) {
    throw ProtocolError("frame payload of " + std::to_string(length) +
                        " bytes exceeds bound");
  }
  std::string payload(length, '\0');
  if (!read_all(fd, payload.data(), payload.size())) {
    throw ProtocolError("connection closed mid-frame");
  }
  frame = decode_frame(payload);
  return true;
}

}  // namespace hpac::service
