#include "service/socket_io.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/error.hpp"

namespace hpac::service {

namespace {

using Clock = std::chrono::steady_clock;

sockaddr_un address_for(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  HPAC_REQUIRE(path.size() < sizeof(addr.sun_path),
               "socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

void write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    // MSG_NOSIGNAL: a peer that disconnected mid-reply must produce EPIPE
    // on this thread, never a process-killing SIGPIPE — the daemon
    // survives any client vanishing at any point.
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TransportError(std::string("socket write failed: ") + std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

/// Milliseconds until `deadline`, clamped at 0; -1 when no deadline.
int remaining_ms(const Clock::time_point* deadline) {
  if (deadline == nullptr) return -1;
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(*deadline - Clock::now())
          .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

/// Block until `fd` is readable or the deadline passes.
void wait_readable(int fd, const Clock::time_point* deadline, const char* phase) {
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, remaining_ms(deadline));
    if (rc > 0) return;  // readable, error or hangup — read(2) will tell
    if (rc == 0) {
      throw TimeoutError(std::string("peer produced no data while ") + phase);
    }
    if (errno != EINTR) {
      throw TransportError(std::string("poll failed: ") + std::strerror(errno));
    }
  }
}

/// Fill `size` bytes, polling against `deadline` (nullptr = block forever).
/// Returns false on EOF before the first byte; throws when EOF lands
/// mid-buffer (the caller was promised a complete frame).
bool read_all(int fd, char* data, std::size_t size, const Clock::time_point* deadline,
              const char* phase) {
  std::size_t got = 0;
  while (got < size) {
    if (deadline != nullptr) wait_readable(fd, deadline, phase);
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TransportError(std::string("socket read failed: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return false;
      throw TransportError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int connect_unix(const std::string& path, int timeout_ms) {
  const sockaddr_un addr = address_for(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  HPAC_REQUIRE(fd >= 0, std::string("cannot create socket: ") + std::strerror(errno));
  // Non-blocking connect + poll: a daemon with a saturated backlog must
  // surface as a timeout the caller can retry, not an indefinite hang.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) {
      ::close(fd);
      throw TimeoutError("connect to " + path + " did not complete");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (ready < 0 || ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      ::close(fd);
      throw TransportError("cannot connect to " + path + ": " +
                           std::strerror(err != 0 ? err : errno));
    }
    rc = 0;
  }
  if (rc != 0) {
    const int saved = errno;
    ::close(fd);
    throw TransportError("cannot connect to " + path + ": " + std::strerror(saved));
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking for frame IO
  return fd;
}

int listen_unix(const std::string& path, int backlog) {
  const sockaddr_un addr = address_for(path);
  ::unlink(path.c_str());  // stale socket from a killed daemon
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  HPAC_REQUIRE(fd >= 0, std::string("cannot create socket: ") + std::strerror(errno));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    const int saved = errno;
    ::close(fd);
    throw Error("cannot listen on " + path + ": " + std::strerror(saved));
  }
  return fd;
}

void write_frame(int fd, MessageType type, std::string_view body) {
  const std::string frame = encode_frame(type, body);
  write_all(fd, frame.data(), frame.size());
}

bool read_frame(int fd, Frame& frame, ReadTimeouts timeouts) {
  // The wait for a frame's first byte runs against the idle deadline (a
  // quiet connection between requests); everything after the first byte
  // runs against the frame deadline (a started frame must finish — the
  // slow-loris guard).
  Clock::time_point idle_deadline;
  const Clock::time_point* idle = nullptr;
  if (timeouts.idle_ms >= 0) {
    idle_deadline = Clock::now() + std::chrono::milliseconds(timeouts.idle_ms);
    idle = &idle_deadline;
  }
  char prefix[4];
  wait_readable(fd, idle, "waiting for a reply");
  // First byte (or EOF) has arrived: the frame clock starts now.
  Clock::time_point frame_deadline;
  const Clock::time_point* rest = nullptr;
  if (timeouts.frame_ms >= 0) {
    frame_deadline = Clock::now() + std::chrono::milliseconds(timeouts.frame_ms);
    rest = &frame_deadline;
  }
  if (!read_all(fd, prefix, sizeof(prefix), rest, "completing a frame header")) {
    return false;
  }
  std::size_t offset = 0;
  const std::uint32_t length =
      get_u32(std::string_view(prefix, sizeof(prefix)), offset);
  if (length > kMaxPayload) {
    throw ProtocolError("frame payload of " + std::to_string(length) +
                        " bytes exceeds bound");
  }
  std::string payload(length, '\0');
  if (!read_all(fd, payload.data(), payload.size(), rest, "completing a frame body")) {
    throw TransportError("connection closed mid-frame");
  }
  frame = decode_frame(payload);
  return true;
}

}  // namespace hpac::service
