#pragma once

#include <random>
#include <string>
#include <utility>

#include "harness/tuning_service.hpp"
#include "service/protocol.hpp"

namespace hpac::service {

/// Blocking client for the hpacd socket protocol — one connection, one
/// outstanding request at a time — with the retry discipline a fault-prone
/// daemon demands: connect and request timeouts, transparent reconnect,
/// and exponential backoff with jitter on transient failures.
///
/// What retries and what does not:
///  * Transport failures (connection refused/reset, daemon restarted
///    mid-request, request timeout) are transient — query() reconnects
///    and resends, up to the retry budget. Queries are idempotent (the
///    store dedupes), so a resend after a lost reply is safe.
///  * kRejected answers (admission queue full) back off and retry too —
///    the daemon asked for exactly that.
///  * Protocol errors (the daemon spoke, but spoke garbage, or a version
///    mismatch) are NOT retried: repeating the bytes cannot help.
class TuningClient {
 public:
  struct Options {
    /// Bound on each connect(2), initial and reconnect alike; -1 = forever.
    int connect_timeout_ms = 5000;
    /// Max quiet time waiting for the first byte of a reply; -1 = forever.
    /// This is the guard against a wedged (e.g. SIGSTOPped) daemon: the
    /// request fails with TimeoutError and the retry discipline takes over.
    int request_timeout_ms = -1;
    /// Once a reply starts arriving, the whole frame must follow within
    /// this bound; -1 disables.
    int frame_timeout_ms = 10000;
    /// Transient-failure retry budget for query(): total attempts are
    /// `1 + max_retries`. 0 = fail on the first transport error.
    int max_retries = 5;
    /// Backoff before retry k is uniform in (0, min(initial << k, max)) —
    /// full jitter, so a herd of retrying clients spreads out instead of
    /// stampeding a daemon that just came back.
    int backoff_initial_ms = 20;
    int backoff_max_ms = 1000;
  };

  /// Connects immediately; throws TransportError when the daemon is not
  /// listening at `socket_path`, TimeoutError when the connect does not
  /// complete within the connect timeout.
  explicit TuningClient(std::string socket_path) : TuningClient(std::move(socket_path), Options{}) {}
  TuningClient(std::string socket_path, Options options);
  ~TuningClient();

  TuningClient(const TuningClient&) = delete;
  TuningClient& operator=(const TuningClient&) = delete;

  /// Round-trip one tuning query, retrying transient failures per the
  /// Options. Blocks while the daemon evaluates a cold tuple; memoized
  /// tuples return immediately. Throws TransportError/TimeoutError only
  /// after the retry budget is spent, ProtocolError immediately.
  harness::TuningAnswer query(const harness::TuningQuery& query);

  /// The daemon's service counters (queries/memoized/evaluated/...).
  /// Single attempt — reconnects if the connection was lost, but does not
  /// retry on failure.
  harness::TuningService::Stats stats();

  /// Ask the daemon to shut down; returns once the daemon acknowledged.
  void shutdown_server();

 private:
  /// (Re)establish the connection if it was never made or was torn down
  /// after a transport error.
  void ensure_connected();
  void disconnect();
  /// Sleep the jittered backoff for retry number `attempt` (0-based).
  void backoff(int attempt);

  Frame round_trip(MessageType request, std::string_view body,
                   MessageType expected_reply);

  std::string socket_path_;
  Options options_;
  int fd_ = -1;
  std::minstd_rand jitter_;
};

}  // namespace hpac::service
