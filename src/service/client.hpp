#pragma once

#include <string>

#include "harness/tuning_service.hpp"
#include "service/protocol.hpp"

namespace hpac::service {

/// Thin blocking client for the hpacd socket protocol — one connection,
/// one outstanding request at a time (the transport the smoke tests and
/// simple integrations need; anything fancier can speak the frames
/// directly).
class TuningClient {
 public:
  /// Connects immediately; throws hpac::Error when the daemon is not
  /// listening at `socket_path`.
  explicit TuningClient(const std::string& socket_path);
  ~TuningClient();

  TuningClient(const TuningClient&) = delete;
  TuningClient& operator=(const TuningClient&) = delete;

  /// Round-trip one tuning query. Blocks while the daemon evaluates a
  /// cold tuple; memoized tuples return immediately.
  harness::TuningAnswer query(const harness::TuningQuery& query);

  /// The daemon's service counters (queries/memoized/evaluated/...).
  harness::TuningService::Stats stats();

  /// Ask the daemon to shut down; returns once the daemon acknowledged.
  void shutdown_server();

 private:
  Frame round_trip(MessageType request, std::string_view body,
                   MessageType expected_reply);

  int fd_ = -1;
};

}  // namespace hpac::service
