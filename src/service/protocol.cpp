#include "service/protocol.hpp"

#include <bit>
#include <cstring>
#include <type_traits>

namespace hpac::service {

namespace {

/// Byte order on the wire is little-endian. This maps a host value to its
/// wire representation — and, being an involution, the wire value back to
/// host order. On little-endian hosts it compiles to nothing.
template <typename T>
constexpr T to_wire_order(T value) {
  static_assert(std::is_unsigned_v<T>);
  if constexpr (std::endian::native == std::endian::little) {
    return value;
  } else {
    T out = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out = static_cast<T>(out << 8) |
            static_cast<T>((value >> (8 * i)) & 0xffu);
    }
    return out;
  }
}

/// Append `value` little-endian. memcpy from an object of the right type —
/// no per-byte shifting into char, no aliasing or alignment assumptions;
/// UBSan-clean by construction and byte-identical on the wire to the old
/// hand-packed form.
template <typename T>
void store_le(std::string& out, T value) {
  const T wire = to_wire_order(value);
  char raw[sizeof(T)];
  std::memcpy(raw, &wire, sizeof(T));
  out.append(raw, sizeof(T));
}

/// Read a little-endian scalar at `offset`, advancing it. The guard is
/// written subtraction-first so a hostile offset can never overflow.
template <typename T>
T load_le(std::string_view body, std::size_t& offset, const char* label) {
  if (offset > body.size() || body.size() - offset < sizeof(T)) {
    throw ProtocolError(std::string("truncated ") + label);
  }
  T wire;
  std::memcpy(&wire, body.data() + offset, sizeof(T));
  offset += sizeof(T);
  return to_wire_order(wire);
}

void put_u8(std::string& out, std::uint8_t value) {
  out.push_back(static_cast<char>(value));
}

std::uint8_t get_u8(std::string_view body, std::size_t& offset) {
  return load_le<std::uint8_t>(body, offset, "u8");
}

void put_i32(std::string& out, int value) {
  put_u32(out, static_cast<std::uint32_t>(value));
}

int get_i32(std::string_view body, std::size_t& offset) {
  return static_cast<int>(get_u32(body, offset));
}

}  // namespace

// --- primitive scalars -------------------------------------------------------

void put_u16(std::string& out, std::uint16_t value) { store_le(out, value); }

void put_u32(std::string& out, std::uint32_t value) { store_le(out, value); }

void put_u64(std::string& out, std::uint64_t value) { store_le(out, value); }

void put_f64(std::string& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

void put_string(std::string& out, std::string_view value) {
  if (value.size() > kMaxPayload) throw ProtocolError("string exceeds frame bound");
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  out.append(value);
}

std::uint16_t get_u16(std::string_view body, std::size_t& offset) {
  return load_le<std::uint16_t>(body, offset, "u16");
}

std::uint32_t get_u32(std::string_view body, std::size_t& offset) {
  return load_le<std::uint32_t>(body, offset, "u32");
}

std::uint64_t get_u64(std::string_view body, std::size_t& offset) {
  return load_le<std::uint64_t>(body, offset, "u64");
}

double get_f64(std::string_view body, std::size_t& offset) {
  return std::bit_cast<double>(get_u64(body, offset));
}

std::string get_string(std::string_view body, std::size_t& offset) {
  const std::uint32_t length = get_u32(body, offset);
  if (length > kMaxPayload || offset + length > body.size()) {
    throw ProtocolError("truncated string");
  }
  std::string value(body.substr(offset, length));
  offset += length;
  return value;
}

// --- framing -----------------------------------------------------------------

std::string encode_frame(MessageType type, std::string_view body) {
  std::string payload;
  payload.reserve(4 + body.size());
  put_u16(payload, kProtocolVersion);
  put_u16(payload, static_cast<std::uint16_t>(type));
  payload.append(body);
  if (payload.size() > kMaxPayload) throw ProtocolError("frame exceeds payload bound");
  std::string frame;
  frame.reserve(4 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.append(payload);
  return frame;
}

Frame decode_frame(std::string_view payload) {
  std::size_t offset = 0;
  const std::uint16_t version = get_u16(payload, offset);
  if (version != kProtocolVersion) {
    throw ProtocolError("unsupported protocol version " + std::to_string(version) +
                        " (speaking " + std::to_string(kProtocolVersion) + ")");
  }
  const std::uint16_t raw_type = get_u16(payload, offset);
  if (raw_type < static_cast<std::uint16_t>(MessageType::kQueryRequest) ||
      raw_type > static_cast<std::uint16_t>(MessageType::kShutdownReply)) {
    throw ProtocolError("unknown message type " + std::to_string(raw_type));
  }
  Frame frame;
  frame.type = static_cast<MessageType>(raw_type);
  frame.body = std::string(payload.substr(offset));
  return frame;
}

// --- message bodies ----------------------------------------------------------

std::string encode_query(const harness::TuningQuery& query) {
  std::string body;
  put_string(body, query.benchmark);
  put_string(body, query.device);
  put_string(body, query.spec_text);
  put_u64(body, query.items_per_thread);
  put_u32(body, query.deadline_ms);
  return body;
}

harness::TuningQuery decode_query(std::string_view body) {
  std::size_t offset = 0;
  harness::TuningQuery query;
  query.benchmark = get_string(body, offset);
  query.device = get_string(body, offset);
  query.spec_text = get_string(body, offset);
  query.items_per_thread = get_u64(body, offset);
  query.deadline_ms = get_u32(body, offset);
  return query;
}

namespace {

// The record travels field-by-field (not as a CSV row) so the wire format
// is governed by the protocol version alone, independent of how the store
// happens to serialize its journal.
void put_record(std::string& out, const harness::RunRecord& record) {
  put_string(out, record.benchmark);
  put_string(out, record.device);
  put_u16(out, static_cast<std::uint16_t>(record.technique));
  put_string(out, record.spec_text);
  put_u16(out, static_cast<std::uint16_t>(record.level));
  put_u64(out, record.items_per_thread);
  put_u8(out, record.feasible ? 1 : 0);
  put_string(out, record.note);
  put_f64(out, record.speedup);
  put_f64(out, record.error_percent);
  put_f64(out, record.approx_ratio);
  put_f64(out, record.kernel_seconds);
  put_f64(out, record.end_to_end_seconds);
  put_f64(out, record.iterations);
  put_f64(out, record.baseline_iterations);
  put_f64(out, record.threshold);
  put_i32(out, record.history_size);
  put_i32(out, record.prediction_size);
  put_i32(out, record.table_size);
  put_i32(out, record.tables_per_warp);
  put_string(out, record.perfo_kind);
  put_i32(out, record.perfo_stride);
  put_f64(out, record.perfo_fraction);
}

harness::RunRecord get_record(std::string_view body, std::size_t& offset) {
  harness::RunRecord record;
  record.benchmark = get_string(body, offset);
  record.device = get_string(body, offset);
  record.technique = static_cast<pragma::Technique>(get_u16(body, offset));
  record.spec_text = get_string(body, offset);
  record.level = static_cast<pragma::HierarchyLevel>(get_u16(body, offset));
  record.items_per_thread = get_u64(body, offset);
  record.feasible = get_u8(body, offset) != 0;
  record.note = get_string(body, offset);
  record.speedup = get_f64(body, offset);
  record.error_percent = get_f64(body, offset);
  record.approx_ratio = get_f64(body, offset);
  record.kernel_seconds = get_f64(body, offset);
  record.end_to_end_seconds = get_f64(body, offset);
  record.iterations = get_f64(body, offset);
  record.baseline_iterations = get_f64(body, offset);
  record.threshold = get_f64(body, offset);
  record.history_size = get_i32(body, offset);
  record.prediction_size = get_i32(body, offset);
  record.table_size = get_i32(body, offset);
  record.tables_per_warp = get_i32(body, offset);
  record.perfo_kind = get_string(body, offset);
  record.perfo_stride = get_i32(body, offset);
  record.perfo_fraction = get_f64(body, offset);
  return record;
}

}  // namespace

std::string encode_answer(const harness::TuningAnswer& answer) {
  std::string body;
  put_u8(body, static_cast<std::uint8_t>(answer.status));
  put_u8(body, answer.memoized ? 1 : 0);
  put_string(body, answer.error);
  // A degraded answer carries the nearest-known record (whose identity
  // fields differ from the query — that is the point).
  const bool has_record = answer.status == harness::TuningStatus::kOk ||
                          answer.status == harness::TuningStatus::kDegraded;
  put_u8(body, has_record ? 1 : 0);
  if (has_record) put_record(body, answer.record);
  return body;
}

harness::TuningAnswer decode_answer(std::string_view body) {
  std::size_t offset = 0;
  harness::TuningAnswer answer;
  const std::uint8_t raw_status = get_u8(body, offset);
  if (raw_status > static_cast<std::uint8_t>(harness::TuningStatus::kDegraded)) {
    throw ProtocolError("unknown answer status " + std::to_string(raw_status));
  }
  answer.status = static_cast<harness::TuningStatus>(raw_status);
  answer.memoized = get_u8(body, offset) != 0;
  answer.error = get_string(body, offset);
  if (get_u8(body, offset) != 0) answer.record = get_record(body, offset);
  return answer;
}

std::string encode_stats(const harness::TuningService::Stats& stats) {
  std::string body;
  put_u64(body, stats.queries);
  put_u64(body, stats.memoized);
  put_u64(body, stats.evaluated);
  put_u64(body, stats.coalesced);
  put_u64(body, stats.rejected);
  put_u64(body, stats.degraded);
  put_u64(body, stats.deadline_exceeded);
  put_u64(body, stats.eval_failures);
  put_u64(body, stats.quarantined);
  return body;
}

harness::TuningService::Stats decode_stats(std::string_view body) {
  std::size_t offset = 0;
  harness::TuningService::Stats stats;
  stats.queries = get_u64(body, offset);
  stats.memoized = get_u64(body, offset);
  stats.evaluated = get_u64(body, offset);
  stats.coalesced = get_u64(body, offset);
  stats.rejected = get_u64(body, offset);
  stats.degraded = get_u64(body, offset);
  stats.deadline_exceeded = get_u64(body, offset);
  stats.eval_failures = get_u64(body, offset);
  stats.quarantined = get_u64(body, offset);
  return stats;
}

}  // namespace hpac::service
