#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "harness/tuning_service.hpp"

namespace hpac::service {

/// Wire protocol of the hpacd tuning daemon — framework-free and
/// byte-order-explicit so any client that can write a socket can speak it.
///
/// Every message is one length-prefixed frame:
///
///   [u32 payload_len][payload]
///   payload := [u16 version][u16 type][body]
///
/// All integers are little-endian; strings are [u32 len][bytes] (UTF-8 by
/// convention, uninterpreted by the protocol). The version is checked on
/// decode: a peer speaking a different protocol version gets a clean
/// ProtocolError instead of a misparsed body, which is what lets the
/// framing evolve without silent corruption.

/// Raised on malformed frames: truncated body, unknown type, version
/// mismatch, oversized payload.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error("protocol error: " + what) {}
};

/// v2: queries carry a per-request deadline, answers can report
/// kDeadlineExceeded and kDegraded (nearest-known-config fallback), and
/// stats carry the failure-handling counters. A v1 peer is rejected with
/// a clean version error, never misparsed.
inline constexpr std::uint16_t kProtocolVersion = 2;

/// Refuse absurd frames before allocating for them: a query or answer is
/// a few strings and scalars, far below this.
inline constexpr std::uint32_t kMaxPayload = 1u << 20;

enum class MessageType : std::uint16_t {
  kQueryRequest = 1,   ///< TuningQuery
  kQueryReply = 2,     ///< TuningAnswer
  kStatsRequest = 3,   ///< empty body
  kStatsReply = 4,     ///< TuningService::Stats
  kShutdownRequest = 5,  ///< empty body; server stops after replying
  kShutdownReply = 6,    ///< empty body
};

/// A decoded frame: type plus raw body bytes (decode_* parse the body).
struct Frame {
  MessageType type = MessageType::kQueryRequest;
  std::string body;
};

// --- framing -----------------------------------------------------------------

/// The complete frame bytes for `type` + `body` (length prefix included).
std::string encode_frame(MessageType type, std::string_view body);

/// Parse one complete frame from `bytes` (payload only, length prefix
/// already stripped by the transport). Throws ProtocolError on version
/// mismatch or truncation.
Frame decode_frame(std::string_view payload);

// --- primitive scalars (exposed for tests and future message types) ----------

void put_u16(std::string& out, std::uint16_t value);
void put_u32(std::string& out, std::uint32_t value);
void put_u64(std::string& out, std::uint64_t value);
void put_f64(std::string& out, double value);
void put_string(std::string& out, std::string_view value);

/// Cursor-style reader over a body; every get_* advances `offset` and
/// throws ProtocolError past the end.
std::uint16_t get_u16(std::string_view body, std::size_t& offset);
std::uint32_t get_u32(std::string_view body, std::size_t& offset);
std::uint64_t get_u64(std::string_view body, std::size_t& offset);
double get_f64(std::string_view body, std::size_t& offset);
std::string get_string(std::string_view body, std::size_t& offset);

// --- message bodies ----------------------------------------------------------

std::string encode_query(const harness::TuningQuery& query);
harness::TuningQuery decode_query(std::string_view body);

std::string encode_answer(const harness::TuningAnswer& answer);
harness::TuningAnswer decode_answer(std::string_view body);

std::string encode_stats(const harness::TuningService::Stats& stats);
harness::TuningService::Stats decode_stats(std::string_view body);

}  // namespace hpac::service
