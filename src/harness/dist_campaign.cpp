#include "harness/dist_campaign.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "apps/registry.hpp"
#include "common/annotated_mutex.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/fileops.hpp"
#include "common/strings.hpp"
#include "harness/explorer.hpp"
#include "harness/result_store.hpp"

namespace hpac::harness {

namespace {

constexpr std::uint32_t kPollMs = 20;

/// Fault-injection hook (tests only): HPAC_DIST_TEST_KILL_AFTER=<k>
/// SIGKILLs this process right after its k-th result row is flushed —
/// after the append, before the release record — the worst-ordered crash
/// the recovery contract has to absorb.
int kill_after_target() {
  static const int target = [] {
    const char* env = std::getenv("HPAC_DIST_TEST_KILL_AFTER");
    long long value = 0;
    return env != nullptr && strings::parse_int(env, value) ? static_cast<int>(value)
                                                            : 0;
  }();
  return target;
}

std::atomic<int> g_appends{0};

void maybe_kill_after_append() {
  const int target = kill_after_target();
  if (target > 0 && g_appends.fetch_add(1) + 1 == target) {
    ::raise(SIGKILL);
    for (;;) ::pause();  // unreachable
  }
}

/// Fault-injection hook (tests only): HPAC_DIST_TEST_STALL_MS=<ms> makes
/// the FIRST evaluation of this process touch HPAC_DIST_TEST_STALL_MARKER
/// and then sleep — a deterministic window in which the test can SIGSTOP
/// the worker while it holds live leases (the lease-expiry scenario).
void maybe_stall_for_test() {
  static const long stall_ms = [] {
    const char* env = std::getenv("HPAC_DIST_TEST_STALL_MS");
    long long value = 0;
    return env != nullptr && strings::parse_int(env, value)
               ? static_cast<long>(value)
               : 0L;
  }();
  if (stall_ms <= 0) return;
  static std::atomic<bool> done{false};
  if (done.exchange(true)) return;
  if (const char* marker = std::getenv("HPAC_DIST_TEST_STALL_MARKER")) {
    fileops::write_file_atomic(marker, "stalled\n");
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
}

std::string double_text(double value) { return cell_text(CsvCell(value)); }

std::string serialize_baseline(const std::string& benchmark, const std::string& device,
                               const BaselineSummary& b) {
  std::ostringstream os;
  os << "hpac-baseline v1\n";
  os << "benchmark " << benchmark << "\n";
  os << "device " << device << "\n";
  os << "seconds " << double_text(b.seconds) << "\n";
  os << "iterations " << double_text(b.iterations) << "\n";
  os << "qoi " << b.qoi.size();
  for (const double v : b.qoi) os << ' ' << double_text(v);
  os << "\n";
  os << "qoi_labels " << b.qoi_labels.size();
  for (const int v : b.qoi_labels) os << ' ' << v;
  os << "\n";
  return os.str();
}

BaselineSummary parse_baseline(const std::string& text, const std::string& benchmark,
                               const std::string& device, const std::string& path) {
  const auto fail = [&](const std::string& why) -> Error {
    return Error("bad baseline cache " + path + ": " + why);
  };
  const std::vector<std::string> lines = strings::split(text, '\n');
  if (lines.size() < 7 || lines[0] != "hpac-baseline v1") throw fail("bad header");
  const auto field = [&](std::size_t i, const std::string& name) -> std::string {
    const std::string prefix = name + " ";
    if (lines[i].rfind(prefix, 0) != 0) throw fail("expected '" + name + "' line");
    return lines[i].substr(prefix.size());
  };
  if (field(1, "benchmark") != benchmark || field(2, "device") != device) {
    throw fail("cached for a different (benchmark, device)");
  }
  BaselineSummary b;
  if (!strings::parse_double(field(3, "seconds"), b.seconds) ||
      !strings::parse_double(field(4, "iterations"), b.iterations)) {
    throw fail("unparseable seconds/iterations");
  }
  const auto vec_field = [&](std::size_t i, const std::string& name,
                             auto push) {
    const std::vector<std::string> tok = strings::split(lines[i], ' ');
    long long count = 0;
    if (tok.size() < 2 || tok[0] != name || !strings::parse_int(tok[1], count) ||
        count < 0 || tok.size() != static_cast<std::size_t>(count) + 2) {
      throw fail("malformed '" + name + "' line");
    }
    for (std::size_t k = 0; k < static_cast<std::size_t>(count); ++k) push(tok[k + 2]);
  };
  vec_field(5, "qoi", [&](const std::string& t) {
    double v = 0;
    if (!strings::parse_double(t, v)) throw fail("unparseable qoi value");
    b.qoi.push_back(v);
  });
  vec_field(6, "qoi_labels", [&](const std::string& t) {
    long long v = 0;
    if (!strings::parse_int(t, v)) throw fail("unparseable qoi label");
    b.qoi_labels.push_back(static_cast<int>(v));
  });
  return b;
}

std::string row_signature(const RunRecord& record) {
  std::ostringstream os;
  write_csv_row(os, record.to_row());
  return os.str();
}

}  // namespace

// --- construction / paths ----------------------------------------------------

DistributedCampaign::DistributedCampaign(const Campaign& campaign, Options options)
    : campaign_(campaign), options_(std::move(options)) {
  HPAC_REQUIRE(!options_.dir.empty(), "distributed campaign needs a directory");
  HPAC_REQUIRE(!options_.worker.empty(), "distributed campaign needs a worker id");
  HPAC_REQUIRE(options_.claim_chunk > 0, "claim chunk must be positive");
  if (options_.heartbeat_ms == 0) {
    options_.heartbeat_ms = std::max<std::uint32_t>(options_.ttl_ms / 3, 10);
  }
  fileops::ensure_dir(options_.dir);
  fingerprint_ = plan_fingerprint(campaign_);
}

std::uint64_t DistributedCampaign::plan_fingerprint(const Campaign& campaign) {
  std::string all;
  for (const std::string& key : campaign.tuple_keys()) {
    all += key;
    all += '\n';
  }
  return fileops::fnv1a64(all);
}

std::string DistributedCampaign::lease_path() const {
  return lease_path_in(options_.dir);
}

std::string DistributedCampaign::lease_path_in(const std::string& dir) {
  return dir + "/leases.journal";
}

std::string DistributedCampaign::results_path() const {
  return options_.dir + "/results.csv";
}

std::string DistributedCampaign::worker_journal_path() const {
  return options_.dir + "/results." + options_.worker + ".csv";
}

std::string DistributedCampaign::baseline_path(std::size_t shard) const {
  return options_.dir + "/baseline." + std::to_string(shard) + ".txt";
}

// --- worker loop -------------------------------------------------------------

struct DistributedCampaign::Runner {
  const DistributedCampaign& dist;
  const Campaign& campaign;
  LeaseJournal journal;
  ResultStore store;
  WorkerStats stats;

  struct ShardCtx {
    std::unique_ptr<Benchmark> app;
    std::unique_ptr<Explorer> explorer;
  };
  std::unordered_map<std::size_t, ShardCtx> ctxs;

  // Heartbeat thread state.
  common::Mutex hb_mutex;
  common::CondVar hb_cv;
  bool hb_stop GUARDED_BY(hb_mutex) = false;
  std::thread hb_thread;

  explicit Runner(const DistributedCampaign& d)
      : dist(d),
        campaign(d.campaign_),
        journal(LeaseJournal::Options{
            d.lease_path(), d.options_.worker, /*nonce=*/0,
            d.campaign_.tuple_count() + d.campaign_.shard_count(), d.fingerprint_,
            d.options_.mode, d.options_.ttl_ms}),
        store(d.worker_journal_path()) {}

  void start_heartbeats() {
    hb_thread = std::thread([this] {
      common::UniqueMutexLock lock(hb_mutex);
      while (!hb_stop) {
        journal.heartbeat();
        // Explicit deadline loop (not a predicate lambda, which the
        // thread-safety analysis cannot see into): sleep until the next
        // beat is due or stop_heartbeats() wakes us.
        const auto next_beat = std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(dist.options_.heartbeat_ms);
        while (!hb_stop &&
               hb_cv.wait_until(lock, next_beat) != std::cv_status::timeout) {
        }
      }
    });
  }

  void stop_heartbeats() {
    {
      common::MutexLock lock(hb_mutex);
      hb_stop = true;
    }
    hb_cv.notify_all();
    hb_thread.join();
  }

  std::size_t shard_of(std::size_t tuple) const {
    for (std::size_t s = 0; s < campaign.shard_count(); ++s) {
      const Campaign::ShardView view = campaign.shard_view(s);
      if (tuple >= view.first_tuple && tuple < view.first_tuple + view.tuple_count) {
        return s;
      }
    }
    throw Error("tuple index outside every shard");
  }

  /// Per-shard evaluation context, created on first use. Ensuring the
  /// baseline may block on (or take over) the shard's baseline lease.
  ShardCtx& shard_ctx(std::size_t s) {
    auto it = ctxs.find(s);
    if (it != ctxs.end()) return it->second;
    const Campaign::ShardView view = campaign.shard_view(s);
    ShardCtx ctx;
    ctx.app = apps::make_benchmark(view.benchmark);
    ctx.explorer = std::make_unique<Explorer>(*ctx.app, view.device);
    ensure_baseline(s, view, *ctx.explorer);
    return ctxs.emplace(s, std::move(ctx)).first->second;
  }

  /// Load the shard's published baseline, or win the baseline lease and
  /// compute + publish it once for the whole fleet. The lease index lives
  /// past the campaign tuples (tuple_count + s), so baseline computation
  /// inherits the same claim/heartbeat/expiry/reclaim machinery as real
  /// work — a worker that dies mid-baseline is taken over like any other
  /// crash.
  void ensure_baseline(std::size_t s, const Campaign::ShardView& view,
                       Explorer& explorer) {
    const std::string path = dist.baseline_path(s);
    const std::size_t lease = campaign.tuple_count() + s;
    std::string text;
    for (;;) {
      if (fileops::read_file(path, text)) {
        explorer.seed_baseline(
            parse_baseline(text, view.benchmark, view.device.name, path));
        ++stats.baselines_loaded;
        return;
      }
      bool mine = !journal.claim(lease, 1).empty();
      if (!mine) {
        const LeaseJournal::TupleState st = journal.state(lease);
        if (st.claimed && !st.released) {
          // Owner may have crashed mid-baseline; only an expired lease
          // actually transfers.
          const auto outcome = journal.try_reclaim(lease);
          if (outcome.won) ++stats.reclaimed;
          mine = outcome.won;
        }
        // Released without a file cannot happen (publish precedes
        // release); a release we raced with will show up as the file on
        // the next iteration.
      }
      if (mine) {
        if (fileops::read_file(path, text)) {
          // Reclaimed from a worker that published but died before
          // releasing: adopt its file.
          journal.release(lease);
          explorer.seed_baseline(
              parse_baseline(text, view.benchmark, view.device.name, path));
          ++stats.baselines_loaded;
          return;
        }
        const BaselineSummary summary = explorer.baseline_summary();
        fileops::write_file_atomic(
            path, serialize_baseline(view.benchmark, view.device.name, summary));
        ++stats.baselines_computed;
        journal.release(lease);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
    }
  }

  void process_tuple(std::size_t tuple) {
    const std::string& key = campaign.tuple_keys()[tuple];
    if (store.snapshot().contains_key(key)) {
      // Restart path: a previous incarnation persisted this tuple but died
      // before releasing it. The result is durable; just release.
      journal.release(tuple);
      ++stats.restored;
      return;
    }
    const std::size_t s = shard_of(tuple);
    ShardCtx& ctx = shard_ctx(s);
    if (!journal.holds(tuple)) {
      // Lease was reclaimed (e.g. while this worker stalled in the
      // baseline path); the new owner evaluates it.
      ++stats.lost;
      return;
    }
    maybe_stall_for_test();
    const Campaign::ShardView view = campaign.shard_view(s);
    const auto& ipts = campaign.plan().items_per_thread;
    const std::size_t local = tuple - view.first_tuple;
    const RunRecord record = ctx.explorer->run_config(view.specs[local / ipts.size()],
                                                      ipts[local % ipts.size()]);
    // Result row flushed BEFORE the release record: a released tuple
    // always has a durable result somewhere, and a crash between the two
    // leaves at most a duplicate evaluation for the merge to drop.
    if (store.append_if_absent(record) != 0) maybe_kill_after_append();
    journal.release(tuple);
    ++stats.evaluated;
  }

  WorkerStats run() {
    const std::size_t n = campaign.tuple_count();
    start_heartbeats();
    try {
      // Spread workers over the tuple space instead of racing on index 0.
      std::size_t rotate = static_cast<std::size_t>(journal.options().nonce) % n;
      for (;;) {
        const auto run = journal.next_unclaimed_run(n, dist.options_.claim_chunk, rotate);
        if (run.has_value()) {
          rotate = (run->first + run->second) % n;
          for (const std::size_t tuple : journal.claim(run->first, run->second)) {
            process_tuple(tuple);
          }
          continue;
        }
        if (journal.all_released(0, n)) break;
        bool progress = false;
        for (const std::size_t tuple : journal.expired(0, n)) {
          const auto outcome = journal.try_reclaim(tuple);
          if (outcome.won) {
            ++stats.reclaimed;
            process_tuple(tuple);
            progress = true;
          }
        }
        if (!progress) {
          // Everything is claimed by live owners (or just released);
          // wait for releases to land or leases to expire.
          std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
        }
      }
    } catch (...) {
      stop_heartbeats();
      throw;
    }
    stop_heartbeats();
    return stats;
  }
};

DistributedCampaign::WorkerStats DistributedCampaign::run_worker() {
  Runner runner(*this);
  return runner.run();
}

// --- finalize ----------------------------------------------------------------

DistributedCampaign::FinalizeStats DistributedCampaign::finalize() const {
  namespace fs = std::filesystem;
  FinalizeStats stats;
  stats.planned = campaign_.tuple_count();

  // Deterministic merge order: every worker journal, sorted by name.
  // (Order only affects which duplicate is "first"; duplicates are
  // byte-identical for deterministic evaluations anyway.)
  std::vector<std::string> journals;
  const std::string self = fs::path(results_path()).filename().string();
  for (const auto& entry : fs::directory_iterator(options_.dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("results.", 0) == 0 && name.size() > 4 &&
        name.compare(name.size() - 4, 4, ".csv") == 0 && name != self) {
      journals.push_back(entry.path().string());
    }
  }
  std::sort(journals.begin(), journals.end());
  stats.journals = journals.size();

  const std::vector<std::string>& keys = campaign_.tuple_keys();
  std::unordered_map<std::string, std::size_t> index_of;
  index_of.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) index_of.emplace(keys[i], i);

  std::vector<std::optional<RunRecord>> chosen(keys.size());
  std::vector<std::string> signatures(keys.size());
  for (const std::string& path : journals) {
    // drop_torn_tail: a worker killed mid-row must not block the merge.
    const ResultDb db = ResultDb::load(path, /*drop_torn_tail=*/true);
    for (const RunRecord& record : db.records()) {
      const auto it = index_of.find(ResultStore::key_of(record));
      if (it == index_of.end()) {
        ++stats.stale;
        continue;
      }
      const std::size_t i = it->second;
      if (chosen[i].has_value()) {
        ++stats.duplicates;  // kept-first: a re-evaluated (reclaimed) tuple
        if (signatures[i] != row_signature(record)) ++stats.conflicting;
        continue;
      }
      chosen[i] = record;
      signatures[i] = row_signature(record);
    }
  }

  std::size_t missing = 0;
  for (const auto& record : chosen) missing += record.has_value() ? 0 : 1;
  if (missing > 0) {
    throw Error("distributed campaign incomplete: " + std::to_string(missing) + " of " +
                std::to_string(keys.size()) + " tuples have no result in " +
                options_.dir);
  }

  // Canonical plan order, published atomically — the same bytes
  // Campaign::run + ResultStore::finalize produce (ResultDb::save both
  // times).
  ResultDb canonical;
  for (auto& record : chosen) canonical.add(std::move(*record));
  stats.merged = canonical.size();
  const std::string tmp = results_path() + ".tmp." + std::to_string(::getpid());
  canonical.save(tmp);
  if (std::rename(tmp.c_str(), results_path().c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("cannot publish " + results_path());
  }
  return stats;
}

}  // namespace hpac::harness
