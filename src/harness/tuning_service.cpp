#include "harness/tuning_service.hpp"

#include <cmath>
#include <cstdlib>
#include <utility>

#include "apps/registry.hpp"
#include "common/error.hpp"
#include "harness/campaign.hpp"
#include "harness/explorer.hpp"
#include "pragma/parser.hpp"
#include "sim/device.hpp"

namespace hpac::harness {

/// Benchmark + Explorer pair kept alive across queries so the accurate
/// baseline is computed once per (benchmark, device). Only the single
/// active evaluator thread touches engines, so no lock guards them.
struct TuningService::Engine {
  std::unique_ptr<Benchmark> app;
  std::unique_ptr<Explorer> explorer;
};

TuningService::TuningService(ResultStore& store, TuningServiceConfig config)
    : store_(store), config_(std::move(config)) {
  HPAC_REQUIRE(config_.max_pending > 0,
               "tuning service needs a positive admission bound");
  HPAC_REQUIRE(config_.max_eval_failures > 0,
               "tuning service needs a positive evaluation retry budget");
}

TuningService::~TuningService() = default;

TuningService::Stats TuningService::stats() const {
  common::MutexLock lock(mutex_);
  return stats_;
}

bool TuningService::nearest_known(const ResultStore::Snapshot& snap,
                                  const Pending& pending, RunRecord& out) {
  // A degraded answer must still be *about* the asked benchmark — a
  // blackscholes config says nothing about kmeans. Within the benchmark,
  // prefer (in order) feasible configs, the asked device, the asked
  // technique, then the closest items-per-thread; final ties break on
  // spec text and append order, so the choice is deterministic across
  // runs and store layouts.
  const TuningQuery& q = pending.query;
  bool found = false;
  int best_score = -1;
  std::uint64_t best_ipt_gap = 0;
  snap.for_each([&](const RunRecord& record) {
    if (record.benchmark != q.benchmark) return;
    const int score = (record.feasible ? 8 : 0) + (record.device == q.device ? 4 : 0) +
                      (record.technique == pending.spec.technique ? 2 : 0);
    const std::uint64_t ipt_gap = record.items_per_thread > q.items_per_thread
                                      ? record.items_per_thread - q.items_per_thread
                                      : q.items_per_thread - record.items_per_thread;
    const bool better =
        !found || score > best_score ||
        (score == best_score &&
         (ipt_gap < best_ipt_gap ||
          (ipt_gap == best_ipt_gap && record.spec_text < out.spec_text)));
    if (better) {
      out = record;
      best_score = score;
      best_ipt_gap = ipt_gap;
      found = true;
    }
  });
  return found;
}

TuningAnswer TuningService::degrade_or(TuningStatus fallback, const Pending& pending,
                                       const std::string& reason) {
  TuningAnswer answer;
  answer.error = reason;
  RunRecord nearest;
  if (nearest_known(store_.snapshot(), pending, nearest)) {
    answer.status = TuningStatus::kDegraded;
    answer.record = nearest;
    ++stats_.degraded;
  } else {
    answer.status = fallback;
    if (fallback == TuningStatus::kRejected) ++stats_.rejected;
  }
  return answer;
}

TuningAnswer TuningService::query(const TuningQuery& query, const std::string& client) {
  TuningAnswer answer;

  // --- validate and canonicalize: aliases ("nvidia") and equivalent spec
  // spellings must resolve to the store key a campaign would have used ---
  Pending pending;
  try {
    if (!apps::is_benchmark(query.benchmark)) {
      throw ConfigError("unknown benchmark: " + query.benchmark);
    }
    HPAC_REQUIRE(query.items_per_thread > 0, "items-per-thread must be positive");
    const sim::DeviceConfig device = sim::device_by_name(query.device);
    pending.spec = pragma::parse_approx(query.spec_text);
    pending.query = query;
    pending.query.device = device.name;
    pending.query.spec_text = pending.spec.to_string();
    pending.key = Campaign::tuple_key(pending.query.benchmark, pending.query.device,
                                      pending.query.spec_text, query.items_per_thread);
  } catch (const Error& e) {
    common::MutexLock lock(mutex_);
    ++stats_.queries;
    answer.error = e.what();
    return answer;  // status defaults to kError
  }
  const std::string key = pending.key;

  // --- memoized fast path: one snapshot load, no evaluation machinery ---
  {
    const ResultStore::Snapshot snap = store_.snapshot();
    if (const RunRecord* hit = snap.find_key(key)) {
      answer.record = *hit;  // copy out before the snapshot dies
      answer.status = TuningStatus::kOk;
      answer.memoized = true;
      common::MutexLock lock(mutex_);
      ++stats_.queries;
      ++stats_.memoized;
      return answer;
    }
  }

  const Clock::time_point deadline =
      query.deadline_ms > 0 ? Clock::now() + std::chrono::milliseconds(query.deadline_ms)
                            : Clock::time_point::max();

  common::UniqueMutexLock lock(mutex_);
  ++stats_.queries;

  // --- unified admission/evaluation loop. One loop instead of an admit
  // phase followed by a wait phase: with deadlines, the thread that
  // admitted a tuple may depart before it is evaluated, so ANY thread
  // whose key is pending must be able to become the evaluator — otherwise
  // coalesced waiters hang on work nobody owns. ---
  bool we_admitted = false;  // our queue entry exists (we pushed it)
  bool waited = false;       // we slept at least once on someone's progress
  for (;;) {
    {
      const ResultStore::Snapshot snap = store_.snapshot();
      if (const RunRecord* hit = snap.find_key(key)) {
        answer.record = *hit;
        answer.status = TuningStatus::kOk;
        if (we_admitted || waited) {
          answer.memoized = false;
          if (!we_admitted) ++stats_.coalesced;
        } else {
          answer.memoized = true;  // raced with a concurrent producer: still free
          ++stats_.memoized;
        }
        return answer;
      }
    }

    // Quarantine: a tuple that exhausted its retry budget never reaches
    // the evaluator again — it answers from the nearest known config, or
    // reports its recorded failure. The daemon outlives any poisonous
    // tuple.
    if (const auto it = failures_.find(key);
        it != failures_.end() && it->second.count >= config_.max_eval_failures) {
      return degrade_or(TuningStatus::kError, pending,
                        "tuple quarantined after " + std::to_string(it->second.count) +
                            " failed evaluations: " + it->second.last_error);
    }

    if (Clock::now() >= deadline) {
      ++stats_.deadline_exceeded;
      return degrade_or(TuningStatus::kDeadlineExceeded, pending,
                        "deadline of " + std::to_string(query.deadline_ms) +
                            "ms elapsed before evaluation");
    }

    if (config_.read_only) {
      return degrade_or(TuningStatus::kError, pending,
                        "tuple not in store and service is read-only");
    }

    const bool key_inflight = inflight_.count(key) != 0;
    // Our entry was consumed but the tuple is not in the store: the
    // evaluation failed. Re-admit (the quarantine check above bounds how
    // often) — this is where a tuple's retry budget is spent.
    if (we_admitted && !key_inflight) we_admitted = false;
    if (!key_inflight && !we_admitted) {
      if (pending_total_ >= config_.max_pending) {
        // Saturation: availability over exactness — answer with the
        // nearest known config rather than turning load into failure.
        // kRejected only when the store has nothing useful.
        return degrade_or(TuningStatus::kRejected, pending,
                          "admission queue full (" +
                              std::to_string(config_.max_pending) +
                              " tuples pending)");
      }
      auto& queue = queues_[client];
      if (queue.empty()) rotation_.push_back(client);
      inflight_.insert(key);
      queue.push_back(pending);  // keep `pending` — degraded paths still need it
      ++pending_total_;
      we_admitted = true;
      continue;
    }
    if (key_inflight && !we_admitted) waited = true;

    if (!evaluator_running_ && pending_total_ > 0) {
      // Work-conserving: whichever thread finds queued work and no
      // evaluator becomes the evaluator, draining the whole queue in fair
      // order. One evaluator at a time keeps the engine cache lock-free.
      evaluator_running_ = true;
      run_evaluator(deadline);  // absorbs evaluation failures
      evaluator_running_ = false;
      progress_.notify_all();
      continue;
    }
    if (deadline == Clock::time_point::max()) {
      progress_.wait(lock);
    } else {
      progress_.wait_until(lock, deadline);
    }
  }
}

void TuningService::run_evaluator(Clock::time_point deadline) {
  while (pending_total_ > 0) {
    // Stop before starting an evaluation we have no time for; the queue
    // survives for the next thread that picks up the evaluator role.
    if (Clock::now() >= deadline) return;
    Pending next = take_next_fair();
    // Drop the caller's lock around the evaluation (on the mutex itself,
    // not the caller's scoped guard — the guard is restored to "locked"
    // before returning, so its view of ownership never diverges). Nothing
    // in the unlocked region can throw: evaluate() is fully absorbed.
    mutex_.unlock();
    RunRecord record;
    bool ok = false;
    std::string failure;
    try {
      record = evaluate(next);
      ok = true;
    } catch (const std::exception& e) {
      failure = e.what();
    } catch (...) {
      failure = "evaluation failed with a non-standard exception";
    }
    mutex_.lock();
    if (ok) {
      // A concurrent campaign on the same store may have produced the
      // tuple while we evaluated; first writer wins, the store stays
      // consistent.
      store_.append_if_absent(record);
      ++stats_.evaluated;
      failures_.erase(next.key);
    } else {
      // Crash isolation: the failure is bookkeeping, never a throw — the
      // daemon must outlive any tuple that takes the evaluator down. The
      // querying thread re-admits on its next loop pass, giving the tuple
      // its bounded retry budget.
      auto& state = failures_[next.key];
      ++state.count;
      state.last_error = failure;
      ++stats_.eval_failures;
      if (state.count == config_.max_eval_failures) ++stats_.quarantined;
    }
    inflight_.erase(next.key);
    --pending_total_;
    progress_.notify_all();
  }
}

TuningService::Pending TuningService::take_next_fair() {
  HPAC_REQUIRE(!rotation_.empty(), "fair pick on an empty admission queue");
  if (rotation_next_ >= rotation_.size()) rotation_next_ = 0;
  const std::string client = rotation_[rotation_next_];
  const auto it = queues_.find(client);
  Pending next = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) {
    // Client leaves the rotation; the cursor now points at its successor.
    queues_.erase(it);
    rotation_.erase(rotation_.begin() + static_cast<std::ptrdiff_t>(rotation_next_));
  } else {
    ++rotation_next_;
  }
  return next;
}

RunRecord TuningService::evaluate(const Pending& pending) {
  RunRecord record;
  if (config_.evaluate_override) {
    record = config_.evaluate_override(pending.query, pending.spec);
  } else {
    const std::string engine_key = pending.query.benchmark + '\x1f' + pending.query.device;
    auto it = engines_.find(engine_key);
    if (it == engines_.end()) {
      auto engine = std::make_unique<Engine>();
      engine->app = apps::make_benchmark(pending.query.benchmark);
      engine->explorer = std::make_unique<Explorer>(
          *engine->app, sim::device_by_name(pending.query.device));
      it = engines_.emplace(engine_key, std::move(engine)).first;
    }
    record = it->second->explorer
                 ->measure_configs({ConfigRequest{pending.spec,
                                                  pending.query.items_per_thread}},
                                   config_.num_threads)
                 .front();
  }
  // Canonical identity regardless of what the evaluator filled in, so the
  // stored key always matches the admitted key.
  record.benchmark = pending.query.benchmark;
  record.device = pending.query.device;
  record.items_per_thread = pending.query.items_per_thread;
  record.set_spec(pending.spec);
  return record;
}

}  // namespace hpac::harness
