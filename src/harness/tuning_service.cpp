#include "harness/tuning_service.hpp"

#include <utility>

#include "apps/registry.hpp"
#include "common/error.hpp"
#include "harness/campaign.hpp"
#include "harness/explorer.hpp"
#include "pragma/parser.hpp"
#include "sim/device.hpp"

namespace hpac::harness {

/// Benchmark + Explorer pair kept alive across queries so the accurate
/// baseline is computed once per (benchmark, device). Only the single
/// active evaluator thread touches engines, so no lock guards them.
struct TuningService::Engine {
  std::unique_ptr<Benchmark> app;
  std::unique_ptr<Explorer> explorer;
};

TuningService::TuningService(ResultStore& store, TuningServiceConfig config)
    : store_(store), config_(std::move(config)) {
  HPAC_REQUIRE(config_.max_pending > 0,
               "tuning service needs a positive admission bound");
}

TuningService::~TuningService() = default;

TuningService::Stats TuningService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

TuningAnswer TuningService::query(const TuningQuery& query, const std::string& client) {
  TuningAnswer answer;

  // --- validate and canonicalize: aliases ("nvidia") and equivalent spec
  // spellings must resolve to the store key a campaign would have used ---
  Pending pending;
  try {
    if (!apps::is_benchmark(query.benchmark)) {
      throw ConfigError("unknown benchmark: " + query.benchmark);
    }
    HPAC_REQUIRE(query.items_per_thread > 0, "items-per-thread must be positive");
    const sim::DeviceConfig device = sim::device_by_name(query.device);
    pending.spec = pragma::parse_approx(query.spec_text);
    pending.query = query;
    pending.query.device = device.name;
    pending.query.spec_text = pending.spec.to_string();
    pending.key = Campaign::tuple_key(pending.query.benchmark, pending.query.device,
                                      pending.query.spec_text, query.items_per_thread);
  } catch (const Error& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.queries;
    answer.error = e.what();
    return answer;  // status defaults to kError
  }
  // A copy, not a reference: `pending` is moved into the admission queue
  // below, and this key must outlive that move.
  const std::string key = pending.key;

  // --- memoized fast path: one snapshot load, no evaluation machinery ---
  {
    const ResultStore::Snapshot snap = store_.snapshot();
    if (const RunRecord* hit = snap.find_key(key)) {
      answer.record = *hit;  // copy out before the snapshot dies
      answer.status = TuningStatus::kOk;
      answer.memoized = true;
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.queries;
      ++stats_.memoized;
      return answer;
    }
  }

  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.queries;

  // --- admission: leave this loop with the tuple answered or enqueued ---
  bool waited_on_peer = false;
  for (;;) {
    {
      const ResultStore::Snapshot snap = store_.snapshot();
      if (const RunRecord* hit = snap.find_key(key)) {
        answer.record = *hit;
        answer.status = TuningStatus::kOk;
        answer.memoized = !waited_on_peer;
        if (waited_on_peer) {
          ++stats_.coalesced;
        } else {
          ++stats_.memoized;  // raced with a concurrent producer: still free
        }
        return answer;
      }
    }
    if (inflight_.count(key) != 0) {
      // Identical tuple already admitted by another query: coalesce onto
      // that evaluation instead of queueing a duplicate.
      waited_on_peer = true;
      progress_.wait(lock);
      continue;
    }
    if (pending_total_ >= config_.max_pending) {
      ++stats_.rejected;
      answer.status = TuningStatus::kRejected;
      answer.error = "admission queue full (" + std::to_string(config_.max_pending) +
                     " tuples pending)";
      return answer;
    }
    auto& queue = queues_[client];
    if (queue.empty()) rotation_.push_back(client);
    inflight_.insert(key);
    queue.push_back(std::move(pending));
    ++pending_total_;
    break;
  }

  // --- our tuple is admitted: evaluate (work-conserving) or wait ---
  for (;;) {
    {
      const ResultStore::Snapshot snap = store_.snapshot();
      if (const RunRecord* hit = snap.find_key(key)) {
        answer.record = *hit;
        answer.status = TuningStatus::kOk;
        answer.memoized = false;
        return answer;
      }
    }
    if (!evaluator_running_) {
      // Whoever gets here first drains the whole admission queue in fair
      // order — including tuples admitted by clients that are merely
      // waiting. One evaluator at a time keeps the engine cache lock-free.
      evaluator_running_ = true;
      try {
        run_evaluator(lock);
      } catch (...) {
        evaluator_running_ = false;
        progress_.notify_all();
        throw;
      }
      evaluator_running_ = false;
      progress_.notify_all();
      continue;
    }
    progress_.wait(lock);
  }
}

void TuningService::run_evaluator(std::unique_lock<std::mutex>& lock) {
  while (pending_total_ > 0) {
    Pending next = take_next_fair();
    lock.unlock();
    RunRecord record;
    try {
      record = evaluate(next);
    } catch (...) {
      // Release the key so a later query can retry the tuple; the failure
      // propagates to the query thread that ran the evaluator.
      lock.lock();
      inflight_.erase(next.key);
      --pending_total_;
      progress_.notify_all();
      throw;
    }
    lock.lock();
    // A concurrent campaign on the same store may have produced the tuple
    // while we evaluated; first writer wins, the store stays consistent.
    store_.append_if_absent(record);
    ++stats_.evaluated;
    inflight_.erase(next.key);
    --pending_total_;
    progress_.notify_all();
  }
}

TuningService::Pending TuningService::take_next_fair() {
  HPAC_REQUIRE(!rotation_.empty(), "fair pick on an empty admission queue");
  if (rotation_next_ >= rotation_.size()) rotation_next_ = 0;
  const std::string client = rotation_[rotation_next_];
  const auto it = queues_.find(client);
  Pending next = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) {
    // Client leaves the rotation; the cursor now points at its successor.
    queues_.erase(it);
    rotation_.erase(rotation_.begin() + static_cast<std::ptrdiff_t>(rotation_next_));
  } else {
    ++rotation_next_;
  }
  return next;
}

RunRecord TuningService::evaluate(const Pending& pending) {
  RunRecord record;
  if (config_.evaluate_override) {
    record = config_.evaluate_override(pending.query, pending.spec);
  } else {
    const std::string engine_key = pending.query.benchmark + '\x1f' + pending.query.device;
    auto it = engines_.find(engine_key);
    if (it == engines_.end()) {
      auto engine = std::make_unique<Engine>();
      engine->app = apps::make_benchmark(pending.query.benchmark);
      engine->explorer = std::make_unique<Explorer>(
          *engine->app, sim::device_by_name(pending.query.device));
      it = engines_.emplace(engine_key, std::move(engine)).first;
    }
    record = it->second->explorer
                 ->measure_configs({ConfigRequest{pending.spec,
                                                  pending.query.items_per_thread}},
                                   config_.num_threads)
                 .front();
  }
  // Canonical identity regardless of what the evaluator filled in, so the
  // stored key always matches the admitted key.
  record.benchmark = pending.query.benchmark;
  record.device = pending.query.device;
  record.items_per_thread = pending.query.items_per_thread;
  record.set_spec(pending.spec);
  return record;
}

}  // namespace hpac::harness
