#include "harness/params.hpp"

namespace hpac::harness {

namespace table2 {

std::vector<int> taf_history_sizes() { return {1, 2, 3, 4, 5}; }

std::vector<int> taf_prediction_sizes() {
  std::vector<int> v;
  for (int p = 2; p <= 512; p *= 2) v.push_back(p);
  return v;
}

std::vector<double> memo_out_thresholds() {
  return {0.3, 0.6, 0.9, 1.2, 1.5, 3.0, 5.0, 20.0};
}

std::vector<int> iact_tables_per_warp() { return {1, 2, 16, 32, 64}; }

std::vector<int> iact_table_sizes() { return {1, 2, 4, 8}; }

std::vector<double> memo_in_thresholds() {
  return {0.1, 0.3, 0.5, 0.7, 0.9, 3.0, 5.0, 20.0};
}

std::vector<int> perfo_skips() { return {2, 4, 8, 16, 32, 64}; }

std::vector<int> perfo_skip_percents() { return {10, 20, 30, 40, 50, 60, 70, 80, 90}; }

std::vector<pragma::HierarchyLevel> hierarchies() {
  return {pragma::HierarchyLevel::kThread, pragma::HierarchyLevel::kWarp};
}

std::vector<std::uint64_t> items_per_thread() {
  std::vector<std::uint64_t> v;
  for (std::uint64_t i = 8; i <= 512; i *= 2) v.push_back(i);
  return v;
}

}  // namespace table2

namespace {

/// Keep every `stride`-th element, always including the first and last so
/// quick sweeps still span the full range of each axis.
template <typename T>
std::vector<T> strided(const std::vector<T>& xs, std::size_t stride) {
  if (stride <= 1 || xs.size() <= 2) return xs;
  std::vector<T> out;
  for (std::size_t i = 0; i < xs.size(); i += stride) out.push_back(xs[i]);
  if (out.back() != xs.back()) out.push_back(xs.back());
  return out;
}

template <typename T>
std::vector<T> pick(SweepDensity density, const std::vector<T>& xs, std::size_t quick_stride) {
  return density == SweepDensity::kFull ? xs : strided(xs, quick_stride);
}

}  // namespace

std::vector<pragma::ApproxSpec> taf_specs(SweepDensity density) {
  std::vector<pragma::ApproxSpec> specs;
  for (int h : pick(density, table2::taf_history_sizes(), 2)) {
    for (int p : pick(density, table2::taf_prediction_sizes(), 2)) {
      for (double thr : pick(density, table2::memo_out_thresholds(), 2)) {
        for (auto level : table2::hierarchies()) {
          pragma::ApproxSpec spec;
          spec.technique = pragma::Technique::kTafMemo;
          spec.taf = pragma::TafParams{h, p, thr};
          spec.level = level;
          spec.out_sections.push_back("qoi[i]");
          specs.push_back(std::move(spec));
        }
      }
    }
  }
  return specs;
}

std::vector<pragma::ApproxSpec> iact_specs(SweepDensity density, int warp_size) {
  std::vector<pragma::ApproxSpec> specs;
  for (int tpw : table2::iact_tables_per_warp()) {
    if (tpw > warp_size) continue;  // 64 tables/warp exist only on AMD
    for (int tsize : pick(density, table2::iact_table_sizes(), 2)) {
      for (double thr : pick(density, table2::memo_in_thresholds(), 2)) {
        for (auto level : table2::hierarchies()) {
          pragma::ApproxSpec spec;
          spec.technique = pragma::Technique::kIactMemo;
          spec.iact = pragma::IactParams{tsize, thr, tpw};
          spec.level = level;
          spec.in_sections.push_back("in[i]");
          spec.out_sections.push_back("qoi[i]");
          specs.push_back(std::move(spec));
        }
      }
    }
  }
  return specs;
}

std::vector<pragma::ApproxSpec> perfo_specs(SweepDensity density) {
  std::vector<pragma::ApproxSpec> specs;
  auto add = [&specs](pragma::PerfoParams params) {
    pragma::ApproxSpec spec;
    spec.technique = pragma::Technique::kPerforation;
    spec.perfo = params;
    specs.push_back(std::move(spec));
  };
  for (int skip : pick(density, table2::perfo_skips(), 2)) {
    add({pragma::PerfoKind::kSmall, skip, 0.0, true});
    add({pragma::PerfoKind::kLarge, skip, 0.0, true});
  }
  for (int percent : pick(density, table2::perfo_skip_percents(), 2)) {
    add({pragma::PerfoKind::kIni, 2, percent / 100.0, true});
    add({pragma::PerfoKind::kFini, 2, percent / 100.0, true});
  }
  return specs;
}

std::vector<std::uint64_t> items_per_thread_axis(SweepDensity density) {
  return pick(density, table2::items_per_thread(), 2);
}

std::vector<pragma::ApproxSpec> curated_taf_specs(
    const std::vector<pragma::HierarchyLevel>& levels) {
  std::vector<pragma::ApproxSpec> specs;
  auto add = [&specs, &levels](int h, int p, double thr) {
    for (auto level : levels) {
      pragma::ApproxSpec spec;
      spec.technique = pragma::Technique::kTafMemo;
      spec.taf = pragma::TafParams{h, p, thr};
      spec.level = level;
      spec.out_sections.push_back("qoi[i]");
      specs.push_back(std::move(spec));
    }
  };
  for (double thr : {0.3, 0.9, 1.5, 5.0, 20.0}) {
    for (int p : {8, 64, 512}) add(3, p, thr);
  }
  add(1, 64, 1.5);
  add(5, 64, 1.5);
  return specs;
}

std::vector<pragma::ApproxSpec> curated_iact_specs(
    int warp_size, const std::vector<pragma::HierarchyLevel>& levels) {
  std::vector<pragma::ApproxSpec> specs;
  auto add = [&specs, &levels](int tsize, double thr, int tpw) {
    for (auto level : levels) {
      pragma::ApproxSpec spec;
      spec.technique = pragma::Technique::kIactMemo;
      spec.iact = pragma::IactParams{tsize, thr, tpw};
      spec.level = level;
      spec.in_sections.push_back("in[i]");
      spec.out_sections.push_back("qoi[i]");
      specs.push_back(std::move(spec));
    }
  };
  for (int tsize : {1, 4, 8}) {
    for (double thr : {0.1, 0.5, 0.9, 5.0}) add(tsize, thr, 2);
  }
  add(4, 0.5, 1);
  add(4, 0.5, 16);
  add(4, 0.5, warp_size);
  return specs;
}

std::vector<pragma::ApproxSpec> curated_perfo_specs() {
  std::vector<pragma::ApproxSpec> specs;
  auto add = [&specs](pragma::PerfoParams params) {
    pragma::ApproxSpec spec;
    spec.technique = pragma::Technique::kPerforation;
    spec.perfo = params;
    specs.push_back(std::move(spec));
  };
  for (int skip : {2, 4, 16}) {
    add({pragma::PerfoKind::kSmall, skip, 0.0, true});
    add({pragma::PerfoKind::kLarge, skip, 0.0, true});
  }
  for (double frac : {0.1, 0.3, 0.5, 0.7}) {
    add({pragma::PerfoKind::kIni, 2, frac, true});
    add({pragma::PerfoKind::kFini, 2, frac, true});
  }
  return specs;
}

std::uint64_t full_config_count(int warp_size) {
  const auto ipt = table2::items_per_thread().size();
  std::uint64_t taf = table2::taf_history_sizes().size() *
                      table2::taf_prediction_sizes().size() *
                      table2::memo_out_thresholds().size() * table2::hierarchies().size() * ipt;
  std::uint64_t tpw_count = 0;
  for (int tpw : table2::iact_tables_per_warp()) {
    if (tpw <= warp_size) ++tpw_count;
  }
  std::uint64_t iact = tpw_count * table2::iact_table_sizes().size() *
                       table2::memo_in_thresholds().size() * table2::hierarchies().size() * ipt;
  std::uint64_t perfo = (table2::perfo_skips().size() * 2) * ipt +
                        (table2::perfo_skip_percents().size() * 2) * ipt;
  return taf + iact + perfo;
}

}  // namespace hpac::harness
