#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "approx/region.hpp"
#include "offload/device.hpp"
#include "pragma/spec.hpp"
#include "sim/device.hpp"

namespace hpac::harness {

/// How a benchmark's quality loss is quantified (paper §4): MAPE for all
/// applications except K-Means, which uses the misclassification rate.
enum class ErrorMetric { kMape, kMcr };

/// Which portion of the timeline the speedup is computed over. The paper
/// uses end-to-end time everywhere except Blackscholes (kernel time only,
/// since 99% of its runtime is allocation and transfers).
enum class TimingScope { kEndToEnd, kKernelOnly };

/// Result of one benchmark execution under a given approximation config.
struct RunOutput {
  offload::Timeline timeline;
  approx::ExecStats stats;        ///< aggregated over all approximated kernels
  std::vector<double> qoi;        ///< quantity of interest (numeric metrics)
  std::vector<int> qoi_labels;    ///< categorical QoI (K-Means cluster ids)
  double iterations = 0;          ///< solver iterations to convergence, if iterative
};

/// The interface every reproduced application implements (Table 1).
///
/// A benchmark owns its synthetic workload (generated deterministically
/// from a fixed seed), knows which kernels it approximates, and reports
/// its QoI. The harness drives it with approximation specs, launch
/// geometry (items per thread) and a device.
class Benchmark {
 public:
  virtual ~Benchmark() = default;

  virtual std::string name() const = 0;
  virtual ErrorMetric error_metric() const { return ErrorMetric::kMape; }
  virtual TimingScope timing_scope() const { return TimingScope::kEndToEnd; }

  /// Items-per-thread value of the un-approximated original launch, used
  /// for the baseline run (the paper picks the best-performing original
  /// configuration as the reference).
  virtual std::uint64_t default_items_per_thread() const { return 1; }
  virtual std::uint32_t threads_per_team() const { return 128; }

  /// The items-per-thread values worth sweeping for memoization on this
  /// benchmark (regions with many invocations per item, like LavaMD's 27
  /// neighbor boxes, use smaller values).
  virtual std::vector<std::uint64_t> memo_items_axis() const { return {8, 64}; }

  /// Execute the full application (all kernels, host work, transfers) with
  /// the given approximation configuration. `spec.technique == kNone`
  /// yields the accurate original program. Implementations must be
  /// deterministic for a fixed (spec, items_per_thread, device) triple.
  virtual RunOutput run(const pragma::ApproxSpec& spec, std::uint64_t items_per_thread,
                        const sim::DeviceConfig& device) = 0;

  /// Create an independent copy of this benchmark — same workload, same
  /// deterministic seed — that another thread can drive concurrently. The
  /// Explorer gives each sweep worker its own fork so `run`'s mutable app
  /// state is never shared. Benchmarks with copyable state implement this
  /// as `return std::make_unique<Derived>(*this);`. Returning nullptr
  /// (the default) declares the benchmark non-forkable and makes the
  /// Explorer fall back to a serial sweep. Forks are created lazily per
  /// sweep slot, so `fork()` must be const-thread-safe (a plain copy
  /// constructor is) and must keep succeeding once it has succeeded.
  virtual std::unique_ptr<Benchmark> fork() const { return nullptr; }

  /// Compute the quality-loss percentage of `approx` against `accurate`
  /// using this benchmark's metric.
  double error_percent(const RunOutput& accurate, const RunOutput& approx) const;
};

}  // namespace hpac::harness
