#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotated_mutex.hpp"
#include "common/fileops.hpp"

namespace hpac::harness {

/// Shared claim journal coordinating N independent worker processes over
/// one tuple domain (ROADMAP item 2). Every coordination action — claim,
/// heartbeat, release, reclaim — is one appended record; the journal's
/// record ORDER is the single source of truth, so every process derives
/// the identical lease state by replaying it, and "who owns tuple T" never
/// needs a lock shared between processes.
///
/// Record transport comes in two modes:
///  * kAtomicAppend (default): records are single O_APPEND write(2)s
///    sized well under PIPE_BUF, which local filesystems apply atomically
///    even across processes. A killed writer can therefore never leave a
///    half record via this path — torn bytes only enter through real
///    faults (simulated by the fault-injection rig), and the reader
///    SKIPS any line whose checksum or syntax is invalid instead of
///    trusting or rejecting it. Because every protocol decision is
///    "append, re-read, believe only what the journal shows", a lost or
///    mangled record degrades to a lost claim/release and the fleet
///    converges anyway (the tuple is re-claimed or re-evaluated; result
///    merging deduplicates).
///  * kRenameRewrite: the fallback for filesystems without trustworthy
///    cross-process O_APPEND atomicity (e.g. some NFS mounts). Appends
///    take an flock on a sidecar, rewrite the whole journal to a temp
///    file and rename(2) it into place, so readers only ever observe
///    complete journals. All workers of one journal must use one mode;
///    the header records it and a mismatched joiner is rejected.
///
/// Liveness: a lease is held by a (worker, nonce) incarnation and is kept
/// alive by heartbeat records. When the owner's newest timestamp is older
/// than the TTL, any worker may append a compare-and-swap reclaim record
/// naming the expired incumbent; the first such record in journal order
/// transfers the lease and every later racer sees a different incumbent
/// and loses — so an expired tuple is handed to exactly one new owner.
///
/// Record grammar (one line each, space-separated, terminated by a
/// 16-hex-digit FNV-1a checksum of the body):
///   hpac-leases v1 <mode> <domain> <fingerprint>   header (first line)
///   C <first> <count> <worker> <nonce> <ts_ms>     claim a tuple range
///   H <worker> <nonce> <ts_ms>                     heartbeat
///   R <tuple> <worker> <nonce>                     release (result durable)
///   X <tuple> <old_w> <old_nonce> <w> <nonce> <ts> CAS reclaim
class LeaseJournal {
 public:
  enum class AppendMode { kAtomicAppend, kRenameRewrite };

  struct Options {
    std::string path;
    /// Worker identity; [A-Za-z0-9_.-]+ so records stay parseable. Must
    /// be unique among concurrently LIVE workers (a restarted worker
    /// reuses its id with a fresh nonce).
    std::string worker;
    /// Incarnation tag; 0 = generate one (random ^ pid ^ clock).
    std::uint64_t nonce = 0;
    /// Total lease indices (campaign tuples + baseline leases).
    std::size_t domain = 0;
    /// Plan fingerprint; all joiners must present the identical value so
    /// two processes can never map one index to different tuples.
    std::uint64_t fingerprint = 0;
    AppendMode mode = AppendMode::kAtomicAppend;
    /// Lease time-to-live: an owner silent for longer is reclaimable.
    std::uint32_t ttl_ms = 3000;
  };

  struct TupleState {
    bool claimed = false;
    bool released = false;
    std::string worker;  ///< current owner (last claim/reclaim winner)
    std::uint64_t nonce = 0;
  };

  /// Point-in-time parse of a journal file, tolerant like a live reader
  /// (invalid lines skipped and counted). For tests and tooling; takes no
  /// locks and works for either mode.
  struct Inspection {
    std::string mode;
    std::size_t domain = 0;
    std::uint64_t fingerprint = 0;
    std::vector<TupleState> tuples;
    /// Newest timestamp per incarnation, keyed "worker#nonce" — what a
    /// status view compares against the TTL to call an owner live or
    /// expired.
    std::unordered_map<std::string, std::uint64_t> last_seen;
    std::size_t valid_records = 0;
    std::size_t invalid_lines = 0;  ///< torn tail or mangled/glued lines
    std::size_t claims = 0;
    std::size_t heartbeats = 0;
    std::size_t releases = 0;
    std::size_t reclaims = 0;
  };

  /// Create or join the journal at options.path. Creation races resolve
  /// through an exclusive link publish; the loser verifies the winner's
  /// header (mode, domain, fingerprint) and joins it. Throws
  /// hpac::ConfigError on any mismatch.
  explicit LeaseJournal(Options options);
  ~LeaseJournal();

  LeaseJournal(const LeaseJournal&) = delete;
  LeaseJournal& operator=(const LeaseJournal&) = delete;

  /// Absorb records appended since the last refresh (atomic-append mode
  /// reads incrementally; rename mode re-reads the current file). All
  /// query methods refresh implicitly; an explicit call is only useful to
  /// batch several state() lookups against one view.
  void refresh();

  /// Try to claim [first, first+count): appends one claim record, then
  /// re-reads and returns the indices this worker actually won (an
  /// earlier record may have claimed part of the range first).
  std::vector<std::size_t> claim(std::size_t first, std::size_t count);

  /// Record that this worker is alive. Thread-safe like every method; the
  /// campaign calls it from a dedicated heartbeat thread.
  void heartbeat();

  /// Mark a tuple complete. Only meaningful from the current owner — a
  /// stale release (lease since reclaimed) is appended but ignored by
  /// every reader, which is exactly what a worker that lost its lease
  /// mid-evaluation should produce.
  void release(std::size_t tuple);

  struct ReclaimOutcome {
    bool won = false;
    std::string prev_worker;  ///< incumbent the CAS named (set when attempted)
  };

  /// Attempt to take over an expired lease. Returns won=false when the
  /// tuple is unclaimed/released, its owner is still live, or another
  /// reclaimer's record landed first.
  ReclaimOutcome try_reclaim(std::size_t tuple);

  /// Does this worker currently own the (unreleased) tuple?
  bool holds(std::size_t tuple);

  TupleState state(std::size_t tuple);
  bool all_released(std::size_t first, std::size_t count);

  /// Claimed, unreleased tuples in [first, first+count) whose owner has
  /// been silent past the TTL.
  std::vector<std::size_t> expired(std::size_t first, std::size_t count);

  /// First contiguous run (length <= max_len) of unclaimed, unreleased
  /// tuples in [0, domain_count), scanning from a rotated start so
  /// concurrent workers spread over the space instead of racing on the
  /// lowest index. nullopt when everything is claimed or released.
  std::optional<std::pair<std::size_t, std::size_t>> next_unclaimed_run(
      std::size_t domain_count, std::size_t max_len, std::size_t rotate);

  const Options& options() const { return options_; }
  std::size_t invalid_lines();

  static Inspection inspect(const std::string& path);

  /// inspect() over bytes already in memory — the parser entry the fuzz
  /// harness drives directly, with no filesystem in the loop.
  static Inspection inspect_bytes(std::string_view bytes);

  static std::uint64_t now_ms();
  static const char* mode_name(AppendMode mode);

  /// Worker ids longer than this are rejected at construction. The cap is
  /// what makes kMaxRecordBytes a real bound: every record embeds at most
  /// two worker names.
  static constexpr std::size_t kMaxWorkerNameBytes = 64;

  /// Upper bound on one sealed record line (body + checksum + newline).
  /// The widest record is the CAS reclaim:
  ///   X <tuple> <old_w> <old_nonce> <w> <nonce> <ts>
  /// i.e. one kind byte, four u64 decimal fields (<= 20 digits each), two
  /// worker names (<= kMaxWorkerNameBytes each), seven separating spaces,
  /// the 16-hex-digit FNV-1a seal with its space, and the terminating
  /// newline. The atomic-append mode's whole correctness story rests on
  /// this staying under PIPE_BUF (static_assert in the .cpp), so a single
  /// O_APPEND write(2) can never be torn by the kernel.
  static constexpr std::size_t kMaxRecordBytes =
      1 + 4 * (1 + 20) + 2 * (1 + kMaxWorkerNameBytes) + (1 + 16) + 1;

 private:
  struct Replay;  // shared record-application logic (live + inspect)

  void append_record(const std::string& body) REQUIRES(mutex_);
  void refresh_locked() REQUIRES(mutex_);
  void consume_bytes(std::string_view bytes) REQUIRES(mutex_);
  std::uint64_t last_seen(const std::string& worker, std::uint64_t nonce) const
      REQUIRES(mutex_);
  bool owner_expired_locked(const TupleState& st, std::uint64_t now) const
      REQUIRES(mutex_);
  static std::string sealed_line(const std::string& body);

  Options options_;
  mutable common::Mutex mutex_;
  std::unique_ptr<fileops::AppendFile> appender_
      GUARDED_BY(mutex_);                          ///< kAtomicAppend only
  std::size_t read_offset_ GUARDED_BY(mutex_) = 0; ///< kAtomicAppend only
  /// Trailing bytes not yet terminated by '\n'.
  std::string carry_ GUARDED_BY(mutex_);
  std::vector<TupleState> tuples_ GUARDED_BY(mutex_);
  /// worker#nonce -> newest timestamp.
  std::unordered_map<std::string, std::uint64_t> last_seen_ GUARDED_BY(mutex_);
  std::size_t invalid_lines_ GUARDED_BY(mutex_) = 0;
};

}  // namespace hpac::harness
