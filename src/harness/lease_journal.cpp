#include "harness/lease_journal.hpp"

#include <limits.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <random>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hpac::harness {

// The atomic-append transport is only torn-proof if every sealed record
// fits in one POSIX-atomic write(2). hpac_lint checks this assertion stays
// in place.
static_assert(LeaseJournal::kMaxRecordBytes < PIPE_BUF,
              "lease records must fit one atomic O_APPEND write");

namespace {

constexpr const char* kMagic = "hpac-leases";
constexpr const char* kVersion = "v1";

bool valid_worker_name(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string seen_key(const std::string& worker, std::uint64_t nonce) {
  return worker + "#" + std::to_string(nonce);
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  long long value = 0;
  if (!strings::parse_int(text, value) || value < 0) return false;
  out = static_cast<std::uint64_t>(value);
  return true;
}

std::uint64_t generate_nonce() {
  std::random_device rd;
  std::uint64_t nonce = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  nonce ^= static_cast<std::uint64_t>(::getpid()) << 16;
  nonce ^= static_cast<std::uint64_t>(LeaseJournal::now_ms());
  // Keep nonces inside the signed-64 range the line parser accepts.
  nonce &= 0x7fffffffffffffffull;
  return nonce != 0 ? nonce : 1;
}

/// Fault-injection hook (tests only): HPAC_DIST_TEST_TORN_APPEND=<k>
/// makes this process write only HALF of its k-th lease-journal record
/// and then SIGKILL itself — the simulated torn append the reader's
/// skip-invalid-lines policy must absorb.
int torn_append_target() {
  static const int target = [] {
    const char* env = std::getenv("HPAC_DIST_TEST_TORN_APPEND");
    long long value = 0;
    return env != nullptr && strings::parse_int(env, value) ? static_cast<int>(value)
                                                            : 0;
  }();
  return target;
}

std::atomic<int> g_append_count{0};

}  // namespace

// --- record replay -----------------------------------------------------------

/// One record-application engine shared by the live journal and the
/// static inspect(): given a validated body, mutate (tuples, last_seen)
/// under the journal-order rules. Tolerant by construction — anything
/// that does not parse or references an out-of-range tuple is reported
/// as invalid and skipped.
struct LeaseJournal::Replay {
  std::vector<TupleState>& tuples;
  std::unordered_map<std::string, std::uint64_t>& last_seen;
  Inspection* counters = nullptr;  ///< optional (inspect only)

  void bump_seen(const std::string& worker, std::uint64_t nonce, std::uint64_t ts) {
    std::uint64_t& slot = last_seen[seen_key(worker, nonce)];
    if (ts > slot) slot = ts;
  }

  /// Apply one non-header body. Returns false when the record is
  /// malformed (the caller counts it as an invalid line).
  bool apply(const std::vector<std::string>& t) {
    if (t.empty()) return false;
    const std::string& kind = t[0];
    if (kind == "C") {
      std::uint64_t first = 0, count = 0, nonce = 0, ts = 0;
      if (t.size() != 6 || !parse_u64(t[1], first) || !parse_u64(t[2], count) ||
          !valid_worker_name(t[3]) || !parse_u64(t[4], nonce) || !parse_u64(t[5], ts) ||
          count == 0 || first + count > tuples.size()) {
        return false;
      }
      for (std::uint64_t i = first; i < first + count; ++i) {
        TupleState& st = tuples[i];
        if (!st.claimed && !st.released) {
          st.claimed = true;
          st.worker = t[3];
          st.nonce = nonce;
        }
      }
      bump_seen(t[3], nonce, ts);
      if (counters != nullptr) ++counters->claims;
      return true;
    }
    if (kind == "H") {
      std::uint64_t nonce = 0, ts = 0;
      if (t.size() != 4 || !valid_worker_name(t[1]) || !parse_u64(t[2], nonce) ||
          !parse_u64(t[3], ts)) {
        return false;
      }
      bump_seen(t[1], nonce, ts);
      if (counters != nullptr) ++counters->heartbeats;
      return true;
    }
    if (kind == "R") {
      std::uint64_t tuple = 0, nonce = 0;
      if (t.size() != 4 || !parse_u64(t[1], tuple) || !valid_worker_name(t[2]) ||
          !parse_u64(t[3], nonce) || tuple >= tuples.size()) {
        return false;
      }
      TupleState& st = tuples[tuple];
      // Only the current owner's release counts: a worker whose lease was
      // reclaimed mid-evaluation appends a release that every reader
      // ignores (the reclaimer's result is the one that stands).
      if (st.claimed && !st.released && st.worker == t[2] && st.nonce == nonce) {
        st.released = true;
      }
      if (counters != nullptr) ++counters->releases;
      return true;
    }
    if (kind == "X") {
      std::uint64_t tuple = 0, old_nonce = 0, nonce = 0, ts = 0;
      if (t.size() != 7 || !parse_u64(t[1], tuple) || !valid_worker_name(t[2]) ||
          !parse_u64(t[3], old_nonce) || !valid_worker_name(t[4]) ||
          !parse_u64(t[5], nonce) || !parse_u64(t[6], ts) || tuple >= tuples.size()) {
        return false;
      }
      TupleState& st = tuples[tuple];
      // Compare-and-swap: the record names the incumbent it observed.
      // The first reclaim in journal order transfers the lease; a racing
      // reclaim that lands later names an incumbent that no longer owns
      // the tuple and is ignored — expired leases transfer exactly once.
      if (st.claimed && !st.released && st.worker == t[2] && st.nonce == old_nonce) {
        st.worker = t[4];
        st.nonce = nonce;
      }
      bump_seen(t[4], nonce, ts);
      if (counters != nullptr) ++counters->reclaims;
      return true;
    }
    return false;
  }
};

// --- line framing ------------------------------------------------------------

std::string LeaseJournal::sealed_line(const std::string& body) {
  return body + " " + fileops::hex16(fileops::fnv1a64(body)) + "\n";
}

namespace {

/// Split a line into (body, valid): the last space-separated field must
/// be a 16-hex-digit FNV-1a of everything before it. Glued lines (a torn
/// partial record with another process's complete record appended after
/// it) fail here because the checksum covers the garbage prefix.
bool unseal_line(std::string_view line, std::string& body) {
  const std::size_t space = line.rfind(' ');
  if (space == std::string_view::npos) return false;
  std::uint64_t stated = 0;
  if (!fileops::parse_hex16(line.substr(space + 1), stated)) return false;
  if (fileops::fnv1a64(line.substr(0, space)) != stated) return false;
  body.assign(line.substr(0, space));
  return true;
}

}  // namespace

// --- construction ------------------------------------------------------------

LeaseJournal::LeaseJournal(Options options) : options_(std::move(options)) {
  HPAC_REQUIRE(valid_worker_name(options_.worker),
               "lease journal worker id must be [A-Za-z0-9_.-]+: '" + options_.worker +
                   "'");
  // The worker-name cap is what makes kMaxRecordBytes (and with it the
  // PIPE_BUF torn-write guarantee) a real bound rather than a hope.
  HPAC_REQUIRE(options_.worker.size() <= kMaxWorkerNameBytes,
               "lease journal worker id exceeds " +
                   std::to_string(kMaxWorkerNameBytes) + " bytes: '" +
                   options_.worker + "'");
  HPAC_REQUIRE(options_.domain > 0, "lease journal needs a non-empty tuple domain");
  HPAC_REQUIRE(options_.ttl_ms > 0, "lease journal TTL must be positive");
  if (options_.nonce == 0) options_.nonce = generate_nonce();
  tuples_.resize(options_.domain);

  // Create-or-join: write the header to a temp file and publish it with
  // an exclusive link, so exactly one of N racing workers creates the
  // journal and everyone else joins (and verifies) the winner's file.
  std::string existing;
  if (!fileops::read_file(options_.path, existing)) {
    const std::string header =
        std::string(kMagic) + " " + kVersion + " " + mode_name(options_.mode) + " " +
        std::to_string(options_.domain) + " " + fileops::hex16(options_.fingerprint);
    const std::string tmp = options_.path + ".create." + std::to_string(::getpid()) +
                            "." + std::to_string(options_.nonce);
    fileops::write_file_atomic(tmp, sealed_line(header));
    fileops::publish_exclusive(tmp, options_.path);  // loser just joins
  }
  if (options_.mode == AppendMode::kAtomicAppend) {
    appender_ = std::make_unique<fileops::AppendFile>(options_.path);
  }
  common::MutexLock lock(mutex_);
  refresh_locked();
}

LeaseJournal::~LeaseJournal() = default;

const char* LeaseJournal::mode_name(AppendMode mode) {
  return mode == AppendMode::kAtomicAppend ? "append" : "rename";
}

std::uint64_t LeaseJournal::now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// --- reading -----------------------------------------------------------------

void LeaseJournal::refresh() {
  common::MutexLock lock(mutex_);
  refresh_locked();
}

void LeaseJournal::refresh_locked() {
  std::string bytes;
  if (!fileops::read_file(options_.path, bytes)) {
    throw Error("lease journal disappeared: " + options_.path);
  }
  if (options_.mode == AppendMode::kRenameRewrite) {
    // The file may have been atomically replaced; rebuild from scratch.
    tuples_.assign(options_.domain, TupleState{});
    last_seen_.clear();
    invalid_lines_ = 0;
    carry_.clear();
    read_offset_ = 0;
    consume_bytes(bytes);
    if (!carry_.empty()) {
      // Rename mode never publishes partial lines; treat one as torn.
      ++invalid_lines_;
      carry_.clear();
    }
    return;
  }
  if (bytes.size() <= read_offset_) return;
  consume_bytes(std::string_view(bytes).substr(read_offset_));
  read_offset_ = bytes.size();
}

void LeaseJournal::consume_bytes(std::string_view bytes) {
  carry_.append(bytes.data(), bytes.size());
  std::size_t start = 0;
  Replay replay{tuples_, last_seen_, nullptr};
  for (;;) {
    const std::size_t nl = carry_.find('\n', start);
    if (nl == std::string::npos) break;
    const std::string_view line = std::string_view(carry_).substr(start, nl - start);
    start = nl + 1;
    std::string body;
    if (!unseal_line(line, body)) {
      ++invalid_lines_;
      continue;
    }
    const std::vector<std::string> tokens = strings::split(body, ' ');
    if (!tokens.empty() && tokens[0] == kMagic) {
      if (tokens.size() != 5 || tokens[1] != kVersion ||
          tokens[2] != mode_name(options_.mode)) {
        throw ConfigError("lease journal " + options_.path +
                          " has an incompatible header/mode (expected " +
                          mode_name(options_.mode) + ")");
      }
      std::uint64_t domain = 0, fingerprint = 0;
      if (!parse_u64(tokens[3], domain) || !fileops::parse_hex16(tokens[4], fingerprint)) {
        throw ConfigError("lease journal " + options_.path + " has a malformed header");
      }
      if (domain != options_.domain || fingerprint != options_.fingerprint) {
        throw ConfigError(
            "lease journal " + options_.path +
            " was created for a different campaign plan (domain/fingerprint mismatch); "
            "refusing to mix sweeps in one directory");
      }
      continue;
    }
    if (!replay.apply(tokens)) ++invalid_lines_;
  }
  carry_.erase(0, start);
}

// --- writing -----------------------------------------------------------------

void LeaseJournal::append_record(const std::string& body) {
  const std::string line = sealed_line(body);
  // Belt over the static bound: no record may outgrow the single-write
  // atomicity window, whatever future record kinds get added.
  HPAC_REQUIRE(line.size() <= kMaxRecordBytes,
               "lease record exceeds the atomic-append bound: " +
                   std::to_string(line.size()) + " bytes");
  if (options_.mode == AppendMode::kAtomicAppend) {
    const int torn_target = torn_append_target();
    if (torn_target > 0 && g_append_count.fetch_add(1) + 1 == torn_target) {
      appender_->append_partial_for_test(
          std::string_view(line).substr(0, line.size() / 2));
      ::raise(SIGKILL);
      for (;;) ::pause();  // unreachable
    }
    appender_->append(line);
    return;
  }
  // Rename-rewrite fallback: serialize writers on the sidecar lock, then
  // republish the whole journal atomically so readers never see a torn
  // or half-appended file even without O_APPEND guarantees.
  fileops::FileLock lock(options_.path + ".lock");
  std::string bytes;
  if (!fileops::read_file(options_.path, bytes)) {
    throw Error("lease journal disappeared: " + options_.path);
  }
  bytes += line;
  fileops::write_file_atomic(options_.path, bytes);
}

std::vector<std::size_t> LeaseJournal::claim(std::size_t first, std::size_t count) {
  common::MutexLock lock(mutex_);
  HPAC_REQUIRE(count > 0 && first + count <= options_.domain,
               "lease claim out of range");
  append_record("C " + std::to_string(first) + " " + std::to_string(count) + " " +
                options_.worker + " " + std::to_string(options_.nonce) + " " +
                std::to_string(now_ms()));
  // Believe only the journal: re-read and keep the indices where our
  // record was first. (A torn/lost claim simply wins nothing.)
  refresh_locked();
  std::vector<std::size_t> won;
  for (std::size_t i = first; i < first + count; ++i) {
    const TupleState& st = tuples_[i];
    if (st.claimed && !st.released && st.worker == options_.worker &&
        st.nonce == options_.nonce) {
      won.push_back(i);
    }
  }
  return won;
}

void LeaseJournal::heartbeat() {
  common::MutexLock lock(mutex_);
  append_record("H " + options_.worker + " " + std::to_string(options_.nonce) + " " +
                std::to_string(now_ms()));
}

void LeaseJournal::release(std::size_t tuple) {
  common::MutexLock lock(mutex_);
  HPAC_REQUIRE(tuple < options_.domain, "lease release out of range");
  append_record("R " + std::to_string(tuple) + " " + options_.worker + " " +
                std::to_string(options_.nonce));
}

LeaseJournal::ReclaimOutcome LeaseJournal::try_reclaim(std::size_t tuple) {
  common::MutexLock lock(mutex_);
  HPAC_REQUIRE(tuple < options_.domain, "lease reclaim out of range");
  refresh_locked();
  const TupleState st = tuples_[tuple];
  ReclaimOutcome outcome;
  if (!st.claimed || st.released) return outcome;
  if (!owner_expired_locked(st, now_ms())) return outcome;
  outcome.prev_worker = st.worker;
  append_record("X " + std::to_string(tuple) + " " + st.worker + " " +
                std::to_string(st.nonce) + " " + options_.worker + " " +
                std::to_string(options_.nonce) + " " + std::to_string(now_ms()));
  refresh_locked();
  const TupleState& now = tuples_[tuple];
  outcome.won = now.claimed && !now.released && now.worker == options_.worker &&
                now.nonce == options_.nonce;
  return outcome;
}

// --- queries -----------------------------------------------------------------

std::uint64_t LeaseJournal::last_seen(const std::string& worker,
                                      std::uint64_t nonce) const {
  const auto it = last_seen_.find(seen_key(worker, nonce));
  return it != last_seen_.end() ? it->second : 0;
}

bool LeaseJournal::owner_expired_locked(const TupleState& st, std::uint64_t now) const {
  const std::uint64_t seen = last_seen(st.worker, st.nonce);
  return now > seen && now - seen > options_.ttl_ms;
}

bool LeaseJournal::holds(std::size_t tuple) {
  common::MutexLock lock(mutex_);
  refresh_locked();
  const TupleState& st = tuples_[tuple];
  return st.claimed && !st.released && st.worker == options_.worker &&
         st.nonce == options_.nonce;
}

LeaseJournal::TupleState LeaseJournal::state(std::size_t tuple) {
  common::MutexLock lock(mutex_);
  HPAC_REQUIRE(tuple < options_.domain, "lease state out of range");
  refresh_locked();
  return tuples_[tuple];
}

bool LeaseJournal::all_released(std::size_t first, std::size_t count) {
  common::MutexLock lock(mutex_);
  refresh_locked();
  for (std::size_t i = first; i < first + count; ++i) {
    if (!tuples_[i].released) return false;
  }
  return true;
}

std::vector<std::size_t> LeaseJournal::expired(std::size_t first, std::size_t count) {
  common::MutexLock lock(mutex_);
  refresh_locked();
  const std::uint64_t now = now_ms();
  std::vector<std::size_t> out;
  for (std::size_t i = first; i < first + count; ++i) {
    const TupleState& st = tuples_[i];
    if (st.claimed && !st.released && owner_expired_locked(st, now)) out.push_back(i);
  }
  return out;
}

std::optional<std::pair<std::size_t, std::size_t>> LeaseJournal::next_unclaimed_run(
    std::size_t domain_count, std::size_t max_len, std::size_t rotate) {
  common::MutexLock lock(mutex_);
  HPAC_REQUIRE(domain_count <= options_.domain, "unclaimed scan out of range");
  if (domain_count == 0 || max_len == 0) return std::nullopt;
  refresh_locked();
  const auto free = [this](std::size_t i) {
    return !tuples_[i].claimed && !tuples_[i].released;
  };
  for (std::size_t k = 0; k < domain_count; ++k) {
    const std::size_t i = (rotate + k) % domain_count;
    if (!free(i)) continue;
    std::size_t len = 1;
    while (len < max_len && i + len < domain_count && free(i + len)) ++len;
    return std::make_pair(i, len);
  }
  return std::nullopt;
}

std::size_t LeaseJournal::invalid_lines() {
  common::MutexLock lock(mutex_);
  refresh_locked();
  return invalid_lines_;
}

// --- inspect -----------------------------------------------------------------

LeaseJournal::Inspection LeaseJournal::inspect(const std::string& path) {
  std::string bytes;
  if (!fileops::read_file(path, bytes)) {
    throw Error("no lease journal at " + path);
  }
  return inspect_bytes(bytes);
}

LeaseJournal::Inspection LeaseJournal::inspect_bytes(std::string_view bytes) {
  Inspection out;
  Replay replay{out.tuples, out.last_seen, &out};
  std::size_t start = 0;
  bool saw_header = false;
  while (start < bytes.size()) {
    const std::size_t nl = bytes.find('\n', start);
    if (nl == std::string::npos) {
      ++out.invalid_lines;  // torn tail: record never terminated
      break;
    }
    const std::string_view line = std::string_view(bytes).substr(start, nl - start);
    start = nl + 1;
    std::string body;
    if (!unseal_line(line, body)) {
      ++out.invalid_lines;
      continue;
    }
    const std::vector<std::string> tokens = strings::split(body, ' ');
    if (!tokens.empty() && tokens[0] == kMagic) {
      std::uint64_t domain = 0;
      if (saw_header || tokens.size() != 5 || !parse_u64(tokens[3], domain) ||
          !fileops::parse_hex16(tokens[4], out.fingerprint)) {
        ++out.invalid_lines;
        continue;
      }
      saw_header = true;
      out.mode = tokens[2];
      out.domain = domain;
      out.tuples.resize(domain);
      continue;
    }
    if (replay.apply(tokens)) {
      ++out.valid_records;
    } else {
      ++out.invalid_lines;
    }
  }
  return out;
}

}  // namespace hpac::harness
