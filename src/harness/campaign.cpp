#include "harness/campaign.hpp"

#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "approx/audit.hpp"
#include "common/annotated_mutex.hpp"
#include "apps/registry.hpp"
#include "common/error.hpp"
#include "common/scheduler.hpp"
#include "common/strings.hpp"
#include "harness/explorer.hpp"
#include "harness/params.hpp"

namespace hpac::harness {

namespace {

std::vector<pragma::ApproxSpec> curated_specs_for(const sim::DeviceConfig& device) {
  std::vector<pragma::ApproxSpec> specs = curated_taf_specs(table2::hierarchies());
  for (auto& s : curated_iact_specs(device.warp_size, table2::hierarchies())) {
    specs.push_back(std::move(s));
  }
  for (auto& s : curated_perfo_specs()) specs.push_back(std::move(s));
  return specs;
}

}  // namespace

std::string Campaign::tuple_key(const std::string& benchmark, const std::string& device,
                                const std::string& spec_text,
                                std::uint64_t items_per_thread) {
  // '\x1f' (unit separator) cannot appear in names or canonical clause
  // text, so the join is collision-free.
  std::string key;
  key.reserve(benchmark.size() + device.size() + spec_text.size() + 24);
  key += benchmark;
  key += '\x1f';
  key += device;
  key += '\x1f';
  key += spec_text;
  key += '\x1f';
  key += std::to_string(items_per_thread);
  return key;
}

Campaign::Campaign(CampaignPlan plan) : plan_(std::move(plan)) {
  HPAC_REQUIRE(!plan_.benchmarks.empty(), "campaign needs at least one benchmark");
  HPAC_REQUIRE(!plan_.devices.empty(), "campaign needs at least one device");
  HPAC_REQUIRE(!plan_.items_per_thread.empty(),
               "campaign needs at least one items-per-thread value");
  for (const std::uint64_t ipt : plan_.items_per_thread) {
    HPAC_REQUIRE(ipt > 0, "items-per-thread values must be positive");
  }
  for (const auto& name : plan_.benchmarks) {
    if (!apps::is_benchmark(name)) throw ConfigError("unknown benchmark: " + name);
  }

  // Resolve devices eagerly: a bad preset name fails here, and aliases
  // ("nvidia" -> "v100") collapse before the uniqueness check below.
  std::vector<sim::DeviceConfig> devices;
  devices.reserve(plan_.devices.size());
  for (const auto& name : plan_.devices) devices.push_back(sim::device_by_name(name));

  std::unordered_set<std::string> seen;
  for (const auto& device : devices) {
    const auto specs = std::make_shared<const std::vector<pragma::ApproxSpec>>(
        plan_.specs_for ? plan_.specs_for(device) : curated_specs_for(device));
    HPAC_REQUIRE(!specs->empty(), "campaign spec grid is empty for device " + device.name);
    for (const auto& benchmark : plan_.benchmarks) {
      Shard shard;
      shard.benchmark = benchmark;
      shard.device = device;
      shard.specs = specs;
      shard.first_tuple = keys_.size();
      for (const auto& spec : *shard.specs) {
        const std::string spec_text = spec.to_string();
        for (const std::uint64_t ipt : plan_.items_per_thread) {
          std::string key = tuple_key(benchmark, device.name, spec_text, ipt);
          HPAC_REQUIRE(seen.insert(key).second,
                       "duplicate campaign tuple: " + benchmark + " on " + device.name +
                           " '" + spec_text + "' ipt " + std::to_string(ipt));
          keys_.push_back(std::move(key));
        }
      }
      shard.tuple_count = keys_.size() - shard.first_tuple;
      shards_.push_back(std::move(shard));
    }
  }
}

Campaign::ShardView Campaign::shard_view(std::size_t index) const {
  HPAC_REQUIRE(index < shards_.size(), "shard index out of range");
  const Shard& shard = shards_[index];
  return ShardView{shard.benchmark, shard.device, *shard.specs, shard.first_tuple,
                   shard.tuple_count};
}

CampaignResult Campaign::run() {
  // The store re-creates the historical checkpoint behavior exactly:
  // absorb any existing journal (torn tail dropped), append-mode flushed
  // rows while running, canonical-order atomic rewrite at the end — the
  // final CSV is byte-identical to the pre-ResultStore campaign's.
  ResultStore store(plan_.output_path);
  CampaignResult result = run(store);
  store.finalize(result.db);
  return result;
}

CampaignResult Campaign::run(ResultStore& store) {
  CampaignResult result;
  result.planned = keys_.size();
  std::vector<RunRecord> records(keys_.size());
  std::vector<char> done(keys_.size(), 0);

  // --- resume: absorb every plan tuple the store already holds ---
  // Duplicate journal rows were already dropped by the store's load (it
  // indexes the first occurrence per tuple); they count as stale exactly
  // like rows that are not part of this plan.
  result.stale = store.load_stats().duplicates;
  const ResultStore::Snapshot checkpoint = store.snapshot();
  if (!checkpoint.empty()) {
    std::unordered_map<std::string, std::size_t> index_of;
    index_of.reserve(keys_.size());
    for (std::size_t i = 0; i < keys_.size(); ++i) index_of.emplace(keys_[i], i);
    checkpoint.for_each([&](const RunRecord& r) {
      const auto it =
          index_of.find(tuple_key(r.benchmark, r.device, r.spec_text, r.items_per_thread));
      if (it == index_of.end()) {
        ++result.stale;  // not part of this plan
        return;
      }
      records[it->second] = r;
      done[it->second] = 1;
      ++result.restored;
    });
  }

  // Shards that still have work; fully restored pairs never rebuild their
  // benchmark or rerun the baseline.
  std::vector<std::size_t> pending;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    for (std::size_t t = 0; t < shard.tuple_count; ++t) {
      if (!done[shard.first_tuple + t]) {
        pending.push_back(s);
        break;
      }
    }
  }

  // Two locks with disjoint jobs: `mutex` guards the shared record state
  // and the journal, `callback_mutex` serializes on_record invocations.
  // The callback runs with the record lock *released* — its journal row is
  // already flushed — so a blocked callback stalls only other callbacks,
  // never the journaling by concurrent workers. (Holding `mutex` across
  // the callback used to deadlock exactly that pattern.)
  common::Mutex mutex;
  common::Mutex callback_mutex;
  auto run_shard = [&](std::size_t shard_index) {
    const Shard& shard = shards_[shard_index];
    auto app = apps::make_benchmark(shard.benchmark);
    Explorer explorer(*app, shard.device);  // baseline cached per (benchmark, device)
    const std::size_t ipt_count = plan_.items_per_thread.size();
    for (std::size_t t = 0; t < shard.tuple_count; ++t) {
      const std::size_t index = shard.first_tuple + t;
      if (done[index]) continue;
      const RunRecord record = explorer.run_config((*shard.specs)[t / ipt_count],
                                                   plan_.items_per_thread[t % ipt_count]);
      {
        common::MutexLock lock(mutex);
        records[index] = record;
        done[index] = 1;
        // The store flushes the journal row before publishing, so by the
        // time on_record (or any store reader) sees the record it is
        // already durable.
        store.append(record);
        ++result.evaluated;
      }
      if (plan_.on_record) {
        common::MutexLock lock(callback_mutex);
        plan_.on_record(record);
      }
    }
  };

  const std::size_t workers =
      Scheduler::recommended_threads(plan_.num_threads, pending.size());
  if (workers <= 1) {
    for (const std::size_t shard_index : pending) run_shard(shard_index);
  } else {
    Scheduler::shared().parallel_for(
        pending.size(), [&](std::size_t, std::size_t i) { run_shard(pending[i]); },
        /*max_participants=*/workers);
  }

  // --- canonical assembly (plan order, independent of worker count) ---
  for (auto& record : records) {
    result.feasible += record.feasible ? 1 : 0;
    // Both audit surfaces embed audit::kConflictToken: report-mode notes
    // from Explorer::evaluate and enforce-mode ConfigError texts. The
    // shared constant keeps this count immune to rewording.
    if (record.note.find(approx::audit::kConflictToken) != std::string::npos) {
      ++result.audit_flagged;
    }
    result.db.add(std::move(record));
  }
  return result;
}

}  // namespace hpac::harness
