#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/annotated_mutex.hpp"
#include "harness/record.hpp"
#include "harness/result_store.hpp"
#include "pragma/spec.hpp"

namespace hpac::harness {

/// One tuning question: a single campaign tuple. `spec_text` is parsed and
/// canonicalized by the service, so clients may send any text
/// `pragma::parse_approx` accepts — equivalent spellings resolve to the
/// same store key.
struct TuningQuery {
  std::string benchmark;
  std::string device;  ///< preset name for sim::device_by_name
  std::string spec_text;
  std::uint64_t items_per_thread = 0;
  /// Per-query answer deadline in milliseconds, 0 = none. A cold query
  /// whose evaluation cannot finish in time degrades to the nearest known
  /// config (kDegraded) instead of blocking past the deadline; with an
  /// empty store it returns kDeadlineExceeded. Memoized answers are
  /// always in time.
  std::uint32_t deadline_ms = 0;
};

enum class TuningStatus : std::uint8_t {
  kOk = 0,    ///< record available (memoized or freshly evaluated)
  kRejected,  ///< admission queue full and nothing to degrade to — retry later
  kError,     ///< malformed query, or evaluation quarantined with no fallback
  kDeadlineExceeded,  ///< deadline elapsed and nothing to degrade to
  kDegraded,  ///< `record` is the nearest KNOWN config, not the asked tuple
};

/// What a query returns. `memoized` is true when the answer came straight
/// from a store snapshot — no evaluation ran and the scheduler was never
/// touched on behalf of this query. A kDegraded answer also carries a
/// record, but for a *different* tuple (compare its identity fields to
/// the query to see how far it is); `error` then explains why the exact
/// answer was unavailable.
struct TuningAnswer {
  TuningStatus status = TuningStatus::kError;
  bool memoized = false;
  RunRecord record;   ///< valid when status is kOk or kDegraded
  std::string error;  ///< set when status != kOk
};

struct TuningServiceConfig {
  /// Bounded admission queue: total tuples enqueued-but-unfinished across
  /// all clients. A query whose tuple would exceed this is answered with
  /// the nearest known config (kDegraded) — or kRejected when the store
  /// knows nothing useful — instead of queued.
  std::size_t max_pending = 64;
  /// Worker bound for Explorer::measure_configs on cold evaluations
  /// (0 = hardware concurrency).
  std::size_t num_threads = 0;
  /// Evaluation retry budget per tuple: a tuple whose evaluation throws
  /// is retried on later demand up to this many total attempts, then
  /// quarantined — further queries answer degraded (or kError carrying
  /// the recorded failure) without touching the evaluator again.
  std::size_t max_eval_failures = 3;
  /// Serve-only mode: cold tuples are never admitted or evaluated —
  /// they answer kDegraded from the nearest known config, or kError when
  /// the store has nothing for the benchmark. Pairs with a read-only
  /// ResultStore serving a finalized CSV.
  bool read_only = false;
  /// Test seam: when set, cold tuples are answered by this function
  /// instead of constructing a Benchmark/Explorer — admission, fairness
  /// and memoization behave identically, but evaluation is deterministic
  /// and scheduler-free. Identity fields of the returned record are
  /// overwritten with the tuple's canonical identity.
  std::function<RunRecord(const TuningQuery&, const pragma::ApproxSpec&)> evaluate_override;
};

/// Serving layer over a ResultStore: answers memoized tuples from lock-free
/// snapshots and admits only the *missing* tuples for evaluation, with
/// per-client round-robin fairness and a bounded admission queue
/// (ROADMAP item 1's daemon core, minus the socket).
///
/// Concurrency contract:
///  * Memoized queries read one store snapshot and touch a short stats
///    lock — they never wait on an evaluation in progress.
///  * Cold queries enqueue their tuple and block until it is in the store
///    or their deadline passes. Identical concurrent queries coalesce
///    onto one evaluation.
///  * Evaluation is work-conserving and client-fair: whichever query
///    thread finds no evaluator running becomes it, and drains the
///    admission queue one tuple per client in rotation, so a client that
///    floods the queue cannot starve a client asking for one tuple.
///  * Baselines are cached per (benchmark, device): the first cold tuple
///    of a pair pays for the accurate run, subsequent tuples reuse it —
///    the Campaign's shard economics, applied incrementally.
///
/// Failure contract (the daemon stays up no matter what a tuple does):
///  * A throwing evaluation never propagates: the failure is recorded
///    against the tuple, the evaluator keeps draining other clients'
///    tuples, and the querying thread re-admits for a bounded number of
///    retries before the tuple is quarantined.
///  * Saturation, missed deadlines and quarantined tuples degrade to the
///    nearest known config in the current snapshot instead of stalling —
///    trading exactness for availability, like the approximations the
///    service is tuning.
class TuningService {
 public:
  struct Stats {
    std::uint64_t queries = 0;    ///< total query() calls
    std::uint64_t memoized = 0;   ///< served from a snapshot, no evaluation
    std::uint64_t evaluated = 0;  ///< tuples actually evaluated
    std::uint64_t coalesced = 0;  ///< queries that waited on another's evaluation
    std::uint64_t rejected = 0;   ///< refused outright (nothing to degrade to)
    std::uint64_t degraded = 0;   ///< answered with a nearest-known config
    std::uint64_t deadline_exceeded = 0;  ///< queries whose deadline fired
    std::uint64_t eval_failures = 0;      ///< evaluations that threw
    std::uint64_t quarantined = 0;  ///< tuples that exhausted their retry budget
  };

  /// The store is caller-owned and may be concurrently written by a
  /// Campaign::run(store) on another thread; the service tolerates (and
  /// benefits from) tuples appearing underneath it.
  explicit TuningService(ResultStore& store, TuningServiceConfig config = {});
  ~TuningService();

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Answer one tuple on behalf of `client` (the fairness identity —
  /// e.g. one socket connection). Blocking: cold tuples return once
  /// evaluated, memoized tuples immediately, deadline-bearing queries no
  /// later than (roughly) their deadline.
  TuningAnswer query(const TuningQuery& query, const std::string& client = "default");

  Stats stats() const;
  const ResultStore& store() const { return store_; }

 private:
  struct Pending {
    std::string key;  ///< canonical tuple key
    TuningQuery query;
    pragma::ApproxSpec spec;
  };

  /// Failure history of one tuple; the tuple is quarantined once
  /// `count >= config_.max_eval_failures`.
  struct FailureState {
    std::size_t count = 0;
    std::string last_error;
  };

  /// Lazily constructed per (benchmark, device) so the accurate baseline
  /// is computed once per pair; only the single evaluator thread touches
  /// these, so they need no lock of their own.
  struct Engine;

  using Clock = std::chrono::steady_clock;

  /// Drain the admission queue; called with mutex_ held, returns with it
  /// held, releases it around each evaluation (directly on the annotated
  /// mutex — the caller's scoped lock object is not touched, so the
  /// analysis tracks the drop/retake precisely). Stops early (leaving work
  /// queued for the next evaluator) once `deadline` passes. A throwing
  /// evaluation is absorbed into failures_, never thrown.
  void run_evaluator(Clock::time_point deadline) REQUIRES(mutex_);

  /// Pick the next tuple fairly (round-robin over clients with queued
  /// work). Requires the lock; pops the tuple from its client queue.
  Pending take_next_fair() REQUIRES(mutex_);

  RunRecord evaluate(const Pending& pending);

  /// Nearest known config for `pending` in `snap` (same benchmark
  /// required; prefers feasible, same device, same technique, closest
  /// items-per-thread — deterministically). Returns false when the store
  /// knows nothing about the benchmark.
  static bool nearest_known(const ResultStore::Snapshot& snap, const Pending& pending,
                            RunRecord& out);

  /// Build the answer for a query that cannot get its exact tuple:
  /// kDegraded with the nearest known config when one exists, else
  /// `fallback` with `reason`. Requires the lock (bumps stats).
  TuningAnswer degrade_or(TuningStatus fallback, const Pending& pending,
                          const std::string& reason) REQUIRES(mutex_);

  ResultStore& store_;
  TuningServiceConfig config_;

  mutable common::Mutex mutex_;
  common::CondVar progress_;
  /// Per-client FIFO of admitted tuples plus the rotation order; a client
  /// leaves the rotation when its queue drains.
  std::map<std::string, std::deque<Pending>> queues_ GUARDED_BY(mutex_);
  std::vector<std::string> rotation_ GUARDED_BY(mutex_);
  std::size_t rotation_next_ GUARDED_BY(mutex_) = 0;
  /// Admitted or evaluating keys.
  std::unordered_set<std::string> inflight_ GUARDED_BY(mutex_);
  std::size_t pending_total_ GUARDED_BY(mutex_) = 0;
  bool evaluator_running_ GUARDED_BY(mutex_) = false;
  /// key -> failure history.
  std::unordered_map<std::string, FailureState> failures_ GUARDED_BY(mutex_);
  Stats stats_ GUARDED_BY(mutex_);

  /// Touched only by the single active evaluator thread, with mutex_
  /// RELEASED (the evaluator_running_ flag is the exclusion protocol, so
  /// baseline engines never run under a lock). Deliberately unannotated:
  /// no capability expresses "guarded by being the evaluator".
  std::map<std::string, std::unique_ptr<Engine>> engines_;
};

}  // namespace hpac::harness
