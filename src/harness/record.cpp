#include "harness/record.hpp"

namespace hpac::harness {

void RunRecord::set_spec(const pragma::ApproxSpec& spec) {
  technique = spec.technique;
  spec_text = spec.to_string();
  level = spec.level;
  if (spec.taf) {
    history_size = spec.taf->history_size;
    prediction_size = spec.taf->prediction_size;
    threshold = spec.taf->rsd_threshold;
  }
  if (spec.iact) {
    table_size = spec.iact->table_size;
    tables_per_warp = spec.iact->tables_per_warp;
    threshold = spec.iact->threshold;
  }
  if (spec.perfo) {
    perfo_kind = pragma::perfo_kind_name(spec.perfo->kind);
    perfo_stride = spec.perfo->stride;
    perfo_fraction = spec.perfo->fraction;
  }
}

void ResultDb::add(RunRecord record) { records_.push_back(std::move(record)); }

CsvTable ResultDb::to_csv() const {
  CsvTable csv({"benchmark", "device", "technique", "spec", "level", "items_per_thread",
                "feasible", "note", "speedup", "error_percent", "approx_ratio",
                "kernel_seconds", "end_to_end_seconds", "iterations", "baseline_iterations",
                "threshold", "history_size", "prediction_size", "table_size",
                "tables_per_warp", "perfo_kind", "perfo_stride", "perfo_fraction"});
  for (const auto& r : records_) {
    csv.add_row({r.benchmark, r.device, pragma::technique_name(r.technique), r.spec_text,
                 pragma::hierarchy_name(r.level), static_cast<long long>(r.items_per_thread),
                 static_cast<long long>(r.feasible ? 1 : 0), r.note, r.speedup,
                 r.error_percent, r.approx_ratio, r.kernel_seconds, r.end_to_end_seconds,
                 r.iterations, r.baseline_iterations, r.threshold,
                 static_cast<long long>(r.history_size),
                 static_cast<long long>(r.prediction_size),
                 static_cast<long long>(r.table_size),
                 static_cast<long long>(r.tables_per_warp), r.perfo_kind,
                 static_cast<long long>(r.perfo_stride), r.perfo_fraction});
  }
  return csv;
}

void ResultDb::save(const std::string& path) const { to_csv().save(path); }

}  // namespace hpac::harness
