#include "harness/record.hpp"

#include "common/error.hpp"

namespace hpac::harness {

void RunRecord::set_spec(const pragma::ApproxSpec& spec) {
  technique = spec.technique;
  spec_text = spec.to_string();
  level = spec.level;
  if (spec.taf) {
    history_size = spec.taf->history_size;
    prediction_size = spec.taf->prediction_size;
    threshold = spec.taf->rsd_threshold;
  }
  if (spec.iact) {
    table_size = spec.iact->table_size;
    tables_per_warp = spec.iact->tables_per_warp;
    threshold = spec.iact->threshold;
  }
  if (spec.perfo) {
    perfo_kind = pragma::perfo_kind_name(spec.perfo->kind);
    perfo_stride = spec.perfo->stride;
    perfo_fraction = spec.perfo->fraction;
  }
}

const std::vector<std::string>& RunRecord::csv_columns() {
  static const std::vector<std::string> columns{
      "benchmark", "device", "technique", "spec", "level", "items_per_thread",
      "feasible", "note", "speedup", "error_percent", "approx_ratio",
      "kernel_seconds", "end_to_end_seconds", "iterations", "baseline_iterations",
      "threshold", "history_size", "prediction_size", "table_size",
      "tables_per_warp", "perfo_kind", "perfo_stride", "perfo_fraction"};
  return columns;
}

std::vector<CsvCell> RunRecord::to_row() const {
  return {benchmark, device, pragma::technique_name(technique), spec_text,
          pragma::hierarchy_name(level), static_cast<long long>(items_per_thread),
          static_cast<long long>(feasible ? 1 : 0), note, speedup,
          error_percent, approx_ratio, kernel_seconds, end_to_end_seconds,
          iterations, baseline_iterations, threshold,
          static_cast<long long>(history_size),
          static_cast<long long>(prediction_size),
          static_cast<long long>(table_size),
          static_cast<long long>(tables_per_warp), perfo_kind,
          static_cast<long long>(perfo_stride), perfo_fraction};
}

RunRecord RunRecord::from_row(const CsvTable& csv, std::size_t row) {
  RunRecord r;
  r.benchmark = csv.text_at(row, "benchmark");
  r.device = csv.text_at(row, "device");
  r.technique = pragma::technique_from_name(csv.text_at(row, "technique"));
  r.spec_text = csv.text_at(row, "spec");
  r.level = pragma::hierarchy_from_name(csv.text_at(row, "level"));
  r.items_per_thread = static_cast<std::uint64_t>(csv.number_at(row, "items_per_thread"));
  r.feasible = csv.number_at(row, "feasible") != 0;
  r.note = csv.text_at(row, "note");
  r.speedup = csv.number_at(row, "speedup");
  r.error_percent = csv.number_at(row, "error_percent");
  r.approx_ratio = csv.number_at(row, "approx_ratio");
  r.kernel_seconds = csv.number_at(row, "kernel_seconds");
  r.end_to_end_seconds = csv.number_at(row, "end_to_end_seconds");
  r.iterations = csv.number_at(row, "iterations");
  r.baseline_iterations = csv.number_at(row, "baseline_iterations");
  r.threshold = csv.number_at(row, "threshold");
  r.history_size = static_cast<int>(csv.number_at(row, "history_size"));
  r.prediction_size = static_cast<int>(csv.number_at(row, "prediction_size"));
  r.table_size = static_cast<int>(csv.number_at(row, "table_size"));
  r.tables_per_warp = static_cast<int>(csv.number_at(row, "tables_per_warp"));
  r.perfo_kind = csv.text_at(row, "perfo_kind");
  r.perfo_stride = static_cast<int>(csv.number_at(row, "perfo_stride"));
  r.perfo_fraction = csv.number_at(row, "perfo_fraction");
  return r;
}

void ResultDb::add(RunRecord record) { records_.push_back(std::move(record)); }

CsvTable ResultDb::to_csv() const {
  CsvTable csv(RunRecord::csv_columns());
  for (const auto& r : records_) csv.add_row(r.to_row());
  return csv;
}

void ResultDb::save(const std::string& path) const { to_csv().save(path); }

ResultDb ResultDb::load(const std::string& path, bool drop_torn_tail) {
  const CsvTable csv = CsvTable::load_file(path, drop_torn_tail);
  HPAC_REQUIRE(csv.columns() == RunRecord::csv_columns(),
               "CSV columns do not match the result database schema: " + path);
  ResultDb db;
  for (std::size_t row = 0; row < csv.row_count(); ++row) {
    try {
      db.add(RunRecord::from_row(csv, row));
    } catch (const Error&) {
      // A torn final row can keep the right cell count yet hold a
      // truncated numeric cell (e.g. "0." loads as text); drop it too.
      if (drop_torn_tail && row + 1 == csv.row_count()) break;
      throw;
    }
  }
  return db;
}

}  // namespace hpac::harness
