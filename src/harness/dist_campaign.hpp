#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/campaign.hpp"
#include "harness/lease_journal.hpp"

namespace hpac::harness {

/// Multi-process campaign execution over one shared directory (ROADMAP
/// item 2): N independent worker processes — possibly on different nodes
/// sharing a filesystem — split one CampaignPlan's tuple space through a
/// LeaseJournal and write results through per-worker ResultStore journals;
/// `finalize` merges everything into the canonical CSV an uninterrupted
/// single-process Campaign produces, byte for byte.
///
/// Directory layout (`options.dir`):
///   leases.journal          shared claim journal (+ .lock sidecars)
///   results.<worker>.csv    per-worker ResultStore journal (single writer)
///   baseline.<shard>.txt    published BaselineSummary per (benchmark,
///                           device) shard — computed once per fleet
///   results.csv             canonical merged CSV, written by finalize()
///
/// Crash-recovery contract:
///  * A tuple's result row is flushed to the owner's journal BEFORE its
///    release record, so a released tuple always has a durable result.
///  * A worker killed at ANY point loses only leases, never results: its
///    unreleased claims expire after the TTL and are reclaimed (and
///    re-evaluated) by surviving workers; the at-most-one extra result a
///    crashed-after-append worker left behind is deduplicated by the
///    kept-first merge. All evaluations are deterministic, so duplicate
///    evaluations are byte-identical and the merged CSV equals the serial
///    reference regardless of kills, restarts, and reclaim interleavings.
///  * A restarted worker (same id, fresh nonce) resumes its own journal:
///    tuples it already persisted are released without re-evaluation.
class DistributedCampaign {
 public:
  struct Options {
    std::string dir;     ///< shared output directory (created if missing)
    std::string worker;  ///< unique-per-live-process id, [A-Za-z0-9_.-]+
    LeaseJournal::AppendMode mode = LeaseJournal::AppendMode::kAtomicAppend;
    std::uint32_t ttl_ms = 3000;        ///< lease expiry
    std::uint32_t heartbeat_ms = 0;     ///< 0 = ttl_ms / 3
    std::size_t claim_chunk = 4;        ///< max tuples claimed per journal record
  };

  /// What one run_worker() invocation did, for logs and test assertions.
  struct WorkerStats {
    std::size_t evaluated = 0;  ///< tuples this worker ran
    std::size_t restored = 0;   ///< tuples released from this worker's own journal
    std::size_t reclaimed = 0;  ///< expired leases this worker took over
    std::size_t lost = 0;       ///< held leases lost to a reclaimer (skipped/stale)
    std::size_t baselines_computed = 0;
    std::size_t baselines_loaded = 0;
  };

  struct FinalizeStats {
    std::size_t planned = 0;
    std::size_t merged = 0;       ///< == planned on success
    std::size_t duplicates = 0;   ///< extra rows dropped by the kept-first merge
    std::size_t conflicting = 0;  ///< duplicates that were NOT byte-identical
    std::size_t stale = 0;        ///< journal rows not part of this plan
    std::size_t journals = 0;     ///< worker journals merged
  };

  /// `campaign` supplies the tuple enumeration and must outlive this
  /// object. Every cooperating process must construct its Campaign from
  /// the identical plan — the lease journal's fingerprint (FNV-1a over
  /// the canonical tuple keys) rejects joiners for which that is not true.
  DistributedCampaign(const Campaign& campaign, Options options);

  /// Run this process's worker loop to fleet completion: claim unclaimed
  /// tuple runs, evaluate, persist, release; when nothing is unclaimed,
  /// reclaim expired leases; return once every campaign tuple is released.
  /// Heartbeats run on an internal thread for the duration of the call.
  WorkerStats run_worker();

  /// Merge every results.<worker>.csv (kept-first, canonical plan order)
  /// and atomically publish results.csv. Throws hpac::Error when any plan
  /// tuple has no result (the fleet has not finished). Safe to call from
  /// any process once run_worker() returned everywhere.
  FinalizeStats finalize() const;

  static std::uint64_t plan_fingerprint(const Campaign& campaign);

  std::string lease_path() const;
  /// The journal location inside any fleet directory — for tooling (e.g.
  /// a status view) that inspects a fleet without joining it.
  static std::string lease_path_in(const std::string& dir);
  std::string results_path() const;
  std::string worker_journal_path() const;             ///< this worker's
  std::string baseline_path(std::size_t shard) const;  ///< shard's cache file

  const Options& options() const { return options_; }

 private:
  struct Runner;  // per-run_worker state (journal, store, shard contexts)

  const Campaign& campaign_;
  Options options_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace hpac::harness
