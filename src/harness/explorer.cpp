#include "harness/explorer.hpp"

#include "common/error.hpp"

namespace hpac::harness {

Explorer::Explorer(Benchmark& benchmark, sim::DeviceConfig device)
    : benchmark_(benchmark), device_(std::move(device)) {}

double Explorer::scoped_seconds(const RunOutput& output) const {
  return benchmark_.timing_scope() == TimingScope::kKernelOnly
             ? output.timeline.kernel_seconds
             : output.timeline.end_to_end_seconds();
}

const RunOutput& Explorer::baseline() {
  if (!have_baseline_) {
    pragma::ApproxSpec none;
    baseline_output_ =
        benchmark_.run(none, benchmark_.default_items_per_thread(), device_);
    baseline_seconds_ = scoped_seconds(baseline_output_);
    have_baseline_ = true;
  }
  return baseline_output_;
}

RunRecord Explorer::run_config(const pragma::ApproxSpec& spec,
                               std::uint64_t items_per_thread) {
  baseline();
  RunRecord record;
  record.benchmark = benchmark_.name();
  record.device = device_.name;
  record.items_per_thread = items_per_thread;
  record.set_spec(spec);
  try {
    const RunOutput output = benchmark_.run(spec, items_per_thread, device_);
    const double seconds = scoped_seconds(output);
    record.speedup = seconds > 0 ? baseline_seconds_ / seconds : 0.0;
    record.error_percent = benchmark_.error_percent(baseline_output_, output);
    record.approx_ratio = output.stats.approx_ratio();
    record.kernel_seconds = output.timeline.kernel_seconds;
    record.end_to_end_seconds = output.timeline.end_to_end_seconds();
    record.iterations = output.iterations;
    record.baseline_iterations = baseline_output_.iterations;
  } catch (const ConfigError& e) {
    record.feasible = false;
    record.note = e.what();
  }
  db_.add(record);
  return record;
}

std::size_t Explorer::sweep(const std::vector<pragma::ApproxSpec>& specs,
                            const std::vector<std::uint64_t>& items_per_thread) {
  std::size_t feasible = 0;
  for (const auto& spec : specs) {
    for (std::uint64_t ipt : items_per_thread) {
      const RunRecord record = run_config(spec, ipt);
      if (record.feasible) ++feasible;
    }
  }
  return feasible;
}

}  // namespace hpac::harness
