#include "harness/explorer.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "approx/audit.hpp"
#include "common/error.hpp"
#include "common/scheduler.hpp"
#include "common/strings.hpp"

namespace hpac::harness {

Explorer::Explorer(Benchmark& benchmark, sim::DeviceConfig device)
    : benchmark_(benchmark), device_(std::move(device)) {}

double Explorer::scoped_seconds(const Benchmark& bench, const RunOutput& output) {
  return bench.timing_scope() == TimingScope::kKernelOnly
             ? output.timeline.kernel_seconds
             : output.timeline.end_to_end_seconds();
}

const RunOutput& Explorer::baseline() {
  if (!have_baseline_) {
    pragma::ApproxSpec none;
    baseline_output_ =
        benchmark_.run(none, benchmark_.default_items_per_thread(), device_);
    baseline_seconds_ = scoped_seconds(benchmark_, baseline_output_);
    have_baseline_ = true;
  }
  return baseline_output_;
}

BaselineSummary Explorer::baseline_summary() {
  baseline();
  BaselineSummary summary;
  summary.qoi = baseline_output_.qoi;
  summary.qoi_labels = baseline_output_.qoi_labels;
  summary.iterations = baseline_output_.iterations;
  summary.seconds = baseline_seconds_;
  return summary;
}

void Explorer::seed_baseline(const BaselineSummary& summary) {
  HPAC_REQUIRE(!have_baseline_,
               "seed_baseline must run before the baseline is computed");
  baseline_output_ = RunOutput{};
  baseline_output_.qoi = summary.qoi;
  baseline_output_.qoi_labels = summary.qoi_labels;
  baseline_output_.iterations = summary.iterations;
  baseline_seconds_ = summary.seconds;
  have_baseline_ = true;
}

RunRecord Explorer::evaluate(Benchmark& bench, const pragma::ApproxSpec& spec,
                             std::uint64_t items_per_thread) const {
  RunRecord record;
  record.benchmark = bench.name();
  record.device = device_.name;
  record.items_per_thread = items_per_thread;
  record.set_spec(spec);
  try {
    const RunOutput output = bench.run(spec, items_per_thread, device_);
    const double seconds = scoped_seconds(bench, output);
    record.error_percent = bench.error_percent(baseline_output_, output);
    record.approx_ratio = output.stats.approx_ratio();
    record.kernel_seconds = output.timeline.kernel_seconds;
    record.end_to_end_seconds = output.timeline.end_to_end_seconds();
    record.iterations = output.iterations;
    record.baseline_iterations = baseline_output_.iterations;
    if (!output.stats.conflicts.empty()) {
      // Report-mode audit findings (enforce mode throws ConfigError inside
      // run and lands in the infeasible branch below). The record stays
      // feasible — report mode observes, it does not veto.
      record.note = strings::format("audit: %zu %s finding(s); first: %s",
                                    output.stats.conflicts.size(),
                                    approx::audit::kConflictToken,
                                    output.stats.conflicts.front().to_string().c_str());
    }
    if (seconds > 0 && baseline_seconds_ > 0) {
      record.speedup = baseline_seconds_ / seconds;
    } else {
      // A non-positive scoped time — on either side of the ratio — is a
      // degenerate measurement, not a legitimate infinite/zero speedup;
      // flag it rather than recording speedup = 0 as if the
      // configuration had run. An audit note set above must survive the
      // flagging (Campaign's audit_flagged counter greps the note).
      record.feasible = false;
      record.note = record.note.empty()
                        ? "degenerate run: non-positive measured time"
                        : "degenerate run: non-positive measured time; " + record.note;
    }
  } catch (const ConfigError& e) {
    record.feasible = false;
    record.note = e.what();
  }
  return record;
}

RunRecord Explorer::run_config(const pragma::ApproxSpec& spec,
                               std::uint64_t items_per_thread) {
  baseline();
  RunRecord record = evaluate(benchmark_, spec, items_per_thread);
  db_.add(record);
  return record;
}

std::vector<RunRecord> Explorer::measure_configs(
    const std::vector<ConfigRequest>& configs, std::size_t num_threads) {
  const std::size_t total = configs.size();
  std::vector<RunRecord> records(total);
  if (total == 0) return records;

  // The lazy baseline init is not thread-safe; compute it eagerly so the
  // workers below only ever read baseline state.
  baseline();

  // Clamp to what can actually participate — more forks than the
  // scheduler has threads would be constructed and never used.
  const std::size_t workers = std::min(Scheduler::recommended_threads(num_threads, total),
                                       Scheduler::shared().parallelism());
  // Per-slot forks are created lazily: slot 0 (the calling thread always
  // participates) doubles as the forkability probe, and every other slot
  // forks on first use — a batch whose indices are all claimed before any
  // worker steals pays for exactly one clone. Slots are exclusive to one
  // thread for the whole job, so the lazy init needs no synchronization;
  // concurrent forks on different slots are const reads of the source
  // benchmark.
  std::vector<std::unique_ptr<Benchmark>> forks;
  if (workers > 1) {
    if (auto probe = benchmark_.fork()) {
      forks.resize(workers);
      forks[0] = std::move(probe);
    }
    // else: non-forkable benchmark, fall back to serial
  }

  auto eval_at = [&](Benchmark& bench, std::size_t index) {
    records[index] =
        evaluate(bench, configs[index].spec, configs[index].items_per_thread);
  };

  if (forks.empty()) {
    for (std::size_t index = 0; index < total; ++index) eval_at(benchmark_, index);
  } else {
    // One fork per participant slot; the calling thread claims indices
    // alongside the stealing workers, so `workers` is an upper bound on
    // concurrency, not a thread spawn count. Records land at their index,
    // which keeps the result order — and any CSV built from it — identical
    // to a serial evaluation.
    Scheduler::shared().parallel_for(
        total,
        [&](std::size_t slot, std::size_t index) {
          if (!forks[slot]) {
            forks[slot] = benchmark_.fork();
            HPAC_REQUIRE(forks[slot] != nullptr,
                         "Benchmark::fork returned null after a successful probe fork");
          }
          eval_at(*forks[slot], index);
        },
        /*max_participants=*/forks.size());
  }
  return records;
}

std::size_t Explorer::sweep(const std::vector<pragma::ApproxSpec>& specs,
                            const std::vector<std::uint64_t>& items_per_thread,
                            std::size_t num_threads) {
  std::vector<ConfigRequest> configs;
  configs.reserve(specs.size() * items_per_thread.size());
  for (const auto& spec : specs) {
    for (const std::uint64_t ipt : items_per_thread) {
      configs.push_back(ConfigRequest{spec, ipt});
    }
  }
  std::vector<RunRecord> records = measure_configs(configs, num_threads);

  std::size_t feasible = 0;
  for (auto& record : records) {
    if (record.feasible) ++feasible;
    db_.add(std::move(record));
  }
  return feasible;
}

}  // namespace hpac::harness
