#pragma once

#include <cstdint>
#include <vector>

#include "harness/benchmark.hpp"
#include "harness/record.hpp"
#include "pragma/spec.hpp"
#include "sim/device.hpp"

namespace hpac::harness {

/// One configuration to measure: the (spec, items-per-thread) half of a
/// campaign tuple — benchmark and device are the Explorer's identity.
struct ConfigRequest {
  pragma::ApproxSpec spec;
  std::uint64_t items_per_thread = 0;
};

/// The portion of a baseline run the evaluation path actually consumes:
/// qoi/qoi_labels (for error_percent), the solver iteration count, and
/// the scoped seconds the speedup ratio divides by. Everything else in the
/// baseline's RunOutput is incidental, so this summary is sufficient to
/// reproduce evaluation results bit-for-bit — which lets a distributed
/// campaign compute each (benchmark, device) baseline once, persist it,
/// and seed every other worker process from the file.
struct BaselineSummary {
  std::vector<double> qoi;
  std::vector<int> qoi_labels;
  double iterations = 0;
  double seconds = 0;
};

/// Drives one benchmark through approximation configurations on one
/// simulated device: the hpac-offload *execution harness* (paper §2.3).
/// It runs the accurate program once as the baseline, then evaluates each
/// candidate configuration, computing speedup and quality loss, and
/// collects everything in a ResultDb the caller can persist or aggregate.
class Explorer {
 public:
  Explorer(Benchmark& benchmark, sim::DeviceConfig device);

  /// Run (or reuse) the accurate baseline at the benchmark's default
  /// launch geometry.
  const RunOutput& baseline();

  /// Run (or reuse) the baseline and return the evaluation-relevant slice.
  BaselineSummary baseline_summary();

  /// Adopt a previously computed baseline instead of running one — the
  /// distributed campaign's shared-baseline path. Evaluations after
  /// seeding produce records identical to ones computed after a local
  /// baseline() on the same benchmark/device (all runs deterministic).
  /// Must be called before the baseline is computed or used.
  void seed_baseline(const BaselineSummary& summary);

  /// Evaluate a single configuration and append it to the database;
  /// infeasible configurations (AC state exceeding shared memory,
  /// tables-per-warp mismatch, iACT without uniform inputs) yield a
  /// record with feasible = false instead of propagating the error,
  /// matching a harness that logs and moves on.
  RunRecord run_config(const pragma::ApproxSpec& spec, std::uint64_t items_per_thread);

  /// Evaluate the cross product specs x items-per-thread, appending to the
  /// database in deterministic (spec-index, items-per-thread-index) order.
  /// When the benchmark is forkable (Benchmark::fork) and more than one
  /// worker is available, configurations are evaluated concurrently on the
  /// shared scheduler — each participant slot drives its own fork (created
  /// lazily on the slot's first index, so slots that never steal cost no
  /// clone), the baseline is computed eagerly before the fan-out, and the
  /// resulting ResultDb (and its CSV) is byte-identical to a serial sweep.
  /// `num_threads == 0` means "use the hardware concurrency"; pass 1 to
  /// force the serial path. Returns the number of feasible configurations.
  std::size_t sweep(const std::vector<pragma::ApproxSpec>& specs,
                    const std::vector<std::uint64_t>& items_per_thread,
                    std::size_t num_threads = 0);

  /// Evaluate an arbitrary batch of configurations and return the records
  /// in request order *without* touching the Explorer's database — the
  /// building block `sweep` (cross product) and `TuningService` (exactly
  /// the tuples missing from a store) share. Computes the baseline eagerly,
  /// then fans out over per-slot benchmark forks like `sweep`; results are
  /// deterministic and independent of worker count.
  std::vector<RunRecord> measure_configs(const std::vector<ConfigRequest>& configs,
                                         std::size_t num_threads = 0);

  ResultDb& db() { return db_; }
  const ResultDb& db() const { return db_; }
  const sim::DeviceConfig& device() const { return device_; }

 private:
  /// Seconds of `output` under `bench`'s timing scope.
  static double scoped_seconds(const Benchmark& bench, const RunOutput& output);

  /// Build the record for one configuration, driving `bench` (the main
  /// benchmark or a per-worker fork). Requires the baseline to have been
  /// computed; does not touch the database, so concurrent calls on
  /// distinct forks are safe.
  RunRecord evaluate(Benchmark& bench, const pragma::ApproxSpec& spec,
                     std::uint64_t items_per_thread) const;

  Benchmark& benchmark_;
  sim::DeviceConfig device_;
  ResultDb db_;
  bool have_baseline_ = false;
  RunOutput baseline_output_;
  double baseline_seconds_ = 0;
};

}  // namespace hpac::harness
