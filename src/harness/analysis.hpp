#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "harness/record.hpp"

namespace hpac::harness {

/// Best (highest-speedup) feasible record with error below `max_error`,
/// the selection rule of Figure 6 ("highest speedup where error is less
/// than 10%"). Empty when no configuration qualifies.
std::optional<RunRecord> best_under_error(const std::vector<RunRecord>& records,
                                          double max_error_percent);

/// Error-distribution summary used by Figure 6's top panels: the error
/// values of all feasible records below `max_error_percent`.
std::vector<double> errors_under(const std::vector<RunRecord>& records,
                                 double max_error_percent);

/// The overplotting-reduction rule of §4: divide the error range into
/// `intervals` equal bins and keep, per bin, the fastest and slowest
/// `keep_fraction` of configurations.
std::vector<RunRecord> decimate_for_plot(const std::vector<RunRecord>& records, int intervals,
                                         double keep_fraction);

/// Speedups grouped by a key extractor, for paired comparisons such as
/// Figure 11c (thread vs warp hierarchy per RSD threshold).
struct GroupStats {
  std::string key;
  stats::BoxStats box;
  std::size_t count = 0;
};
std::vector<GroupStats> group_box_stats(
    const std::vector<RunRecord>& records,
    const std::function<std::string(const RunRecord&)>& key_of);

/// Convergence-speedup analysis of Figure 12c: regress time speedup
/// against convergence speedup (baseline iterations / approx iterations)
/// and report R^2.
struct ConvergenceCorrelation {
  stats::Regression regression;
  std::vector<double> convergence_speedup;
  std::vector<double> time_speedup;
};
ConvergenceCorrelation convergence_correlation(const std::vector<RunRecord>& records);

/// Geometric-mean speedup of the per-(benchmark, technique) best records —
/// the paper's "geomean speedup 1.42x" headline aggregation.
double geomean_best_speedup(const std::vector<RunRecord>& records, double max_error_percent);

/// One device's row of the portability comparison (the paper evaluates the
/// same directives on NVIDIA and AMD and contrasts the achievable gains).
struct DeviceBest {
  std::string device;
  double geomean_best = 0;      ///< geomean_best_speedup over this device's records
  std::size_t feasible = 0;     ///< feasible records on this device
  std::size_t total = 0;        ///< all records on this device
};

/// Per-device geomean-best table over a multi-device (campaign) database,
/// sorted by device name. Devices where no record qualifies report a
/// geomean_best of 0.
std::vector<DeviceBest> per_device_geomean_best(const std::vector<RunRecord>& records,
                                                double max_error_percent);

}  // namespace hpac::harness
