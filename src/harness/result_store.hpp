#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "common/annotated_mutex.hpp"
#include "common/persistent.hpp"
#include "harness/record.hpp"

namespace hpac::harness {

/// Versioned, snapshot-readable result store over the Campaign journal —
/// the persistence layer that turns one-shot batch sweeps into a serving
/// substrate (ROADMAP item 1). One writer appends records through the
/// existing flushed-CSV journal path (so files stay byte-compatible with
/// pre-store campaigns and a killed writer loses at most the in-flight
/// record); any number of readers take immutable snapshots.
///
/// Concurrency contract:
///  * `append` serializes writers on the writer mutex, writes + flushes
///    the journal row and builds the next index, then publishes the new
///    version in one pointer swap.
///  * `snapshot` copies the published pointer under a dedicated head
///    mutex held for nothing but that copy (a refcount bump — no journal
///    IO, no index work ever happens under it). It never takes the
///    writer lock, so a blocked or slow writer cannot stall readers and
///    concurrent readers add no contention to the writer's slow path.
///  * A snapshot is an immutable value: every record and index node it
///    references is structurally shared with later versions
///    (`common::PersistentVector` / `common::PersistentMap`) and stays
///    valid for the snapshot's lifetime regardless of subsequent appends.
class ResultStore {
 public:
  /// An immutable view of the store at one version. Copies are cheap
  /// (shared structure); all methods are const and thread-safe.
  class Snapshot {
   public:
    Snapshot() : state_(empty_state()) {}

    /// Number of appends absorbed (restored rows included). Strictly
    /// monotonic across the store's lifetime; two snapshots with equal
    /// versions are the same value.
    std::uint64_t version() const { return state_->version; }
    std::size_t size() const { return state_->records.size(); }
    bool empty() const { return size() == 0; }

    /// Record for a (benchmark, device, spec, items-per-thread) tuple, or
    /// nullptr. The pointee is owned by the store's persistent structure
    /// and outlives the snapshot only while some snapshot references it —
    /// copy it out to keep it past this snapshot's lifetime.
    const RunRecord* find(const std::string& benchmark, const std::string& device,
                          const std::string& spec_text,
                          std::uint64_t items_per_thread) const;
    const RunRecord* find_key(const std::string& tuple_key) const;
    bool contains_key(const std::string& tuple_key) const {
      return find_key(tuple_key) != nullptr;
    }

    /// Record by append order (0 = oldest).
    const RunRecord& at(std::size_t index) const { return state_->records[index]; }

    /// Visit every record in append order.
    template <typename Fn>
    void for_each(Fn&& fn) const {
      state_->records.for_each(fn);
    }

    /// Materialize as a ResultDb (append order) for the analysis helpers.
    ResultDb to_db() const;

   private:
    friend class ResultStore;

    struct State {
      common::PersistentVector<RunRecord> records;
      common::PersistentMap<std::string, std::size_t> index;  ///< tuple key -> record
      std::uint64_t version = 0;
    };

    explicit Snapshot(std::shared_ptr<const State> state) : state_(std::move(state)) {}
    static const std::shared_ptr<const State>& empty_state();

    std::shared_ptr<const State> state_;
  };

  /// Counters of the journal absorption performed by the constructor.
  struct LoadStats {
    std::size_t restored = 0;    ///< rows loaded into the index
    std::size_t duplicates = 0;  ///< journal rows whose tuple was already present
  };

  /// Open (or create) a store journaling to `path`; empty = in-memory
  /// only. An existing journal is absorbed first — torn trailing rows
  /// (writer killed mid-append) are dropped, duplicate tuples keep the
  /// first occurrence — and subsequent appends continue the same file in
  /// append mode. Before appending resumes, a torn trailing row is also
  /// truncated out of the file itself: leaving the half row in place would
  /// make the next append glue onto it and corrupt a mid-file line. A
  /// fresh file gets the canonical CSV header immediately, so journal and
  /// final CSV share one format.
  ///
  /// `read_only` opens an existing journal (or finalized CSV) for serving
  /// only: the file is never opened for writing, never truncated, and
  /// every append throws. This is what lets a daemon serve a store that
  /// another process owns — or a finalized artifact — without risking a
  /// write to it.
  explicit ResultStore(std::string path = "", bool read_only = false);
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// The current version: one pointer copy under the head mutex, never
  /// the writer lock.
  Snapshot snapshot() const {
    common::MutexLock lock(head_mutex_);
    return Snapshot(state_);
  }

  /// Append one record: journal row written and flushed under the writer
  /// lock, then the new version is published. Throws hpac::Error when the
  /// record's tuple is already present (the resume paths check first).
  /// Returns the published version.
  std::uint64_t append(const RunRecord& record);

  /// Like `append`, but when the tuple is already present it writes
  /// nothing and returns 0 (never a real version: the first append
  /// publishes version >= 1). For producers racing on one store — e.g. a
  /// TuningService evaluation vs. a concurrent campaign.
  std::uint64_t append_if_absent(const RunRecord& record);

  /// `version()` of the latest snapshot, without building one.
  std::uint64_t version() const { return snapshot().version(); }
  std::size_t size() const { return snapshot().size(); }

  const std::string& path() const { return path_; }
  bool persistent() const { return !path_.empty(); }
  bool read_only() const { return read_only_; }
  const LoadStats& load_stats() const { return load_stats_; }

  /// Rewrite the journal file as the canonical CSV `db` serializes to
  /// (write-to-temp + atomic rename — the Campaign's final rewrite). The
  /// in-memory index keeps serving the appended order; only the file
  /// changes. No-op for in-memory stores. The journal stream is closed:
  /// finalize is terminal, appends afterwards throw.
  void finalize(const ResultDb& canonical);

  /// The canonical identity key of a record (Campaign::tuple_key order).
  static std::string key_of(const RunRecord& record);

 private:
  void publish(std::shared_ptr<const Snapshot::State> next) {
    common::MutexLock lock(head_mutex_);
    state_ = std::move(next);
  }

  std::string path_;
  bool read_only_ = false;
  LoadStats load_stats_;
  common::Mutex writer_mutex_;  ///< serializes append/finalize
  /// Journal stream, open while persistent() && !finalized_. Written by
  /// the constructor (single-threaded) and then only under writer_mutex_.
  std::ofstream journal_ GUARDED_BY(writer_mutex_);
  bool finalized_ GUARDED_BY(writer_mutex_) = false;
  /// Guards only the `state_` pointer itself: both sides hold it for a
  /// single shared_ptr copy/swap. (std::atomic<shared_ptr> would express
  /// this directly, but libstdc++'s spinlock implementation unlocks the
  /// reader side with a relaxed RMW, which ThreadSanitizer — gating in CI
  /// — rightly refuses to treat as synchronizing with the writer.)
  mutable common::Mutex head_mutex_;
  /// Published head: written by publish(), copied by snapshot().
  std::shared_ptr<const Snapshot::State> state_ GUARDED_BY(head_mutex_);
};

}  // namespace hpac::harness
