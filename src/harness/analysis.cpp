#include "harness/analysis.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <tuple>

#include "common/error.hpp"

namespace hpac::harness {

std::optional<RunRecord> best_under_error(const std::vector<RunRecord>& records,
                                          double max_error_percent) {
  std::optional<RunRecord> best;
  for (const auto& r : records) {
    if (!r.feasible || r.error_percent >= max_error_percent) continue;
    if (!best || r.speedup > best->speedup) best = r;
  }
  return best;
}

std::vector<double> errors_under(const std::vector<RunRecord>& records,
                                 double max_error_percent) {
  std::vector<double> out;
  for (const auto& r : records) {
    if (r.feasible && r.error_percent < max_error_percent) out.push_back(r.error_percent);
  }
  return out;
}

std::vector<RunRecord> decimate_for_plot(const std::vector<RunRecord>& records, int intervals,
                                         double keep_fraction) {
  HPAC_REQUIRE(intervals > 0, "need at least one interval");
  HPAC_REQUIRE(keep_fraction > 0.0 && keep_fraction <= 1.0, "keep fraction in (0,1]");
  std::vector<RunRecord> feasible;
  for (const auto& r : records) {
    if (r.feasible) feasible.push_back(r);
  }
  if (feasible.empty()) return {};
  double lo = feasible.front().error_percent;
  double hi = lo;
  for (const auto& r : feasible) {
    lo = std::min(lo, r.error_percent);
    hi = std::max(hi, r.error_percent);
  }
  if (hi == lo) return feasible;

  std::vector<std::vector<RunRecord>> bins(static_cast<std::size_t>(intervals));
  for (const auto& r : feasible) {
    auto bin = static_cast<std::size_t>((r.error_percent - lo) / (hi - lo) * intervals);
    bin = std::min(bin, static_cast<std::size_t>(intervals - 1));
    bins[bin].push_back(r);
  }
  std::vector<RunRecord> kept;
  for (auto& bin : bins) {
    if (bin.empty()) continue;
    std::sort(bin.begin(), bin.end(),
              [](const RunRecord& a, const RunRecord& b) { return a.speedup < b.speedup; });
    const auto keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(bin.size()) * keep_fraction));
    for (std::size_t i = 0; i < keep && i < bin.size(); ++i) kept.push_back(bin[i]);
    for (std::size_t i = 0; i < keep && bin.size() > keep + i; ++i) {
      kept.push_back(bin[bin.size() - 1 - i]);
    }
  }
  return kept;
}

std::vector<GroupStats> group_box_stats(
    const std::vector<RunRecord>& records,
    const std::function<std::string(const RunRecord&)>& key_of) {
  std::map<std::string, std::vector<double>> groups;
  for (const auto& r : records) {
    if (r.feasible) groups[key_of(r)].push_back(r.speedup);
  }
  std::vector<GroupStats> out;
  for (auto& [key, speedups] : groups) {
    GroupStats g;
    g.key = key;
    g.box = stats::box_stats(speedups);
    g.count = speedups.size();
    out.push_back(std::move(g));
  }
  return out;
}

ConvergenceCorrelation convergence_correlation(const std::vector<RunRecord>& records) {
  ConvergenceCorrelation c;
  for (const auto& r : records) {
    if (!r.feasible || r.iterations <= 0 || r.baseline_iterations <= 0) continue;
    c.convergence_speedup.push_back(r.baseline_iterations / r.iterations);
    c.time_speedup.push_back(r.speedup);
  }
  if (c.convergence_speedup.size() >= 2) {
    c.regression = stats::linear_regression(c.convergence_speedup, c.time_speedup);
  }
  return c;
}

double geomean_best_speedup(const std::vector<RunRecord>& records, double max_error_percent) {
  std::map<std::pair<std::string, std::string>, double> best;
  for (const auto& r : records) {
    if (!r.feasible || r.error_percent >= max_error_percent) continue;
    auto key = std::make_pair(r.benchmark, pragma::technique_name(r.technique));
    auto it = best.find(key);
    if (it == best.end() || r.speedup > it->second) best[key] = r.speedup;
  }
  std::vector<double> values;
  values.reserve(best.size());
  for (const auto& [key, speedup] : best) values.push_back(speedup);
  if (values.empty()) return 0.0;
  return stats::geomean(values);
}

std::vector<DeviceBest> per_device_geomean_best(const std::vector<RunRecord>& records,
                                                double max_error_percent) {
  // Single pass over the database — no per-device record copies; campaign
  // databases reach paper scale (tens of thousands of rows).
  std::map<std::string, DeviceBest> summary;
  std::map<std::tuple<std::string, std::string, std::string>, double> best;
  for (const auto& r : records) {
    auto [it, inserted] = summary.try_emplace(r.device);
    if (inserted) it->second.device = r.device;
    ++it->second.total;
    if (!r.feasible) continue;
    ++it->second.feasible;
    if (r.error_percent >= max_error_percent) continue;
    auto key = std::make_tuple(r.device, r.benchmark, pragma::technique_name(r.technique));
    auto best_it = best.find(key);
    if (best_it == best.end() || r.speedup > best_it->second) best[std::move(key)] = r.speedup;
  }
  std::map<std::string, std::vector<double>> speedups;
  for (const auto& [key, speedup] : best) speedups[std::get<0>(key)].push_back(speedup);
  std::vector<DeviceBest> out;
  for (auto& [device, row] : summary) {
    const auto it = speedups.find(device);
    if (it != speedups.end()) row.geomean_best = stats::geomean(it->second);
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace hpac::harness
