#pragma once

#include <cstdint>
#include <vector>

#include "pragma/spec.hpp"

namespace hpac::harness {

/// Sweep density. The paper's full Cartesian product is 57,288 configs and
/// took up to 988 GPU-hours per benchmark; `kQuick` strides each axis so a
/// sweep covers every parameter dimension in minutes on one CPU core,
/// `kFull` is the paper's complete grid.
enum class SweepDensity { kQuick, kFull };

/// The parameter values of Table 2, verbatim.
namespace table2 {

std::vector<int> taf_history_sizes();         // 1,2,3,4,5
std::vector<int> taf_prediction_sizes();      // 2,4,8,...,512
std::vector<double> memo_out_thresholds();    // 0.3,0.6,...,1.5, 3, 5, 20
std::vector<int> iact_tables_per_warp();      // 1,2,16,32,64 (64: AMD only)
std::vector<int> iact_table_sizes();          // 1,2,4,8
std::vector<double> memo_in_thresholds();     // 0.1,0.3,...,0.9, 3, 5, 20
std::vector<int> perfo_skips();               // 2,4,8,16,32,64 (small/large)
std::vector<int> perfo_skip_percents();       // 10,20,...,90 (ini/fini)
std::vector<pragma::HierarchyLevel> hierarchies();  // thread, warp
std::vector<std::uint64_t> items_per_thread();      // 8,16,32,...,512

}  // namespace table2

/// Generate the TAF spec grid (memo(out:h:p:t) x hierarchy).
std::vector<pragma::ApproxSpec> taf_specs(SweepDensity density);

/// Generate the iACT spec grid (memo(in:size:thresh:tpw) x hierarchy).
/// `warp_size` filters tables-per-warp values that exceed the warp
/// (Table 2: only the AMD platform uses 64 tables per warp).
std::vector<pragma::ApproxSpec> iact_specs(SweepDensity density, int warp_size);

/// Generate the perforation spec grid (small/large strides, ini/fini
/// percents; herded on the GPU).
std::vector<pragma::ApproxSpec> perfo_specs(SweepDensity density);

/// The items-per-thread axis for a density.
std::vector<std::uint64_t> items_per_thread_axis(SweepDensity density);

/// Curated configuration sets: a dozen-odd hand-picked points per
/// technique that span Table 2's interesting region (used by the
/// fixed-budget Figure 6 bench; pass `--full` there for the whole grid).
std::vector<pragma::ApproxSpec> curated_taf_specs(
    const std::vector<pragma::HierarchyLevel>& levels);
std::vector<pragma::ApproxSpec> curated_iact_specs(
    int warp_size, const std::vector<pragma::HierarchyLevel>& levels);
std::vector<pragma::ApproxSpec> curated_perfo_specs();

/// Total configuration count of a full sweep for one benchmark on one
/// platform, for the Table-2 reproduction printout.
std::uint64_t full_config_count(int warp_size);

}  // namespace hpac::harness
