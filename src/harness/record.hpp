#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "pragma/spec.hpp"

namespace hpac::harness {

/// One row of the execution harness's result database: a single
/// (benchmark, platform, approximation configuration) measurement.
struct RunRecord {
  std::string benchmark;
  std::string device;
  pragma::Technique technique = pragma::Technique::kNone;
  std::string spec_text;  ///< canonical clause text (ApproxSpec::to_string)
  pragma::HierarchyLevel level = pragma::HierarchyLevel::kThread;
  std::uint64_t items_per_thread = 1;

  bool feasible = true;     ///< false when the config cannot run (e.g. AC state too big)
  std::string note;         ///< infeasibility reason or free-form remark

  double speedup = 0;         ///< baseline time / approximated time
  double error_percent = 0;   ///< MAPE or MCR vs the accurate program
  double approx_ratio = 0;    ///< fraction of items approximated/skipped
  double kernel_seconds = 0;
  double end_to_end_seconds = 0;
  double iterations = 0;        ///< solver iterations (K-Means convergence)
  double baseline_iterations = 0;

  // Technique parameters, denormalized for easy filtering/plotting.
  double threshold = 0;
  int history_size = 0;
  int prediction_size = 0;
  int table_size = 0;
  int tables_per_warp = 0;
  std::string perfo_kind;
  int perfo_stride = 0;
  double perfo_fraction = 0;

  /// Populate the denormalized parameter fields from a spec.
  void set_spec(const pragma::ApproxSpec& spec);

  /// The result database's canonical column set, in `to_row` order.
  static const std::vector<std::string>& csv_columns();

  /// One CSV row (matching `csv_columns`), and its inverse. A record
  /// round-trips: `from_row` of a loaded `to_row` reproduces every field,
  /// and re-serializing yields byte-identical CSV — the property campaign
  /// resume depends on.
  std::vector<CsvCell> to_row() const;
  static RunRecord from_row(const CsvTable& csv, std::size_t row);
};

/// Append-only database of run records, persistable as CSV — the library
/// analogue of the HPAC harness's results database (paper §2.3).
class ResultDb {
 public:
  void add(RunRecord record);
  const std::vector<RunRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  /// Records matching a predicate.
  template <typename Pred>
  std::vector<RunRecord> where(Pred&& pred) const {
    std::vector<RunRecord> out;
    for (const auto& r : records_) {
      if (pred(r)) out.push_back(r);
    }
    return out;
  }

  /// Export to CSV (one column per RunRecord field).
  CsvTable to_csv() const;
  void save(const std::string& path) const;

  /// Rehydrate a database previously written by `save`. Throws
  /// hpac::Error when the file's columns do not match `csv_columns`.
  /// `drop_torn_tail` additionally tolerates — by dropping — a malformed
  /// final record, so a journal whose writer was killed mid-append still
  /// loads (the campaign resume path relies on this).
  static ResultDb load(const std::string& path, bool drop_torn_tail = false);

 private:
  std::vector<RunRecord> records_;
};

}  // namespace hpac::harness
