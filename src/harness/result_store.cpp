#include "harness/result_store.hpp"

#include <unistd.h>

#include <cstdio>
#include <optional>
#include <utility>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/fileops.hpp"
#include "harness/campaign.hpp"

namespace hpac::harness {

namespace {

bool file_has_content(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good() && in.peek() != std::char_traits<char>::eof();
}

/// Bytes of `path` up to and including its final newline — the durable
/// prefix of the journal. Anything past it is a torn row from a writer
/// killed mid-append.
std::streamoff durable_prefix(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::streamoff keep = 0;
  std::streamoff pos = 0;
  char buffer[4096];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    const std::streamsize n = in.gcount();
    for (std::streamsize i = 0; i < n; ++i) {
      if (buffer[i] == '\n') keep = pos + i + 1;
    }
    pos += n;
    if (n < static_cast<std::streamsize>(sizeof(buffer))) break;
  }
  return keep;
}

}  // namespace

// --- Snapshot ----------------------------------------------------------------

const std::shared_ptr<const ResultStore::Snapshot::State>&
ResultStore::Snapshot::empty_state() {
  static const std::shared_ptr<const State> empty = std::make_shared<State>();
  return empty;
}

const RunRecord* ResultStore::Snapshot::find_key(const std::string& tuple_key) const {
  const std::size_t* index = state_->index.find(tuple_key);
  return index != nullptr ? &state_->records[*index] : nullptr;
}

const RunRecord* ResultStore::Snapshot::find(const std::string& benchmark,
                                             const std::string& device,
                                             const std::string& spec_text,
                                             std::uint64_t items_per_thread) const {
  return find_key(Campaign::tuple_key(benchmark, device, spec_text, items_per_thread));
}

ResultDb ResultStore::Snapshot::to_db() const {
  ResultDb db;
  state_->records.for_each([&db](const RunRecord& record) { db.add(record); });
  return db;
}

// --- ResultStore -------------------------------------------------------------

std::string ResultStore::key_of(const RunRecord& record) {
  return Campaign::tuple_key(record.benchmark, record.device, record.spec_text,
                             record.items_per_thread);
}

ResultStore::ResultStore(std::string path, bool read_only)
    : path_(std::move(path)), read_only_(read_only) {
  auto state = std::make_shared<Snapshot::State>();
  // Serialize against writers in OTHER processes sharing this journal:
  // append_if_absent holds the same flock around each row. Without it, a
  // peer's complete rows landing between the durable-prefix read and the
  // truncate below would be destroyed as a "torn tail". Read-only opens
  // never truncate, so they take no lock (and must work on read-only
  // filesystems where the lock file cannot be created).
  std::optional<fileops::FileLock> open_lock;
  if (persistent() && !read_only_) open_lock.emplace(path_ + ".lock");
  // The durable prefix decides everything: a file whose final newline is
  // its last durable byte resumes normally; a file with NO newline (a
  // writer killed mid-header-write) has nothing durable at all and must
  // not even be parsed — ResultDb::load would reject its torn header.
  const std::streamoff durable =
      persistent() && file_has_content(path_) ? durable_prefix(path_) : 0;
  bool resuming = durable > 0;
  HPAC_REQUIRE(!read_only_ || resuming,
               "read-only result store needs an existing journal: " + path_);
  if (resuming) {
    // drop_torn_tail: a writer killed mid-append must not brick the store.
    const ResultDb journal = ResultDb::load(path_, /*drop_torn_tail=*/true);
    for (const RunRecord& record : journal.records()) {
      std::string key = key_of(record);
      if (state->index.contains(key)) {
        ++load_stats_.duplicates;  // e.g. two writers raced on one file
        continue;
      }
      state->index = state->index.set(std::move(key), state->records.size());
      state->records = state->records.push_back(record);
      ++state->version;
      ++load_stats_.restored;
    }
  }
  if (persistent() && !read_only_) {
    if (file_has_content(path_)) {
      // The load above *skipped* a torn trailing row (or, when nothing
      // durable survived, the whole file); the file must shed it too, or
      // the append stream below would glue the next row onto the half row
      // — turning a recoverable torn tail into a corrupt mid-file line on
      // the following reload.
      std::ifstream probe(path_, std::ios::binary | std::ios::ate);
      const std::streamoff size = probe.tellg();
      probe.close();
      if (durable < size) {
        HPAC_REQUIRE(::truncate(path_.c_str(), durable) == 0,
                     "cannot drop torn tail of result store journal: " + path_);
      }
    }
    journal_.open(path_, std::ios::app);
    HPAC_REQUIRE(journal_.good(), "cannot open result store journal: " + path_);
    if (!resuming) {
      // An empty table writes exactly the header line, guaranteeing the
      // journal and any final canonical rewrite share one format.
      CsvTable(RunRecord::csv_columns()).write(journal_);
      journal_.flush();
    }
  }
  publish(std::move(state));
}

ResultStore::~ResultStore() = default;

std::uint64_t ResultStore::append(const RunRecord& record) {
  const std::uint64_t version = append_if_absent(record);
  HPAC_REQUIRE(version != 0, "result store already holds tuple: " + record.benchmark +
                                 " on " + record.device + " '" + record.spec_text + "'");
  return version;
}

std::uint64_t ResultStore::append_if_absent(const RunRecord& record) {
  common::MutexLock lock(writer_mutex_);
  HPAC_REQUIRE(!read_only_, "result store is read-only: " + path_);
  HPAC_REQUIRE(!finalized_, "result store was finalized; no further appends");
  const std::shared_ptr<const Snapshot::State> current = snapshot().state_;
  std::string key = key_of(record);
  if (current->index.contains(key)) return 0;
  // Journal first, publish second: a version is only ever visible once its
  // row is flushed, so a snapshot can never lead the durable journal.
  if (persistent()) {
    // The flock pairs with the constructor's open-time truncation window
    // in peer processes; O_APPEND then lands the flushed row at the
    // (possibly just-truncated) real end of file.
    fileops::FileLock append_lock(path_ + ".lock");
    write_csv_row(journal_, record.to_row());
    journal_.flush();
  }
  auto next = std::make_shared<Snapshot::State>();
  next->index = current->index.set(std::move(key), current->records.size());
  next->records = current->records.push_back(record);
  next->version = current->version + 1;
  const std::uint64_t version = next->version;
  publish(std::move(next));
  return version;
}

void ResultStore::finalize(const ResultDb& canonical) {
  common::MutexLock lock(writer_mutex_);
  HPAC_REQUIRE(!read_only_, "result store is read-only: " + path_);
  HPAC_REQUIRE(!finalized_, "result store was already finalized");
  finalized_ = true;
  if (!persistent()) return;
  journal_.close();
  const std::string tmp = path_ + ".tmp";
  canonical.save(tmp);
  HPAC_REQUIRE(std::rename(tmp.c_str(), path_.c_str()) == 0,
               "cannot replace result store journal: " + path_);
}

}  // namespace hpac::harness
