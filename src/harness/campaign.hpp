#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/record.hpp"
#include "harness/result_store.hpp"
#include "pragma/spec.hpp"
#include "sim/device.hpp"

namespace hpac::harness {

/// What a Campaign evaluates: the full cross product of registered
/// benchmarks x device presets x approximation specs x items-per-thread —
/// the multi-application, multi-platform sweep behind the paper's headline
/// comparison (Fig. 6 aggregates seven applications on two GPUs).
struct CampaignPlan {
  /// Registry names (apps::benchmark_names()); must be non-empty, unique
  /// and known.
  std::vector<std::string> benchmarks;
  /// Device preset names for sim::device_by_name; non-empty and unique.
  std::vector<std::string> devices;
  /// Spec grid per device. Device-dependent so warp-size-gated parameters
  /// (Table 2's 64 tables per warp on AMD) can filter per platform. When
  /// null, the curated TAF + iACT + perforation sets are used.
  std::function<std::vector<pragma::ApproxSpec>(const sim::DeviceConfig&)> specs_for;
  /// Launch-geometry axis, shared by every benchmark; non-empty.
  std::vector<std::uint64_t> items_per_thread{8, 64};
  /// Worker threads for the shard fan-out: 0 = hardware concurrency,
  /// 1 = serial.
  std::size_t num_threads = 0;
  /// Checkpoint/result CSV. While running, completed records are appended
  /// (and flushed) here so a killed campaign loses at most the in-flight
  /// tuples; on completion the file is rewritten in canonical order.
  /// Re-running with the same path resumes: already-present tuples are
  /// not re-evaluated. Empty = in-memory only.
  std::string output_path;
  /// Progress observer, invoked once per newly evaluated record. Called
  /// from worker threads under a dedicated callback mutex: invocations are
  /// serialized with each other (no synchronization needed inside), but
  /// *not* with the campaign's record/journal lock — the record's journal
  /// row is flushed before the callback runs, and a blocked callback can
  /// never stall journaling or evaluation by the other workers. (It can
  /// still stall *itself*: whether other workers exist to make the
  /// progress it waits for depends on scheduler load, so do not block on
  /// cross-worker progress unconditionally.) Exceptions it throws abort
  /// the campaign; because the row was already persisted, a resume will
  /// not re-evaluate the triggering record.
  std::function<void(const RunRecord&)> on_record;
};

/// Outcome of Campaign::run.
struct CampaignResult {
  std::size_t planned = 0;    ///< tuples in the cross product
  std::size_t restored = 0;   ///< tuples skipped because the checkpoint had them
  std::size_t evaluated = 0;  ///< tuples actually run this invocation
  std::size_t stale = 0;      ///< checkpoint rows not part of this plan (dropped)
  std::size_t feasible = 0;   ///< feasible records across the whole database
  /// Records the commit-conflict auditor flagged (report-mode findings in
  /// the note, or enforce-mode ConfigErrors). Always 0 when the campaign
  /// ran with ExecTuning::audit_mode == kOff.
  std::size_t audit_flagged = 0;
  ResultDb db;                ///< all records in canonical plan order
};

/// Multi-benchmark x multi-device sweep driver with persistent resume —
/// the layer above Explorer that turns one-shot exploration into a
/// restartable batch job (the way the paper's harness swept 57,288
/// configurations per benchmark over days of GPU time).
///
/// Work is sharded at (benchmark, device) granularity: each shard gets a
/// freshly constructed benchmark and its own Explorer, so the accurate
/// baseline is computed once per pair (and never for pairs whose tuples
/// are all restored from the checkpoint). Shards run concurrently on the
/// process-wide work-stealing scheduler (`hpac::Scheduler`) — a worker
/// whose shard finishes early steals team shards that nested
/// `independent_items` region launches publish, instead of idling. Every
/// tuple is deterministic, so the assembled database — and the final CSV —
/// is identical regardless of worker count, and a resumed campaign ends
/// with a CSV byte-identical to an uninterrupted one.
class Campaign {
 public:
  /// Validates the plan eagerly (unknown benchmark or device names,
  /// empty axes, duplicate tuple keys) and throws hpac::Error/ConfigError
  /// before any evaluation work.
  explicit Campaign(CampaignPlan plan);

  /// Execute (or resume) the campaign against a private ResultStore on
  /// `plan.output_path`, then finalize it (canonical-order rewrite of the
  /// journal). Propagates the first exception a shard raises after
  /// in-flight shards drain; the checkpoint then holds every record
  /// completed before the failure.
  CampaignResult run();

  /// Execute (or resume) against a caller-owned store — the serving path:
  /// a daemon can point readers at `store` while the campaign writes, and
  /// every completed tuple is visible to `store.snapshot()` the moment its
  /// journal row is flushed. Restores any plan tuples the store already
  /// holds instead of re-evaluating them. Does NOT finalize: the journal
  /// stays in append order and the store stays writable (call
  /// `store.finalize(result.db)` for the canonical file).
  CampaignResult run(ResultStore& store);

  /// The canonical (benchmark, device, spec, items-per-thread) identity of
  /// a tuple — the key resume matches checkpoint rows against.
  static std::string tuple_key(const std::string& benchmark, const std::string& device,
                               const std::string& spec_text, std::uint64_t items_per_thread);

  const CampaignPlan& plan() const { return plan_; }

  /// Tuple-level introspection for external drivers: the distributed
  /// campaign claims tuple leases against exactly this enumeration, so the
  /// index <-> (benchmark, device, spec, ipt) mapping is shared state
  /// between cooperating processes and must stay deterministic for a
  /// given plan (it is: construction order is the plan's axis order).
  std::size_t tuple_count() const { return keys_.size(); }
  const std::vector<std::string>& tuple_keys() const { return keys_; }
  std::size_t shard_count() const { return shards_.size(); }

  /// Read-only view of one (benchmark, device) shard; references stay
  /// valid for the Campaign's lifetime.
  struct ShardView {
    const std::string& benchmark;
    const sim::DeviceConfig& device;
    const std::vector<pragma::ApproxSpec>& specs;
    std::size_t first_tuple;
    std::size_t tuple_count;
  };
  ShardView shard_view(std::size_t index) const;

 private:
  struct Shard {
    std::string benchmark;
    sim::DeviceConfig device;
    /// Shared: every shard of a device references one spec vector.
    std::shared_ptr<const std::vector<pragma::ApproxSpec>> specs;
    std::size_t first_tuple = 0;  ///< index of the shard's first tuple
    std::size_t tuple_count = 0;
  };

  CampaignPlan plan_;
  std::vector<Shard> shards_;
  std::vector<std::string> keys_;  ///< canonical key per tuple index
};

}  // namespace hpac::harness
