#include "harness/benchmark.hpp"

#include "common/stats.hpp"

namespace hpac::harness {

double Benchmark::error_percent(const RunOutput& accurate, const RunOutput& approx) const {
  if (error_metric() == ErrorMetric::kMcr) {
    return stats::mcr_percent(accurate.qoi_labels, approx.qoi_labels);
  }
  return stats::mape_percent(accurate.qoi, approx.qoi);
}

}  // namespace hpac::harness
