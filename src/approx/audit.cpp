#include "approx/audit.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "approx/region.hpp"
#include "common/strings.hpp"

namespace hpac::approx::audit {

namespace {

using Entry = ExtentSink::Entry;

bool entry_less(const Entry& a, const Entry& b) {
  if (a.begin != b.begin) return a.begin < b.begin;
  if (a.end != b.end) return a.end < b.end;
  return a.item < b.item;
}

const char* kind_name(ConflictReport::Kind kind) {
  switch (kind) {
    case ConflictReport::Kind::kWriteWrite:
      return "write/write overlap";
    case ConflictReport::Kind::kReadWrite:
      return "read/write overlap";
    case ConflictReport::Kind::kDifferential:
      return "differential mismatch";
    case ConflictReport::Kind::kMissingExtents:
      return "missing extents";
  }
  return "?";
}

}  // namespace

const char* to_string(AuditMode mode) {
  switch (mode) {
    case AuditMode::kOff:
      return "off";
    case AuditMode::kReport:
      return "report";
    case AuditMode::kEnforce:
      return "enforce";
  }
  return "?";
}

std::optional<AuditMode> audit_mode_from_string(std::string_view name) {
  if (name == "off") return AuditMode::kOff;
  if (name == "report") return AuditMode::kReport;
  if (name == "enforce") return AuditMode::kEnforce;
  return std::nullopt;
}

std::string ConflictReport::to_string() const {
  if (kind == Kind::kMissingExtents) {
    return strings::format(
        "missing extents: binding '%s' declares independent_items but no commit_extents",
        binding.c_str());
  }
  if (kind == Kind::kDifferential) {
    return strings::format("differential mismatch: item %llu, bytes [%llu,%llu) of '%s'",
                           static_cast<unsigned long long>(item_a),
                           static_cast<unsigned long long>(begin),
                           static_cast<unsigned long long>(end), binding.c_str());
  }
  return strings::format("%s: items %llu and %llu, bytes [%llu,%llu) of '%s'",
                         kind_name(kind), static_cast<unsigned long long>(item_a),
                         static_cast<unsigned long long>(item_b),
                         static_cast<unsigned long long>(begin),
                         static_cast<unsigned long long>(end), binding.c_str());
}

// --- ExtentSink --------------------------------------------------------------

void ExtentSink::put(std::vector<Entry>* target, const void* ptr, std::size_t len) const {
  if (target == nullptr || ptr == nullptr || len == 0) return;
  const auto begin = reinterpret_cast<std::uintptr_t>(ptr);
  target->push_back(Entry{begin, begin + len, item_});
}

void ExtentSink::writes(const void* ptr, std::size_t len) { put(writes_, ptr, len); }
void ExtentSink::commuting(const void* ptr, std::size_t len) { put(commuting_, ptr, len); }
void ExtentSink::reads(const void* ptr, std::size_t len) { put(reads_, ptr, len); }

// --- ShardLog ----------------------------------------------------------------

void ShardLog::record_commit(const RegionBinding& binding, std::uint64_t item) {
  ExtentSink sink(&writes_, nullptr, nullptr, item);
  binding.commit_extents(item, sink);
}

void ShardLog::record_read(const RegionBinding& binding, std::uint64_t item) {
  ExtentSink sink(nullptr, nullptr, &reads_, item);
  binding.read_extents(item, sink);
}

// --- LaunchAudit -------------------------------------------------------------

LaunchAudit::LaunchAudit(const RegionBinding& binding, std::uint64_t n, std::size_t shards,
                         bool differential, ExtentImageCache* cache)
    : binding_(&binding),
      name_(binding.name.empty() ? std::string("<unnamed>") : binding.name),
      differential_(differential) {
  if (!binding.commit_extents) {
    ConflictReport report;
    report.kind = ConflictReport::Kind::kMissingExtents;
    report.binding = name_;
    conflicts_.push_back(std::move(report));
    return;
  }
  instrumented_ = true;
  logs_.resize(std::max<std::size_t>(1, shards));

  if (!differential_) return;

  // Cheap path first: a previous launch of this (binding, n) pair may have
  // walk-validated the affine extent shape, in which case three endpoint
  // probes replace the O(n) walk below.
  if (cache != nullptr && cache->lookup(binding, n, exclusive_extents_, all_extents_)) {
    pre_ = take_snapshot();
    return;
  }

  // Union of every item's declared intervals: the byte image the
  // differential re-run must be able to save, restore and compare. The
  // walk costs one extent callback per item — audit-mode only, and cheap
  // address arithmetic inside.
  std::vector<Entry> exclusive;
  std::vector<Entry> commuting;
  // Fit the affine model alongside the walk so this full-price launch can
  // seed the cache. Item 0 fixes bases and lengths, item 1 fixes strides,
  // every further item only verifies — one comparison per logged entry.
  std::optional<ExtentImageCache::Shape> shape;
  if (cache != nullptr) shape.emplace();
  const auto fit_channel = [](std::vector<ExtentImageCache::AffineEntry>& model,
                              const std::vector<Entry>& log, std::size_t from,
                              std::uint64_t item) {
    const std::size_t count = log.size() - from;
    if (item == 0) {
      model.reserve(count);
      for (std::size_t k = 0; k < count; ++k) {
        const Entry& e = log[from + k];
        model.push_back(ExtentImageCache::AffineEntry{
            e.begin, 0, static_cast<std::size_t>(e.end - e.begin)});
      }
      return true;
    }
    if (count != model.size()) return false;
    for (std::size_t k = 0; k < count; ++k) {
      const Entry& e = log[from + k];
      ExtentImageCache::AffineEntry& m = model[k];
      if (static_cast<std::size_t>(e.end - e.begin) != m.len) return false;
      if (item == 1) {
        m.stride = e.begin - m.base;  // wrapping arithmetic: any direction
      } else if (e.begin != m.base + static_cast<std::uintptr_t>(item) * m.stride) {
        return false;
      }
    }
    return true;
  };
  for (std::uint64_t item = 0; item < n; ++item) {
    const std::size_t exclusive_from = exclusive.size();
    const std::size_t commuting_from = commuting.size();
    ExtentSink sink(&exclusive, &commuting, nullptr, item);
    binding.commit_extents(item, sink);
    if (shape && !(fit_channel(shape->exclusive, exclusive, exclusive_from, item) &&
                   fit_channel(shape->commuting, commuting, commuting_from, item))) {
      shape.reset();  // not affine: keep walking, skip caching
    }
  }
  const auto merge = [](std::vector<Entry> entries) {
    std::vector<Interval> merged;
    std::sort(entries.begin(), entries.end(), entry_less);
    for (const Entry& e : entries) {
      if (!merged.empty() && e.begin <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, e.end);
      } else {
        merged.push_back(Interval{e.begin, e.end});
      }
    }
    return merged;
  };
  exclusive_extents_ = merge(exclusive);
  exclusive.insert(exclusive.end(), commuting.begin(), commuting.end());
  all_extents_ = merge(std::move(exclusive));
  if (cache != nullptr) {
    cache->store(binding, n, std::move(shape), exclusive_extents_, all_extents_);
  }
  pre_ = take_snapshot();
}

// --- ExtentImageCache --------------------------------------------------------

bool ExtentImageCache::lookup(const RegionBinding& binding, std::uint64_t n,
                              std::vector<ByteInterval>& exclusive_extents,
                              std::vector<ByteInterval>& all_extents) {
  // Probe outside the lock — the extent callbacks are application code.
  const auto probe = [&binding](std::uint64_t item) {
    std::pair<std::vector<ExtentSink::Entry>, std::vector<ExtentSink::Entry>> channels;
    ExtentSink sink(&channels.first, &channels.second, nullptr, item);
    binding.commit_extents(item, sink);
    return channels;
  };
  const auto fix_strides = [](std::vector<AffineEntry>& model,
                              const std::vector<ExtentSink::Entry>& entries) {
    if (entries.size() != model.size()) return false;
    for (std::size_t k = 0; k < model.size(); ++k) {
      if (static_cast<std::size_t>(entries[k].end - entries[k].begin) != model[k].len) {
        return false;
      }
      model[k].stride = entries[k].begin - model[k].base;
    }
    return true;
  };
  const auto check_item = [](const std::vector<AffineEntry>& model,
                             const std::vector<ExtentSink::Entry>& entries,
                             std::uint64_t item) {
    if (entries.size() != model.size()) return false;
    for (std::size_t k = 0; k < model.size(); ++k) {
      if (static_cast<std::size_t>(entries[k].end - entries[k].begin) != model[k].len ||
          entries[k].begin !=
              model[k].base + static_cast<std::uintptr_t>(item) * model[k].stride) {
        return false;
      }
    }
    return true;
  };

  Shape shape;
  {
    const auto first = probe(0);
    for (const ExtentSink::Entry& e : first.first) {
      shape.exclusive.push_back(
          AffineEntry{e.begin, 0, static_cast<std::size_t>(e.end - e.begin)});
    }
    for (const ExtentSink::Entry& e : first.second) {
      shape.commuting.push_back(
          AffineEntry{e.begin, 0, static_cast<std::size_t>(e.end - e.begin)});
    }
  }
  if (n > 1) {
    const auto second = probe(1);
    if (!fix_strides(shape.exclusive, second.first) ||
        !fix_strides(shape.commuting, second.second)) {
      return false;
    }
  }
  if (n > 2) {
    const auto last = probe(n - 1);
    if (!check_item(shape.exclusive, last.first, n - 1) ||
        !check_item(shape.commuting, last.second, n - 1)) {
      return false;
    }
  }

  common::MutexLock lock(mutex_);
  const auto it = variants_.find(Key{&binding, n});
  if (it == variants_.end()) return false;
  for (const Variant& variant : it->second) {
    if (variant.shape == shape) {
      exclusive_extents = variant.exclusive_extents;
      all_extents = variant.all_extents;
      ++stats_.hits;
      return true;
    }
  }
  return false;
}

void ExtentImageCache::store(const RegionBinding& binding, std::uint64_t n,
                             std::optional<Shape> shape,
                             const std::vector<ByteInterval>& exclusive_extents,
                             const std::vector<ByteInterval>& all_extents) {
  common::MutexLock lock(mutex_);
  ++stats_.misses;
  if (!shape) {
    ++stats_.non_affine;
    return;
  }
  std::vector<Variant>& variants = variants_[Key{&binding, n}];
  for (const Variant& variant : variants) {
    if (variant.shape == *shape) return;  // raced with an identical walk
  }
  if (variants.size() >= kMaxVariants) variants.erase(variants.begin());
  variants.push_back(Variant{std::move(*shape), exclusive_extents, all_extents});
}

void LaunchAudit::add_conflict(ConflictReport::Kind kind, std::uint64_t item_a,
                               std::uint64_t item_b, std::uintptr_t begin,
                               std::uintptr_t end) {
  if (conflicts_.size() >= kMaxReports) return;
  ConflictReport report;
  report.kind = kind;
  report.binding = name_;
  report.item_a = std::min(item_a, item_b);
  report.item_b = std::max(item_a, item_b);
  const std::uintptr_t origin = region_base_of(begin);
  report.begin = static_cast<std::uint64_t>(begin - origin);
  report.end = static_cast<std::uint64_t>(end - origin);
  conflicts_.push_back(std::move(report));
}

std::uintptr_t LaunchAudit::region_base_of(std::uintptr_t addr) const {
  std::uintptr_t origin = 0;
  for (const Interval& region : regions_) {
    if (region.begin > addr) break;  // sorted: nothing later can contain addr
    if (addr < region.end) return region.begin;
    origin = region.begin;
  }
  return origin;  // unreachable for logged addresses; keep offsets sane anyway
}

std::uint64_t LaunchAudit::owner_of(std::uintptr_t addr) const {
  for (const Entry& e : folded_writes_) {
    if (e.begin > addr) break;  // sorted by begin: nothing later can cover addr
    if (addr < e.end) return e.item;
  }
  return 0;
}

void LaunchAudit::analyze() {
  if (!instrumented_) return;

  std::vector<Entry> writes;
  std::vector<Entry> reads;
  for (const ShardLog& log : logs_) {
    writes.insert(writes.end(), log.writes_.begin(), log.writes_.end());
    reads.insert(reads.end(), log.reads_.begin(), log.reads_.end());
  }
  // Sorting makes the folded multiset — and therefore every report —
  // independent of which shard executed which team. Exact duplicates are
  // dropped: an item's reads are logged at both the gather and accurate
  // wrap points (whichever of the two its technique executes), and a
  // duplicate entry would re-report the same conflict, burning slots of
  // the kMaxReports cap.
  const auto fold = [](std::vector<Entry>& entries) {
    std::sort(entries.begin(), entries.end(), entry_less);
    entries.erase(std::unique(entries.begin(), entries.end(),
                              [](const Entry& a, const Entry& b) {
                                return a.begin == b.begin && a.end == b.end &&
                                       a.item == b.item;
                              }),
                  entries.end());
  };
  fold(writes);
  fold(reads);

  // Offset origins: the contiguous runs of audited bytes (logged writes,
  // logged reads, and — for differential — every declared extent). A
  // report's byte range is expressed relative to its containing run, so
  // multi-array bindings produce the same offsets regardless of where the
  // allocator placed each array.
  {
    std::vector<Entry> all;
    all.reserve(writes.size() + reads.size() + all_extents_.size());
    all.insert(all.end(), writes.begin(), writes.end());
    all.insert(all.end(), reads.begin(), reads.end());
    for (const Interval& iv : all_extents_) all.push_back(Entry{iv.begin, iv.end, 0});
    std::sort(all.begin(), all.end(), entry_less);
    regions_.clear();
    for (const Entry& e : all) {
      if (!regions_.empty() && e.begin <= regions_.back().end) {
        regions_.back().end = std::max(regions_.back().end, e.end);
      } else {
        regions_.push_back(Interval{e.begin, e.end});
      }
    }
  }

  // Write/write: each entry against the sorted tail it overlaps. The
  // inner scan ends at the first non-overlapping entry, so disjoint
  // (correct) bindings cost one comparison per entry; reports are capped,
  // and once the cap is hit the scan stops entirely.
  for (std::size_t i = 0; i < writes.size() && conflicts_.size() < kMaxReports; ++i) {
    for (std::size_t j = i + 1; j < writes.size() && writes[j].begin < writes[i].end; ++j) {
      if (writes[i].item == writes[j].item) continue;
      add_conflict(ConflictReport::Kind::kWriteWrite, writes[i].item, writes[j].item,
                   std::max(writes[i].begin, writes[j].begin),
                   std::min(writes[i].end, writes[j].end));
      if (conflicts_.size() >= kMaxReports) break;
    }
  }

  // Read/write: a two-pointer sweep over the sorted interval lists. A
  // read overlapping another item's write means the reader observes
  // whichever schedule committed (or did not yet commit) that write.
  std::size_t w = 0;
  for (const Entry& r : reads) {
    if (conflicts_.size() >= kMaxReports) break;
    while (w < writes.size() && writes[w].end <= r.begin) ++w;
    for (std::size_t j = w; j < writes.size() && writes[j].begin < r.end; ++j) {
      if (writes[j].item == r.item || writes[j].end <= r.begin) continue;
      add_conflict(ConflictReport::Kind::kReadWrite, r.item, writes[j].item,
                   std::max(r.begin, writes[j].begin), std::min(r.end, writes[j].end));
      if (conflicts_.size() >= kMaxReports) break;
    }
  }

  folded_writes_ = std::move(writes);
}

Snapshot LaunchAudit::take_snapshot() const {
  Snapshot snapshot;
  std::size_t total = 0;
  for (const Interval& iv : all_extents_) total += iv.end - iv.begin;
  snapshot.bytes_.resize(total);
  std::size_t offset = 0;
  for (const Interval& iv : all_extents_) {
    const std::size_t len = iv.end - iv.begin;
    std::memcpy(snapshot.bytes_.data() + offset, reinterpret_cast<const void*>(iv.begin), len);
    offset += len;
  }
  return snapshot;
}

void LaunchAudit::restore(const Snapshot& snapshot) const {
  std::size_t offset = 0;
  for (const Interval& iv : all_extents_) {
    const std::size_t len = iv.end - iv.begin;
    std::memcpy(reinterpret_cast<void*>(iv.begin), snapshot.bytes_.data() + offset, len);
    offset += len;
  }
}

void LaunchAudit::restore_pre() const { restore(pre_); }

void LaunchAudit::compare_with(const Snapshot& reference) {
  // Map each exclusive interval into the snapshot's all_extents_ layout.
  // Every exclusive interval lies inside exactly one merged all-interval
  // (the all set is a superset and both are merged).
  std::size_t all_index = 0;
  std::size_t all_offset = 0;
  for (const Interval& iv : exclusive_extents_) {
    while (all_index < all_extents_.size() && all_extents_[all_index].end <= iv.begin) {
      all_offset += all_extents_[all_index].end - all_extents_[all_index].begin;
      ++all_index;
    }
    if (all_index >= all_extents_.size()) break;
    const std::size_t start = all_offset + (iv.begin - all_extents_[all_index].begin);
    const auto* live = reinterpret_cast<const unsigned char*>(iv.begin);
    const unsigned char* ref = reference.bytes_.data() + start;
    const std::size_t len = iv.end - iv.begin;
    std::size_t b = 0;
    while (b < len && conflicts_.size() < kMaxReports) {
      if (live[b] == ref[b]) {
        ++b;
        continue;
      }
      std::size_t e = b + 1;
      while (e < len && live[e] != ref[e]) ++e;
      const std::uintptr_t addr = iv.begin + b;
      const std::uint64_t item = owner_of(addr);
      add_conflict(ConflictReport::Kind::kDifferential, item, item, addr, iv.begin + e);
      b = e;
    }
    if (conflicts_.size() >= kMaxReports) break;
  }
}

std::string LaunchAudit::summarize(const std::vector<ConflictReport>& conflicts) {
  std::string text;
  const std::size_t shown = std::min<std::size_t>(conflicts.size(), 3);
  for (std::size_t i = 0; i < shown; ++i) {
    if (!text.empty()) text += "; ";
    text += conflicts[i].to_string();
  }
  if (conflicts.size() > shown) {
    text += strings::format(" (+%zu more)", conflicts.size() - shown);
  }
  return text;
}

}  // namespace hpac::approx::audit
