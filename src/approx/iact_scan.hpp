#pragma once

#include <limits>

#include "common/simd.hpp"

namespace hpac::approx::detail {

/// Inputs of one vectorized nearest-entry scan over an iACT table.
///
/// The kernels read the table through its dimension-major mirror
/// (`soa[d * capacity + row]`, maintained by `IactTable::insert`), which
/// turns "the same dimension of W consecutive rows" into one contiguous
/// vector load. Lanes map to rows; each lane accumulates its squared
/// distance in ascending-dimension order — exactly the scalar scan's
/// operation sequence — so the winning index *and* every distance bit
/// match the scalar reference by construction (see the `simd` tests).
struct ScanArgs {
  const double* soa = nullptr;
  const double* probe = nullptr;
  int capacity = 0;
  int valid_count = 0;
  int in_dims = 0;
};

struct ScanResult {
  int index = -1;
  double distance = std::numeric_limits<double>::infinity();
};

using ScanFn = ScanResult (*)(const ScanArgs&);

/// Per-ISA kernel lookup: a specialized kernel for small `in_dims`
/// (compile-time unrolled dimension loop), a generic kernel otherwise.
/// Returns nullptr when that ISA is not compiled into this binary.
ScanFn iact_scan_fn_sse2(int in_dims);
ScanFn iact_scan_fn_avx2(int in_dims);

/// The kernel (or nullptr → use the scalar path) for an `in_dims`-wide
/// table under dispatch `level`, falling back to narrower ISAs when the
/// requested one is unavailable.
ScanFn select_iact_scan(int in_dims, simd::Level level);

}  // namespace hpac::approx::detail
