#include "approx/hierarchy.hpp"

namespace hpac::approx {

bool warp_majority(sim::LaneMask wishes, sim::LaneMask active) {
  const int want = sim::popcount(wishes & active);
  const int total = sim::popcount(active);
  return want * 2 > total;
}

void BlockTally::add(sim::LaneMask wishes, sim::LaneMask active) {
  wish_ += sim::popcount(wishes & active);
  active_ += sim::popcount(active);
}

bool BlockTally::majority() const { return wish_ * 2 > active_; }

void BlockTally::reset() {
  wish_ = 0;
  active_ = 0;
}

}  // namespace hpac::approx
