#include "approx/taf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace hpac::approx {

namespace detail {
void throw_taf_dims_mismatch() { throw Error("TAF output dimensionality mismatch"); }
}  // namespace detail

TafState::TafState(const pragma::TafParams& params, int out_dims, std::span<double> storage)
    : params_(params), out_dims_(out_dims) {
  HPAC_REQUIRE(params.history_size >= 1, "TAF history size must be >= 1");
  HPAC_REQUIRE(params.prediction_size >= 1, "TAF prediction size must be >= 1");
  HPAC_REQUIRE(out_dims >= 1, "TAF needs at least one output");
  const std::size_t needed = storage_doubles(params.history_size, out_dims);
  HPAC_REQUIRE(storage.size() >= needed, "TAF storage span too small");
  window_ = storage.subspan(0, static_cast<std::size_t>(params.history_size) * out_dims);
  last_ = storage.subspan(window_.size(), static_cast<std::size_t>(out_dims));
  running_.assign(3u * static_cast<std::size_t>(out_dims), 0.0);
}

std::size_t TafState::storage_doubles(int history_size, int out_dims) {
  return static_cast<std::size_t>(history_size) * out_dims + static_cast<std::size_t>(out_dims);
}

std::size_t TafState::footprint_bytes(int history_size, int out_dims) {
  return storage_doubles(history_size, out_dims) * sizeof(double) + 4 * sizeof(std::int32_t);
}

double TafState::window_rsd() const {
  if (filled_ < params_.history_size) return std::numeric_limits<double>::infinity();
  // O(out_dims) from the running sums `record_accurate` maintains:
  // sigma² = E[x²] − μ². The subtraction can cancel catastrophically for
  // near-constant windows of large values — there it is clamped at zero,
  // which is also the activation decision a near-zero RSD would reach.
  const double n = static_cast<double>(filled_);
  const double* sums = running_.data();
  const double* abs_sums = sums + out_dims_;
  const double* sq_sums = abs_sums + out_dims_;
  double max_rsd = 0.0;
  for (int d = 0; d < out_dims_; ++d) {
    const double mu = sums[d] / n;
    double variance = sq_sums[d] / n - mu * mu;
    if (variance < 0.0) variance = 0.0;
    const double sigma = std::sqrt(variance);
    // Sign-robust RSD: sigma over the mean *magnitude*. Identical to the
    // paper's sigma/|mu| whenever the window values share a sign (all the
    // scalar, positive-output regions), but stays finite for mean-zero
    // multi-output windows such as force components. The |value| sum is
    // non-negative up to ring-wraparound rounding drift; clamp so drift
    // can never produce a negative denominator (and thus a negative RSD
    // masquerading as ultra-stable).
    const double denom = (abs_sums[d] > 0.0 ? abs_sums[d] : 0.0) / n;
    double rsd;
    if (denom == 0.0) {
      rsd = sigma == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
    } else {
      rsd = sigma / denom;
    }
    max_rsd = std::max(max_rsd, rsd);
  }
  return max_rsd;
}

}  // namespace hpac::approx
