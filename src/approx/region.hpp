#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "approx/iact.hpp"
#include "pragma/spec.hpp"
#include "sim/device.hpp"
#include "sim/launch.hpp"
#include "sim/timing.hpp"

namespace hpac::approx {

/// The closure view of an annotated code region.
///
/// The paper's Clang implementation captures the annotated region as a
/// closure so the accurate path is callable as a function (§3.3); this
/// struct is the library-level equivalent. One invocation corresponds to
/// one iteration of the parallel loop the directive decorates.
struct RegionBinding {
  /// Doubles per item gathered as the iACT input key (the `in(...)`
  /// sections). Zero for TAF/perforation-only regions.
  int in_dims = 0;
  /// Doubles per item the region produces (the `out(...)` sections).
  int out_dims = 1;

  /// Gather the item's declared inputs (required when in_dims > 0).
  std::function<void(std::uint64_t item, std::span<double> in)> gather;

  /// The accurate execution path. `in` holds gathered inputs when
  /// in_dims > 0 and is empty otherwise (regions read their own data).
  std::function<void(std::uint64_t item, std::span<const double> in, std::span<double> out)>
      accurate;

  /// Cycles one lane spends on the accurate path for `item`. Data-dependent
  /// costs (e.g. CSR row length) are allowed; within a warp the SIMT cost
  /// is the maximum over the lanes executing the path.
  std::function<double(std::uint64_t item)> accurate_cost;

  /// Commit region outputs to the application's device arrays. Called for
  /// accurate and approximated items, not for perforated (skipped) ones.
  std::function<void(std::uint64_t item, std::span<const double> out)> commit;

  /// Global-memory bytes the accurate path loads/stores per item; drives
  /// the coalescing model.
  std::uint32_t in_bytes = 8;
  std::uint32_t out_bytes = 8;
};

/// Execution counters produced by a region run.
struct ExecStats {
  std::uint64_t region_invocations = 0;  ///< items covered by the launch
  std::uint64_t accurate_items = 0;
  std::uint64_t approx_items = 0;   ///< memoized predictions committed
  std::uint64_t skipped_items = 0;  ///< perforated iterations
  /// Lanes overruled by a warp/block majority (paper §4.1, LavaMD):
  std::uint64_t forced_approx = 0;    ///< wanted accurate, group approximated
  std::uint64_t forced_accurate = 0;  ///< wanted to approximate, group did not
  std::uint64_t iact_hits = 0;        ///< probes whose distance beat the threshold
  std::uint64_t taf_stable_entries = 0;  ///< times a thread entered the stable regime
  std::size_t shared_bytes_per_block = 0;

  /// Fraction of covered items answered approximately (memo) or skipped
  /// (perforation) — the color scale of Figure 8c.
  double approx_ratio() const {
    if (region_invocations == 0) return 0.0;
    return static_cast<double>(approx_items + skipped_items) /
           static_cast<double>(region_invocations);
  }
};

/// Timing plus counters for one kernel-launch-equivalent execution.
struct RegionReport {
  sim::KernelTiming timing;
  ExecStats stats;
};

/// Cycle-cost constants of the device runtime's own operations. These are
/// small integer estimates of instruction counts; the evaluation only
/// relies on their relative magnitudes (e.g. an iACT table scan costs a
/// distance computation per entry *every* invocation, while TAF's
/// activation check is a couple of instructions).
struct RuntimeCosts {
  double activation_check = 2.0;      ///< TAF credit test
  double taf_record_per_value = 3.0;  ///< window push + RSD accumulation
  double taf_predict_per_value = 2.0; ///< shared-memory copy out
  double iact_distance_per_dim = 3.0; ///< sub/mul/add against one entry dim
  double iact_sqrt = 8.0;
  double iact_insert_per_value = 2.0;
  double ballot = 4.0;                ///< ballot + popcount
  double barrier = 20.0;              ///< __syncthreads
  double atomic_add = 10.0;           ///< shared-memory atomic (block tally)
  double perfo_check = 2.0;           ///< counter/modulo predicate
};

/// Executes an annotated region over a 1-D iteration space on the
/// simulated device, following the HPAC-Offload GPU algorithms:
/// grid-stride TAF (Figure 4d), warp-shared iACT tables with read/write
/// phases (§3.1.4), herded or CPU-style perforation (§3.1.5) and
/// thread/warp/block decision hierarchies (§3.1.2).
///
/// The executor is the library analogue of the compiler-generated runtime
/// call: it owns AC state placement in block shared memory (and therefore
/// the occupancy impact), the activation functions, and the SIMT cost
/// accounting.
class RegionExecutor {
 public:
  explicit RegionExecutor(sim::DeviceConfig dev,
                          Replacement replacement = Replacement::kRoundRobin,
                          RuntimeCosts costs = RuntimeCosts{});

  /// Run the region over items [0, n) with the given launch geometry.
  /// Throws hpac::ConfigError when the configuration cannot run (AC state
  /// exceeding shared memory, tables-per-warp not dividing the warp size,
  /// iACT without uniform inputs, invalid launch).
  RegionReport run(const pragma::ApproxSpec& spec, const RegionBinding& binding,
                   std::uint64_t n, const sim::LaunchConfig& launch) const;

  /// Composed directives, the paper's Figure 2 idiom: perforation on the
  /// parallel loop plus memoization inside the surviving iterations
  ///
  ///   #pragma approx perfo(small:4)
  ///   #pragma omp ... for
  ///   for (...) {
  ///     #pragma approx memo(in:10:0.5f) in(...) out(...)
  ///     ...
  ///   }
  ///
  /// `perfo_spec` must be a perforation directive and `memo_spec` a
  /// TAF/iACT directive; perforated iterations are skipped before the
  /// memoization logic sees them (and do not touch AC state).
  RegionReport run_composed(const pragma::ApproxSpec& perfo_spec,
                            const pragma::ApproxSpec& memo_spec, const RegionBinding& binding,
                            std::uint64_t n, const sim::LaunchConfig& launch) const;

  /// Shared-memory footprint of the AC state for one block under `spec`
  /// (0 for perforation/baseline). Exposed for occupancy tests and for the
  /// Figure 3 accounting.
  std::size_t ac_state_bytes_per_block(const pragma::ApproxSpec& spec,
                                       const RegionBinding& binding,
                                       const sim::LaunchConfig& launch) const;

  const sim::DeviceConfig& device() const { return dev_; }

 private:
  sim::DeviceConfig dev_;
  Replacement replacement_;
  RuntimeCosts costs_;
};

}  // namespace hpac::approx
