#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "approx/audit.hpp"
#include "approx/iact.hpp"
#include "common/simd.hpp"
#include "pragma/spec.hpp"
#include "sim/device.hpp"
#include "sim/launch.hpp"
#include "sim/timing.hpp"
#include "sim/warp.hpp"

namespace hpac::approx {

/// The closure view of an annotated code region.
///
/// The paper's Clang implementation captures the annotated region as a
/// closure so the accurate path is callable as a function (§3.3); this
/// struct is the library-level equivalent. One invocation corresponds to
/// one iteration of the parallel loop the directive decorates.
///
/// A binding comes in two forms, and may provide both:
///
///  * **Scalar** (`gather` / `accurate` / `accurate_cost` / `commit`):
///    one `std::function` call per item — the original, compatibility
///    form. The executor wraps it in an internal per-warp adapter, so
///    scalar-only bindings keep working without code changes.
///  * **Batched** (`gather_batch` / `accurate_batch` /
///    `accurate_cost_batch` / `commit_batch`): one call services every
///    active lane of a warp, eliminating the per-item dispatch the paper
///    identifies as the cost software AC must not pay. Lane `l` of the
///    mask handles item `first_item + l`, and its per-lane data lives at
///    offset `l * dims` in the packed buffer. Active lanes are always a
///    subset of the warp; iterate them with `sim::for_each_lane`.
///
/// When both forms are present the executor uses the batched one.
///
/// Warp evaluation order (both forms): the engine runs every lane's
/// `accurate` before any lane's `commit` within a warp, so
/// `accurate`/`gather` must not read state that `commit` writes for
/// *other* items of the same warp. Warp-synchronous GPU code has the
/// same constraint (lanes execute in lockstep), and no reproduced app
/// depends on intra-warp commit-then-read ordering — but a scalar
/// binding written against the pre-batching engine's interleaved
/// per-lane order (e.g. a Gauss–Seidel-style in-place sweep) would
/// observe different neighbor values and must be restructured.
struct RegionBinding {
  /// Diagnostic label used in audit reports and error messages; empty is
  /// rendered as "<unnamed>".
  std::string name;

  /// Doubles per item gathered as the iACT input key (the `in(...)`
  /// sections). Zero for TAF/perforation-only regions.
  int in_dims = 0;
  /// Doubles per item the region produces (the `out(...)` sections).
  int out_dims = 1;

  // --- scalar (compatibility) form ---------------------------------------

  /// Gather the item's declared inputs (required when in_dims > 0).
  std::function<void(std::uint64_t item, std::span<double> in)> gather;

  /// The accurate execution path. `in` holds gathered inputs when
  /// in_dims > 0 and is empty otherwise (regions read their own data).
  std::function<void(std::uint64_t item, std::span<const double> in, std::span<double> out)>
      accurate;

  /// Cycles one lane spends on the accurate path for `item`. Data-dependent
  /// costs (e.g. CSR row length) are allowed; within a warp the SIMT cost
  /// is the maximum over the lanes executing the path.
  std::function<double(std::uint64_t item)> accurate_cost;

  /// Commit region outputs to the application's device arrays. Called for
  /// accurate and approximated items, not for perforated (skipped) ones.
  std::function<void(std::uint64_t item, std::span<const double> out)> commit;

  // --- batched fast path (optional) ---------------------------------------

  /// Gather inputs for every lane in `lanes`: lane `l` handles item
  /// `first_item + l` and writes `in[l*in_dims .. l*in_dims+in_dims)`.
  std::function<void(std::uint64_t first_item, sim::LaneMask lanes, std::span<double> in)>
      gather_batch;

  /// Run the accurate path for every lane in `lanes`; outputs go to
  /// `out[l*out_dims .. l*out_dims+out_dims)`. `in` is the gathered batch
  /// buffer (empty when the region was not gathered).
  std::function<void(std::uint64_t first_item, sim::LaneMask lanes,
                     std::span<const double> in, std::span<double> out)>
      accurate_batch;

  /// Max accurate-path cycles over the lanes in `lanes` (the warp's SIMT
  /// cost). Constant-cost regions return the constant in O(1).
  std::function<double(std::uint64_t first_item, sim::LaneMask lanes)> accurate_cost_batch;

  /// Commit outputs for every lane in `lanes`, in ascending lane order.
  std::function<void(std::uint64_t first_item, sim::LaneMask lanes,
                     std::span<const double> out)>
      commit_batch;

  // --- traffic model -------------------------------------------------------

  /// Global-memory bytes the accurate path loads/stores per item; drives
  /// the coalescing model.
  std::uint32_t in_bytes = 8;
  std::uint32_t out_bytes = 8;

  /// Declares that the binding's callbacks touch only item-local state (or
  /// commute exactly, like integer counters), so region invocations of
  /// *different items* may run on different host threads. This is what
  /// allows the executor to shard a large launch's teams across the host
  /// thread pool; results stay bit-identical because every item is still
  /// executed by exactly one thread in the same per-team order. Leave
  /// false (the default) for bindings that accumulate floating-point
  /// values across items (order-dependent rounding) or mutate shared
  /// non-atomic state.
  bool independent_items = false;

  // --- audit introspection (optional) --------------------------------------

  /// Declare the byte intervals `commit` writes for `item`, through
  /// `sink.writes(ptr, len)` (item-exclusive output) and
  /// `sink.commuting(ptr, len)` (shared state whose updates commute
  /// exactly, e.g. an atomic counter). The commit-conflict auditor
  /// (`ExecTuning::audit_mode`) verifies that exclusive intervals of
  /// distinct items never overlap — the property `independent_items`
  /// asserts. The declaration must be *complete*: `commit` must write no
  /// bytes outside the declared intervals, since the differential re-run
  /// snapshots and restores exactly these bytes (an under-declared
  /// order-dependent write is invisible to the auditor and would survive
  /// the re-run). Cheap address arithmetic only; never invoked when
  /// auditing is off. An `independent_items` binding without this
  /// callback fails `enforce` audits (the claim cannot be verified).
  std::function<void(std::uint64_t item, audit::ExtentSink& sink)> commit_extents;

  /// Declare the byte intervals the gather/accurate path reads for `item`
  /// through `sink.reads(ptr, len)`. Optional: enables static read-vs-
  /// write overlap detection; read-side dependences of bindings without
  /// it are only caught by the differential audit re-run.
  std::function<void(std::uint64_t item, audit::ExtentSink& sink)> read_extents;
};

/// Execution counters produced by a region run.
struct ExecStats {
  std::uint64_t region_invocations = 0;  ///< items covered by the launch
  std::uint64_t accurate_items = 0;
  std::uint64_t approx_items = 0;   ///< memoized predictions committed
  std::uint64_t skipped_items = 0;  ///< perforated iterations
  /// Lanes overruled by a warp/block majority (paper §4.1, LavaMD):
  std::uint64_t forced_approx = 0;    ///< wanted accurate, group approximated
  std::uint64_t forced_accurate = 0;  ///< wanted to approximate, group did not
  std::uint64_t iact_hits = 0;        ///< probes whose distance beat the threshold
  std::uint64_t taf_stable_entries = 0;  ///< times a thread entered the stable regime
  std::size_t shared_bytes_per_block = 0;
  /// Host-side team shards the launch was split into (1 = serial). Purely
  /// diagnostic — results are bit-identical for every value — but it makes
  /// the fan-out decision observable, e.g. to assert that a launch nested
  /// inside a sweep worker is no longer forced serial.
  std::size_t host_shards = 1;
  /// SIMD dispatch level active while this launch ran (see
  /// `hpac::simd::active_level`). Diagnostic like `host_shards`: results
  /// are bit-identical at every level; exposing it makes the dispatch
  /// decision observable to tests and the bench harness.
  simd::Level simd_level = simd::Level::kOff;
  /// Commit-conflict audit findings (`ExecTuning::audit_mode == kReport`;
  /// `kEnforce` throws instead of collecting). Empty when auditing is off
  /// or the launch audited clean.
  std::vector<audit::ConflictReport> conflicts;

  /// Fraction of covered items answered approximately (memo) or skipped
  /// (perforation) — the color scale of Figure 8c.
  double approx_ratio() const {
    if (region_invocations == 0) return 0.0;
    return static_cast<double>(approx_items + skipped_items) /
           static_cast<double>(region_invocations);
  }
};

/// Timing plus counters for one kernel-launch-equivalent execution.
struct RegionReport {
  sim::KernelTiming timing;
  ExecStats stats;
};

/// Cycle-cost constants of the device runtime's own operations. These are
/// small integer estimates of instruction counts; the evaluation only
/// relies on their relative magnitudes (e.g. an iACT table scan costs a
/// distance computation per entry *every* invocation, while TAF's
/// activation check is a couple of instructions).
struct RuntimeCosts {
  double activation_check = 2.0;      ///< TAF credit test
  double taf_record_per_value = 3.0;  ///< window push + RSD accumulation
  double taf_predict_per_value = 2.0; ///< shared-memory copy out
  double iact_distance_per_dim = 3.0; ///< sub/mul/add against one entry dim
  double iact_sqrt = 8.0;
  double iact_insert_per_value = 2.0;
  double ballot = 4.0;                ///< ballot + popcount
  double barrier = 20.0;              ///< __syncthreads
  double atomic_add = 10.0;           ///< shared-memory atomic (block tally)
  double perfo_check = 2.0;           ///< counter/modulo predicate
};

/// Knobs of the executor's team-sharded host parallelism. Sharding only
/// ever changes wall-clock time, never results: a launch is split into
/// contiguous team ranges, each executed exactly as the serial engine
/// would, and the per-warp ledgers and counters are merged
/// deterministically.
struct ExecTuning {
  /// Host threads a single launch may use. 0 = hardware concurrency;
  /// 1 disables team sharding.
  std::size_t max_threads = 0;
  /// Launches with fewer teams than this run serially.
  std::uint64_t min_teams = 8;
  /// Launches covering fewer items than this run serially (sharding
  /// overhead would dominate).
  std::uint64_t min_items = 1u << 14;
  /// Lower bound on teams per shard when splitting.
  std::uint64_t min_teams_per_shard = 4;
  /// Testing/diagnostics: route batched bindings through the scalar
  /// compatibility adapter (requires the scalar form to be present).
  bool force_scalar = false;
  /// Commit-conflict auditing of `independent_items` bindings (see
  /// `hpac::approx::audit`). `kOff` leaves the dispatch path untouched;
  /// `kReport` collects findings into `ExecStats::conflicts`; `kEnforce`
  /// throws `hpac::ConfigError` on the first conflicting launch.
  audit::AuditMode audit_mode = audit::AuditMode::kOff;
  /// With auditing on, additionally re-execute every audited launch under
  /// a reversed-shard serial schedule and byte-compare the committed
  /// output — catches read-side dependences that address tagging cannot
  /// see. Roughly doubles the cost of audited launches; application
  /// state is restored afterwards, so results are unchanged.
  bool audit_differential = false;
  /// Memoize the merged extent image differential audits build (see
  /// `audit::ExtentImageCache`): repeated launches of the same (binding,
  /// n) pair probe three items instead of walking all of them. Off →
  /// every audited launch rebuilds its image exactly as before.
  bool audit_extent_cache = true;
};

/// Executes an annotated region over a 1-D iteration space on the
/// simulated device, following the HPAC-Offload GPU algorithms:
/// grid-stride TAF (Figure 4d), warp-shared iACT tables with read/write
/// phases (§3.1.4), herded or CPU-style perforation (§3.1.5) and
/// thread/warp/block decision hierarchies (§3.1.2).
///
/// The executor is the library analogue of the compiler-generated runtime
/// call: it owns AC state placement in block shared memory (and therefore
/// the occupancy impact), the activation functions, and the SIMT cost
/// accounting.
///
/// Large launches whose binding declares `independent_items` are split
/// into contiguous team ranges submitted to the process-wide work-stealing
/// scheduler (`hpac::Scheduler`). The submitting thread executes shards
/// itself while idle scheduler workers — including Explorer/Campaign
/// workers whose own sweep shard finished early — steal the rest, so
/// nested parallelism cooperates instead of serializing. Results are
/// bit-identical to serial execution either way.
class RegionExecutor {
 public:
  explicit RegionExecutor(sim::DeviceConfig dev,
                          Replacement replacement = Replacement::kRoundRobin,
                          RuntimeCosts costs = RuntimeCosts{});

  /// Run the region over items [0, n) with the given launch geometry.
  /// Throws hpac::ConfigError when the configuration cannot run (AC state
  /// exceeding shared memory, tables-per-warp not dividing the warp size,
  /// iACT without uniform inputs, invalid launch).
  RegionReport run(const pragma::ApproxSpec& spec, const RegionBinding& binding,
                   std::uint64_t n, const sim::LaunchConfig& launch) const;

  /// Composed directives, the paper's Figure 2 idiom: perforation on the
  /// parallel loop plus memoization inside the surviving iterations
  ///
  ///   #pragma approx perfo(small:4)
  ///   #pragma omp ... for
  ///   for (...) {
  ///     #pragma approx memo(in:10:0.5f) in(...) out(...)
  ///     ...
  ///   }
  ///
  /// `perfo_spec` must be a perforation directive and `memo_spec` a
  /// TAF/iACT directive; perforated iterations are skipped before the
  /// memoization logic sees them (and do not touch AC state).
  RegionReport run_composed(const pragma::ApproxSpec& perfo_spec,
                            const pragma::ApproxSpec& memo_spec, const RegionBinding& binding,
                            std::uint64_t n, const sim::LaunchConfig& launch) const;

  /// Shared-memory footprint of the AC state for one block under `spec`
  /// (0 for perforation/baseline). Exposed for occupancy tests and for the
  /// Figure 3 accounting.
  std::size_t ac_state_bytes_per_block(const pragma::ApproxSpec& spec,
                                       const RegionBinding& binding,
                                       const sim::LaunchConfig& launch) const;

  const sim::DeviceConfig& device() const { return dev_; }

  /// Per-executor parallelism knobs (seeded from `default_tuning()`).
  void set_tuning(const ExecTuning& tuning) { tuning_ = tuning; }
  const ExecTuning& tuning() const { return tuning_; }

  /// Process-wide default tuning picked up by every subsequently
  /// constructed executor — the hook tests and benches use to force the
  /// scalar-adapter or team-parallel paths inside apps that construct
  /// their own executors.
  static void set_default_tuning(const ExecTuning& tuning);
  static ExecTuning default_tuning();

  /// Convenience for the CLIs' `--audit` flag: clone the current default
  /// tuning, set the audit knobs, reinstall. Every executor constructed
  /// afterwards (the registry apps build their own) runs audited.
  static void set_default_audit(audit::AuditMode mode, bool differential = true);

  /// Extent-image memoization counters of this executor's differential
  /// audits (hits = O(n) walks skipped).
  audit::ExtentImageCache::Stats audit_cache_stats() const {
    return audit_extent_cache_.stats();
  }

 private:
  RegionReport run_impl(const pragma::ApproxSpec& spec, const RegionBinding& binding,
                        std::uint64_t n, const sim::LaunchConfig& launch,
                        std::size_t ac_bytes, const pragma::PerfoParams* composed_perfo) const;

  sim::DeviceConfig dev_;
  Replacement replacement_;
  RuntimeCosts costs_;
  ExecTuning tuning_;
  /// Mutable because `run()` is const (launching does not change what the
  /// executor computes) while the cache learns shapes as launches go by.
  mutable audit::ExtentImageCache audit_extent_cache_;
};

}  // namespace hpac::approx
