#pragma once

#include <cstdint>

#include "sim/warp.hpp"

namespace hpac::approx {

/// Warp-level majority rule (paper §3.3): the warp approximates iff a
/// strict majority of its *active* lanes meet the activation criteria
/// (`popcount(ballot(wish)) * 2 > popcount(active)`).
bool warp_majority(sim::LaneMask wishes, sim::LaneMask active);

/// Block-level tally. On hardware each warp's leader atomically adds its
/// ballot popcount to a shared-memory counter and every thread reads the
/// total after a barrier (paper §3.3). The executor mirrors those two
/// phases: `add` per warp, then `majority` once all warps contributed.
class BlockTally {
 public:
  void add(sim::LaneMask wishes, sim::LaneMask active);
  bool majority() const;
  int wish_count() const { return wish_; }
  int active_count() const { return active_; }
  void reset();

 private:
  int wish_ = 0;
  int active_ = 0;
};

}  // namespace hpac::approx
