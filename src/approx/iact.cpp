#include "approx/iact.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hpac::approx {

namespace detail {
void throw_probe_mismatch() { throw Error("probe dimensionality mismatch"); }
}  // namespace detail

double euclidean_distance(std::span<const double> a, std::span<const double> b) {
  HPAC_REQUIRE(a.size() == b.size(), "distance between vectors of different size");
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return std::sqrt(sq);
}

IactTable::IactTable(int table_size, int in_dims, int out_dims, Replacement policy,
                     std::span<double> storage)
    : table_size_(table_size),
      in_dims_(in_dims),
      out_dims_(out_dims),
      policy_(policy),
      storage_(storage),
      valid_(static_cast<std::size_t>(table_size), false),
      referenced_(static_cast<std::size_t>(table_size), false) {
  HPAC_REQUIRE(table_size >= 1, "iACT table size must be >= 1");
  HPAC_REQUIRE(in_dims >= 1, "iACT requires at least one input dimension");
  HPAC_REQUIRE(out_dims >= 1, "iACT requires at least one output dimension");
  HPAC_REQUIRE(storage.size() >= storage_doubles(table_size, in_dims, out_dims),
               "iACT storage span too small");
}

std::size_t IactTable::storage_doubles(int table_size, int in_dims, int out_dims) {
  return static_cast<std::size_t>(table_size) *
         (static_cast<std::size_t>(in_dims) + static_cast<std::size_t>(out_dims));
}

std::size_t IactTable::footprint_bytes(int table_size, int in_dims, int out_dims) {
  // Entries + one validity byte and one reference byte per row + cursor.
  return storage_doubles(table_size, in_dims, out_dims) * sizeof(double) +
         static_cast<std::size_t>(table_size) * 2 + sizeof(std::int32_t);
}

void IactTable::reset() {
  std::fill(valid_.begin(), valid_.end(), false);
  std::fill(referenced_.begin(), referenced_.end(), false);
  cursor_ = 0;
  valid_count_ = 0;
}

void IactTable::mark_used(int index) {
  if (policy_ != Replacement::kClock) return;
  HPAC_REQUIRE(index >= 0 && index < table_size_, "mark_used index out of range");
  referenced_[static_cast<std::size_t>(index)] = true;
}

int IactTable::victim_index() {
  if (valid_count_ < table_size_) {
    // Fill empty slots first under either policy.
    for (int i = 0; i < table_size_; ++i) {
      if (!valid_[static_cast<std::size_t>(i)]) return i;
    }
  }
  if (policy_ == Replacement::kRoundRobin) {
    const int victim = cursor_;
    cursor_ = (cursor_ + 1) % table_size_;
    return victim;
  }
  // CLOCK: advance the hand, clearing reference bits, until an
  // unreferenced entry is found.
  for (;;) {
    const int i = cursor_;
    cursor_ = (cursor_ + 1) % table_size_;
    if (!referenced_[static_cast<std::size_t>(i)]) return i;
    referenced_[static_cast<std::size_t>(i)] = false;
  }
}

void IactTable::insert(std::span<const double> in, std::span<const double> out) {
  HPAC_REQUIRE(in.size() == static_cast<std::size_t>(in_dims_), "insert input size mismatch");
  HPAC_REQUIRE(out.size() == static_cast<std::size_t>(out_dims_), "insert output size mismatch");
  const int slot = victim_index();
  const std::size_t row = static_cast<std::size_t>(slot) *
                          (static_cast<std::size_t>(in_dims_) + out_dims_);
  for (int d = 0; d < in_dims_; ++d) storage_[row + static_cast<std::size_t>(d)] = in[d];
  for (int d = 0; d < out_dims_; ++d) {
    storage_[row + static_cast<std::size_t>(in_dims_) + static_cast<std::size_t>(d)] = out[d];
  }
  if (!valid_[static_cast<std::size_t>(slot)]) {
    valid_[static_cast<std::size_t>(slot)] = true;
    ++valid_count_;
  }
  referenced_[static_cast<std::size_t>(slot)] = false;
}

std::span<const double> IactTable::input_at(int index) const {
  HPAC_REQUIRE(index >= 0 && index < table_size_, "input_at index out of range");
  const std::size_t row = static_cast<std::size_t>(index) *
                          (static_cast<std::size_t>(in_dims_) + out_dims_);
  return storage_.subspan(row, static_cast<std::size_t>(in_dims_));
}

std::span<const double> IactTable::output_at(int index) const {
  HPAC_REQUIRE(index >= 0 && index < table_size_, "output_at index out of range");
  const std::size_t row = static_cast<std::size_t>(index) *
                          (static_cast<std::size_t>(in_dims_) + out_dims_);
  return storage_.subspan(row + static_cast<std::size_t>(in_dims_),
                          static_cast<std::size_t>(out_dims_));
}

}  // namespace hpac::approx
