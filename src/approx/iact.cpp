#include "approx/iact.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/simd.hpp"

namespace hpac::approx {

namespace detail {
void throw_probe_mismatch() { throw Error("probe dimensionality mismatch"); }

ScanFn select_iact_scan(int in_dims, simd::Level level) {
  // Widest-first with fall-through: a level whose TU was not compiled
  // (or a non-x86 host) degrades to the next narrower ISA, and kOff
  // always dispatches the scalar reference scan.
  if (level >= simd::Level::kAvx2) {
    if (ScanFn fn = iact_scan_fn_avx2(in_dims)) return fn;
  }
  if (level >= simd::Level::kSse2) {
    if (ScanFn fn = iact_scan_fn_sse2(in_dims)) return fn;
  }
  return nullptr;
}
}  // namespace detail

double euclidean_distance(std::span<const double> a, std::span<const double> b) {
  HPAC_REQUIRE(a.size() == b.size(), "distance between vectors of different size");
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return std::sqrt(sq);
}

IactTable::IactTable(int table_size, int in_dims, int out_dims, Replacement policy,
                     std::span<double> storage)
    : table_size_(table_size),
      in_dims_(in_dims),
      out_dims_(out_dims),
      policy_(policy),
      storage_(storage),
      valid_(static_cast<std::size_t>(table_size), false),
      referenced_(static_cast<std::size_t>(table_size), false) {
  HPAC_REQUIRE(table_size >= 1, "iACT table size must be >= 1");
  HPAC_REQUIRE(in_dims >= 1, "iACT requires at least one input dimension");
  HPAC_REQUIRE(out_dims >= 1, "iACT requires at least one output dimension");
  HPAC_REQUIRE(storage.size() >= storage_doubles(table_size, in_dims, out_dims),
               "iACT storage span too small");
  scan_fn_ = detail::select_iact_scan(in_dims_, simd::active_level());
  if (scan_fn_ != nullptr) {
    soa_.assign(static_cast<std::size_t>(table_size) * static_cast<std::size_t>(in_dims), 0.0);
  }
}

std::size_t IactTable::storage_doubles(int table_size, int in_dims, int out_dims) {
  return static_cast<std::size_t>(table_size) *
         (static_cast<std::size_t>(in_dims) + static_cast<std::size_t>(out_dims));
}

std::size_t IactTable::footprint_bytes(int table_size, int in_dims, int out_dims) {
  // Entries + one validity byte and one reference byte per row + cursor.
  return storage_doubles(table_size, in_dims, out_dims) * sizeof(double) +
         static_cast<std::size_t>(table_size) * 2 + sizeof(std::int32_t);
}

void IactTable::reset() {
  std::fill(valid_.begin(), valid_.end(), false);
  std::fill(referenced_.begin(), referenced_.end(), false);
  cursor_ = 0;
  valid_count_ = 0;
}

void IactTable::mark_used(int index) {
  if (policy_ != Replacement::kClock) return;
  HPAC_REQUIRE(index >= 0 && index < table_size_, "mark_used index out of range");
  referenced_[static_cast<std::size_t>(index)] = true;
}

int IactTable::victim_index() {
  if (valid_count_ < table_size_) {
    // Fill empty slots first under either policy. Valid entries always
    // occupy the slot prefix [0, valid_count_) — the same invariant the
    // scan's no-validity-check fast path rests on — so the first empty
    // slot IS valid_count_; no rescan from 0 per insert (was O(n²) fill).
    return valid_count_;
  }
  if (policy_ == Replacement::kRoundRobin) {
    const int victim = cursor_;
    cursor_ = (cursor_ + 1) % table_size_;
    return victim;
  }
  // CLOCK: advance the hand, clearing reference bits, until an
  // unreferenced entry is found.
  for (;;) {
    const int i = cursor_;
    cursor_ = (cursor_ + 1) % table_size_;
    if (!referenced_[static_cast<std::size_t>(i)]) return i;
    referenced_[static_cast<std::size_t>(i)] = false;
  }
}

void IactTable::insert(std::span<const double> in, std::span<const double> out) {
  HPAC_REQUIRE(in.size() == static_cast<std::size_t>(in_dims_), "insert input size mismatch");
  HPAC_REQUIRE(out.size() == static_cast<std::size_t>(out_dims_), "insert output size mismatch");
  const int slot = victim_index();
  const std::size_t row = static_cast<std::size_t>(slot) *
                          (static_cast<std::size_t>(in_dims_) + out_dims_);
  for (int d = 0; d < in_dims_; ++d) storage_[row + static_cast<std::size_t>(d)] = in[d];
  if (!soa_.empty()) {
    for (int d = 0; d < in_dims_; ++d) {
      soa_[static_cast<std::size_t>(d) * static_cast<std::size_t>(table_size_) +
           static_cast<std::size_t>(slot)] = in[d];
    }
  }
  for (int d = 0; d < out_dims_; ++d) {
    storage_[row + static_cast<std::size_t>(in_dims_) + static_cast<std::size_t>(d)] = out[d];
  }
  if (!valid_[static_cast<std::size_t>(slot)]) {
    valid_[static_cast<std::size_t>(slot)] = true;
    ++valid_count_;
  }
  referenced_[static_cast<std::size_t>(slot)] = false;
}

std::span<const double> IactTable::input_at(int index) const {
  HPAC_REQUIRE(index >= 0 && index < table_size_, "input_at index out of range");
  const std::size_t row = static_cast<std::size_t>(index) *
                          (static_cast<std::size_t>(in_dims_) + out_dims_);
  return storage_.subspan(row, static_cast<std::size_t>(in_dims_));
}

std::span<const double> IactTable::output_at(int index) const {
  HPAC_REQUIRE(index >= 0 && index < table_size_, "output_at index out of range");
  const std::size_t row = static_cast<std::size_t>(index) *
                          (static_cast<std::size_t>(in_dims_) + out_dims_);
  return storage_.subspan(row + static_cast<std::size_t>(in_dims_),
                          static_cast<std::size_t>(out_dims_));
}

}  // namespace hpac::approx
