#pragma once

#include <cstdint>

#include "pragma/spec.hpp"

namespace hpac::approx {

/// CPU-style perforation predicate: decides from the *original loop
/// iteration index* whether the iteration is dropped (paper §2.3).
///
///  * small:M  — skip one of every M iterations (the last of each group)
///  * large:M  — execute one of every M iterations (the first of each group)
///  * ini:f    — skip the first floor(f*n) iterations
///  * fini:f   — skip the last floor(f*n) iterations
///
/// On a GPU, adjacent iterations map to adjacent lanes, so small/large
/// patterns split the lanes of a warp between the execute and skip paths —
/// the divergence and memory fragmentation the paper's herded variant
/// eliminates.
bool perfo_skip_item(const pragma::PerfoParams& params, std::uint64_t item, std::uint64_t n);

/// Herded perforation predicate (paper §3.1.5): decides from the
/// *grid-stride step index*, so every thread in the grid drops the same
/// iterations and warp control flow stays uniform.
bool perfo_skip_step(const pragma::PerfoParams& params, std::uint64_t step,
                     std::uint64_t total_steps);

/// The fraction of iterations a perforation configuration drops; used by
/// tests and by the harness to sanity-check measured skip counts.
double perfo_expected_skip_fraction(const pragma::PerfoParams& params);

}  // namespace hpac::approx
