// SSE2 iACT table-scan kernels (128-bit lanes, two rows per step). SSE2
// is part of the x86-64 baseline, so this TU needs no special flags; on
// non-x86 hosts it compiles to a stub and dispatch stays scalar.

#include "approx/iact_scan.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <emmintrin.h>

#include "approx/iact_scan_impl.hpp"

namespace hpac::approx::detail {

namespace {

struct Sse2Ops {
  static constexpr int kWidth = 2;
  using V = __m128d;
  static V zero() { return _mm_setzero_pd(); }
  static V broadcast(double x) { return _mm_set1_pd(x); }
  static V loadu(const double* p) { return _mm_loadu_pd(p); }
  static V sub(V a, V b) { return _mm_sub_pd(a, b); }
  static V mul(V a, V b) { return _mm_mul_pd(a, b); }
  static V add(V a, V b) { return _mm_add_pd(a, b); }
  static bool all_gt(V a, V b) { return _mm_movemask_pd(_mm_cmpgt_pd(a, b)) == 0x3; }
  static void store(double* p, V a) { _mm_storeu_pd(p, a); }
};

}  // namespace

ScanFn iact_scan_fn_sse2(int in_dims) { return select_scan_impl<Sse2Ops>(in_dims); }

}  // namespace hpac::approx::detail

#else

namespace hpac::approx::detail {

ScanFn iact_scan_fn_sse2(int) { return nullptr; }

}  // namespace hpac::approx::detail

#endif
