#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>

#include "pragma/spec.hpp"

namespace hpac::approx {

/// Per-thread TAF (temporal approximate function memoization) state machine
/// (paper §2.3 and §3.1.3).
///
/// The GPU algorithm (Figure 4d) gives every thread a private state machine
/// over the iterations of its own grid-stride loop: the thread records the
/// outputs of its last `hSize` accurate executions in a sliding window;
/// when the window's relative standard deviation falls below the user
/// threshold the thread enters a *stable regime* and answers the next
/// `pSize` invocations with its most recent output instead of computing.
///
/// Storage lives in the block's shared memory (`SharedMemoryArena`), which
/// is the paper's key memory design: state is sized by resident threads,
/// not total threads. Multi-dimensional outputs keep one window per output
/// dimension; the activation criterion is the *maximum* RSD across
/// dimensions (the conservative choice: every output must look stable).
///
/// RSD uses a sign-robust denominator (mean |value| instead of |mean|): it
/// coincides with the paper's sigma/mu whenever the window shares a sign,
/// and avoids a division by ~zero for mean-zero outputs such as force
/// components (see DESIGN.md, substitutions).
class TafState {
 public:
  /// `storage` must provide at least `storage_doubles(...)` doubles; the
  /// window and the last-output slot are carved from it.
  TafState(const pragma::TafParams& params, int out_dims, std::span<double> storage);

  /// Doubles of shared memory one thread's TAF state occupies.
  static std::size_t storage_doubles(int history_size, int out_dims);
  /// Bytes including the integer bookkeeping (cursor, fill count, credits).
  static std::size_t footprint_bytes(int history_size, int out_dims);

  /// Return the state machine to its just-constructed state (empty window,
  /// no credits, no prediction) without touching the storage span. The
  /// executor reuses one set of states across all teams of a launch —
  /// `reset()` between teams is the paper's "destroyed at kernel end"
  /// semantics without the per-team reallocation.
  void reset() {
    filled_ = 0;
    cursor_ = 0;
    credits_ = 0;
    has_last_ = false;
  }

  /// Activation function: true while the thread holds prediction credits.
  bool should_approximate() const { return credits_ > 0; }

  /// Whether predict() has a meaningful value to return (at least one
  /// accurate execution recorded). Minority lanes forced to approximate by
  /// a group decision before their first accurate run have no prediction.
  bool has_prediction() const { return has_last_; }

  /// Record the outputs of an accurate execution; slides the window and,
  /// when the window is full and max-RSD < threshold, enters the stable
  /// regime (granting `pSize` credits) and restarts the window. Defined
  /// inline below — it runs once per accurate item in the executor's hot
  /// loop.
  void record_accurate(std::span<const double> outputs);

  /// Produce the memoized prediction (the most recent accurate output).
  /// Consumes one credit when available; forced predictions (credits == 0)
  /// are permitted for group decisions and consume nothing. Inline for the
  /// same reason as `record_accurate`.
  void predict(std::span<double> outputs);

  int credits() const { return credits_; }
  int window_fill() const { return filled_; }
  /// Max-RSD of the current window; +inf until the window is full.
  /// Exposed for tests and for the harness's diagnostics.
  double window_rsd() const;

 private:
  pragma::TafParams params_;
  int out_dims_;
  std::span<double> window_;  ///< ring buffer, hSize rows x out_dims
  std::span<double> last_;    ///< latest accurate output
  int filled_ = 0;
  int cursor_ = 0;
  int credits_ = 0;
  bool has_last_ = false;
};

namespace detail {
/// Out-of-line throw keeps the inlined state-machine paths free of
/// exception machinery.
[[noreturn]] void throw_taf_dims_mismatch();
}  // namespace detail

inline void TafState::record_accurate(std::span<const double> outputs) {
  if (outputs.size() != static_cast<std::size_t>(out_dims_)) {
    detail::throw_taf_dims_mismatch();
  }
  for (int d = 0; d < out_dims_; ++d) {
    window_[static_cast<std::size_t>(cursor_) * out_dims_ + d] = outputs[d];
    last_[static_cast<std::size_t>(d)] = outputs[d];
  }
  has_last_ = true;
  cursor_ = (cursor_ + 1) % params_.history_size;
  filled_ = std::min(filled_ + 1, params_.history_size);
  if (filled_ == params_.history_size && window_rsd() < params_.rsd_threshold) {
    // Stable regime: grant pSize predictions and restart the history so the
    // next decision is based on fresh post-regime outputs.
    credits_ = params_.prediction_size;
    filled_ = 0;
    cursor_ = 0;
  }
}

inline void TafState::predict(std::span<double> outputs) {
  if (outputs.size() != static_cast<std::size_t>(out_dims_)) {
    detail::throw_taf_dims_mismatch();
  }
  for (int d = 0; d < out_dims_; ++d) {
    outputs[static_cast<std::size_t>(d)] = has_last_ ? last_[static_cast<std::size_t>(d)] : 0.0;
  }
  if (credits_ > 0) --credits_;
}

}  // namespace hpac::approx
