#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pragma/spec.hpp"

namespace hpac::approx {

/// Per-thread TAF (temporal approximate function memoization) state machine
/// (paper §2.3 and §3.1.3).
///
/// The GPU algorithm (Figure 4d) gives every thread a private state machine
/// over the iterations of its own grid-stride loop: the thread records the
/// outputs of its last `hSize` accurate executions in a sliding window;
/// when the window's relative standard deviation falls below the user
/// threshold the thread enters a *stable regime* and answers the next
/// `pSize` invocations with its most recent output instead of computing.
///
/// Storage lives in the block's shared memory (`SharedMemoryArena`), which
/// is the paper's key memory design: state is sized by resident threads,
/// not total threads. Multi-dimensional outputs keep one window per output
/// dimension; the activation criterion is the *maximum* RSD across
/// dimensions (the conservative choice: every output must look stable).
///
/// RSD uses a sign-robust denominator (mean |value| instead of |mean|): it
/// coincides with the paper's sigma/mu whenever the window shares a sign,
/// and avoids a division by ~zero for mean-zero outputs such as force
/// components (see DESIGN.md, substitutions).
class TafState {
 public:
  /// `storage` must provide at least `storage_doubles(...)` doubles; the
  /// window and the last-output slot are carved from it.
  TafState(const pragma::TafParams& params, int out_dims, std::span<double> storage);

  /// Doubles of shared memory one thread's TAF state occupies.
  static std::size_t storage_doubles(int history_size, int out_dims);
  /// Bytes including the integer bookkeeping (cursor, fill count, credits).
  static std::size_t footprint_bytes(int history_size, int out_dims);

  /// Return the state machine to its just-constructed state (empty window,
  /// no credits, no prediction) without touching the storage span. The
  /// executor reuses one set of states across all teams of a launch —
  /// `reset()` between teams is the paper's "destroyed at kernel end"
  /// semantics without the per-team reallocation.
  void reset() {
    filled_ = 0;
    cursor_ = 0;
    credits_ = 0;
    has_last_ = false;
    std::fill(running_.begin(), running_.end(), 0.0);
  }

  /// Activation function: true while the thread holds prediction credits.
  bool should_approximate() const { return credits_ > 0; }

  /// Whether predict() has a meaningful value to return (at least one
  /// accurate execution recorded). Minority lanes forced to approximate by
  /// a group decision before their first accurate run have no prediction.
  bool has_prediction() const { return has_last_; }

  /// Record the outputs of an accurate execution; slides the window and,
  /// when the window is full and max-RSD < threshold, enters the stable
  /// regime (granting `pSize` credits) and restarts the window. Defined
  /// inline below — it runs once per accurate item in the executor's hot
  /// loop.
  void record_accurate(std::span<const double> outputs);

  /// Produce the memoized prediction (the most recent accurate output).
  /// Consumes one credit when available; forced predictions (credits == 0)
  /// are permitted for group decisions and consume nothing. Inline for the
  /// same reason as `record_accurate`.
  void predict(std::span<double> outputs);

  int credits() const { return credits_; }
  int window_fill() const { return filled_; }
  /// Max-RSD of the current window; +inf until the window is full.
  /// Exposed for tests and for the harness's diagnostics.
  ///
  /// O(out_dims): computed from the running sum / |value| sum / squared
  /// sum that `record_accurate` maintains incrementally, instead of the
  /// historical O(history_size * out_dims) two-pass recompute. This is
  /// the ONLY formulation — there is no per-build fallback — so TAF
  /// activation decisions (and therefore sweep CSVs) are identical
  /// across scalar/SIMD builds and vector widths. The change in
  /// summation shape shifted the RSD bits once, against re-captured
  /// goldens (tests/test_taf.cpp, TafGolden.*). Catastrophic
  /// cancellation in `E[x²] − μ²` is clamped at zero variance.
  double window_rsd() const;

 private:
  pragma::TafParams params_;
  int out_dims_;
  std::span<double> window_;  ///< ring buffer, hSize rows x out_dims
  std::span<double> last_;    ///< latest accurate output
  /// Running per-dimension window statistics, `3 * out_dims` doubles:
  /// [0, D) value sums, [D, 2D) |value| sums, [2D, 3D) squared sums.
  /// Host-side bookkeeping for the O(out_dims) `window_rsd`; NOT part of
  /// the modeled shared-memory footprint (a GPU implementation keeps
  /// these in registers), so `storage_doubles`/`footprint_bytes` — and
  /// every feasibility decision — are unchanged.
  std::vector<double> running_;
  int filled_ = 0;
  int cursor_ = 0;
  int credits_ = 0;
  bool has_last_ = false;
};

namespace detail {
/// Out-of-line throw keeps the inlined state-machine paths free of
/// exception machinery.
[[noreturn]] void throw_taf_dims_mismatch();
}  // namespace detail

inline void TafState::record_accurate(std::span<const double> outputs) {
  if (outputs.size() != static_cast<std::size_t>(out_dims_)) {
    detail::throw_taf_dims_mismatch();
  }
  // Incremental statistics: when the full ring wraps, the value being
  // overwritten leaves the running sums before the new one enters. The
  // subtract-then-add sequence is deterministic, so any accumulated
  // rounding drift is identical on every build — bit-stable CSVs.
  const bool window_full = filled_ == params_.history_size;
  double* sums = running_.data();
  double* abs_sums = sums + out_dims_;
  double* sq_sums = abs_sums + out_dims_;
  for (int d = 0; d < out_dims_; ++d) {
    const std::size_t slot = static_cast<std::size_t>(cursor_) * out_dims_ + d;
    const double v = outputs[d];
    if (window_full) {
      const double old = window_[slot];
      sums[d] -= old;
      abs_sums[d] -= std::abs(old);
      sq_sums[d] -= old * old;
    }
    sums[d] += v;
    abs_sums[d] += std::abs(v);
    sq_sums[d] += v * v;
    window_[slot] = v;
    last_[static_cast<std::size_t>(d)] = v;
  }
  has_last_ = true;
  cursor_ = (cursor_ + 1) % params_.history_size;
  filled_ = std::min(filled_ + 1, params_.history_size);
  if (filled_ == params_.history_size && window_rsd() < params_.rsd_threshold) {
    // Stable regime: grant pSize predictions and restart the history so the
    // next decision is based on fresh post-regime outputs.
    credits_ = params_.prediction_size;
    filled_ = 0;
    cursor_ = 0;
    std::fill(running_.begin(), running_.end(), 0.0);
  }
}

inline void TafState::predict(std::span<double> outputs) {
  if (outputs.size() != static_cast<std::size_t>(out_dims_)) {
    detail::throw_taf_dims_mismatch();
  }
  for (int d = 0; d < out_dims_; ++d) {
    outputs[static_cast<std::size_t>(d)] = has_last_ ? last_[static_cast<std::size_t>(d)] : 0.0;
  }
  if (credits_ > 0) --credits_;
}

}  // namespace hpac::approx
