#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "pragma/spec.hpp"

namespace hpac::approx {

/// Per-thread TAF (temporal approximate function memoization) state machine
/// (paper §2.3 and §3.1.3).
///
/// The GPU algorithm (Figure 4d) gives every thread a private state machine
/// over the iterations of its own grid-stride loop: the thread records the
/// outputs of its last `hSize` accurate executions in a sliding window;
/// when the window's relative standard deviation falls below the user
/// threshold the thread enters a *stable regime* and answers the next
/// `pSize` invocations with its most recent output instead of computing.
///
/// Storage lives in the block's shared memory (`SharedMemoryArena`), which
/// is the paper's key memory design: state is sized by resident threads,
/// not total threads. Multi-dimensional outputs keep one window per output
/// dimension; the activation criterion is the *maximum* RSD across
/// dimensions (the conservative choice: every output must look stable).
///
/// RSD uses a sign-robust denominator (mean |value| instead of |mean|): it
/// coincides with the paper's sigma/mu whenever the window shares a sign,
/// and avoids a division by ~zero for mean-zero outputs such as force
/// components (see DESIGN.md, substitutions).
class TafState {
 public:
  /// `storage` must provide at least `storage_doubles(...)` doubles; the
  /// window and the last-output slot are carved from it.
  TafState(const pragma::TafParams& params, int out_dims, std::span<double> storage);

  /// Doubles of shared memory one thread's TAF state occupies.
  static std::size_t storage_doubles(int history_size, int out_dims);
  /// Bytes including the integer bookkeeping (cursor, fill count, credits).
  static std::size_t footprint_bytes(int history_size, int out_dims);

  /// Activation function: true while the thread holds prediction credits.
  bool should_approximate() const { return credits_ > 0; }

  /// Whether predict() has a meaningful value to return (at least one
  /// accurate execution recorded). Minority lanes forced to approximate by
  /// a group decision before their first accurate run have no prediction.
  bool has_prediction() const { return has_last_; }

  /// Record the outputs of an accurate execution; slides the window and,
  /// when the window is full and max-RSD < threshold, enters the stable
  /// regime (granting `pSize` credits) and restarts the window.
  void record_accurate(std::span<const double> outputs);

  /// Produce the memoized prediction (the most recent accurate output).
  /// Consumes one credit when available; forced predictions (credits == 0)
  /// are permitted for group decisions and consume nothing.
  void predict(std::span<double> outputs);

  int credits() const { return credits_; }
  int window_fill() const { return filled_; }
  /// Max-RSD of the current window; +inf until the window is full.
  /// Exposed for tests and for the harness's diagnostics.
  double window_rsd() const;

 private:
  pragma::TafParams params_;
  int out_dims_;
  std::span<double> window_;  ///< ring buffer, hSize rows x out_dims
  std::span<double> last_;    ///< latest accurate output
  int filled_ = 0;
  int cursor_ = 0;
  int credits_ = 0;
  bool has_last_ = false;
};

}  // namespace hpac::approx
