#include "approx/perforation.hpp"

#include "common/error.hpp"

namespace hpac::approx {

namespace {
bool skip_by_index(const pragma::PerfoParams& params, std::uint64_t index, std::uint64_t total) {
  using pragma::PerfoKind;
  switch (params.kind) {
    case PerfoKind::kSmall:
      // Skip the last of every M indices: a loop shorter than M runs
      // unperforated, so degenerate launches (one grid-stride step) are
      // not wiped out.
      return index % static_cast<std::uint64_t>(params.stride) ==
             static_cast<std::uint64_t>(params.stride) - 1;
    case PerfoKind::kLarge:
      // Execute the first of every M indices, skip the rest.
      return index % static_cast<std::uint64_t>(params.stride) != 0;
    case PerfoKind::kIni:
      return index < static_cast<std::uint64_t>(params.fraction * static_cast<double>(total));
    case PerfoKind::kFini: {
      const auto dropped =
          static_cast<std::uint64_t>(params.fraction * static_cast<double>(total));
      return index >= total - dropped;
    }
  }
  return false;
}
}  // namespace

bool perfo_skip_item(const pragma::PerfoParams& params, std::uint64_t item, std::uint64_t n) {
  HPAC_REQUIRE(item < n, "perforation item index out of range");
  return skip_by_index(params, item, n);
}

bool perfo_skip_step(const pragma::PerfoParams& params, std::uint64_t step,
                     std::uint64_t total_steps) {
  HPAC_REQUIRE(step < total_steps, "perforation step index out of range");
  return skip_by_index(params, step, total_steps);
}

double perfo_expected_skip_fraction(const pragma::PerfoParams& params) {
  using pragma::PerfoKind;
  switch (params.kind) {
    case PerfoKind::kSmall:
      return 1.0 / static_cast<double>(params.stride);
    case PerfoKind::kLarge:
      return 1.0 - 1.0 / static_cast<double>(params.stride);
    case PerfoKind::kIni:
    case PerfoKind::kFini:
      return params.fraction;
  }
  return 0.0;
}

}  // namespace hpac::approx
