#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/annotated_mutex.hpp"

namespace hpac::approx {

struct RegionBinding;

/// Commit-conflict auditing: runtime validation of a binding's
/// `independent_items` declaration (paper hazard class: silent errors from
/// mislabeled approximation regions; ROADMAP "automatic commit-conflict
/// detector").
///
/// The engine's team-sharded fast path is only sound when region
/// invocations of different items really touch disjoint state. Instead of
/// trusting the app author, the auditor tags every committed item with the
/// byte intervals its commit writes (declared by the binding's
/// `commit_extents` callback), folds the per-shard interval logs after the
/// launch, and flags any overlap between distinct items. A differential
/// mode additionally re-executes the launch under a deliberately different
/// — but equally legal — schedule and byte-compares the committed output,
/// catching read-side dependences that address tagging alone cannot see.
namespace audit {

/// What the executor does with audit findings (ExecTuning::audit_mode).
enum class AuditMode {
  kOff,      ///< no instrumentation at all (the dispatch path is untouched)
  kReport,   ///< collect ConflictReports into ExecStats::conflicts
  kEnforce,  ///< throw hpac::ConfigError on the first conflicting launch
};

const char* to_string(AuditMode mode);

/// Parse a CLI-style mode name ("off" / "report" / "enforce").
std::optional<AuditMode> audit_mode_from_string(std::string_view name);

/// The token every audit surface embeds in user-facing text (report-mode
/// record notes, enforce-mode ConfigError messages). Campaign counting
/// keys on it, so all three sites must share this constant rather than
/// re-spelling the word.
inline constexpr const char* kConflictToken = "commit-conflict";

/// One audit finding. Byte positions are offsets into the contiguous run
/// of audited bytes containing the conflict (for the typical one-array
/// commit surface: the offset into that array), not raw pointers, so
/// reports are deterministic across processes and safe to persist in
/// result notes. (Corner case: if the allocator happens to place two
/// audited arrays back-to-back they fold into one run and offsets in the
/// higher one shift by the lower one's size.)
struct ConflictReport {
  enum class Kind {
    kWriteWrite,      ///< two distinct items committed overlapping bytes
    kReadWrite,       ///< one item's declared reads overlap another's writes
    kDifferential,    ///< committed bytes changed under a reordered re-run
    kMissingExtents,  ///< independent_items binding without commit_extents
  };
  Kind kind = Kind::kWriteWrite;
  std::string binding;        ///< RegionBinding::name ("<unnamed>" if empty)
  std::uint64_t item_a = 0;   ///< lower item of the pair (owner, for kDifferential)
  std::uint64_t item_b = 0;   ///< higher item (== item_a for kDifferential)
  std::uint64_t begin = 0;    ///< first overlapping byte (relative offset)
  std::uint64_t end = 0;      ///< one past the last overlapping byte

  std::string to_string() const;
};

/// The channel a binding's extent callbacks declare intervals through.
/// `commit_extents` uses `writes` for item-exclusive output ranges and
/// `commuting` for shared state whose updates commute exactly (atomic
/// counters): commuting ranges are exempt from the overlap check but are
/// still snapshot/restored around differential re-runs so auditing never
/// changes what the application observes. `read_extents` uses `reads`.
class ExtentSink {
 public:
  void writes(const void* ptr, std::size_t len);
  void commuting(const void* ptr, std::size_t len);
  void reads(const void* ptr, std::size_t len);

  /// One tagged interval (implementation detail, public only so the log
  /// containers can name it).
  struct Entry {
    std::uintptr_t begin = 0;
    std::uintptr_t end = 0;
    std::uint64_t item = 0;
  };

 private:
  friend class ShardLog;
  friend class LaunchAudit;
  friend class ExtentImageCache;

  ExtentSink(std::vector<Entry>* writes, std::vector<Entry>* commuting,
             std::vector<Entry>* reads, std::uint64_t item)
      : writes_(writes), commuting_(commuting), reads_(reads), item_(item) {}

  void put(std::vector<Entry>* target, const void* ptr, std::size_t len) const;

  std::vector<Entry>* writes_;     ///< null → channel dropped
  std::vector<Entry>* commuting_;  ///< null → channel dropped
  std::vector<Entry>* reads_;      ///< null → channel dropped
  std::uint64_t item_;
};

/// Per-shard append-only log of audited intervals. Each executor shard
/// owns one log and records into it without synchronization (exactly like
/// its KernelTracker shard); LaunchAudit folds the logs deterministically
/// after the join.
class ShardLog {
 public:
  /// Record the intervals `binding.commit_extents` declares for `item`.
  void record_commit(const RegionBinding& binding, std::uint64_t item);
  /// Record the intervals `binding.read_extents` declares for `item`.
  void record_read(const RegionBinding& binding, std::uint64_t item);

 private:
  friend class LaunchAudit;
  std::vector<ExtentSink::Entry> writes_;
  std::vector<ExtentSink::Entry> reads_;
};

/// Opaque byte image of a launch's declared extents (see LaunchAudit).
class Snapshot {
 private:
  friend class LaunchAudit;
  std::vector<unsigned char> bytes_;
};

/// A merged contiguous byte range of audited memory.
struct ByteInterval {
  std::uintptr_t begin = 0;
  std::uintptr_t end = 0;
};

/// Memoizes the merged extent image a differential audit builds by walking
/// every item through `commit_extents` — the dominant audit cost in a
/// sweep, where the same binding launches hundreds of times with identical
/// extents. The first differential launch of a (binding, n) pair still
/// pays the full walk; while walking, the cache fits the *affine model*
/// (entry k of item i lives at `base_k + i * stride_k` with a constant
/// length — every `bind_row_commit_extents`-style binding). Later launches
/// probe only items {0, 1, n-1}: when the probes reproduce a previously
/// walk-validated shape, the cached merged intervals are reused and the
/// O(n) walk is skipped entirely. The probe includes the base addresses,
/// so a binding that commits into a different buffer each launch (ping-pong
/// stencils) simply occupies one variant slot per buffer. Non-affine
/// bindings are rebuilt exactly, per launch, as before.
///
/// Thread-safe; owned by the RegionExecutor (one cache per executor, so
/// binding addresses — the cache key — cannot collide across executors
/// whose bindings' lifetimes overlap).
class ExtentImageCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;        ///< walks skipped (probe matched a variant)
    std::uint64_t misses = 0;      ///< full walks performed
    std::uint64_t non_affine = 0;  ///< walks whose pattern was not cacheable
  };

  Stats stats() const {
    common::MutexLock lock(mutex_);
    return stats_;
  }

  /// Variants retained per (binding, n) key — enough for a ping-pong pair
  /// plus slack; the oldest variant is evicted beyond this.
  static constexpr std::size_t kMaxVariants = 4;

 private:
  friend class LaunchAudit;

  /// One extent-callback entry under the affine model. `stride` is the
  /// per-item displacement in wrapping address arithmetic, so "negative"
  /// strides work unchanged.
  struct AffineEntry {
    std::uintptr_t base = 0;
    std::uintptr_t stride = 0;
    std::size_t len = 0;
    bool operator==(const AffineEntry&) const = default;
  };
  struct Shape {
    std::vector<AffineEntry> exclusive;
    std::vector<AffineEntry> commuting;
    bool operator==(const Shape&) const = default;
  };
  struct Variant {
    Shape shape;
    std::vector<ByteInterval> exclusive_extents;
    std::vector<ByteInterval> all_extents;
  };
  using Key = std::pair<const void*, std::uint64_t>;  ///< (binding, n)

  /// Probe items {0, 1, n-1} and, on a shape match against a stored
  /// variant, fill the interval vectors and return true.
  bool lookup(const RegionBinding& binding, std::uint64_t n,
              std::vector<ByteInterval>& exclusive_extents,
              std::vector<ByteInterval>& all_extents);

  /// Record a walk-validated shape (missing shape = non-affine, counted
  /// but not stored).
  void store(const RegionBinding& binding, std::uint64_t n,
             std::optional<Shape> shape,
             const std::vector<ByteInterval>& exclusive_extents,
             const std::vector<ByteInterval>& all_extents);

  mutable common::Mutex mutex_;
  std::map<Key, std::vector<Variant>> variants_ GUARDED_BY(mutex_);
  Stats stats_ GUARDED_BY(mutex_);
};

/// Drives the audit of one region launch. Constructed before the launch
/// executes (so the differential pre-image is the true initial state),
/// handed one ShardLog per executor shard, and asked to `analyze()` after
/// the shard merge. The executor owns the policy (throw vs. report and
/// the differential re-run itself); this class owns the mechanism.
class LaunchAudit {
 public:
  /// `shards` is the launch's host-shard count (>= 1). When `differential`
  /// is set the constructor walks items [0, n) through `commit_extents`
  /// to build the union of declared intervals and snapshots its bytes —
  /// unless `cache` (optional) serves the merged image from a previous
  /// walk of the same (binding, n) shape, in which case only items
  /// {0, 1, n-1} are probed.
  LaunchAudit(const RegionBinding& binding, std::uint64_t n, std::size_t shards,
              bool differential, ExtentImageCache* cache = nullptr);

  /// False when the binding lacks `commit_extents`: no logging happens and
  /// `analyze()` yields a single kMissingExtents report instead.
  bool instrumented() const { return instrumented_; }
  bool missing_extents() const { return !instrumented_; }

  ShardLog& log(std::size_t shard) { return logs_[shard]; }

  /// Fold the shard logs and detect write/write and read/write overlaps
  /// between distinct items. Deterministic: the folded interval multiset
  /// is independent of the shard decomposition, reports are emitted in
  /// address order and capped at kMaxReports per kind.
  void analyze();

  /// Whether the executor should perform the differential re-run.
  bool differential_ready() const { return differential_ && instrumented_; }

  /// Byte image of every declared extent (exclusive and commuting).
  Snapshot take_snapshot() const;
  /// Write the pre-launch image (taken at construction) back into memory.
  void restore_pre() const;
  void restore(const Snapshot& snapshot) const;

  /// Compare `reference` (the audited run's post-image) against live
  /// memory (the re-run's post-image) over the item-exclusive extents;
  /// differing ranges become kDifferential reports attributed to the
  /// owning item via the folded write log.
  void compare_with(const Snapshot& reference);

  std::vector<ConflictReport> take_conflicts() { return std::move(conflicts_); }
  const std::string& binding_name() const { return name_; }

  /// Human-readable digest of the first few conflicts (ConfigError text).
  static std::string summarize(const std::vector<ConflictReport>& conflicts);

  static constexpr std::size_t kMaxReports = 8;
  /// Shard count of the differential re-run's reversed schedule. A fixed
  /// constant — never the machine's thread count — so findings are
  /// deterministic across hosts.
  static constexpr std::uint64_t kDifferentialShards = 4;

 private:
  using Interval = ByteInterval;

  void add_conflict(ConflictReport::Kind kind, std::uint64_t item_a, std::uint64_t item_b,
                    std::uintptr_t begin, std::uintptr_t end);
  /// Item of the folded write entry covering `addr` (first in sort order).
  std::uint64_t owner_of(std::uintptr_t addr) const;
  /// Base address of the contiguous audited run containing `addr` — the
  /// offset origin that keeps reports independent of heap layout.
  std::uintptr_t region_base_of(std::uintptr_t addr) const;

  const RegionBinding* binding_;
  std::string name_;
  bool instrumented_ = false;
  bool differential_ = false;
  std::vector<ShardLog> logs_;
  std::vector<ConflictReport> conflicts_;
  std::vector<ExtentSink::Entry> folded_writes_;  ///< sorted, kept by analyze()
  std::vector<Interval> regions_;  ///< merged contiguous audited runs (offset origins)
  std::vector<Interval> all_extents_;             ///< merged exclusive + commuting
  std::vector<Interval> exclusive_extents_;       ///< merged exclusive only
  Snapshot pre_;                                  ///< taken at construction
};

}  // namespace audit
}  // namespace hpac::approx
