#include "approx/region.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "approx/hierarchy.hpp"
#include "approx/perforation.hpp"
#include "approx/taf.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "sim/memory_model.hpp"
#include "sim/shared_memory.hpp"

namespace hpac::approx {

namespace {

using pragma::ApproxSpec;
using pragma::HierarchyLevel;
using pragma::Technique;
using sim::LaneMask;

/// Per-warp scratch carried between the decision phase and the execution
/// phase of one grid-stride step (needed because block-level decisions
/// depend on every warp's ballot).
struct WarpScratch {
  LaneMask active = 0;
  LaneMask wishes = 0;
  bool group_decision = false;
  std::vector<double> in;                     ///< gathered inputs, ws x in_dims
  std::vector<IactTable::Match> match;        ///< per-lane nearest entry
};

/// Everything one region execution needs; avoids threading a dozen
/// parameters through the per-technique drivers.
class RunContext {
 public:
  RunContext(const sim::DeviceConfig& dev, Replacement replacement, const RuntimeCosts& costs,
             const ApproxSpec& spec, const RegionBinding& binding, std::uint64_t n,
             const sim::LaunchConfig& launch, std::size_t ac_bytes,
             const pragma::PerfoParams* composed_perfo = nullptr)
      : dev_(dev),
        composed_perfo_(composed_perfo),
        replacement_(replacement),
        costs_(costs),
        spec_(spec),
        binding_(binding),
        n_(n),
        launch_(launch),
        tracker_(dev, launch, ac_bytes),
        coalesce_(dev),
        warp_size_(dev.warp_size),
        threads_per_team_(launch.threads_per_team),
        warps_per_team_(launch.warps_per_team(dev)),
        total_threads_(launch.total_threads()),
        steps_(launch.steps_for(n)) {
    stats_.shared_bytes_per_block = ac_bytes;
    out_buf_.resize(static_cast<std::size_t>(warp_size_) *
                    static_cast<std::size_t>(binding.out_dims));
    scratch_.resize(warps_per_team_);
    for (auto& s : scratch_) {
      s.in.resize(static_cast<std::size_t>(warp_size_) *
                  static_cast<std::size_t>(std::max(1, binding.in_dims)));
      s.match.resize(static_cast<std::size_t>(warp_size_));
    }
  }

  RegionReport execute() {
    switch (spec_.technique) {
      case Technique::kNone:
        run_baseline();
        break;
      case Technique::kPerforation:
        run_perforation();
        break;
      case Technique::kTafMemo:
        run_taf();
        break;
      case Technique::kIactMemo:
        run_iact();
        break;
    }
    RegionReport report;
    report.timing = tracker_.finalize();
    report.stats = stats_;
    return report;
  }

 private:
  // --- geometry helpers -------------------------------------------------

  /// Item handled by `lane` of warp `w` of `team` at grid-stride `step`.
  std::uint64_t item_of(std::uint64_t team, std::uint32_t w, int lane,
                        std::uint64_t step) const {
    const std::uint64_t tid = team * threads_per_team_ +
                              static_cast<std::uint64_t>(w) * warp_size_ +
                              static_cast<std::uint64_t>(lane);
    return step * total_threads_ + tid;
  }

  /// Lanes of this warp that are both real threads and map to items < n.
  LaneMask active_mask(std::uint64_t team, std::uint32_t w, std::uint64_t step) const {
    LaneMask mask = 0;
    for (int lane = 0; lane < warp_size_; ++lane) {
      const std::uint32_t thread_in_team = w * static_cast<std::uint32_t>(warp_size_) +
                                           static_cast<std::uint32_t>(lane);
      if (thread_in_team >= threads_per_team_) break;
      if (item_of(team, w, lane, step) < n_) mask = sim::with_lane(mask, lane);
    }
    return mask;
  }

  std::span<double> lane_out(int lane) {
    return std::span<double>(out_buf_).subspan(
        static_cast<std::size_t>(lane) * binding_.out_dims,
        static_cast<std::size_t>(binding_.out_dims));
  }

  std::span<double> lane_in(WarpScratch& s, int lane) {
    return std::span<double>(s.in).subspan(
        static_cast<std::size_t>(lane) * binding_.in_dims,
        static_cast<std::size_t>(binding_.in_dims));
  }

  /// Figure-2 composition: when a perforation directive decorates the
  /// loop around a memoized region, perforated iterations are removed
  /// before the memoization logic runs (they are counted as skipped and
  /// never touch AC state). Returns true when the *whole step* is herded
  /// away; otherwise trims the warp's active mask in place.
  bool composed_step_skipped(std::uint64_t team, std::uint64_t step) {
    if (composed_perfo_ == nullptr) return false;
    const bool bounds_based = composed_perfo_->kind == pragma::PerfoKind::kIni ||
                              composed_perfo_->kind == pragma::PerfoKind::kFini;
    if (bounds_based || !composed_perfo_->herded) return false;
    if (!perfo_skip_step(*composed_perfo_, step, steps_)) return false;
    for (std::uint32_t w = 0; w < warps_per_team_; ++w) {
      const LaneMask active = active_mask(team, w, step);
      if (active == 0) continue;
      const auto count = static_cast<std::uint64_t>(sim::popcount(active));
      stats_.region_invocations += count;
      stats_.skipped_items += count;
      tracker_.warp(team, w).charge_compute(costs_.perfo_check);
    }
    return true;
  }

  LaneMask composed_lane_filter(LaneMask active, std::uint64_t first_item,
                                sim::WarpLedger& ledger) {
    if (composed_perfo_ == nullptr || active == 0) return active;
    const bool bounds_based = composed_perfo_->kind == pragma::PerfoKind::kIni ||
                              composed_perfo_->kind == pragma::PerfoKind::kFini;
    if (!bounds_based && composed_perfo_->herded) return active;  // step-level, handled above
    LaneMask exec = active;
    for (int lane = 0; lane < warp_size_; ++lane) {
      if (!sim::lane_active(active, lane)) continue;
      const std::uint64_t item = first_item + static_cast<std::uint64_t>(lane);
      if (perfo_skip_item(*composed_perfo_, item, n_)) exec &= ~(1ull << lane);
    }
    const auto skipped = static_cast<std::uint64_t>(sim::popcount(active & ~exec));
    stats_.region_invocations += skipped;
    stats_.skipped_items += skipped;
    ledger.charge_compute(costs_.perfo_check);
    return exec;
  }

  /// Charge the memory traffic of loading per-item inputs for `mask` lanes
  /// (one latency round) and optionally storing outputs.
  void charge_item_memory(sim::WarpLedger& ledger, std::uint64_t first_item, LaneMask load_mask,
                          LaneMask store_mask) {
    if (load_mask != 0 && binding_.in_bytes > 0) {
      const std::uint32_t tx = coalesce_.unit_stride_transactions(first_item, binding_.in_bytes,
                                                                  load_mask, warp_size_);
      ledger.charge_memory(tx, 1);
    }
    if (store_mask != 0 && binding_.out_bytes > 0) {
      const std::uint32_t tx = coalesce_.unit_stride_transactions(first_item, binding_.out_bytes,
                                                                  store_mask, warp_size_);
      ledger.charge_memory(tx, 0);  // stores are fire-and-forget
    }
  }

  // --- baseline ----------------------------------------------------------

  void run_baseline() {
    for (std::uint64_t team = 0; team < launch_.num_teams; ++team) {
      for (std::uint64_t step = 0; step < steps_; ++step) {
        for (std::uint32_t w = 0; w < warps_per_team_; ++w) {
          const LaneMask active = active_mask(team, w, step);
          if (active == 0) continue;
          sim::WarpLedger& ledger = tracker_.warp(team, w);
          const std::uint64_t first_item = item_of(team, w, 0, step);
          double cost = 0;
          for (int lane = 0; lane < warp_size_; ++lane) {
            if (!sim::lane_active(active, lane)) continue;
            const std::uint64_t item = first_item + static_cast<std::uint64_t>(lane);
            binding_.accurate(item, {}, lane_out(lane));
            binding_.commit(item, lane_out(lane));
            cost = std::max(cost, binding_.accurate_cost(item));
          }
          const std::array<double, 1> paths{cost};
          ledger.charge_paths(paths);
          charge_item_memory(ledger, first_item, active, active);
          stats_.region_invocations += static_cast<std::uint64_t>(sim::popcount(active));
          stats_.accurate_items += static_cast<std::uint64_t>(sim::popcount(active));
        }
      }
    }
  }

  // --- perforation ---------------------------------------------------------

  void run_perforation() {
    const pragma::PerfoParams& perfo = *spec_.perfo;
    // ini/fini adjust the *loop bounds* (paper §3.3), so they always act
    // on item indices regardless of the herded flag; only the modulo
    // patterns (small/large) distinguish step-herded from per-iteration.
    const bool bounds_based = perfo.kind == pragma::PerfoKind::kIni ||
                              perfo.kind == pragma::PerfoKind::kFini;
    for (std::uint64_t team = 0; team < launch_.num_teams; ++team) {
      for (std::uint64_t step = 0; step < steps_; ++step) {
        const bool herded_skip =
            !bounds_based && perfo.herded && perfo_skip_step(perfo, step, steps_);
        for (std::uint32_t w = 0; w < warps_per_team_; ++w) {
          const LaneMask active = active_mask(team, w, step);
          if (active == 0) continue;
          sim::WarpLedger& ledger = tracker_.warp(team, w);
          const std::uint64_t first_item = item_of(team, w, 0, step);
          stats_.region_invocations += static_cast<std::uint64_t>(sim::popcount(active));
          ledger.charge_compute(costs_.perfo_check);

          LaneMask exec = active;
          if (perfo.herded && !bounds_based) {
            if (herded_skip) exec = 0;
          } else {
            for (int lane = 0; lane < warp_size_; ++lane) {
              if (!sim::lane_active(active, lane)) continue;
              const std::uint64_t item = first_item + static_cast<std::uint64_t>(lane);
              if (perfo_skip_item(perfo, item, n_)) exec &= ~(1ull << lane);
            }
          }

          const int skipped = sim::popcount(active) - sim::popcount(exec);
          stats_.skipped_items += static_cast<std::uint64_t>(skipped);
          if (exec == 0) continue;

          double cost = 0;
          for (int lane = 0; lane < warp_size_; ++lane) {
            if (!sim::lane_active(exec, lane)) continue;
            const std::uint64_t item = first_item + static_cast<std::uint64_t>(lane);
            binding_.accurate(item, {}, lane_out(lane));
            binding_.commit(item, lane_out(lane));
            cost = std::max(cost, binding_.accurate_cost(item));
          }
          const std::array<double, 1> paths{cost};
          ledger.charge_paths(paths);
          // A partially perforated warp still touches nearly the same
          // memory segments (fragmentation), which the coalescing model
          // captures by counting segments of the surviving lanes.
          charge_item_memory(ledger, first_item, exec, exec);
          stats_.accurate_items += static_cast<std::uint64_t>(sim::popcount(exec));
        }
      }
    }
  }

  // --- group decision helpers ---------------------------------------------

  /// Phase-A cost of the hierarchy machinery, charged per warp.
  void charge_decision_cost(sim::WarpLedger& ledger) {
    ledger.charge_compute(costs_.activation_check);
    if (spec_.level == HierarchyLevel::kWarp) {
      ledger.charge_compute(costs_.ballot);
    } else if (spec_.level == HierarchyLevel::kBlock) {
      ledger.charge_compute(costs_.ballot + costs_.atomic_add);
      ledger.charge_barrier(costs_.barrier);
    }
  }

  /// Resolve the per-lane approximate mask from the wishes and the level.
  LaneMask resolve_mask(const WarpScratch& s, bool block_decision) const {
    switch (spec_.level) {
      case HierarchyLevel::kThread:
        return s.wishes & s.active;
      case HierarchyLevel::kWarp:
        return s.group_decision ? s.active : 0;
      case HierarchyLevel::kBlock:
        return block_decision ? s.active : 0;
    }
    return 0;
  }

  void count_forced(const WarpScratch& s, LaneMask approx_mask) {
    if (spec_.level == HierarchyLevel::kThread) return;
    stats_.forced_approx +=
        static_cast<std::uint64_t>(sim::popcount(approx_mask & s.active & ~s.wishes));
    stats_.forced_accurate +=
        static_cast<std::uint64_t>(sim::popcount(s.active & ~approx_mask & s.wishes));
  }

  // --- TAF -----------------------------------------------------------------

  void run_taf() {
    const pragma::TafParams& taf = *spec_.taf;
    const int od = binding_.out_dims;
    const std::size_t per_thread = TafState::storage_doubles(taf.history_size, od);

    for (std::uint64_t team = 0; team < launch_.num_teams; ++team) {
      sim::SharedMemoryArena arena(dev_);
      std::vector<TafState> states;
      states.reserve(threads_per_team_);
      for (std::uint32_t t = 0; t < threads_per_team_; ++t) {
        states.emplace_back(taf, od, arena.alloc_doubles(per_thread));
      }

      for (std::uint64_t step = 0; step < steps_; ++step) {
        if (composed_step_skipped(team, step)) continue;
        // Phase A: activation wishes and (for warp/block) group decisions.
        BlockTally tally;
        bool team_has_active = false;
        for (std::uint32_t w = 0; w < warps_per_team_; ++w) {
          WarpScratch& s = scratch_[w];
          s.active = composed_lane_filter(active_mask(team, w, step),
                                          item_of(team, w, 0, step), tracker_.warp(team, w));
          s.wishes = 0;
          if (s.active == 0) continue;
          team_has_active = true;
          std::array<bool, 64> wish{};
          for (int lane = 0; lane < warp_size_; ++lane) {
            if (!sim::lane_active(s.active, lane)) continue;
            const std::uint32_t tid = w * static_cast<std::uint32_t>(warp_size_) +
                                      static_cast<std::uint32_t>(lane);
            wish[static_cast<std::size_t>(lane)] = states[tid].should_approximate();
          }
          s.wishes = sim::ballot(std::span<const bool>(wish.data(),
                                                       static_cast<std::size_t>(warp_size_)),
                                 s.active);
          charge_decision_cost(tracker_.warp(team, w));
          if (spec_.level == HierarchyLevel::kWarp) {
            s.group_decision = warp_majority(s.wishes, s.active);
          } else if (spec_.level == HierarchyLevel::kBlock) {
            tally.add(s.wishes, s.active);
          }
        }
        if (!team_has_active) continue;
        const bool block_decision =
            spec_.level == HierarchyLevel::kBlock && tally.majority();

        // Phase B: execute the chosen path per warp.
        for (std::uint32_t w = 0; w < warps_per_team_; ++w) {
          WarpScratch& s = scratch_[w];
          if (s.active == 0) continue;
          sim::WarpLedger& ledger = tracker_.warp(team, w);
          const std::uint64_t first_item = item_of(team, w, 0, step);
          LaneMask approx_mask = resolve_mask(s, block_decision);
          // Lanes without a prediction cannot approximate; they fall back
          // to the accurate path (only reachable for forced minorities).
          for (int lane = 0; lane < warp_size_; ++lane) {
            if (!sim::lane_active(approx_mask, lane)) continue;
            const std::uint32_t tid = w * static_cast<std::uint32_t>(warp_size_) +
                                      static_cast<std::uint32_t>(lane);
            if (!states[tid].has_prediction()) approx_mask &= ~(1ull << lane);
          }
          count_forced(s, approx_mask);
          const LaneMask acc_mask = s.active & ~approx_mask;
          stats_.region_invocations += static_cast<std::uint64_t>(sim::popcount(s.active));

          double acc_cost = 0;
          double approx_cost = 0;
          for (int lane = 0; lane < warp_size_; ++lane) {
            if (!sim::lane_active(s.active, lane)) continue;
            const std::uint32_t tid = w * static_cast<std::uint32_t>(warp_size_) +
                                      static_cast<std::uint32_t>(lane);
            const std::uint64_t item = first_item + static_cast<std::uint64_t>(lane);
            if (sim::lane_active(acc_mask, lane)) {
              binding_.accurate(item, {}, lane_out(lane));
              const int credits_before = states[tid].credits();
              states[tid].record_accurate(lane_out(lane));
              if (credits_before == 0 && states[tid].credits() > 0) {
                ++stats_.taf_stable_entries;
              }
              binding_.commit(item, lane_out(lane));
              acc_cost = std::max(acc_cost, binding_.accurate_cost(item));
            } else {
              states[tid].predict(lane_out(lane));
              binding_.commit(item, lane_out(lane));
            }
          }
          if (acc_mask != 0) {
            acc_cost += costs_.taf_record_per_value * taf.history_size * od;
            ledger.charge_shared(static_cast<std::uint32_t>(od), dev_.shared_mem_access_cycles);
          }
          if (approx_mask != 0) {
            approx_cost = costs_.taf_predict_per_value * od;
          }
          const std::array<double, 2> paths{acc_cost, approx_cost};
          ledger.charge_paths(paths);
          charge_item_memory(ledger, first_item, acc_mask, s.active);
          stats_.accurate_items += static_cast<std::uint64_t>(sim::popcount(acc_mask));
          stats_.approx_items += static_cast<std::uint64_t>(sim::popcount(approx_mask));
        }
      }
    }
  }

  // --- iACT ------------------------------------------------------------------

  void run_iact() {
    const pragma::IactParams& iact = *spec_.iact;
    const int id = binding_.in_dims;
    const int od = binding_.out_dims;
    HPAC_REQUIRE(binding_.gather != nullptr,
                 "iACT requires a gather function for the declared inputs");
    const int tpw = iact.tables_per_warp > 0 ? iact.tables_per_warp : warp_size_;
    if (tpw > warp_size_ || warp_size_ % tpw != 0) {
      throw ConfigError(strings::format(
          "tables per warp (%d) must divide the warp size (%d)", tpw, warp_size_));
    }
    const int lanes_per_table = warp_size_ / tpw;
    const std::size_t per_table = IactTable::storage_doubles(iact.table_size, id, od);
    const Replacement replacement =
        iact.clock_replacement ? Replacement::kClock : replacement_;

    for (std::uint64_t team = 0; team < launch_.num_teams; ++team) {
      sim::SharedMemoryArena arena(dev_);
      std::vector<IactTable> tables;
      tables.reserve(static_cast<std::size_t>(warps_per_team_) * static_cast<std::size_t>(tpw));
      for (std::uint32_t i = 0; i < warps_per_team_ * static_cast<std::uint32_t>(tpw); ++i) {
        tables.emplace_back(iact.table_size, id, od, replacement,
                            arena.alloc_doubles(per_table));
      }
      auto table_of = [&](std::uint32_t w, int lane) -> IactTable& {
        return tables[static_cast<std::size_t>(w) * static_cast<std::size_t>(tpw) +
                      static_cast<std::size_t>(lane / lanes_per_table)];
      };

      for (std::uint64_t step = 0; step < steps_; ++step) {
        if (composed_step_skipped(team, step)) continue;
        // Phase A: gather inputs, probe tables, form wishes.
        BlockTally tally;
        bool team_has_active = false;
        for (std::uint32_t w = 0; w < warps_per_team_; ++w) {
          WarpScratch& s = scratch_[w];
          s.active = composed_lane_filter(active_mask(team, w, step),
                                          item_of(team, w, 0, step), tracker_.warp(team, w));
          s.wishes = 0;
          if (s.active == 0) continue;
          team_has_active = true;
          sim::WarpLedger& ledger = tracker_.warp(team, w);
          const std::uint64_t first_item = item_of(team, w, 0, step);
          std::array<bool, 64> wish{};
          for (int lane = 0; lane < warp_size_; ++lane) {
            if (!sim::lane_active(s.active, lane)) continue;
            const std::uint64_t item = first_item + static_cast<std::uint64_t>(lane);
            binding_.gather(item, lane_in(s, lane));
            s.match[static_cast<std::size_t>(lane)] =
                table_of(w, lane).find_nearest(lane_in(s, lane));
            const auto& m = s.match[static_cast<std::size_t>(lane)];
            wish[static_cast<std::size_t>(lane)] = m.valid() && m.distance < iact.threshold;
            if (wish[static_cast<std::size_t>(lane)]) ++stats_.iact_hits;
          }
          s.wishes = sim::ballot(std::span<const bool>(wish.data(),
                                                       static_cast<std::size_t>(warp_size_)),
                                 s.active);
          // Reading phase: every invocation pays the table scan — the cost
          // iACT can never amortize (paper insight 4).
          ledger.charge_compute(iact.table_size *
                                (id * costs_.iact_distance_per_dim + costs_.iact_sqrt));
          ledger.charge_shared(static_cast<std::uint32_t>(iact.table_size * id),
                               dev_.shared_mem_access_cycles);
          charge_item_memory(ledger, first_item, s.active, 0);
          charge_decision_cost(ledger);
          if (spec_.level == HierarchyLevel::kWarp) {
            s.group_decision = warp_majority(s.wishes, s.active);
          } else if (spec_.level == HierarchyLevel::kBlock) {
            tally.add(s.wishes, s.active);
          }
        }
        if (!team_has_active) continue;
        const bool block_decision =
            spec_.level == HierarchyLevel::kBlock && tally.majority();

        // Phase B: execute, then the single-writer writing phase.
        for (std::uint32_t w = 0; w < warps_per_team_; ++w) {
          WarpScratch& s = scratch_[w];
          if (s.active == 0) continue;
          sim::WarpLedger& ledger = tracker_.warp(team, w);
          const std::uint64_t first_item = item_of(team, w, 0, step);
          LaneMask approx_mask = resolve_mask(s, block_decision);
          // A forced lane with an empty table has nothing to reuse; it
          // falls back to the accurate path.
          for (int lane = 0; lane < warp_size_; ++lane) {
            if (!sim::lane_active(approx_mask, lane)) continue;
            if (!s.match[static_cast<std::size_t>(lane)].valid()) approx_mask &= ~(1ull << lane);
          }
          count_forced(s, approx_mask);
          const LaneMask acc_mask = s.active & ~approx_mask;
          stats_.region_invocations += static_cast<std::uint64_t>(sim::popcount(s.active));

          double acc_cost = 0;
          double approx_cost = 0;
          for (int lane = 0; lane < warp_size_; ++lane) {
            if (!sim::lane_active(s.active, lane)) continue;
            const std::uint64_t item = first_item + static_cast<std::uint64_t>(lane);
            if (sim::lane_active(acc_mask, lane)) {
              binding_.accurate(item, lane_in(s, lane), lane_out(lane));
              binding_.commit(item, lane_out(lane));
              acc_cost = std::max(acc_cost, binding_.accurate_cost(item));
            } else {
              const auto& m = s.match[static_cast<std::size_t>(lane)];
              auto cached = table_of(w, lane).output_at(m.index);
              std::copy(cached.begin(), cached.end(), lane_out(lane).begin());
              table_of(w, lane).mark_used(m.index);
              binding_.commit(item, lane_out(lane));
            }
          }
          if (approx_mask != 0) approx_cost = 2.0 * od;

          // Writing phase: one writer per table — the accurate lane whose
          // input was farthest from every cached entry.
          if (acc_mask != 0) {
            ledger.charge_barrier(costs_.barrier);
            for (int t = 0; t < tpw; ++t) {
              int writer = -1;
              double best = -1.0;
              for (int lane = t * lanes_per_table; lane < (t + 1) * lanes_per_table; ++lane) {
                if (!sim::lane_active(acc_mask, lane)) continue;
                const auto& m = s.match[static_cast<std::size_t>(lane)];
                const double d =
                    m.valid() ? m.distance : std::numeric_limits<double>::infinity();
                if (d > best) {
                  best = d;
                  writer = lane;
                }
              }
              if (writer < 0) continue;
              table_of(w, writer).insert(lane_in(s, writer), lane_out(writer));
            }
            acc_cost += costs_.iact_insert_per_value * (id + od);
          }

          const std::array<double, 2> paths{acc_cost, approx_cost};
          ledger.charge_paths(paths);
          charge_item_memory(ledger, first_item, 0, s.active);
          stats_.accurate_items += static_cast<std::uint64_t>(sim::popcount(acc_mask));
          stats_.approx_items += static_cast<std::uint64_t>(sim::popcount(approx_mask));
        }
      }
    }
  }

  const sim::DeviceConfig& dev_;
  const pragma::PerfoParams* composed_perfo_;
  Replacement replacement_;
  const RuntimeCosts& costs_;
  const ApproxSpec& spec_;
  const RegionBinding& binding_;
  std::uint64_t n_;
  sim::LaunchConfig launch_;
  sim::KernelTracker tracker_;
  sim::CoalescingModel coalesce_;
  int warp_size_;
  std::uint32_t threads_per_team_;
  std::uint32_t warps_per_team_;
  std::uint64_t total_threads_;
  std::uint64_t steps_;
  ExecStats stats_;
  std::vector<double> out_buf_;
  std::vector<WarpScratch> scratch_;
};

}  // namespace

RegionExecutor::RegionExecutor(sim::DeviceConfig dev, Replacement replacement, RuntimeCosts costs)
    : dev_(std::move(dev)), replacement_(replacement), costs_(costs) {}

std::size_t RegionExecutor::ac_state_bytes_per_block(const pragma::ApproxSpec& spec,
                                                     const RegionBinding& binding,
                                                     const sim::LaunchConfig& launch) const {
  switch (spec.technique) {
    case Technique::kTafMemo:
      return static_cast<std::size_t>(launch.threads_per_team) *
             TafState::footprint_bytes(spec.taf->history_size, binding.out_dims);
    case Technique::kIactMemo: {
      const int tpw = spec.iact->tables_per_warp > 0 ? spec.iact->tables_per_warp
                                                     : dev_.warp_size;
      return static_cast<std::size_t>(launch.warps_per_team(dev_)) *
             static_cast<std::size_t>(tpw) *
             IactTable::footprint_bytes(spec.iact->table_size, binding.in_dims,
                                        binding.out_dims);
    }
    default:
      return 0;
  }
}

RegionReport RegionExecutor::run(const pragma::ApproxSpec& spec, const RegionBinding& binding,
                                 std::uint64_t n, const sim::LaunchConfig& launch) const {
  spec.validate();
  launch.validate(dev_);
  HPAC_REQUIRE(binding.accurate != nullptr, "region needs an accurate path");
  HPAC_REQUIRE(binding.accurate_cost != nullptr, "region needs a cost function");
  HPAC_REQUIRE(binding.commit != nullptr, "region needs a commit function");
  HPAC_REQUIRE(binding.out_dims >= 1, "region needs at least one output");
  if (spec.technique == Technique::kIactMemo && binding.in_dims <= 0) {
    // The paper's MiniFE case: iACT "only supports computations with
    // uniform input sizes for all threads" (§4.1); a region that cannot
    // declare a fixed-width input key cannot use input memoization.
    throw ConfigError("iACT requires uniform, fixed-width region inputs (in_dims > 0)");
  }

  const std::size_t ac_bytes = ac_state_bytes_per_block(spec, binding, launch);
  if (ac_bytes > dev_.shared_mem_per_block) {
    throw ConfigError(strings::format(
        "AC state (%zu bytes) exceeds shared memory per block (%u bytes)", ac_bytes,
        dev_.shared_mem_per_block));
  }

  RunContext ctx(dev_, replacement_, costs_, spec, binding, n, launch, ac_bytes);
  return ctx.execute();
}

RegionReport RegionExecutor::run_composed(const pragma::ApproxSpec& perfo_spec,
                                          const pragma::ApproxSpec& memo_spec,
                                          const RegionBinding& binding, std::uint64_t n,
                                          const sim::LaunchConfig& launch) const {
  perfo_spec.validate();
  memo_spec.validate();
  if (perfo_spec.technique != Technique::kPerforation) {
    throw ConfigError("composed execution requires a perfo(...) directive first");
  }
  if (memo_spec.technique != Technique::kTafMemo &&
      memo_spec.technique != Technique::kIactMemo) {
    throw ConfigError("composed execution requires a memo(...) directive second");
  }
  launch.validate(dev_);
  HPAC_REQUIRE(binding.accurate != nullptr, "region needs an accurate path");
  HPAC_REQUIRE(binding.accurate_cost != nullptr, "region needs a cost function");
  HPAC_REQUIRE(binding.commit != nullptr, "region needs a commit function");
  if (memo_spec.technique == Technique::kIactMemo && binding.in_dims <= 0) {
    throw ConfigError("iACT requires uniform, fixed-width region inputs (in_dims > 0)");
  }
  const std::size_t ac_bytes = ac_state_bytes_per_block(memo_spec, binding, launch);
  if (ac_bytes > dev_.shared_mem_per_block) {
    throw ConfigError(strings::format(
        "AC state (%zu bytes) exceeds shared memory per block (%u bytes)", ac_bytes,
        dev_.shared_mem_per_block));
  }
  RunContext ctx(dev_, replacement_, costs_, memo_spec, binding, n, launch, ac_bytes,
                 &*perfo_spec.perfo);
  return ctx.execute();
}

}  // namespace hpac::approx
