#include "approx/region.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "approx/hierarchy.hpp"
#include "approx/perforation.hpp"
#include "approx/taf.hpp"
#include "common/annotated_mutex.hpp"
#include "common/error.hpp"
#include "common/function_ref.hpp"
#include "common/scheduler.hpp"
#include "common/strings.hpp"
#include "sim/memory_model.hpp"
#include "sim/shared_memory.hpp"

namespace hpac::approx {

namespace {

using pragma::ApproxSpec;
using pragma::HierarchyLevel;
using pragma::Technique;
using sim::LaneMask;

// --- default tuning and the shared host pool -------------------------------

common::Mutex& tuning_mutex() {
  static common::Mutex m;
  return m;
}

ExecTuning& default_tuning_storage() {
  static ExecTuning tuning;
  return tuning;
}

// Team shards run on Scheduler::shared(): the same work-stealing workers
// that drive Explorer sweeps and Campaign shards, so a nested launch's
// shards can be stolen by whichever worker goes idle first instead of
// being gated behind a dedicated pool.

// --- scalar-form adapters ---------------------------------------------------

/// Per-warp adapters that present a scalar (per-item `std::function`)
/// binding through the batched call interface. These are the
/// compatibility path: the executor's hot loops only ever see the batched
/// shape, bound once per launch through `FunctionRef`.
struct ScalarGatherAdapter {
  const RegionBinding* binding;
  void operator()(std::uint64_t first_item, LaneMask lanes, std::span<double> in) const {
    const auto dims = static_cast<std::size_t>(binding->in_dims);
    sim::for_each_lane(lanes, [&](int lane) {
      binding->gather(first_item + static_cast<std::uint64_t>(lane),
                      in.subspan(static_cast<std::size_t>(lane) * dims, dims));
    });
  }
};

struct ScalarAccurateAdapter {
  const RegionBinding* binding;
  void operator()(std::uint64_t first_item, LaneMask lanes, std::span<const double> in,
                  std::span<double> out) const {
    const auto id = static_cast<std::size_t>(binding->in_dims);
    const auto od = static_cast<std::size_t>(binding->out_dims);
    sim::for_each_lane(lanes, [&](int lane) {
      const std::span<const double> lane_in =
          in.empty() ? std::span<const double>()
                     : in.subspan(static_cast<std::size_t>(lane) * id, id);
      binding->accurate(first_item + static_cast<std::uint64_t>(lane), lane_in,
                        out.subspan(static_cast<std::size_t>(lane) * od, od));
    });
  }
};

struct ScalarCostAdapter {
  const RegionBinding* binding;
  double operator()(std::uint64_t first_item, LaneMask lanes) const {
    double cost = 0;
    sim::for_each_lane(lanes, [&](int lane) {
      cost = std::max(cost,
                      binding->accurate_cost(first_item + static_cast<std::uint64_t>(lane)));
    });
    return cost;
  }
};

struct ScalarCommitAdapter {
  const RegionBinding* binding;
  void operator()(std::uint64_t first_item, LaneMask lanes, std::span<const double> out) const {
    const auto od = static_cast<std::size_t>(binding->out_dims);
    sim::for_each_lane(lanes, [&](int lane) {
      binding->commit(first_item + static_cast<std::uint64_t>(lane),
                      out.subspan(static_cast<std::size_t>(lane) * od, od));
    });
  }
};

// --- audit instrumentation ---------------------------------------------------
//
// When the launch is audited (ExecTuning::audit_mode != kOff and the
// binding declares independent_items), the bound dispatch is wrapped once
// per launch with adapters that log each executed item's declared extents
// into the context's shard log. The wrap happens at bind time, so the
// audit-off path executes exactly the instructions it executed before the
// auditor existed — there is no per-item branch.

struct AuditCommitAdapter {
  FunctionRef<void(std::uint64_t, LaneMask, std::span<const double>)> inner;
  const RegionBinding* binding;
  audit::ShardLog* log;
  void operator()(std::uint64_t first_item, LaneMask lanes, std::span<const double> out) const {
    inner(first_item, lanes, out);
    sim::for_each_lane(lanes, [&](int lane) {
      log->record_commit(*binding, first_item + static_cast<std::uint64_t>(lane));
    });
  }
};

struct AuditGatherAdapter {
  FunctionRef<void(std::uint64_t, LaneMask, std::span<double>)> inner;
  const RegionBinding* binding;
  audit::ShardLog* log;
  void operator()(std::uint64_t first_item, LaneMask lanes, std::span<double> in) const {
    inner(first_item, lanes, in);
    sim::for_each_lane(lanes, [&](int lane) {
      log->record_read(*binding, first_item + static_cast<std::uint64_t>(lane));
    });
  }
};

struct AuditAccurateAdapter {
  FunctionRef<void(std::uint64_t, LaneMask, std::span<const double>, std::span<double>)> inner;
  const RegionBinding* binding;
  audit::ShardLog* log;
  void operator()(std::uint64_t first_item, LaneMask lanes, std::span<const double> in,
                  std::span<double> out) const {
    inner(first_item, lanes, in, out);
    sim::for_each_lane(lanes, [&](int lane) {
      log->record_read(*binding, first_item + static_cast<std::uint64_t>(lane));
    });
  }
};

/// Per-warp scratch carried between the decision phase and the execution
/// phase of one grid-stride step (needed because block-level decisions
/// depend on every warp's ballot).
struct WarpScratch {
  LaneMask active = 0;
  LaneMask wishes = 0;
  bool group_decision = false;
  std::vector<double> in;                     ///< gathered inputs, ws x in_dims
  std::vector<IactTable::Match> match;        ///< per-lane nearest entry
};

/// Everything one region execution needs; avoids threading a dozen
/// parameters through the per-technique drivers.
///
/// A context executes teams [team_begin, team_end) of the launch against
/// its own `KernelTracker` shard and its own AC state, so several contexts
/// can run concurrently and be merged deterministically afterwards. AC
/// state (TAF windows, iACT tables, the shared-memory arena) is allocated
/// once per context and `reset()` between teams instead of reallocated —
/// the launch-invariant hoisting half of the fast path.
class RunContext {
 public:
  RunContext(const sim::DeviceConfig& dev, Replacement replacement, const RuntimeCosts& costs,
             const ApproxSpec& spec, const RegionBinding& binding, std::uint64_t n,
             const sim::LaunchConfig& launch, std::size_t ac_bytes,
             const pragma::PerfoParams* composed_perfo, std::uint64_t team_begin,
             std::uint64_t team_end, bool force_scalar,
             audit::ShardLog* audit_log = nullptr)
      : dev_(dev),
        composed_perfo_(composed_perfo),
        replacement_(replacement),
        costs_(costs),
        spec_(spec),
        binding_(binding),
        n_(n),
        launch_(launch),
        team_begin_(team_begin),
        team_end_(team_end),
        tracker_(dev, launch, ac_bytes, team_begin, team_end),
        coalesce_(dev),
        arena_(dev),
        warp_size_(dev.warp_size),
        threads_per_team_(launch.threads_per_team),
        warps_per_team_(launch.warps_per_team(dev)),
        total_threads_(launch.total_threads()),
        steps_(launch.steps_for(n)),
        gather_adapter_{&binding},
        accurate_adapter_{&binding},
        cost_adapter_{&binding},
        commit_adapter_{&binding} {
    stats_.shared_bytes_per_block = ac_bytes;
    out_buf_.resize(static_cast<std::size_t>(warp_size_) *
                    static_cast<std::size_t>(binding.out_dims));
    scratch_.resize(warps_per_team_);
    for (auto& s : scratch_) {
      s.in.resize(static_cast<std::size_t>(warp_size_) *
                  static_cast<std::size_t>(std::max(1, binding.in_dims)));
      s.match.resize(static_cast<std::size_t>(warp_size_));
    }
    // Bind the hot-path operations once: the batched binding when the app
    // provides one, the scalar adapter otherwise (or when parity testing
    // forces the adapter path).
    const auto prefer_scalar = [force_scalar](const auto& scalar_fn) {
      return force_scalar && scalar_fn != nullptr;
    };
    if (binding.gather_batch && !prefer_scalar(binding.gather)) {
      gather_ = binding.gather_batch;
    } else if (binding.gather) {
      gather_ = gather_adapter_;
    }
    if (binding.accurate_batch && !prefer_scalar(binding.accurate)) {
      accurate_ = binding.accurate_batch;
    } else if (binding.accurate) {
      accurate_ = accurate_adapter_;
    }
    if (binding.accurate_cost_batch && !prefer_scalar(binding.accurate_cost)) {
      cost_ = binding.accurate_cost_batch;
    } else if (binding.accurate_cost) {
      cost_ = cost_adapter_;
    }
    if (binding.commit_batch && !prefer_scalar(binding.commit)) {
      commit_ = binding.commit_batch;
    } else if (binding.commit) {
      commit_ = commit_adapter_;
    }
    // Audited launches wrap the bound dispatch once, here; the audit-off
    // path never reaches these assignments.
    if (audit_log != nullptr) {
      if (commit_) {
        audit_commit_adapter_ = AuditCommitAdapter{commit_, &binding, audit_log};
        commit_ = audit_commit_adapter_;
      }
      if (binding.read_extents) {
        if (gather_) {
          audit_gather_adapter_ = AuditGatherAdapter{gather_, &binding, audit_log};
          gather_ = audit_gather_adapter_;
        }
        if (accurate_) {
          audit_accurate_adapter_ = AuditAccurateAdapter{accurate_, &binding, audit_log};
          accurate_ = audit_accurate_adapter_;
        }
      }
    }
  }

  /// Run the technique over this context's team range. Does not finalize
  /// timing — shards are merged first.
  void execute_body() {
    switch (spec_.technique) {
      case Technique::kNone:
        run_baseline();
        break;
      case Technique::kPerforation:
        run_perforation();
        break;
      case Technique::kTafMemo:
        run_taf();
        break;
      case Technique::kIactMemo:
        run_iact();
        break;
    }
  }

  RegionReport finalize_report() {
    RegionReport report;
    report.timing = tracker_.finalize();
    report.stats = stats_;
    return report;
  }

  const sim::KernelTracker& tracker() const { return tracker_; }
  const ExecStats& stats() const { return stats_; }

 private:
  // --- geometry helpers -------------------------------------------------

  /// Item handled by `lane` of warp `w` of `team` at grid-stride `step`.
  std::uint64_t item_of(std::uint64_t team, std::uint32_t w, int lane,
                        std::uint64_t step) const {
    const std::uint64_t tid = team * threads_per_team_ +
                              static_cast<std::uint64_t>(w) * warp_size_ +
                              static_cast<std::uint64_t>(lane);
    return step * total_threads_ + tid;
  }

  /// Lanes of this warp that are both real threads and map to items < n.
  /// Both constraints bound a *prefix* of the warp (thread ids and items
  /// are affine in the lane index), so the mask is computed arithmetically
  /// — no per-lane loop for any step, full or partial.
  LaneMask active_mask(std::uint64_t team, std::uint32_t w, std::uint64_t step) const {
    const std::uint32_t lane0 = w * static_cast<std::uint32_t>(warp_size_);
    std::uint64_t lanes = std::min<std::uint64_t>(static_cast<std::uint64_t>(warp_size_),
                                                  threads_per_team_ - lane0);
    const std::uint64_t first_item =
        step * total_threads_ + team * threads_per_team_ + lane0;
    if (first_item >= n_) return 0;
    lanes = std::min<std::uint64_t>(lanes, n_ - first_item);
    return sim::full_mask(static_cast<int>(lanes));
  }

  std::span<double> out_span() { return std::span<double>(out_buf_); }

  std::span<double> lane_out(int lane) {
    return std::span<double>(out_buf_).subspan(
        static_cast<std::size_t>(lane) * binding_.out_dims,
        static_cast<std::size_t>(binding_.out_dims));
  }

  std::span<double> lane_in(WarpScratch& s, int lane) {
    return std::span<double>(s.in).subspan(
        static_cast<std::size_t>(lane) * binding_.in_dims,
        static_cast<std::size_t>(binding_.in_dims));
  }

  /// Figure-2 composition: when a perforation directive decorates the
  /// loop around a memoized region, perforated iterations are removed
  /// before the memoization logic runs (they are counted as skipped and
  /// never touch AC state). Returns true when the *whole step* is herded
  /// away; otherwise trims the warp's active mask in place.
  bool composed_step_skipped(std::uint64_t team, std::uint64_t step) {
    if (composed_perfo_ == nullptr) return false;
    const bool bounds_based = composed_perfo_->kind == pragma::PerfoKind::kIni ||
                              composed_perfo_->kind == pragma::PerfoKind::kFini;
    if (bounds_based || !composed_perfo_->herded) return false;
    if (!perfo_skip_step(*composed_perfo_, step, steps_)) return false;
    for (std::uint32_t w = 0; w < warps_per_team_; ++w) {
      const LaneMask active = active_mask(team, w, step);
      if (active == 0) continue;
      const auto count = static_cast<std::uint64_t>(sim::popcount(active));
      stats_.region_invocations += count;
      stats_.skipped_items += count;
      tracker_.warp(team, w).charge_compute(costs_.perfo_check);
    }
    return true;
  }

  LaneMask composed_lane_filter(LaneMask active, std::uint64_t first_item,
                                sim::WarpLedger& ledger) {
    if (composed_perfo_ == nullptr || active == 0) return active;
    const bool bounds_based = composed_perfo_->kind == pragma::PerfoKind::kIni ||
                              composed_perfo_->kind == pragma::PerfoKind::kFini;
    if (!bounds_based && composed_perfo_->herded) return active;  // step-level, handled above
    LaneMask exec = active;
    sim::for_each_lane(active, [&](int lane) {
      const std::uint64_t item = first_item + static_cast<std::uint64_t>(lane);
      if (perfo_skip_item(*composed_perfo_, item, n_)) exec &= ~(1ull << lane);
    });
    const auto skipped = static_cast<std::uint64_t>(sim::popcount(active & ~exec));
    stats_.region_invocations += skipped;
    stats_.skipped_items += skipped;
    ledger.charge_compute(costs_.perfo_check);
    return exec;
  }

  /// Charge the memory traffic of loading per-item inputs for `mask` lanes
  /// (one latency round) and optionally storing outputs.
  void charge_item_memory(sim::WarpLedger& ledger, std::uint64_t first_item, LaneMask load_mask,
                          LaneMask store_mask) {
    if (load_mask != 0 && binding_.in_bytes > 0) {
      const std::uint32_t tx = coalesce_.unit_stride_transactions(first_item, binding_.in_bytes,
                                                                  load_mask, warp_size_);
      ledger.charge_memory(tx, 1);
    }
    if (store_mask != 0 && binding_.out_bytes > 0) {
      const std::uint32_t tx = coalesce_.unit_stride_transactions(first_item, binding_.out_bytes,
                                                                  store_mask, warp_size_);
      ledger.charge_memory(tx, 0);  // stores are fire-and-forget
    }
  }

  // --- baseline ----------------------------------------------------------

  void run_baseline() {
    const std::span<double> out = out_span();
    for (std::uint64_t team = team_begin_; team < team_end_; ++team) {
      for (std::uint64_t step = 0; step < steps_; ++step) {
        for (std::uint32_t w = 0; w < warps_per_team_; ++w) {
          const LaneMask active = active_mask(team, w, step);
          if (active == 0) continue;
          sim::WarpLedger& ledger = tracker_.warp(team, w);
          const std::uint64_t first_item = item_of(team, w, 0, step);
          accurate_(first_item, active, {}, out);
          commit_(first_item, active, out);
          const std::array<double, 1> paths{cost_(first_item, active)};
          ledger.charge_paths(paths);
          charge_item_memory(ledger, first_item, active, active);
          const auto count = static_cast<std::uint64_t>(sim::popcount(active));
          stats_.region_invocations += count;
          stats_.accurate_items += count;
        }
      }
    }
  }

  // --- perforation ---------------------------------------------------------

  void run_perforation() {
    const pragma::PerfoParams& perfo = *spec_.perfo;
    const std::span<double> out = out_span();
    // ini/fini adjust the *loop bounds* (paper §3.3), so they always act
    // on item indices regardless of the herded flag; only the modulo
    // patterns (small/large) distinguish step-herded from per-iteration.
    const bool bounds_based = perfo.kind == pragma::PerfoKind::kIni ||
                              perfo.kind == pragma::PerfoKind::kFini;
    for (std::uint64_t team = team_begin_; team < team_end_; ++team) {
      for (std::uint64_t step = 0; step < steps_; ++step) {
        const bool herded_skip =
            !bounds_based && perfo.herded && perfo_skip_step(perfo, step, steps_);
        for (std::uint32_t w = 0; w < warps_per_team_; ++w) {
          const LaneMask active = active_mask(team, w, step);
          if (active == 0) continue;
          sim::WarpLedger& ledger = tracker_.warp(team, w);
          const std::uint64_t first_item = item_of(team, w, 0, step);
          stats_.region_invocations += static_cast<std::uint64_t>(sim::popcount(active));
          ledger.charge_compute(costs_.perfo_check);

          LaneMask exec = active;
          if (perfo.herded && !bounds_based) {
            if (herded_skip) exec = 0;
          } else {
            sim::for_each_lane(active, [&](int lane) {
              const std::uint64_t item = first_item + static_cast<std::uint64_t>(lane);
              if (perfo_skip_item(perfo, item, n_)) exec &= ~(1ull << lane);
            });
          }

          const int skipped = sim::popcount(active) - sim::popcount(exec);
          stats_.skipped_items += static_cast<std::uint64_t>(skipped);
          if (exec == 0) continue;

          accurate_(first_item, exec, {}, out);
          commit_(first_item, exec, out);
          const std::array<double, 1> paths{cost_(first_item, exec)};
          ledger.charge_paths(paths);
          // A partially perforated warp still touches nearly the same
          // memory segments (fragmentation), which the coalescing model
          // captures by counting segments of the surviving lanes.
          charge_item_memory(ledger, first_item, exec, exec);
          stats_.accurate_items += static_cast<std::uint64_t>(sim::popcount(exec));
        }
      }
    }
  }

  // --- group decision helpers ---------------------------------------------

  /// Phase-A cost of the hierarchy machinery, charged per warp.
  void charge_decision_cost(sim::WarpLedger& ledger) {
    ledger.charge_compute(costs_.activation_check);
    if (spec_.level == HierarchyLevel::kWarp) {
      ledger.charge_compute(costs_.ballot);
    } else if (spec_.level == HierarchyLevel::kBlock) {
      ledger.charge_compute(costs_.ballot + costs_.atomic_add);
      ledger.charge_barrier(costs_.barrier);
    }
  }

  /// Resolve the per-lane approximate mask from the wishes and the level.
  LaneMask resolve_mask(const WarpScratch& s, bool block_decision) const {
    switch (spec_.level) {
      case HierarchyLevel::kThread:
        return s.wishes & s.active;
      case HierarchyLevel::kWarp:
        return s.group_decision ? s.active : 0;
      case HierarchyLevel::kBlock:
        return block_decision ? s.active : 0;
    }
    return 0;
  }

  void count_forced(const WarpScratch& s, LaneMask approx_mask) {
    if (spec_.level == HierarchyLevel::kThread) return;
    stats_.forced_approx +=
        static_cast<std::uint64_t>(sim::popcount(approx_mask & s.active & ~s.wishes));
    stats_.forced_accurate +=
        static_cast<std::uint64_t>(sim::popcount(s.active & ~approx_mask & s.wishes));
  }

  // --- TAF -----------------------------------------------------------------

  void run_taf() {
    const pragma::TafParams& taf = *spec_.taf;
    const int od = binding_.out_dims;
    const std::size_t per_thread = TafState::storage_doubles(taf.history_size, od);
    const std::span<double> out = out_span();

    // One set of per-thread state machines, reset between teams.
    taf_states_.reserve(threads_per_team_);
    for (std::uint32_t t = 0; t < threads_per_team_; ++t) {
      taf_states_.emplace_back(taf, od, arena_.alloc_doubles(per_thread));
    }
    std::vector<TafState>& states = taf_states_;

    for (std::uint64_t team = team_begin_; team < team_end_; ++team) {
      if (team != team_begin_) {
        for (auto& state : states) state.reset();
      }

      for (std::uint64_t step = 0; step < steps_; ++step) {
        if (composed_step_skipped(team, step)) continue;
        // Phase A: activation wishes and (for warp/block) group decisions.
        BlockTally tally;
        bool team_has_active = false;
        for (std::uint32_t w = 0; w < warps_per_team_; ++w) {
          WarpScratch& s = scratch_[w];
          s.active = composed_lane_filter(active_mask(team, w, step),
                                          item_of(team, w, 0, step), tracker_.warp(team, w));
          s.wishes = 0;
          if (s.active == 0) continue;
          team_has_active = true;
          const std::uint32_t tid_base = w * static_cast<std::uint32_t>(warp_size_);
          LaneMask wishes = 0;
          sim::for_each_lane(s.active, [&](int lane) {
            if (states[tid_base + static_cast<std::uint32_t>(lane)].should_approximate()) {
              wishes = sim::with_lane(wishes, lane);
            }
          });
          s.wishes = wishes;
          charge_decision_cost(tracker_.warp(team, w));
          if (spec_.level == HierarchyLevel::kWarp) {
            s.group_decision = warp_majority(s.wishes, s.active);
          } else if (spec_.level == HierarchyLevel::kBlock) {
            tally.add(s.wishes, s.active);
          }
        }
        if (!team_has_active) continue;
        const bool block_decision =
            spec_.level == HierarchyLevel::kBlock && tally.majority();

        // Phase B: execute the chosen path per warp.
        for (std::uint32_t w = 0; w < warps_per_team_; ++w) {
          WarpScratch& s = scratch_[w];
          if (s.active == 0) continue;
          sim::WarpLedger& ledger = tracker_.warp(team, w);
          const std::uint64_t first_item = item_of(team, w, 0, step);
          const std::uint32_t tid_base = w * static_cast<std::uint32_t>(warp_size_);
          LaneMask approx_mask = resolve_mask(s, block_decision);
          // Lanes without a prediction cannot approximate; they fall back
          // to the accurate path (only reachable for forced minorities).
          sim::for_each_lane(approx_mask, [&](int lane) {
            if (!states[tid_base + static_cast<std::uint32_t>(lane)].has_prediction()) {
              approx_mask &= ~(1ull << lane);
            }
          });
          count_forced(s, approx_mask);
          const LaneMask acc_mask = s.active & ~approx_mask;
          stats_.region_invocations += static_cast<std::uint64_t>(sim::popcount(s.active));

          double acc_cost = 0;
          double approx_cost = 0;
          if (acc_mask != 0) {
            accurate_(first_item, acc_mask, {}, out);
            sim::for_each_lane(acc_mask, [&](int lane) {
              TafState& state = states[tid_base + static_cast<std::uint32_t>(lane)];
              const int credits_before = state.credits();
              state.record_accurate(lane_out(lane));
              if (credits_before == 0 && state.credits() > 0) {
                ++stats_.taf_stable_entries;
              }
            });
            acc_cost = cost_(first_item, acc_mask);
          }
          sim::for_each_lane(approx_mask, [&](int lane) {
            states[tid_base + static_cast<std::uint32_t>(lane)].predict(lane_out(lane));
          });
          commit_(first_item, s.active, out);
          if (acc_mask != 0) {
            acc_cost += costs_.taf_record_per_value * taf.history_size * od;
            ledger.charge_shared(static_cast<std::uint32_t>(od), dev_.shared_mem_access_cycles);
          }
          if (approx_mask != 0) {
            approx_cost = costs_.taf_predict_per_value * od;
          }
          const std::array<double, 2> paths{acc_cost, approx_cost};
          ledger.charge_paths(paths);
          charge_item_memory(ledger, first_item, acc_mask, s.active);
          stats_.accurate_items += static_cast<std::uint64_t>(sim::popcount(acc_mask));
          stats_.approx_items += static_cast<std::uint64_t>(sim::popcount(approx_mask));
        }
      }
    }
  }

  // --- iACT ------------------------------------------------------------------

  void run_iact() {
    const pragma::IactParams& iact = *spec_.iact;
    const int id = binding_.in_dims;
    const int od = binding_.out_dims;
    const std::span<double> out = out_span();
    HPAC_REQUIRE(static_cast<bool>(gather_),
                 "iACT requires a gather function for the declared inputs");
    const int tpw = iact.tables_per_warp > 0 ? iact.tables_per_warp : warp_size_;
    if (tpw > warp_size_ || warp_size_ % tpw != 0) {
      throw ConfigError(strings::format(
          "tables per warp (%d) must divide the warp size (%d)", tpw, warp_size_));
    }
    const int lanes_per_table = warp_size_ / tpw;
    const std::size_t per_table = IactTable::storage_doubles(iact.table_size, id, od);
    const Replacement replacement =
        iact.clock_replacement ? Replacement::kClock : replacement_;

    // One set of warp-shared tables, reset between teams.
    const std::uint32_t table_count = warps_per_team_ * static_cast<std::uint32_t>(tpw);
    tables_.reserve(table_count);
    for (std::uint32_t i = 0; i < table_count; ++i) {
      tables_.emplace_back(iact.table_size, id, od, replacement,
                           arena_.alloc_doubles(per_table));
    }

    for (std::uint64_t team = team_begin_; team < team_end_; ++team) {
      if (team != team_begin_) {
        for (auto& table : tables_) table.reset();
      }

      for (std::uint64_t step = 0; step < steps_; ++step) {
        if (composed_step_skipped(team, step)) continue;
        // Phase A: gather inputs, probe tables, form wishes.
        BlockTally tally;
        bool team_has_active = false;
        for (std::uint32_t w = 0; w < warps_per_team_; ++w) {
          WarpScratch& s = scratch_[w];
          s.active = composed_lane_filter(active_mask(team, w, step),
                                          item_of(team, w, 0, step), tracker_.warp(team, w));
          s.wishes = 0;
          if (s.active == 0) continue;
          team_has_active = true;
          sim::WarpLedger& ledger = tracker_.warp(team, w);
          const std::uint64_t first_item = item_of(team, w, 0, step);
          IactTable* warp_tables = tables_.data() + static_cast<std::size_t>(w) * tpw;
          gather_(first_item, s.active, std::span<double>(s.in));
          LaneMask wishes = 0;
          sim::for_each_lane(s.active, [&](int lane) {
            IactTable::Match& m = s.match[static_cast<std::size_t>(lane)];
            m = warp_tables[lane / lanes_per_table].find_nearest(lane_in(s, lane));
            if (m.valid() && m.distance < iact.threshold) {
              wishes = sim::with_lane(wishes, lane);
              ++stats_.iact_hits;
            }
          });
          s.wishes = wishes;
          // Reading phase: every invocation pays the table scan — the cost
          // iACT can never amortize (paper insight 4).
          ledger.charge_compute(iact.table_size *
                                (id * costs_.iact_distance_per_dim + costs_.iact_sqrt));
          ledger.charge_shared(static_cast<std::uint32_t>(iact.table_size * id),
                               dev_.shared_mem_access_cycles);
          charge_item_memory(ledger, first_item, s.active, 0);
          charge_decision_cost(ledger);
          if (spec_.level == HierarchyLevel::kWarp) {
            s.group_decision = warp_majority(s.wishes, s.active);
          } else if (spec_.level == HierarchyLevel::kBlock) {
            tally.add(s.wishes, s.active);
          }
        }
        if (!team_has_active) continue;
        const bool block_decision =
            spec_.level == HierarchyLevel::kBlock && tally.majority();

        // Phase B: execute, then the single-writer writing phase.
        for (std::uint32_t w = 0; w < warps_per_team_; ++w) {
          WarpScratch& s = scratch_[w];
          if (s.active == 0) continue;
          sim::WarpLedger& ledger = tracker_.warp(team, w);
          const std::uint64_t first_item = item_of(team, w, 0, step);
          IactTable* warp_tables = tables_.data() + static_cast<std::size_t>(w) * tpw;
          LaneMask approx_mask = resolve_mask(s, block_decision);
          // A forced lane with an empty table has nothing to reuse; it
          // falls back to the accurate path.
          sim::for_each_lane(approx_mask, [&](int lane) {
            if (!s.match[static_cast<std::size_t>(lane)].valid()) {
              approx_mask &= ~(1ull << lane);
            }
          });
          count_forced(s, approx_mask);
          const LaneMask acc_mask = s.active & ~approx_mask;
          stats_.region_invocations += static_cast<std::uint64_t>(sim::popcount(s.active));

          double acc_cost = 0;
          double approx_cost = 0;
          if (acc_mask != 0) {
            accurate_(first_item, acc_mask, std::span<const double>(s.in), out);
          }
          sim::for_each_lane(approx_mask, [&](int lane) {
            IactTable& table = warp_tables[lane / lanes_per_table];
            const auto& m = s.match[static_cast<std::size_t>(lane)];
            auto cached = table.output_at(m.index);
            std::copy(cached.begin(), cached.end(), lane_out(lane).begin());
            table.mark_used(m.index);
          });
          commit_(first_item, s.active, out);
          if (acc_mask != 0) acc_cost = cost_(first_item, acc_mask);
          if (approx_mask != 0) approx_cost = 2.0 * od;

          // Writing phase: one writer per table — the accurate lane whose
          // input was farthest from every cached entry. One pass over the
          // accurate lanes (ascending, so the first strictly-farther lane
          // wins ties exactly as a per-table ascending scan would).
          if (acc_mask != 0) {
            ledger.charge_barrier(costs_.barrier);
            std::array<int, 64> writer;
            std::array<double, 64> farthest;
            for (int t = 0; t < tpw; ++t) {
              writer[static_cast<std::size_t>(t)] = -1;
              farthest[static_cast<std::size_t>(t)] = -1.0;
            }
            sim::for_each_lane(acc_mask, [&](int lane) {
              const auto& m = s.match[static_cast<std::size_t>(lane)];
              const double d =
                  m.valid() ? m.distance : std::numeric_limits<double>::infinity();
              const auto t = static_cast<std::size_t>(lane / lanes_per_table);
              if (d > farthest[t]) {
                farthest[t] = d;
                writer[t] = lane;
              }
            });
            for (int t = 0; t < tpw; ++t) {
              const int lane = writer[static_cast<std::size_t>(t)];
              if (lane < 0) continue;
              warp_tables[t].insert(lane_in(s, lane), lane_out(lane));
            }
            acc_cost += costs_.iact_insert_per_value * (id + od);
          }

          const std::array<double, 2> paths{acc_cost, approx_cost};
          ledger.charge_paths(paths);
          charge_item_memory(ledger, first_item, 0, s.active);
          stats_.accurate_items += static_cast<std::uint64_t>(sim::popcount(acc_mask));
          stats_.approx_items += static_cast<std::uint64_t>(sim::popcount(approx_mask));
        }
      }
    }
  }

  const sim::DeviceConfig& dev_;
  const pragma::PerfoParams* composed_perfo_;
  Replacement replacement_;
  const RuntimeCosts& costs_;
  const ApproxSpec& spec_;
  const RegionBinding& binding_;
  std::uint64_t n_;
  sim::LaunchConfig launch_;
  std::uint64_t team_begin_;
  std::uint64_t team_end_;
  sim::KernelTracker tracker_;
  sim::CoalescingModel coalesce_;
  sim::SharedMemoryArena arena_;
  int warp_size_;
  std::uint32_t threads_per_team_;
  std::uint32_t warps_per_team_;
  std::uint64_t total_threads_;
  std::uint64_t steps_;
  ExecStats stats_;
  std::vector<double> out_buf_;
  std::vector<WarpScratch> scratch_;
  std::vector<TafState> taf_states_;
  std::vector<IactTable> tables_;

  // Scalar-form adapters (referenced by the FunctionRefs below when the
  // binding has no batched form).
  ScalarGatherAdapter gather_adapter_;
  ScalarAccurateAdapter accurate_adapter_;
  ScalarCostAdapter cost_adapter_;
  ScalarCommitAdapter commit_adapter_;

  // Audit wrappers around the bound dispatch (inert unless the launch is
  // audited; see the constructor).
  AuditCommitAdapter audit_commit_adapter_;
  AuditGatherAdapter audit_gather_adapter_;
  AuditAccurateAdapter audit_accurate_adapter_;

  // Hot-path dispatch, bound once per launch.
  FunctionRef<void(std::uint64_t, LaneMask, std::span<double>)> gather_;
  FunctionRef<void(std::uint64_t, LaneMask, std::span<const double>, std::span<double>)>
      accurate_;
  FunctionRef<double(std::uint64_t, LaneMask)> cost_;
  FunctionRef<void(std::uint64_t, LaneMask, std::span<const double>)> commit_;
};

/// Deterministic fold of shard counters (all commutative integer sums).
void merge_stats(ExecStats& total, const ExecStats& shard) {
  total.region_invocations += shard.region_invocations;
  total.accurate_items += shard.accurate_items;
  total.approx_items += shard.approx_items;
  total.skipped_items += shard.skipped_items;
  total.forced_approx += shard.forced_approx;
  total.forced_accurate += shard.forced_accurate;
  total.iact_hits += shard.iact_hits;
  total.taf_stable_entries += shard.taf_stable_entries;
}

}  // namespace

RegionExecutor::RegionExecutor(sim::DeviceConfig dev, Replacement replacement, RuntimeCosts costs)
    : dev_(std::move(dev)),
      replacement_(replacement),
      costs_(costs),
      tuning_(default_tuning()) {}

void RegionExecutor::set_default_tuning(const ExecTuning& tuning) {
  common::MutexLock lock(tuning_mutex());
  default_tuning_storage() = tuning;
}

ExecTuning RegionExecutor::default_tuning() {
  common::MutexLock lock(tuning_mutex());
  return default_tuning_storage();
}

void RegionExecutor::set_default_audit(audit::AuditMode mode, bool differential) {
  common::MutexLock lock(tuning_mutex());
  default_tuning_storage().audit_mode = mode;
  default_tuning_storage().audit_differential = differential;
}

std::size_t RegionExecutor::ac_state_bytes_per_block(const pragma::ApproxSpec& spec,
                                                     const RegionBinding& binding,
                                                     const sim::LaunchConfig& launch) const {
  switch (spec.technique) {
    case Technique::kTafMemo:
      return static_cast<std::size_t>(launch.threads_per_team) *
             TafState::footprint_bytes(spec.taf->history_size, binding.out_dims);
    case Technique::kIactMemo: {
      const int tpw = spec.iact->tables_per_warp > 0 ? spec.iact->tables_per_warp
                                                     : dev_.warp_size;
      return static_cast<std::size_t>(launch.warps_per_team(dev_)) *
             static_cast<std::size_t>(tpw) *
             IactTable::footprint_bytes(spec.iact->table_size, binding.in_dims,
                                        binding.out_dims);
    }
    default:
      return 0;
  }
}

RegionReport RegionExecutor::run_impl(const pragma::ApproxSpec& spec,
                                      const RegionBinding& binding, std::uint64_t n,
                                      const sim::LaunchConfig& launch, std::size_t ac_bytes,
                                      const pragma::PerfoParams* composed_perfo) const {
  const std::uint64_t teams = launch.num_teams;

  // Decide the team-shard count. Sharding never changes results (each team
  // is executed exactly as the serial engine would, and merges are
  // deterministic), so this is purely a wall-clock decision: the binding
  // must declare independent items and the launch must be big enough to
  // amortize the fan-out. A launch reached from inside an Explorer or
  // Campaign worker shards too — its shards become stealable tasks on the
  // shared scheduler, picked up by whichever workers are idle, and the
  // submitting thread executes the remainder itself.
  std::size_t threads =
      tuning_.max_threads != 0 ? tuning_.max_threads : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  const std::uint64_t shard_cap =
      teams / std::max<std::uint64_t>(1, tuning_.min_teams_per_shard);
  std::size_t shards = static_cast<std::size_t>(
      std::min<std::uint64_t>(static_cast<std::uint64_t>(threads), shard_cap));
  if (!binding.independent_items || teams < tuning_.min_teams || n < tuning_.min_items) {
    shards = 1;
  }

  // Commit-conflict auditing: validates the independent_items declaration
  // instead of assuming it. The auditor is constructed before the launch
  // runs (its differential pre-image must be the true initial state) and
  // audits regardless of whether *this* launch actually sharded — a
  // mislabeled binding is a hazard on every machine, not just the one it
  // raced on. Fully inert when audit_mode == kOff: not even constructed.
  std::optional<audit::LaunchAudit> auditor;
  if (tuning_.audit_mode != audit::AuditMode::kOff && binding.independent_items && n > 0) {
    auditor.emplace(binding, n, shards, tuning_.audit_differential,
                    tuning_.audit_extent_cache ? &audit_extent_cache_ : nullptr);
    if (auditor->missing_extents() && tuning_.audit_mode == audit::AuditMode::kEnforce) {
      throw ConfigError(std::string(audit::kConflictToken) + " audit: binding '" +
                        auditor->binding_name() +
                        "' declares independent_items but no commit_extents; the claim "
                        "cannot be verified");
    }
  }
  const auto shard_log = [&](std::size_t s) -> audit::ShardLog* {
    return auditor && auditor->instrumented() ? &auditor->log(s) : nullptr;
  };

  RegionReport report;
  if (shards <= 1) {
    RunContext ctx(dev_, replacement_, costs_, spec, binding, n, launch, ac_bytes,
                   composed_perfo, 0, teams, tuning_.force_scalar, shard_log(0));
    ctx.execute_body();
    report = ctx.finalize_report();
    report.stats.host_shards = 1;
  } else {
    // Contiguous, near-equal team ranges; shard s gets one extra team while
    // the remainder lasts.
    std::vector<std::unique_ptr<RunContext>> shard_ctxs;
    shard_ctxs.reserve(shards);
    const std::uint64_t per_shard = teams / shards;
    const std::uint64_t extra = teams % shards;
    std::uint64_t begin = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::uint64_t length = per_shard + (s < extra ? 1 : 0);
      shard_ctxs.push_back(std::make_unique<RunContext>(
          dev_, replacement_, costs_, spec, binding, n, launch, ac_bytes, composed_perfo,
          begin, begin + length, tuning_.force_scalar, shard_log(s)));
      begin += length;
    }
    Scheduler::shared().parallel_for(
        shard_ctxs.size(),
        [&](std::size_t, std::size_t s) { shard_ctxs[s]->execute_body(); },
        /*max_participants=*/shards);

    // Shard merge order is the shard index order — fixed above when the
    // contiguous team ranges were cut — so the folded ledgers, counters and
    // therefore every downstream CSV byte are independent of which thread
    // executed which shard.
    sim::KernelTracker total(dev_, launch, ac_bytes);
    ExecStats stats;
    stats.shared_bytes_per_block = ac_bytes;
    for (const auto& ctx : shard_ctxs) {
      total.merge(ctx->tracker());
      merge_stats(stats, ctx->stats());
    }
    stats.host_shards = shards;
    report.timing = total.finalize();
    report.stats = stats;
  }

  if (auditor) {
    auditor->analyze();
    if (auditor->differential_ready()) {
      // Differential pass: re-execute the launch under a reversed-shard
      // serial schedule — a legal schedule of the sharded run, since the
      // engine's per-team state resets make results decomposition- and
      // order-invariant *when items are independent* — and byte-compare
      // the committed output. The shard count is a fixed constant (not
      // the machine's), so findings are deterministic across hosts, and
      // the application state is restored to the audited run's bytes
      // afterwards, so auditing never changes what the app observes.
      const audit::Snapshot after = auditor->take_snapshot();
      auditor->restore_pre();
      const std::uint64_t diff_shards =
          std::min<std::uint64_t>(teams, audit::LaunchAudit::kDifferentialShards);
      const std::uint64_t per_shard = teams / std::max<std::uint64_t>(1, diff_shards);
      const std::uint64_t extra = teams % std::max<std::uint64_t>(1, diff_shards);
      for (std::uint64_t s = diff_shards; s-- > 0;) {
        const std::uint64_t begin = s * per_shard + std::min<std::uint64_t>(s, extra);
        const std::uint64_t length = per_shard + (s < extra ? 1 : 0);
        RunContext ctx(dev_, replacement_, costs_, spec, binding, n, launch, ac_bytes,
                       composed_perfo, begin, begin + length, tuning_.force_scalar);
        ctx.execute_body();
      }
      auditor->compare_with(after);
      auditor->restore(after);
    }
    std::vector<audit::ConflictReport> conflicts = auditor->take_conflicts();
    if (!conflicts.empty()) {
      if (tuning_.audit_mode == audit::AuditMode::kEnforce) {
        throw ConfigError(std::string(audit::kConflictToken) + " audit failed for binding '" +
                          auditor->binding_name() +
                          "': " + audit::LaunchAudit::summarize(conflicts));
      }
      report.stats.conflicts = std::move(conflicts);
    }
  }
  report.stats.simd_level = simd::active_level();
  return report;
}

RegionReport RegionExecutor::run(const pragma::ApproxSpec& spec, const RegionBinding& binding,
                                 std::uint64_t n, const sim::LaunchConfig& launch) const {
  spec.validate();
  launch.validate(dev_);
  HPAC_REQUIRE(binding.accurate != nullptr || binding.accurate_batch != nullptr,
               "region needs an accurate path");
  HPAC_REQUIRE(binding.accurate_cost != nullptr || binding.accurate_cost_batch != nullptr,
               "region needs a cost function");
  HPAC_REQUIRE(binding.commit != nullptr || binding.commit_batch != nullptr,
               "region needs a commit function");
  HPAC_REQUIRE(binding.out_dims >= 1, "region needs at least one output");
  if (spec.technique == Technique::kIactMemo && binding.in_dims <= 0) {
    // The paper's MiniFE case: iACT "only supports computations with
    // uniform input sizes for all threads" (§4.1); a region that cannot
    // declare a fixed-width input key cannot use input memoization.
    throw ConfigError("iACT requires uniform, fixed-width region inputs (in_dims > 0)");
  }

  const std::size_t ac_bytes = ac_state_bytes_per_block(spec, binding, launch);
  if (ac_bytes > dev_.shared_mem_per_block) {
    throw ConfigError(strings::format(
        "AC state (%zu bytes) exceeds shared memory per block (%u bytes)", ac_bytes,
        dev_.shared_mem_per_block));
  }

  return run_impl(spec, binding, n, launch, ac_bytes, nullptr);
}

RegionReport RegionExecutor::run_composed(const pragma::ApproxSpec& perfo_spec,
                                          const pragma::ApproxSpec& memo_spec,
                                          const RegionBinding& binding, std::uint64_t n,
                                          const sim::LaunchConfig& launch) const {
  perfo_spec.validate();
  memo_spec.validate();
  if (perfo_spec.technique != Technique::kPerforation) {
    throw ConfigError("composed execution requires a perfo(...) directive first");
  }
  if (memo_spec.technique != Technique::kTafMemo &&
      memo_spec.technique != Technique::kIactMemo) {
    throw ConfigError("composed execution requires a memo(...) directive second");
  }
  launch.validate(dev_);
  HPAC_REQUIRE(binding.accurate != nullptr || binding.accurate_batch != nullptr,
               "region needs an accurate path");
  HPAC_REQUIRE(binding.accurate_cost != nullptr || binding.accurate_cost_batch != nullptr,
               "region needs a cost function");
  HPAC_REQUIRE(binding.commit != nullptr || binding.commit_batch != nullptr,
               "region needs a commit function");
  if (memo_spec.technique == Technique::kIactMemo && binding.in_dims <= 0) {
    throw ConfigError("iACT requires uniform, fixed-width region inputs (in_dims > 0)");
  }
  const std::size_t ac_bytes = ac_state_bytes_per_block(memo_spec, binding, launch);
  if (ac_bytes > dev_.shared_mem_per_block) {
    throw ConfigError(strings::format(
        "AC state (%zu bytes) exceeds shared memory per block (%u bytes)", ac_bytes,
        dev_.shared_mem_per_block));
  }
  return run_impl(memo_spec, binding, n, launch, ac_bytes, &*perfo_spec.perfo);
}

}  // namespace hpac::approx
