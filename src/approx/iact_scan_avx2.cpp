// AVX2 iACT table-scan kernels (256-bit lanes, four rows per step).
// Compiled with -mavx2 only when CMake's ISA probe passes (see
// HPAC_SIMD_COMPILED_AVX2); callers reach it through select_iact_scan,
// which consults the runtime cpuid gate in hpac::simd. Deliberately no
// -mfma: the kernels must round exactly like the scalar build's mul+add.

#include "approx/iact_scan.hpp"

#if defined(HPAC_SIMD_COMPILED_AVX2) && (defined(__x86_64__) || defined(_M_X64))

#include <immintrin.h>

#include "approx/iact_scan_impl.hpp"

namespace hpac::approx::detail {

namespace {

struct Avx2Ops {
  static constexpr int kWidth = 4;
  using V = __m256d;
  static V zero() { return _mm256_setzero_pd(); }
  static V broadcast(double x) { return _mm256_set1_pd(x); }
  static V loadu(const double* p) { return _mm256_loadu_pd(p); }
  static V sub(V a, V b) { return _mm256_sub_pd(a, b); }
  static V mul(V a, V b) { return _mm256_mul_pd(a, b); }
  static V add(V a, V b) { return _mm256_add_pd(a, b); }
  static bool all_gt(V a, V b) {
    return _mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_GT_OQ)) == 0xF;
  }
  static void store(double* p, V a) { _mm256_storeu_pd(p, a); }
};

}  // namespace

ScanFn iact_scan_fn_avx2(int in_dims) { return select_scan_impl<Avx2Ops>(in_dims); }

}  // namespace hpac::approx::detail

#else

namespace hpac::approx::detail {

ScanFn iact_scan_fn_avx2(int) { return nullptr; }

}  // namespace hpac::approx::detail

#endif
