#pragma once

// Shared body of the vectorized iACT table scans, included ONLY by the
// per-ISA translation units (iact_scan_sse2.cpp / iact_scan_avx2.cpp),
// each of which instantiates it with its own vector-ops traits. Kept out
// of iact_scan.hpp so the template never leaks into TUs compiled without
// the matching ISA flags.
//
// Bit-identity contract (what makes HPAC_SIMD a pure perf knob):
//  * lanes are table ROWS — each row's squared distance accumulates
//    `sq += diff * diff` in ascending-dimension order, the scalar scan's
//    exact sequence, with explicit mul/add vector ops (never FMA, which
//    would round differently from the scalar build's mul+add);
//  * block results are folded in ascending row order through the same
//    strict `sq < best_sq` / `sqrt(sq) < best_distance` comparisons the
//    scalar scan performs, preserving the first-strictly-nearer-in-the-
//    sqrt-domain tie-break;
//  * the early-abandon check (whole block's partial sums already above
//    the best squared distance) only skips rows that could never win —
//    partial squared sums are monotone — so it changes work, not results.

#include <cmath>

#include "approx/iact_scan.hpp"

namespace hpac::approx::detail {

/// `kDims > 0`: compile-time dimension count (loop fully unrolled).
/// `kDims == 0`: generic runtime-dimension kernel.
template <typename Ops, int kDims>
ScanResult scan_impl(const ScanArgs& args) {
  constexpr int kW = Ops::kWidth;
  const int dims = kDims > 0 ? kDims : args.in_dims;
  const int cap = args.capacity;
  const double* soa = args.soa;
  const double* probe = args.probe;

  ScanResult best;
  double best_sq = std::numeric_limits<double>::infinity();

  int row = 0;
  for (; row + kW <= args.valid_count; row += kW) {
    const typename Ops::V best_sq_v = Ops::broadcast(best_sq);
    typename Ops::V sq_v = Ops::zero();
    bool abandoned = false;
    for (int d = 0; d < dims; ++d) {
      const typename Ops::V diff =
          Ops::sub(Ops::broadcast(probe[d]), Ops::loadu(soa + d * cap + row));
      sq_v = Ops::add(sq_v, Ops::mul(diff, diff));
      if (Ops::all_gt(sq_v, best_sq_v)) {
        abandoned = true;
        break;
      }
    }
    if (abandoned) continue;
    double lane_sq[kW];
    Ops::store(lane_sq, sq_v);
    for (int lane = 0; lane < kW; ++lane) {
      const double sq = lane_sq[lane];
      if (sq < best_sq) {
        best_sq = sq;
        const double distance = std::sqrt(sq);
        if (distance < best.distance) {
          best.distance = distance;
          best.index = row + lane;
        }
      }
    }
  }

  // Remainder rows: the scalar scan verbatim, reading through the mirror
  // (same values bit-for-bit as the row-major storage).
  for (; row < args.valid_count; ++row) {
    double sq = 0.0;
    for (int d = 0; d < dims; ++d) {
      const double diff = probe[d] - soa[d * cap + row];
      sq += diff * diff;
      if (sq > best_sq) break;
    }
    if (sq < best_sq) {
      best_sq = sq;
      const double distance = std::sqrt(sq);
      if (distance < best.distance) {
        best.distance = distance;
        best.index = row;
      }
    }
  }
  return best;
}

template <typename Ops>
ScanFn select_scan_impl(int in_dims) {
  switch (in_dims) {
    case 1:
      return &scan_impl<Ops, 1>;
    case 2:
      return &scan_impl<Ops, 2>;
    case 3:
      return &scan_impl<Ops, 3>;
    case 4:
      return &scan_impl<Ops, 4>;
    case 5:
      return &scan_impl<Ops, 5>;
    case 6:
      return &scan_impl<Ops, 6>;
    case 7:
      return &scan_impl<Ops, 7>;
    case 8:
      return &scan_impl<Ops, 8>;
    default:
      return &scan_impl<Ops, 0>;
  }
}

}  // namespace hpac::approx::detail
