#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace hpac::approx {

/// Cache replacement policy for iACT tables. The paper uses round-robin
/// and notes (footnote 3) that CLOCK made no difference; we implement both
/// so the ablation bench can reproduce that claim.
enum class Replacement { kRoundRobin, kClock };

/// An iACT (approximate input memoization) table (paper §2.3 and §3.1.4).
///
/// Each entry stores an input vector and the output vector the accurate
/// path produced for it. Lookup returns the entry with the smallest
/// Euclidean distance to the probe; the caller compares the distance to
/// the user threshold to decide whether to reuse the cached output.
///
/// On the GPU a table is *shared* by `warp_size / tables_per_warp` lanes.
/// Access is split into a reading phase (all lanes search concurrently)
/// and a writing phase where a single writer per table inserts — the lane
/// whose input was farthest from every cached value (the most
/// cache-improving candidate). `RegionExecutor` orchestrates the phases;
/// this class provides the storage and the per-operation semantics.
///
/// Storage lives in block shared memory via `SharedMemoryArena`.
class IactTable {
 public:
  IactTable(int table_size, int in_dims, int out_dims, Replacement policy,
            std::span<double> storage);

  /// Doubles of shared memory a table occupies.
  static std::size_t storage_doubles(int table_size, int in_dims, int out_dims);
  /// Bytes including validity/age bookkeeping.
  static std::size_t footprint_bytes(int table_size, int in_dims, int out_dims);

  struct Match {
    int index = -1;
    double distance = std::numeric_limits<double>::infinity();
    bool valid() const { return index >= 0; }
  };

  /// Reading phase: nearest entry by Euclidean distance (no state change).
  Match find_nearest(std::span<const double> in) const;

  /// Record a cache hit for CLOCK's reference bit. No-op for round-robin.
  void mark_used(int index);

  /// Writing phase: insert (in, out), evicting per the policy when full.
  void insert(std::span<const double> in, std::span<const double> out);

  std::span<const double> input_at(int index) const;
  std::span<const double> output_at(int index) const;

  int capacity() const { return table_size_; }
  int valid_count() const { return valid_count_; }
  int in_dims() const { return in_dims_; }
  int out_dims() const { return out_dims_; }

 private:
  int victim_index();

  int table_size_;
  int in_dims_;
  int out_dims_;
  Replacement policy_;
  std::span<double> storage_;  ///< table_size rows of (in_dims + out_dims)
  std::vector<bool> valid_;
  std::vector<bool> referenced_;  ///< CLOCK reference bits
  int cursor_ = 0;                ///< round-robin insert / CLOCK hand
  int valid_count_ = 0;
};

/// Euclidean (L2) distance between two equally sized vectors; the match
/// metric of iACT's activation function.
double euclidean_distance(std::span<const double> a, std::span<const double> b);

}  // namespace hpac::approx
