#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "approx/iact_scan.hpp"

namespace hpac::approx {

/// Cache replacement policy for iACT tables. The paper uses round-robin
/// and notes (footnote 3) that CLOCK made no difference; we implement both
/// so the ablation bench can reproduce that claim.
enum class Replacement { kRoundRobin, kClock };

/// An iACT (approximate input memoization) table (paper §2.3 and §3.1.4).
///
/// Each entry stores an input vector and the output vector the accurate
/// path produced for it. Lookup returns the entry with the smallest
/// Euclidean distance to the probe; the caller compares the distance to
/// the user threshold to decide whether to reuse the cached output.
///
/// On the GPU a table is *shared* by `warp_size / tables_per_warp` lanes.
/// Access is split into a reading phase (all lanes search concurrently)
/// and a writing phase where a single writer per table inserts — the lane
/// whose input was farthest from every cached value (the most
/// cache-improving candidate). `RegionExecutor` orchestrates the phases;
/// this class provides the storage and the per-operation semantics.
///
/// Storage lives in block shared memory via `SharedMemoryArena`.
class IactTable {
 public:
  IactTable(int table_size, int in_dims, int out_dims, Replacement policy,
            std::span<double> storage);

  /// Doubles of shared memory a table occupies.
  static std::size_t storage_doubles(int table_size, int in_dims, int out_dims);
  /// Bytes including validity/age bookkeeping.
  static std::size_t footprint_bytes(int table_size, int in_dims, int out_dims);

  struct Match {
    int index = -1;
    double distance = std::numeric_limits<double>::infinity();
    bool valid() const { return index >= 0; }
  };

  /// Empty the table (all entries invalidated, cursor and CLOCK bits
  /// cleared) without releasing its storage. The executor reuses one set
  /// of tables across all teams of a launch — `reset()` between teams
  /// replaces the per-team reallocation.
  void reset();

  /// Reading phase: nearest entry by Euclidean distance (no state change).
  /// Defined inline below — this is the one operation iACT pays on *every*
  /// invocation (paper insight 4), so it must inline into the executor's
  /// per-lane loop.
  Match find_nearest(std::span<const double> in) const;

  /// Record a cache hit for CLOCK's reference bit. No-op for round-robin.
  void mark_used(int index);

  /// Writing phase: insert (in, out), evicting per the policy when full.
  void insert(std::span<const double> in, std::span<const double> out);

  std::span<const double> input_at(int index) const;
  std::span<const double> output_at(int index) const;

  int capacity() const { return table_size_; }
  int valid_count() const { return valid_count_; }
  int in_dims() const { return in_dims_; }
  int out_dims() const { return out_dims_; }

 private:
  int victim_index();

  int table_size_;
  int in_dims_;
  int out_dims_;
  Replacement policy_;
  std::span<double> storage_;  ///< table_size rows of (in_dims + out_dims)
  /// Dimension-major mirror of the entries' input vectors
  /// (`soa_[d * table_size_ + slot]`), maintained by `insert`. The SIMD
  /// scan kernels read it so "dimension d of W consecutive rows" is one
  /// contiguous vector load; the row-major `storage_` span stays the
  /// source of truth (and the shared-memory footprint) — this is a
  /// host-side acceleration structure, not modeled device state.
  std::vector<double> soa_;
  /// Vector scan kernel chosen at construction from `simd::active_level()`
  /// and `in_dims`; nullptr dispatches the inline scalar scan.
  detail::ScanFn scan_fn_ = nullptr;
  std::vector<bool> valid_;
  std::vector<bool> referenced_;  ///< CLOCK reference bits
  int cursor_ = 0;                ///< round-robin insert / CLOCK hand
  int valid_count_ = 0;
};

/// Euclidean (L2) distance between two equally sized vectors; the match
/// metric of iACT's activation function.
double euclidean_distance(std::span<const double> a, std::span<const double> b);

namespace detail {
/// Out-of-line throw keeps the inlined probe scan free of exception
/// machinery.
[[noreturn]] void throw_probe_mismatch();
}  // namespace detail

inline IactTable::Match IactTable::find_nearest(std::span<const double> in) const {
  if (in.size() != static_cast<std::size_t>(in_dims_)) {
    detail::throw_probe_mismatch();
  }
  // Vector fast path: lanes are table rows over the dimension-major
  // mirror, each lane accumulating its squared distance in the exact
  // scalar operation order, so index and distance are bit-identical to
  // the scalar scan below (enforced by the `simd` property tests).
  if (scan_fn_ != nullptr) {
    detail::ScanArgs args;
    args.soa = soa_.data();
    args.probe = in.data();
    args.capacity = table_size_;
    args.valid_count = valid_count_;
    args.in_dims = in_dims_;
    const detail::ScanResult result = scan_fn_(args);
    Match best;
    best.index = result.index;
    best.distance = result.distance;
    return best;
  }
  // The scan runs for every region invocation, so it is the single
  // hottest loop of iACT execution: compare squared distances and take a
  // square root only on improvements. Partial squared sums only grow, so
  // a row whose partial sum already exceeds the best can be abandoned
  // without changing which entry wins; and since sqrt is monotone, a row
  // with sq >= best_sq could never have passed the original strict
  // `sqrt(sq) < best.distance` test either. The final strict comparison
  // happens in the sqrt domain so tie-breaking is identical to the
  // historical per-entry-sqrt scan even when two distinct squared
  // distances round to the same square root (first such entry wins).
  // Valid entries always occupy the slot prefix [0, valid_count_):
  // `victim_index` fills empty slots in ascending order and entries are
  // never individually invalidated, so the scan needs no per-row
  // validity check.
  const std::size_t row_doubles = static_cast<std::size_t>(in_dims_) + out_dims_;
  const double* probe = in.data();
  double best_sq = std::numeric_limits<double>::infinity();
  Match best;
  for (int i = 0; i < valid_count_; ++i) {
    const double* entry = storage_.data() + static_cast<std::size_t>(i) * row_doubles;
    double sq = 0.0;
    for (int d = 0; d < in_dims_; ++d) {
      const double diff = probe[d] - entry[d];
      sq += diff * diff;
      if (sq > best_sq) break;
    }
    if (sq < best_sq) {
      best_sq = sq;
      const double distance = std::sqrt(sq);
      if (distance < best.distance) {
        best.distance = distance;
        best.index = i;
      }
    }
  }
  return best;
}

}  // namespace hpac::approx
