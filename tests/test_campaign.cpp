// Tests for the Campaign layer: cross-product planning, (benchmark,
// device) sharding, checkpoint persistence, and — the load-bearing
// property — kill-and-resume parity: an interrupted campaign re-run with
// the same output path evaluates only the missing tuples and ends with a
// CSV byte-identical to an uninterrupted run.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "harness/campaign.hpp"
#include "pragma/parser.hpp"

using namespace hpac;
using namespace hpac::harness;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string temp_csv(const std::string& stem) {
  const std::string path = testing::TempDir() + "hpac_campaign_" + stem + ".csv";
  std::remove(path.c_str());
  return path;
}

/// A small, fast plan: one cheap benchmark, one device, three perforation
/// specs, two launch geometries — 6 tuples across 1 shard.
CampaignPlan tiny_plan() {
  CampaignPlan plan;
  plan.benchmarks = {"lavamd"};
  plan.devices = {"v100"};
  plan.specs_for = [](const sim::DeviceConfig&) {
    return std::vector<pragma::ApproxSpec>{
        pragma::parse_approx("perfo(small:2)"),
        pragma::parse_approx("perfo(large:4)"),
        pragma::parse_approx("perfo(fini:0.3)"),
    };
  };
  plan.items_per_thread = {1, 8};
  plan.num_threads = 2;
  return plan;
}

/// Two benchmarks x two devices: 4 shards, 16 tuples.
CampaignPlan multi_shard_plan() {
  CampaignPlan plan = tiny_plan();
  plan.benchmarks = {"lavamd", "binomial_options"};
  plan.devices = {"v100", "mi250x"};
  plan.specs_for = [](const sim::DeviceConfig&) {
    return std::vector<pragma::ApproxSpec>{
        pragma::parse_approx("perfo(small:2)"),
        pragma::parse_approx("perfo(fini:0.3)"),
    };
  };
  return plan;
}

}  // namespace

TEST(Campaign, RejectsBadPlans) {
  CampaignPlan plan = tiny_plan();
  plan.benchmarks = {"not_a_benchmark"};
  EXPECT_THROW(Campaign{plan}, ConfigError);

  plan = tiny_plan();
  plan.devices = {"tpu"};
  EXPECT_THROW(Campaign{plan}, ConfigError);

  plan = tiny_plan();
  plan.benchmarks.clear();
  EXPECT_THROW(Campaign{plan}, Error);

  plan = tiny_plan();
  plan.items_per_thread.clear();
  EXPECT_THROW(Campaign{plan}, Error);

  plan = tiny_plan();
  plan.items_per_thread = {8, 0};  // ipt = 0 is a meaningless launch
  EXPECT_THROW(Campaign{plan}, Error);

  plan = tiny_plan();
  plan.specs_for = [](const sim::DeviceConfig&) {
    return std::vector<pragma::ApproxSpec>{};
  };
  EXPECT_THROW(Campaign{plan}, Error);
}

TEST(Campaign, RejectsDuplicateTuples) {
  CampaignPlan plan = tiny_plan();
  plan.specs_for = [](const sim::DeviceConfig&) {
    return std::vector<pragma::ApproxSpec>{
        pragma::parse_approx("perfo(small:2)"),
        pragma::parse_approx("perfo(small:2)"),
    };
  };
  EXPECT_THROW(Campaign{plan}, Error);
}

TEST(Campaign, PlansTheFullCrossProduct) {
  Campaign campaign(multi_shard_plan());
  const CampaignResult result = campaign.run();
  EXPECT_EQ(result.planned, 2u * 2u * 2u * 2u);
  EXPECT_EQ(result.evaluated, result.planned);
  EXPECT_EQ(result.restored, 0u);
  EXPECT_EQ(result.db.size(), result.planned);
}

TEST(Campaign, RecordsArriveInCanonicalOrder) {
  const CampaignResult result = Campaign(multi_shard_plan()).run();
  // Device-major, then benchmark, then spec, then items-per-thread — the
  // shard enumeration order, independent of worker scheduling.
  const auto& records = result.db.records();
  ASSERT_EQ(records.size(), 16u);
  EXPECT_EQ(records[0].device, "v100");
  EXPECT_EQ(records[0].benchmark, "lavamd");
  EXPECT_EQ(records[0].items_per_thread, 1u);
  EXPECT_EQ(records[1].items_per_thread, 8u);
  EXPECT_EQ(records[4].benchmark, "binomial_options");
  EXPECT_EQ(records[8].device, "mi250x");
}

TEST(Campaign, ParallelAndSerialProduceIdenticalCsv) {
  CampaignPlan serial = multi_shard_plan();
  serial.num_threads = 1;
  CampaignPlan parallel = multi_shard_plan();
  parallel.num_threads = 4;
  std::ostringstream serial_csv, parallel_csv;
  Campaign(serial).run().db.to_csv().write(serial_csv);
  Campaign(parallel).run().db.to_csv().write(parallel_csv);
  EXPECT_EQ(serial_csv.str(), parallel_csv.str());
}

TEST(Campaign, WritesCheckpointAndResumeIsANoOp) {
  CampaignPlan plan = tiny_plan();
  plan.output_path = temp_csv("noop");
  const CampaignResult first = Campaign(plan).run();
  EXPECT_EQ(first.evaluated, first.planned);
  const std::string bytes_after_first = slurp(plan.output_path);

  const CampaignResult second = Campaign(plan).run();
  EXPECT_EQ(second.evaluated, 0u);
  EXPECT_EQ(second.restored, second.planned);
  EXPECT_EQ(slurp(plan.output_path), bytes_after_first);
  std::remove(plan.output_path.c_str());
}

TEST(Campaign, KillAndResumeParity) {
  // Reference: one uninterrupted run.
  CampaignPlan reference_plan = multi_shard_plan();
  reference_plan.output_path = temp_csv("reference");
  Campaign(reference_plan).run();
  const std::string reference_bytes = slurp(reference_plan.output_path);

  // Interrupted run: the observer starts throwing after 3 records, which
  // aborts the in-flight shards and abandons the unstarted ones. The
  // journal keeps what completed.
  CampaignPlan killed_plan = multi_shard_plan();
  killed_plan.output_path = temp_csv("killed");
  std::atomic<std::size_t> delivered{0};
  killed_plan.on_record = [&delivered](const RunRecord&) {
    if (++delivered >= 3) throw std::runtime_error("simulated kill");
  };
  EXPECT_THROW(Campaign(killed_plan).run(), std::runtime_error);
  const ResultDb partial = ResultDb::load(killed_plan.output_path);
  EXPECT_GT(partial.size(), 0u);
  EXPECT_LT(partial.size(), 16u);

  // Resume with the same output path: only the missing tuples run, and the
  // final file is byte-identical to the uninterrupted reference.
  CampaignPlan resume_plan = multi_shard_plan();
  resume_plan.output_path = killed_plan.output_path;
  const CampaignResult resumed = Campaign(resume_plan).run();
  EXPECT_EQ(resumed.restored, partial.size());
  EXPECT_EQ(resumed.evaluated, resumed.planned - partial.size());
  EXPECT_EQ(resumed.stale, 0u);
  EXPECT_EQ(slurp(resume_plan.output_path), reference_bytes);

  std::remove(reference_plan.output_path.c_str());
  std::remove(resume_plan.output_path.c_str());
}

TEST(Campaign, OnRecordRunsOutsideTheRecordLock) {
  // Regression: on_record used to be invoked while holding the campaign's
  // internal record/journal lock, so a callback that blocked until some
  // *other* worker made progress deadlocked the whole campaign (the other
  // worker needed that same lock to journal). The first callback below
  // refuses to return until a second data row reaches the checkpoint —
  // only possible if journaling proceeds while the callback is blocked.
  CampaignPlan plan = multi_shard_plan();  // 4 shards: two run concurrently
  plan.num_threads = 2;
  plan.output_path = temp_csv("unlocked_callback");

  const auto data_rows = [&] {
    const std::string bytes = slurp(plan.output_path);
    const auto newlines = std::count(bytes.begin(), bytes.end(), '\n');
    return newlines > 0 ? newlines - 1 : 0;  // minus the header line
  };
  std::atomic<bool> first{true};
  std::atomic<bool> observed_progress{false};
  plan.on_record = [&](const RunRecord&) {
    if (!first.exchange(false)) return;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (data_rows() < 2) {
      if (std::chrono::steady_clock::now() > deadline) return;  // deadlocked: fail below
      std::this_thread::yield();
    }
    observed_progress = true;
  };
  const CampaignResult result = Campaign(plan).run();
  EXPECT_TRUE(observed_progress.load())
      << "journaling stalled while on_record was blocked";
  EXPECT_EQ(result.evaluated, result.planned);
  std::remove(plan.output_path.c_str());
}

TEST(Campaign, ResumeAfterCallbackThrowSkipsThePersistedRecord) {
  // The journal row is flushed before on_record fires, so a throwing
  // callback aborts the campaign but never loses its triggering record:
  // the resume restores it instead of re-evaluating it, and the final CSV
  // is byte-identical to an uninterrupted run.
  CampaignPlan reference_plan = multi_shard_plan();
  reference_plan.output_path = temp_csv("cbthrow_reference");
  Campaign(reference_plan).run();
  const std::string reference_bytes = slurp(reference_plan.output_path);

  CampaignPlan killed_plan = multi_shard_plan();
  killed_plan.output_path = temp_csv("cbthrow_killed");
  std::mutex key_mutex;
  std::string first_key;
  killed_plan.on_record = [&](const RunRecord& r) {
    {
      std::lock_guard<std::mutex> lock(key_mutex);
      if (first_key.empty()) {
        first_key = Campaign::tuple_key(r.benchmark, r.device, r.spec_text,
                                        r.items_per_thread);
      }
    }
    throw std::runtime_error("observer failure");
  };
  EXPECT_THROW(Campaign(killed_plan).run(), std::runtime_error);

  // The record whose callback threw is in the checkpoint.
  const ResultDb partial = ResultDb::load(killed_plan.output_path);
  ASSERT_GE(partial.size(), 1u);
  bool triggering_record_persisted = false;
  for (const auto& r : partial.records()) {
    if (Campaign::tuple_key(r.benchmark, r.device, r.spec_text, r.items_per_thread) ==
        first_key) {
      triggering_record_persisted = true;
    }
  }
  EXPECT_TRUE(triggering_record_persisted);

  CampaignPlan resume_plan = multi_shard_plan();
  resume_plan.output_path = killed_plan.output_path;
  const CampaignResult resumed = Campaign(resume_plan).run();
  EXPECT_EQ(resumed.restored, partial.size());
  EXPECT_EQ(resumed.evaluated, resumed.planned - partial.size());
  EXPECT_EQ(slurp(resume_plan.output_path), reference_bytes);

  std::remove(reference_plan.output_path.c_str());
  std::remove(resume_plan.output_path.c_str());
}

TEST(Campaign, TornTrailingJournalRowDoesNotBrickResume) {
  // A SIGKILL can land mid-append, leaving a truncated final line; the
  // resume must drop that row, re-evaluate its tuple and still end
  // byte-identical to an uninterrupted run.
  CampaignPlan plan = tiny_plan();
  plan.output_path = temp_csv("torn_ref");
  Campaign(plan).run();
  const std::string reference_bytes = slurp(plan.output_path);

  const std::string torn_path = temp_csv("torn");
  {
    std::ofstream out(torn_path, std::ios::binary);
    out << reference_bytes.substr(0, reference_bytes.size() - 9);  // tear the last row
  }
  CampaignPlan resume_plan = tiny_plan();
  resume_plan.output_path = torn_path;
  const CampaignResult resumed = Campaign(resume_plan).run();
  EXPECT_EQ(resumed.restored, resumed.planned - 1);
  EXPECT_EQ(resumed.evaluated, 1u);
  EXPECT_EQ(slurp(torn_path), reference_bytes);

  std::remove(plan.output_path.c_str());
  std::remove(torn_path.c_str());
}

TEST(Campaign, ResumeSkipsFullyRestoredShards) {
  CampaignPlan plan = multi_shard_plan();
  plan.output_path = temp_csv("skip_shards");
  Campaign(plan).run();

  std::atomic<std::size_t> re_evaluated{0};
  plan.on_record = [&re_evaluated](const RunRecord&) { ++re_evaluated; };
  const CampaignResult second = Campaign(plan).run();
  EXPECT_EQ(re_evaluated.load(), 0u);
  EXPECT_EQ(second.restored, second.planned);
  std::remove(plan.output_path.c_str());
}

TEST(Campaign, StaleCheckpointRowsAreDroppedFromTheFinalCsv) {
  // A checkpoint written by a wider plan, resumed by a narrower one: the
  // extra rows are counted as stale and do not survive the final rewrite.
  CampaignPlan wide = tiny_plan();
  wide.output_path = temp_csv("stale");
  Campaign(wide).run();  // 3 specs x 2 ipt = 6 rows

  CampaignPlan narrow = tiny_plan();
  narrow.output_path = wide.output_path;
  narrow.specs_for = [](const sim::DeviceConfig&) {
    return std::vector<pragma::ApproxSpec>{pragma::parse_approx("perfo(small:2)")};
  };
  const CampaignResult result = Campaign(narrow).run();
  EXPECT_EQ(result.planned, 2u);
  EXPECT_EQ(result.restored, 2u);
  EXPECT_EQ(result.stale, 4u);
  EXPECT_EQ(ResultDb::load(narrow.output_path).size(), 2u);
  std::remove(narrow.output_path.c_str());
}

TEST(Campaign, RejectsCheckpointWithForeignSchema) {
  const std::string path = temp_csv("schema");
  {
    std::ofstream out(path);
    out << "alpha,beta\n1,2\n";
  }
  CampaignPlan plan = tiny_plan();
  plan.output_path = path;
  EXPECT_THROW(Campaign(plan).run(), Error);
  std::remove(path.c_str());
}

TEST(Campaign, DeviceAliasesCollapseBeforeUniquenessCheck) {
  CampaignPlan plan = tiny_plan();
  plan.devices = {"v100", "nvidia"};  // both resolve to the v100 preset
  EXPECT_THROW(Campaign{plan}, Error);
}

TEST(Campaign, TupleKeyIsInjectiveOnDelimiterCollisions) {
  EXPECT_NE(Campaign::tuple_key("a", "b,c", "s", 1), Campaign::tuple_key("a,b", "c", "s", 1));
  EXPECT_NE(Campaign::tuple_key("a", "b", "s", 11), Campaign::tuple_key("a", "b", "s1", 1));
}
