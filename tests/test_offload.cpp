// Tests for the offload layer: map directionality, timeline accounting and
// the target-region launch helpers.

#include <gtest/gtest.h>

#include "approx/region.hpp"
#include "offload/device.hpp"
#include "offload/target.hpp"
#include "sim/device.hpp"

using namespace hpac;
using namespace hpac::offload;

TEST(Offload, MapToChargesOnEntry) {
  Device dev(sim::v100());
  {
    MapScope map(dev, 1 << 20, MapDir::kTo);
    EXPECT_GT(dev.timeline().htod_seconds, 0.0);
    EXPECT_EQ(dev.timeline().dtoh_seconds, 0.0);
  }
  EXPECT_EQ(dev.timeline().dtoh_seconds, 0.0);
}

TEST(Offload, MapFromChargesOnExit) {
  Device dev(sim::v100());
  {
    MapScope map(dev, 1 << 20, MapDir::kFrom);
    EXPECT_EQ(dev.timeline().dtoh_seconds, 0.0);
  }
  EXPECT_GT(dev.timeline().dtoh_seconds, 0.0);
  EXPECT_EQ(dev.timeline().htod_seconds, 0.0);
}

TEST(Offload, MapToFromChargesBothDirections) {
  Device dev(sim::v100());
  { MapScope map(dev, 1 << 20, MapDir::kToFrom); }
  EXPECT_GT(dev.timeline().htod_seconds, 0.0);
  EXPECT_GT(dev.timeline().dtoh_seconds, 0.0);
}

TEST(Offload, AllocMovesNothing) {
  Device dev(sim::v100());
  { MapScope map(dev, 1 << 20, MapDir::kAlloc); }
  EXPECT_EQ(dev.timeline().end_to_end_seconds(), 0.0);
}

TEST(Offload, TimelineAccumulatesAndResets) {
  Device dev(sim::v100());
  dev.record_htod(1024);
  dev.record_dtoh(1024);
  dev.record_host(0.5);
  Timeline t = dev.timeline();
  EXPECT_DOUBLE_EQ(t.end_to_end_seconds(),
                   t.htod_seconds + t.dtoh_seconds + t.kernel_seconds + t.host_seconds);
  EXPECT_GT(t.end_to_end_seconds(), 0.5);
  dev.reset();
  EXPECT_EQ(dev.timeline().end_to_end_seconds(), 0.0);
}

TEST(Offload, TimelinePlusEquals) {
  Timeline a{1, 2, 3, 4};
  Timeline b{10, 20, 30, 40};
  a += b;
  EXPECT_DOUBLE_EQ(a.htod_seconds, 11);
  EXPECT_DOUBLE_EQ(a.end_to_end_seconds(), 110);
}

TEST(Offload, TargetParallelForAddsKernelTime) {
  Device dev(sim::v100());
  approx::RegionExecutor executor(dev.config());
  std::vector<double> out(256, 0.0);
  approx::RegionBinding binding;
  binding.out_dims = 1;
  binding.accurate = [](std::uint64_t i, std::span<const double>, std::span<double> o) {
    o[0] = static_cast<double>(i);
  };
  binding.accurate_cost = [](std::uint64_t) { return 10.0; };
  binding.commit = [&out](std::uint64_t i, std::span<const double> o) { out[i] = o[0]; };

  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(out.size(), 1, 128);
  const auto report =
      target_parallel_for(dev, executor, "none", binding, out.size(), launch);
  EXPECT_DOUBLE_EQ(dev.timeline().kernel_seconds, report.timing.seconds);
  EXPECT_DOUBLE_EQ(out[200], 200.0);

  // The string overload parses clause text on the fly.
  target_parallel_for(dev, executor, "perfo(large:4)", binding, out.size(), launch);
  EXPECT_GT(dev.timeline().kernel_seconds, report.timing.seconds);
}
