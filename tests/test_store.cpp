// Tests for harness::ResultStore, the snapshot-readable persistence layer
// under Campaign and TuningService. The load-bearing properties:
//   * snapshots are immutable, consistent values — concurrent readers see
//     a version whose contents never shift under them while the writer
//     appends (the sharded cases run under ThreadSanitizer in CI);
//   * the journal stays byte-compatible with the pre-store Campaign CSV:
//     a writer killed mid-append leaves a journal that reloads (torn tail
//     dropped) and finalizes byte-identical to an uninterrupted run;
//   * append/append_if_absent agree on tuple identity with Campaign keys.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "harness/campaign.hpp"
#include "harness/result_store.hpp"

using namespace hpac;
using namespace hpac::harness;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string temp_csv(const std::string& stem) {
  const std::string path = testing::TempDir() + "hpac_store_" + stem + ".csv";
  std::remove(path.c_str());
  return path;
}

/// A distinct, fully populated record per index: every tuple key differs
/// (spec text varies by stride) and the float fields are recognizable.
RunRecord make_record(std::uint64_t i) {
  RunRecord r;
  r.benchmark = "blackscholes";
  r.device = "v100";
  r.technique = pragma::Technique::kPerforation;
  r.spec_text = "perfo(small:" + std::to_string(i + 2) + ")";
  r.items_per_thread = 8;
  r.speedup = 1.0 + 0.01 * static_cast<double>(i);
  r.error_percent = 0.5;
  r.perfo_kind = "small";
  r.perfo_stride = static_cast<int>(i + 2);
  return r;
}

}  // namespace

TEST(ResultStore, StartsEmptyAndVersionsAppends) {
  ResultStore store;  // in-memory
  EXPECT_FALSE(store.persistent());
  EXPECT_EQ(store.version(), 0u);
  EXPECT_TRUE(store.snapshot().empty());

  EXPECT_EQ(store.append(make_record(0)), 1u);
  EXPECT_EQ(store.append(make_record(1)), 2u);
  const ResultStore::Snapshot snap = store.snapshot();
  EXPECT_EQ(snap.version(), 2u);
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.at(0).spec_text, "perfo(small:2)");
  EXPECT_EQ(snap.at(1).spec_text, "perfo(small:3)");
}

TEST(ResultStore, FindUsesCampaignTupleIdentity) {
  ResultStore store;
  store.append(make_record(3));
  const ResultStore::Snapshot snap = store.snapshot();
  const RunRecord* hit = snap.find("blackscholes", "v100", "perfo(small:5)", 8);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->perfo_stride, 5);
  EXPECT_EQ(snap.find_key(Campaign::tuple_key("blackscholes", "v100", "perfo(small:5)", 8)),
            hit);
  EXPECT_EQ(snap.find("blackscholes", "v100", "perfo(small:5)", 16), nullptr);
  EXPECT_EQ(snap.find("blackscholes", "mi250x", "perfo(small:5)", 8), nullptr);
}

TEST(ResultStore, DuplicateTuplesThrowOrNoOp) {
  ResultStore store;
  EXPECT_NE(store.append_if_absent(make_record(0)), 0u);
  EXPECT_EQ(store.append_if_absent(make_record(0)), 0u);  // silently kept first
  EXPECT_THROW(store.append(make_record(0)), Error);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.version(), 1u);  // failed appends publish nothing
}

TEST(ResultStore, SnapshotsAreImmutableValues) {
  ResultStore store;
  store.append(make_record(0));
  const ResultStore::Snapshot old = store.snapshot();
  const RunRecord* pinned = old.find_key(ResultStore::key_of(make_record(0)));
  ASSERT_NE(pinned, nullptr);

  for (std::uint64_t i = 1; i < 200; ++i) store.append(make_record(i));

  // The old snapshot still shows exactly what it showed at capture time,
  // and the interior pointer it handed out is still the same record.
  EXPECT_EQ(old.version(), 1u);
  EXPECT_EQ(old.size(), 1u);
  EXPECT_EQ(old.find_key(ResultStore::key_of(make_record(0))), pinned);
  EXPECT_EQ(old.find_key(ResultStore::key_of(make_record(7))), nullptr);
  EXPECT_EQ(store.snapshot().size(), 200u);
}

TEST(ResultStore, ConcurrentReadersSeeConsistentVersions) {
  // The writer appends while readers continuously snapshot and audit the
  // invariant version == size == number of distinct specs reachable via
  // the index. Under TSan this also proves the read path (which never
  // takes the writer lock) is race-free against the publishing writer.
  ResultStore store;
  constexpr std::uint64_t kAppends = 400;
  constexpr int kReaders = 4;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> inconsistencies{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_version = 0;
      while (!done.load(std::memory_order_acquire)) {
        const ResultStore::Snapshot snap = store.snapshot();
        if (snap.version() < last_version) ++inconsistencies;  // must be monotonic
        last_version = snap.version();
        if (snap.version() != snap.size()) ++inconsistencies;
        // Every record present in the vector must be reachable through
        // the index of the *same* snapshot.
        std::uint64_t reachable = 0;
        snap.for_each([&](const RunRecord& rec) {
          if (snap.find_key(ResultStore::key_of(rec)) != nullptr) ++reachable;
        });
        if (reachable != snap.size()) ++inconsistencies;
      }
    });
  }

  for (std::uint64_t i = 0; i < kAppends; ++i) store.append(make_record(i));
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(inconsistencies.load(), 0u);
  EXPECT_EQ(store.version(), kAppends);
}

TEST(ResultStore, JournalMatchesCanonicalCsvFormat) {
  const std::string path = temp_csv("journal_format");
  ResultDb reference;
  {
    ResultStore store(path);
    for (std::uint64_t i = 0; i < 5; ++i) {
      store.append(make_record(i));
      reference.add(make_record(i));
    }
  }  // destroyed without finalize: the raw journal remains

  // The journal of an un-killed writer is already the canonical CSV.
  const std::string canonical = temp_csv("journal_format_ref");
  reference.save(canonical);
  EXPECT_EQ(slurp(path), slurp(canonical));
}

TEST(ResultStore, RestoresJournalAndDropsTornTail) {
  const std::string path = temp_csv("torn_tail");
  std::string healthy;
  {
    ResultStore store(path);
    for (std::uint64_t i = 0; i < 4; ++i) store.append(make_record(i));
    healthy = slurp(path);
  }

  // Simulate a writer killed mid-append: truncate the last row in half.
  const std::size_t cut = healthy.rfind(",perfo");
  ASSERT_NE(cut, std::string::npos);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << healthy.substr(0, cut);
  }

  ResultStore reopened(path);
  EXPECT_EQ(reopened.load_stats().restored, 3u);  // torn row 3 dropped
  EXPECT_EQ(reopened.load_stats().duplicates, 0u);
  EXPECT_EQ(reopened.version(), 3u);
  EXPECT_FALSE(reopened.snapshot().contains_key(ResultStore::key_of(make_record(3))));

  // Re-appending the lost record continues the same journal, and the
  // finalized CSV is byte-identical to a never-interrupted run.
  reopened.append(make_record(3));
  reopened.finalize(reopened.snapshot().to_db());
  EXPECT_EQ(slurp(path), healthy);
}

TEST(ResultStore, TornTailIsTruncatedOutOfTheFileBeforeAppendsResume) {
  const std::string path = temp_csv("torn_truncate");
  std::string healthy;
  {
    ResultStore store(path);
    for (std::uint64_t i = 0; i < 3; ++i) store.append(make_record(i));
    healthy = slurp(path);
  }
  const std::size_t cut = healthy.rfind(",perfo");
  ASSERT_NE(cut, std::string::npos);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << healthy.substr(0, cut);
  }

  // Reopening repairs the FILE, not just the in-memory index: the half
  // row is gone from disk the moment the store is constructed. Without
  // this, the next append would glue onto the torn row and corrupt a
  // mid-file line that every later reload mis-parses.
  {
    ResultStore reopened(path);
    const std::string repaired = slurp(path);
    EXPECT_EQ(repaired.size(), healthy.rfind('\n', cut) + 1);
    EXPECT_EQ(repaired.back(), '\n');
    reopened.append(make_record(2));
  }
  EXPECT_EQ(slurp(path), healthy);  // byte-identical to the uninterrupted run

  // A file torn before any complete row survives degenerates to a fresh
  // journal (header rewritten), not a parse error.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "benchmark,half a hea";
  }
  ResultStore fresh(path);
  EXPECT_EQ(fresh.load_stats().restored, 0u);
  fresh.append(make_record(0));
  ResultStore audit(path);
  EXPECT_EQ(audit.load_stats().restored, 1u);
}

TEST(ResultStore, ReadOnlyStoreServesButNeverWrites) {
  const std::string path = temp_csv("read_only");
  {
    ResultStore writer(path);
    for (std::uint64_t i = 0; i < 3; ++i) writer.append(make_record(i));
  }
  const std::string before = slurp(path);

  ResultStore ro(path, /*read_only=*/true);
  EXPECT_TRUE(ro.read_only());
  EXPECT_EQ(ro.load_stats().restored, 3u);
  EXPECT_TRUE(ro.snapshot().contains_key(ResultStore::key_of(make_record(1))));
  EXPECT_THROW(ro.append(make_record(9)), Error);
  EXPECT_THROW(ro.append_if_absent(make_record(9)), Error);
  EXPECT_THROW(ro.finalize(ro.snapshot().to_db()), Error);
  EXPECT_EQ(slurp(path), before);  // not a byte changed, not even a truncation

  // Read-only without an existing journal is a configuration error, not
  // an empty store silently serving nothing.
  EXPECT_THROW(ResultStore missing(temp_csv("read_only_missing"), /*read_only=*/true),
               Error);
}

TEST(ResultStore, ReadOnlyStoreLeavesATornTailInPlace) {
  const std::string path = temp_csv("read_only_torn");
  std::string healthy;
  {
    ResultStore writer(path);
    for (std::uint64_t i = 0; i < 3; ++i) writer.append(make_record(i));
    healthy = slurp(path);
  }
  const std::size_t cut = healthy.rfind(",perfo");
  ASSERT_NE(cut, std::string::npos);
  const std::string torn = healthy.substr(0, cut);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << torn;
  }

  // The index drops the torn row (it cannot be served), but the file —
  // possibly another process's live journal — is left exactly as found.
  ResultStore ro(path, /*read_only=*/true);
  EXPECT_EQ(ro.load_stats().restored, 2u);
  EXPECT_FALSE(ro.snapshot().contains_key(ResultStore::key_of(make_record(2))));
  EXPECT_EQ(slurp(path), torn);
}

TEST(ResultStore, FinalizeIsTerminal) {
  const std::string path = temp_csv("finalize");
  ResultStore store(path);
  store.append(make_record(0));
  store.finalize(store.snapshot().to_db());
  EXPECT_THROW(store.append(make_record(1)), Error);
  // The published snapshot keeps serving after finalize.
  EXPECT_TRUE(store.snapshot().contains_key(ResultStore::key_of(make_record(0))));
}

TEST(ResultStore, ToDbPreservesAppendOrder) {
  ResultStore store;
  for (std::uint64_t i = 0; i < 16; ++i) store.append(make_record(15 - i));
  const ResultDb db = store.snapshot().to_db();
  ASSERT_EQ(db.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(db.records()[i].perfo_stride, static_cast<int>(17 - i));
  }
}
