// Tests of the SIMD dispatch shim (hpac::simd) and of the tree-wide
// bit-identity contract: every reachable dispatch level must produce
// byte-identical application QoI and sweep CSVs, because every vector
// kernel replicates its scalar reference's per-lane operation sequence.
// (The per-kernel property tests live next to their subjects:
// test_iact.cpp for the table scan, test_taf.cpp for the incremental
// RSD.) The CI dispatch matrix re-checks the same invariant across
// *processes* via HPAC_SIMD; these tests check it in-process via
// set_level, so a plain `ctest` run covers it on any host.

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "apps/simd_kernels.hpp"
#include "approx/region.hpp"
#include "common/simd.hpp"
#include "harness/explorer.hpp"
#include "pragma/parser.hpp"
#include "sim/device.hpp"

using namespace hpac;

namespace {

/// Restores the process-wide dispatch level even on assertion failure.
class SimdLevelGuard {
 public:
  SimdLevelGuard() : previous_(simd::active_level()) {}
  ~SimdLevelGuard() { simd::set_level(previous_); }

 private:
  simd::Level previous_;
};

std::vector<simd::Level> reachable_levels() {
  std::vector<simd::Level> levels{simd::Level::kOff};
  if (simd::max_runtime_level() >= simd::Level::kSse2) levels.push_back(simd::Level::kSse2);
  if (simd::max_runtime_level() >= simd::Level::kAvx2) levels.push_back(simd::Level::kAvx2);
  return levels;
}

}  // namespace

// --- shim behavior ----------------------------------------------------------

TEST(Simd, LevelNamesMatchEnvSpellings) {
  EXPECT_STREQ(simd::level_name(simd::Level::kOff), "off");
  EXPECT_STREQ(simd::level_name(simd::Level::kSse2), "sse2");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx2), "avx2");
}

TEST(Simd, DispatchInfoIsInternallyConsistent) {
  const simd::DispatchInfo info = simd::dispatch_info();
  EXPECT_LE(info.active, info.max_runtime);
  EXPECT_LE(info.max_runtime, info.max_compiled);
#if defined(__x86_64__) || defined(_M_X64)
  // SSE2 is the x86-64 baseline: always compiled, always available.
  EXPECT_GE(info.max_compiled, simd::Level::kSse2);
  EXPECT_GE(info.max_runtime, simd::Level::kSse2);
#endif
}

TEST(Simd, SetLevelClampsToRuntimeMaxAndRoundTrips) {
  SimdLevelGuard guard;
  // Asking for more than the host has degrades to the widest available.
  const simd::Level installed = simd::set_level(simd::Level::kAvx2);
  EXPECT_LE(installed, simd::max_runtime_level());
  EXPECT_EQ(installed, simd::active_level());
  // kOff is always installable exactly.
  EXPECT_EQ(simd::set_level(simd::Level::kOff), simd::Level::kOff);
  EXPECT_EQ(simd::active_level(), simd::Level::kOff);
}

TEST(Simd, KernelDispatchFollowsLevel) {
  SimdLevelGuard guard;
  simd::set_level(simd::Level::kOff);
  EXPECT_EQ(apps::kernels::blackscholes_batch_fn(), nullptr);
  EXPECT_EQ(apps::kernels::binomial_induct_fn(), nullptr);
  const simd::Level best = simd::set_level(simd::max_runtime_level());
  if (best >= simd::Level::kSse2) {
    EXPECT_NE(apps::kernels::blackscholes_batch_fn(), nullptr);
    EXPECT_NE(apps::kernels::binomial_induct_fn(), nullptr);
  }
}

// --- observability ----------------------------------------------------------

TEST(Simd, ExecStatsReportTheActiveDispatchLevel) {
  SimdLevelGuard guard;
  std::vector<double> out(1u << 10, 0.0);
  approx::RegionBinding binding;
  binding.in_dims = 0;
  binding.out_dims = 1;
  binding.accurate = [](std::uint64_t i, std::span<const double>, std::span<double> o) {
    o[0] = static_cast<double>(i);
  };
  binding.accurate_cost = [](std::uint64_t) { return 10.0; };
  binding.commit = [&out](std::uint64_t i, std::span<const double> o) { out[i] = o[0]; };
  for (const simd::Level level : reachable_levels()) {
    simd::set_level(level);
    approx::RegionExecutor executor(sim::v100());
    const sim::LaunchConfig launch = sim::launch_for_items_per_thread(out.size(), 8, 128);
    const approx::RegionReport report =
        executor.run(pragma::parse_approx("none"), binding, out.size(), launch);
    EXPECT_EQ(report.stats.simd_level, level) << simd::level_name(level);
  }
}

// --- cross-level bit-identity -----------------------------------------------

namespace {

/// QoI of one full app run at the given dispatch level. Apps resolve
/// their kernels per run(), so flipping the level between runs is enough.
std::vector<double> qoi_at_level(const std::string& app_name, const char* clause,
                                 simd::Level level) {
  simd::set_level(level);
  auto app = apps::make_benchmark(app_name);
  return app->run(pragma::parse_approx(clause), 8, sim::v100()).qoi;
}

}  // namespace

TEST(SimdParity, AppQoiBitIdenticalAcrossDispatchLevels) {
  SimdLevelGuard guard;
  // The two apps with vector batch kernels, under both the plain accurate
  // path and the memo techniques that mix approximate answers in.
  for (const char* app : {"blackscholes", "binomial_options"}) {
    for (const char* clause : {"none", "memo(out:3:8:0.5) level(warp)"}) {
      const std::vector<double> reference = qoi_at_level(app, clause, simd::Level::kOff);
      for (const simd::Level level : reachable_levels()) {
        if (level == simd::Level::kOff) continue;
        const std::vector<double> vectored = qoi_at_level(app, clause, level);
        ASSERT_EQ(reference.size(), vectored.size());
        ASSERT_EQ(0, std::memcmp(reference.data(), vectored.data(),
                                 reference.size() * sizeof(double)))
            << app << " '" << clause << "' at " << simd::level_name(level);
      }
    }
  }
}

namespace {

/// A small Explorer sweep serialized to CSV — the byte-identity contract
/// the harness layers rely on, exercised over the apps and techniques the
/// SIMD layer touches (iACT scan, TAF RSD, app batch kernels). lavamd's
/// mean-zero force outputs are the cancellation-heavy TAF case.
std::string sweep_csv_at_level(simd::Level level) {
  simd::set_level(level);
  harness::ResultDb db;
  for (const char* name : {"blackscholes", "binomial_options", "lavamd"}) {
    auto app = apps::make_benchmark(name);
    harness::Explorer explorer(*app, sim::v100());
    for (const char* clause :
         {"memo(out:3:8:0.5) level(warp)", "memo(in:4:0.5:2) in(x) out(y)"}) {
      explorer.run_config(pragma::parse_approx(clause), 8);
    }
    for (const auto& record : explorer.db().records()) db.add(record);
  }
  std::ostringstream os;
  db.to_csv().write(os);
  return os.str();
}

}  // namespace

TEST(SimdParity, SweepCsvBytesInvariantAcrossDispatchLevels) {
  SimdLevelGuard guard;
  const std::string reference = sweep_csv_at_level(simd::Level::kOff);
  ASSERT_FALSE(reference.empty());
  for (const simd::Level level : reachable_levels()) {
    if (level == simd::Level::kOff) continue;
    EXPECT_EQ(sweep_csv_at_level(level), reference) << simd::level_name(level);
  }
}
