#pragma once

// Deliberately mislabeled benchmark fixtures for the commit-conflict
// auditor (hpac::approx::audit): every variant *claims*
// `independent_items` while violating it in a different way, so the tests
// can check that each detection surface — write/write address tagging,
// declared read/write overlap, and the differential re-run — catches the
// class of bug it is responsible for.
//
// The shared-cell variant commits through relaxed atomic stores: the
// overlap is still a real commit conflict (last-writer-wins, order
// dependent), but running it team-sharded stays free of C++ data races so
// the detection tests can run under ThreadSanitizer.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/support.hpp"
#include "harness/benchmark.hpp"
#include "offload/device.hpp"
#include "pragma/spec.hpp"
#include "sim/launch.hpp"

namespace hpac::testing {

enum class Flaw {
  kNone,                  ///< honest: item i writes only cells[i]
  kSharedCell,            ///< items 2k and 2k+1 both write cells[k]
  kDeclaredReadNeighbor,  ///< reads cells[i-1], declared via read_extents
  kHiddenReadNeighbor,    ///< reads cells[i-1], undeclared (differential-only)
  kUndeclaredExtents,     ///< honest writes but no commit_extents at all
};

class MislabeledBenchmark : public harness::Benchmark {
 public:
  explicit MislabeledBenchmark(Flaw flaw, std::uint64_t items = 16384)
      : flaw_(flaw), items_(items) {}

  std::string name() const override { return "mislabeled_fixture"; }
  std::uint64_t default_items_per_thread() const override { return 8; }

  harness::RunOutput run(const pragma::ApproxSpec& spec, std::uint64_t items_per_thread,
                         const sim::DeviceConfig& device) override {
    const std::uint64_t n = items_;
    offload::Device dev(device);
    approx::RegionExecutor executor(device);
    cells_.assign(n, 0.0);
    std::vector<double>& cells = cells_;
    const Flaw flaw = flaw_;
    const bool chain =
        flaw == Flaw::kDeclaredReadNeighbor || flaw == Flaw::kHiddenReadNeighbor;

    approx::RegionBinding binding;
    binding.name = "fixture.mislabeled";
    binding.out_dims = 1;
    binding.in_bytes = sizeof(double);
    binding.out_bytes = sizeof(double);
    const auto cell_of = [flaw](std::uint64_t i) {
      return flaw == Flaw::kSharedCell ? i / 2 : i;
    };
    const auto value_one = [&cells, chain](std::uint64_t i, double* out) {
      if (chain) {
        // Chain dependence on the *previous item's committed cell*: the
        // value observed depends on whether item i-1's team already ran,
        // which is exactly what a reordered schedule perturbs.
        out[0] = (i == 0 ? 0.0 : cells[i - 1]) * 0.5 + 1.0;
      } else {
        out[0] = 1.0 + static_cast<double>(i % 7);
      }
    };
    apps::bind_accurate(binding, value_one);
    apps::bind_constant_cost(binding, 16.0);
    const auto commit_one = [&cells, flaw, cell_of](std::uint64_t i, const double* out) {
      if (flaw == Flaw::kSharedCell) {
        std::atomic_ref<double>(cells[cell_of(i)]).store(out[0], std::memory_order_relaxed);
      } else {
        cells[cell_of(i)] = out[0];
      }
    };
    apps::bind_commit(binding, commit_one);
    binding.independent_items = true;  // the (false, for most flaws) claim under test
    if (flaw != Flaw::kUndeclaredExtents) {
      // The extents themselves are truthful — the author knows *where*
      // they write; the subtle judgment the auditor validates is whether
      // those writes are independent across items.
      binding.commit_extents = [&cells, cell_of](std::uint64_t i,
                                                 approx::audit::ExtentSink& sink) {
        sink.writes(cells.data() + cell_of(i), sizeof(double));
      };
    }
    if (flaw == Flaw::kDeclaredReadNeighbor) {
      binding.read_extents = [&cells](std::uint64_t i, approx::audit::ExtentSink& sink) {
        if (i > 0) sink.reads(cells.data() + (i - 1), sizeof(double));
      };
    }

    const sim::LaunchConfig launch =
        sim::launch_for_items_per_thread(n, items_per_thread, threads_per_team());
    harness::RunOutput output;
    apps::launch_kernel(dev, executor, spec, binding, n, launch, &output.stats);
    output.timeline = dev.timeline();
    output.qoi = cells_;
    return output;
  }

  std::unique_ptr<harness::Benchmark> fork() const override {
    return std::make_unique<MislabeledBenchmark>(*this);
  }

  const std::vector<double>& cells() const { return cells_; }

 private:
  Flaw flaw_;
  std::uint64_t items_;
  std::vector<double> cells_;
};

}  // namespace hpac::testing
