// Unit and property tests for the GPU simulator substrate: device presets,
// launch geometry, shared-memory accounting, coalescing, warp primitives
// and the analytic timing model.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "common/error.hpp"
#include "sim/device.hpp"
#include "sim/launch.hpp"
#include "sim/memory_model.hpp"
#include "sim/shared_memory.hpp"
#include "sim/timing.hpp"
#include "sim/warp.hpp"

using namespace hpac;
using namespace hpac::sim;

TEST(Device, PresetsMatchPlatformStory) {
  const DeviceConfig nv = v100();
  const DeviceConfig amd = mi250x();
  EXPECT_EQ(nv.warp_size, 32);
  EXPECT_EQ(amd.warp_size, 64);
  // The AMD part has more SMs (the paper's 80:220 ratio, scaled).
  EXPECT_GT(amd.num_sms, 2 * nv.num_sms);
  EXPECT_EQ(nv.global_mem_bytes, 16ull << 30);
}

TEST(Device, LookupByName) {
  EXPECT_EQ(device_by_name("nvidia").name, "v100");
  EXPECT_EQ(device_by_name("AMD").name, "mi250x");
  EXPECT_THROW(device_by_name("tpu"), ConfigError);
}

TEST(Device, AliasAndCaseInsensitiveRoundTrips) {
  // Vendor aliases resolve to the canonical presets regardless of case...
  EXPECT_EQ(device_by_name("NVIDIA").name, "v100");
  EXPECT_EQ(device_by_name("NvIdIa").name, "v100");
  EXPECT_EQ(device_by_name("amd").name, "mi250x");
  EXPECT_EQ(device_by_name("Amd").name, "mi250x");
  EXPECT_EQ(device_by_name("V100").name, "v100");
  EXPECT_EQ(device_by_name("MI250X").name, "mi250x");
  // ...and the canonical name a lookup returns looks itself up again.
  EXPECT_EQ(device_by_name(device_by_name("NVIDIA").name).name, "v100");
  EXPECT_EQ(device_by_name(device_by_name("amd").name).name, "mi250x");
}

TEST(Device, A100PresetExtendsThePortabilityComparison) {
  const DeviceConfig amp = a100();
  EXPECT_EQ(amp.name, "a100");
  EXPECT_EQ(amp.warp_size, 32);
  // SM counts keep the real parts' 80:108:220 ordering under the common
  // 1/8 scaling.
  EXPECT_GT(amp.num_sms, v100().num_sms);
  EXPECT_LT(amp.num_sms, mi250x().num_sms);
  // The A100's large shared memory is the point of the preset: AC states
  // too big for the MI250X's 64 KB LDS still fit here.
  EXPECT_GT(amp.shared_mem_per_sm, v100().shared_mem_per_sm);
  EXPECT_GT(amp.shared_mem_per_block, mi250x().shared_mem_per_block);
  EXPECT_EQ(amp.global_mem_bytes, 40ull << 30);
}

TEST(Device, A100LookupAliases) {
  EXPECT_EQ(device_by_name("a100").name, "a100");
  EXPECT_EQ(device_by_name("A100").name, "a100");
  EXPECT_EQ(device_by_name("ampere").name, "a100");
  EXPECT_EQ(device_by_name("Ampere").name, "a100");
  EXPECT_EQ(device_by_name(device_by_name("ampere").name).name, "a100");
}

TEST(Device, UnknownPresetThrowsConfigError) {
  EXPECT_THROW(device_by_name("h100"), ConfigError);
  EXPECT_THROW(device_by_name(""), ConfigError);
  EXPECT_THROW(device_by_name("v100 "), ConfigError);  // no trimming promised
  try {
    device_by_name("gaudi");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("gaudi"), std::string::npos);
  }
}

TEST(Device, TransferTimeIsLatencyPlusBandwidth) {
  DeviceConfig d = v100();
  const double just_latency = d.transfer_seconds(0);
  EXPECT_NEAR(just_latency, d.host_link_latency_us * 1e-6, 1e-12);
  const double one_gb = d.transfer_seconds(1ull << 30);
  EXPECT_GT(one_gb, just_latency + 0.01);
}

TEST(Launch, StepsForCoversIterationSpace) {
  LaunchConfig cfg;
  cfg.num_teams = 4;
  cfg.threads_per_team = 128;  // 512 threads
  EXPECT_EQ(cfg.steps_for(512), 1u);
  EXPECT_EQ(cfg.steps_for(513), 2u);
  EXPECT_EQ(cfg.steps_for(1), 1u);
}

TEST(Launch, ItemsPerThreadBuilder) {
  const auto cfg = launch_for_items_per_thread(1 << 16, 8, 128);
  EXPECT_EQ(cfg.total_threads(), (1u << 16) / 8);
  EXPECT_EQ(cfg.threads_per_team, 128u);
}

TEST(Launch, ExtremeItemsPerThreadShrinksTeam) {
  // Figure 8c sweeps to 16384 items per thread: a single thread must be
  // a valid launch.
  const auto cfg = launch_for_items_per_thread(16384, 16384, 128);
  EXPECT_EQ(cfg.total_threads(), 1u);
  EXPECT_EQ(cfg.steps_for(16384), 16384u);
}

TEST(Launch, ValidationRejectsBadGeometry) {
  DeviceConfig dev = v100();
  LaunchConfig cfg;
  cfg.num_teams = 0;
  EXPECT_THROW(cfg.validate(dev), ConfigError);
  cfg.num_teams = 1;
  cfg.threads_per_team = 4096;  // beyond the 1024-thread block limit
  EXPECT_THROW(cfg.validate(dev), ConfigError);
}

TEST(SharedMemory, AllocatesAndTracksPeak) {
  SharedMemoryArena arena(v100());
  auto a = arena.alloc_doubles(100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(arena.bytes_used(), 800u);
  arena.alloc_ints(10);
  EXPECT_EQ(arena.bytes_used(), 840u);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.peak_bytes(), 840u);
}

TEST(SharedMemory, OverflowThrowsConfigError) {
  SharedMemoryArena arena(v100());
  EXPECT_THROW(arena.alloc_doubles((96u << 10) / 8 + 1), ConfigError);
}

TEST(SharedMemory, KernelLifetimeScoping) {
  // Paper §3.1.1: state is destroyed when the kernel completes.
  SharedMemoryArena arena(v100());
  auto span = arena.alloc_doubles(4);
  span[0] = 42.0;
  arena.reset();
  auto fresh = arena.alloc_doubles(4);
  EXPECT_EQ(fresh[0], 0.0);
}

TEST(Warp, FullMaskAndLaneOps) {
  EXPECT_EQ(full_mask(32), 0xFFFFFFFFull);
  EXPECT_EQ(full_mask(64), ~0ull);
  EXPECT_TRUE(lane_active(0b100, 2));
  EXPECT_FALSE(lane_active(0b100, 1));
  EXPECT_EQ(popcount(0b1011ull), 3);
  EXPECT_EQ(first_lane(0b1000), 3);
  EXPECT_EQ(first_lane(0), -1);
}

TEST(Warp, BallotRespectsActiveMask) {
  std::array<bool, 4> wishes{true, true, false, true};
  const LaneMask mask =
      ballot(std::span<const bool>(wishes.data(), wishes.size()), 0b0011);
  EXPECT_EQ(mask, 0b0011ull);  // lane 3 wished but is inactive
}

TEST(Warp, LedgerSerializesDivergentPaths) {
  WarpLedger ledger;
  const std::array<double, 2> both{100.0, 30.0};
  ledger.charge_paths(both);
  EXPECT_DOUBLE_EQ(ledger.compute_cycles(), 130.0);
  EXPECT_EQ(ledger.divergent_regions(), 1u);
  const std::array<double, 2> single{50.0, 0.0};
  ledger.charge_paths(single);
  EXPECT_EQ(ledger.divergent_regions(), 1u);  // one path is free: no divergence
}

TEST(Coalescing, UnitStrideDoublesOn32ByteSegments) {
  CoalescingModel model(v100());  // 32-byte segments
  // 32 lanes x 8-byte elements, fully active: 256 bytes = 8 transactions.
  EXPECT_EQ(model.unit_stride_transactions(0, 8, full_mask(32), 32), 8u);
}

TEST(Coalescing, SparseMaskStillTouchesMostSegments) {
  CoalescingModel model(v100());
  // Every other lane active: segments still cover the whole range —
  // the memory-fragmentation cost of per-thread (small) perforation.
  LaneMask every_other = 0x55555555ull;
  EXPECT_EQ(model.unit_stride_transactions(0, 8, every_other, 32), 8u);
}

TEST(Coalescing, EmptyMaskIsFree) {
  CoalescingModel model(v100());
  EXPECT_EQ(model.unit_stride_transactions(0, 8, 0, 32), 0u);
}

TEST(Coalescing, ExplicitAddressesDeduplicateSegments) {
  CoalescingModel model(v100());
  std::vector<std::uint64_t> addrs{0, 8, 16, 24, 1024};
  EXPECT_EQ(model.transactions(addrs, full_mask(5)), 2u);
}

TEST(Coalescing, StridedColumnMajorAccess) {
  CoalescingModel model(v100());
  // Figure 5's array section: 5 elements per lane, stride N; each of the
  // 5 "columns" coalesces across lanes.
  const std::uint32_t tx = model.strided_transactions(8, 5, 4096, full_mask(32), 32);
  EXPECT_EQ(tx, 5u * 8u);
}

namespace {
KernelTracker make_tracker(const DeviceConfig& dev, std::uint64_t teams,
                           std::uint32_t tpt = 128, std::size_t shmem = 0) {
  LaunchConfig cfg;
  cfg.num_teams = teams;
  cfg.threads_per_team = tpt;
  return KernelTracker(dev, cfg, shmem);
}
}  // namespace

TEST(Timing, MoreComputeTakesLonger) {
  const DeviceConfig dev = v100();
  auto t1 = make_tracker(dev, 16);
  auto t2 = make_tracker(dev, 16);
  for (std::uint64_t b = 0; b < 16; ++b) {
    for (std::uint32_t w = 0; w < 4; ++w) {
      t1.warp(b, w).charge_compute(1000);
      t2.warp(b, w).charge_compute(3000);
    }
  }
  EXPECT_LT(t1.finalize().seconds, t2.finalize().seconds);
}

TEST(Timing, LatencyHidingImprovesWithOccupancy) {
  // Same total work and memory rounds: many resident warps hide latency
  // better than few (the Figure 8c mechanism).
  const DeviceConfig dev = v100();
  auto sparse = make_tracker(dev, 1);    // one team on one SM
  auto dense = make_tracker(dev, 160);   // 16 teams per SM
  for (std::uint32_t w = 0; w < 4; ++w) {
    sparse.warp(0, w).charge_compute(100);
    sparse.warp(0, w).charge_memory(8, 16);
  }
  for (std::uint64_t b = 0; b < 160; ++b) {
    for (std::uint32_t w = 0; w < 4; ++w) {
      dense.warp(b, w).charge_compute(100);
      dense.warp(b, w).charge_memory(8, 16);
    }
  }
  const auto t_sparse = sparse.finalize();
  const auto t_dense = dense.finalize();
  // The dense launch does 160x the work but takes far less than 160x/10sms.
  EXPECT_LT(t_dense.critical_path_cycles, t_sparse.critical_path_cycles * 16.0 * 0.9);
  EXPECT_GT(t_dense.occupancy, t_sparse.occupancy);
}

TEST(Timing, SharedMemoryLimitsResidency) {
  const DeviceConfig dev = v100();
  auto light = make_tracker(dev, 32, 128, 0);
  auto heavy = make_tracker(dev, 32, 128, dev.shared_mem_per_block);
  EXPECT_GT(light.resident_blocks_per_sm(), heavy.resident_blocks_per_sm());
  EXPECT_EQ(heavy.resident_blocks_per_sm(), 1);
}

TEST(Timing, DivergenceCountsSurface) {
  const DeviceConfig dev = v100();
  auto tracker = make_tracker(dev, 1);
  const std::array<double, 2> paths{10.0, 20.0};
  tracker.warp(0, 0).charge_paths(paths);
  EXPECT_EQ(tracker.finalize().divergent_regions, 1u);
}

TEST(Timing, LaunchOverheadFloorsKernelTime) {
  const DeviceConfig dev = v100();
  auto tracker = make_tracker(dev, 1);
  const auto timing = tracker.finalize();
  EXPECT_GE(timing.seconds, dev.kernel_launch_overhead_us * 1e-6);
}

TEST(Timing, BlocksDistributeAcrossSms) {
  // 10 blocks over 10 SMs should be ~10x faster than 10 blocks' work on
  // one SM (modeled by launching one team with the same total cycles).
  const DeviceConfig dev = v100();
  auto spread = make_tracker(dev, 10);
  for (std::uint64_t b = 0; b < 10; ++b) spread.warp(b, 0).charge_compute(10000);
  auto lumped = make_tracker(dev, 1);
  lumped.warp(0, 0).charge_compute(100000);
  EXPECT_LT(spread.finalize().critical_path_cycles,
            lumped.finalize().critical_path_cycles * 0.2);
}

TEST(Coalescing, NonPowerOfTwoSegmentsAndScatteredMasks) {
  // Exercise the division fallback (non-power-of-two sectors) and the
  // sparse-mask path against a brute-force segment count.
  DeviceConfig dev = v100();
  dev.transaction_bytes = 24;
  CoalescingModel model(dev);
  const auto brute = [&](std::uint64_t first, std::uint32_t eb, LaneMask mask, int ws) {
    std::vector<std::uint64_t> segments;
    for (int lane = 0; lane < ws; ++lane) {
      if (!lane_active(mask, lane)) continue;
      const std::uint64_t addr = (first + static_cast<std::uint64_t>(lane)) * eb;
      for (std::uint64_t s = addr / 24; s <= (addr + eb - 1) / 24; ++s) segments.push_back(s);
    }
    std::sort(segments.begin(), segments.end());
    segments.erase(std::unique(segments.begin(), segments.end()), segments.end());
    return static_cast<std::uint32_t>(segments.size());
  };
  for (LaneMask mask : {LaneMask{0x55555555}, LaneMask{0xF0F00F0F}, full_mask(32),
                        LaneMask{0x80000001}, LaneMask{0x00010000}}) {
    for (std::uint64_t first : {0ull, 3ull, 1001ull}) {
      for (std::uint32_t eb : {4u, 8u, 40u}) {
        EXPECT_EQ(model.unit_stride_transactions(first, eb, mask, 32),
                  brute(first, eb, mask, 32))
            << "mask=" << mask << " first=" << first << " eb=" << eb;
      }
    }
  }
}

TEST(Warp, ForEachLaneVisitsSetBitsAscending) {
  std::vector<int> lanes;
  for_each_lane(0b1010011ull, [&](int lane) { lanes.push_back(lane); });
  EXPECT_EQ(lanes, (std::vector<int>{0, 1, 4, 6}));
  for_each_lane(0ull, [&](int) { FAIL() << "empty mask must not visit"; });
}

TEST(Warp, LedgerMergeSumsAllCharges) {
  WarpLedger a;
  a.charge_compute(10.0);
  a.charge_memory(4, 2);
  const std::array<double, 2> paths{5.0, 7.0};
  a.charge_paths(paths);
  WarpLedger b;
  b.charge_compute(1.0);
  b.charge_memory(1, 1);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.compute_cycles(), 23.0);
  EXPECT_EQ(b.transactions(), 5u);
  EXPECT_EQ(b.memory_rounds(), 3u);
  EXPECT_EQ(b.divergent_regions(), 1u);
}

TEST(Timing, ShardedTrackersMergeToTheSerialResult) {
  const DeviceConfig dev = v100();
  LaunchConfig cfg;
  cfg.num_teams = 10;
  cfg.threads_per_team = 128;

  KernelTracker serial(dev, cfg);
  KernelTracker full(dev, cfg);
  KernelTracker shard_a(dev, cfg, 0, 0, 6);
  KernelTracker shard_b(dev, cfg, 0, 6, 10);
  for (std::uint64_t team = 0; team < 10; ++team) {
    for (std::uint32_t w = 0; w < cfg.warps_per_team(dev); ++w) {
      const double cycles = 100.0 + static_cast<double>(team * 7 + w);
      serial.warp(team, w).charge_compute(cycles);
      serial.warp(team, w).charge_memory(static_cast<std::uint32_t>(team + 1), 1);
      KernelTracker& shard = team < 6 ? shard_a : shard_b;
      shard.warp(team, w).charge_compute(cycles);
      shard.warp(team, w).charge_memory(static_cast<std::uint32_t>(team + 1), 1);
    }
  }
  full.merge(shard_a);
  full.merge(shard_b);
  const KernelTiming expected = serial.finalize();
  const KernelTiming merged = full.finalize();
  EXPECT_EQ(expected.seconds, merged.seconds);
  EXPECT_EQ(expected.critical_path_cycles, merged.critical_path_cycles);
  EXPECT_EQ(expected.total_transactions, merged.total_transactions);
  EXPECT_EQ(expected.compute_cycles_total, merged.compute_cycles_total);
  EXPECT_EQ(expected.occupancy, merged.occupancy);
}

TEST(Timing, ShardRangeIsValidated) {
  const DeviceConfig dev = v100();
  LaunchConfig cfg;
  cfg.num_teams = 4;
  cfg.threads_per_team = 128;
  EXPECT_THROW(KernelTracker(dev, cfg, 0, 2, 6), Error);
  KernelTracker full(dev, cfg);
  KernelTracker outside(dev, cfg, 0, 1, 3);
  EXPECT_NO_THROW(full.merge(outside));
  KernelTracker narrow(dev, cfg, 0, 1, 3);
  KernelTracker wider(dev, cfg, 0, 0, 4);
  EXPECT_THROW(narrow.merge(wider), Error);
}
