// Cross-module integration tests: clause text -> parser -> executor ->
// harness on both simulated platforms, plus end-to-end reproduction
// smoke checks of the paper's qualitative claims at small scale.

#include <gtest/gtest.h>

#include "apps/blackscholes.hpp"
#include "apps/kmeans.hpp"
#include "apps/lulesh.hpp"
#include "harness/analysis.hpp"
#include "harness/explorer.hpp"
#include "harness/params.hpp"
#include "pragma/parser.hpp"
#include "sim/device.hpp"

using namespace hpac;
using namespace hpac::harness;

namespace {
sim::DeviceConfig device_for(const std::string& name) { return sim::device_by_name(name); }
}  // namespace

class PlatformSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(PlatformSweep, LuleshEndToEndOnBothPlatforms) {
  apps::Lulesh::Params params;
  params.num_elems = 2048;
  params.num_steps = 30;
  apps::Lulesh app(params);
  Explorer explorer(app, device_for(GetParam()));
  const auto record =
      explorer.run_config(pragma::parse_approx("memo(out:3:8:0.5) level(warp)"), 8);
  EXPECT_TRUE(record.feasible);
  EXPECT_GT(record.speedup, 0.0);
  EXPECT_GE(record.error_percent, 0.0);
  EXPECT_EQ(record.device, device_for(GetParam()).name);
}

TEST_P(PlatformSweep, PerforationSpeedsUpLulesh) {
  apps::Lulesh::Params params;
  params.num_elems = 16384;  // enough blocks to keep 28 SMs compute-bound
  params.num_steps = 30;
  apps::Lulesh app(params);
  Explorer explorer(app, device_for(GetParam()));
  const auto record = explorer.run_config(pragma::parse_approx("perfo(fini:0.5)"), 1);
  EXPECT_TRUE(record.feasible);
  EXPECT_GT(record.speedup, 1.0);
  EXPECT_LT(record.error_percent, 20.0);
}

INSTANTIATE_TEST_SUITE_P(Platforms, PlatformSweep, ::testing::Values("v100", "mi250x"));

TEST(Integration, RunRecordsAreDeterministic) {
  apps::Blackscholes::Params params;
  params.num_options = 8192;
  apps::Blackscholes app1(params), app2(params);
  Explorer e1(app1, sim::v100()), e2(app2, sim::v100());
  const auto spec = pragma::parse_approx("memo(out:3:16:0.5) level(warp)");
  const auto a = e1.run_config(spec, 16);
  const auto b = e2.run_config(spec, 16);
  EXPECT_DOUBLE_EQ(a.speedup, b.speedup);
  EXPECT_DOUBLE_EQ(a.error_percent, b.error_percent);
  EXPECT_DOUBLE_EQ(a.approx_ratio, b.approx_ratio);
}

TEST(Integration, BlackscholesTafBeatsIact) {
  // Insight 4: TAF outperforms iACT (which pays its lookup on every
  // invocation).
  apps::Blackscholes::Params params;
  params.num_options = 1 << 15;
  apps::Blackscholes app(params);
  Explorer explorer(app, sim::v100());
  const auto taf =
      explorer.run_config(pragma::parse_approx("memo(out:1:64:0.9) level(warp)"), 16);
  const auto iact =
      explorer.run_config(pragma::parse_approx("memo(in:4:0.5:2) in(o) out(p)"), 16);
  EXPECT_TRUE(taf.feasible);
  EXPECT_TRUE(iact.feasible);
  EXPECT_GT(taf.speedup, iact.speedup);
}

TEST(Integration, KmeansTimeSpeedupTracksConvergence) {
  apps::KMeans::Params params;
  params.num_points = 8192;
  apps::KMeans app(params);
  Explorer explorer(app, sim::v100());
  std::vector<pragma::ApproxSpec> specs;
  for (double thr : {0.3, 1.5, 5.0}) {
    pragma::ApproxSpec spec;
    spec.technique = pragma::Technique::kTafMemo;
    spec.taf = pragma::TafParams{2, 64, thr};
    spec.level = pragma::HierarchyLevel::kWarp;
    specs.push_back(spec);
  }
  explorer.sweep(specs, {32, 128});
  const auto corr = convergence_correlation(explorer.db().records());
  ASSERT_GE(corr.time_speedup.size(), 4u);
  EXPECT_GT(corr.regression.r2, 0.5);  // strong linear relation (paper: 0.95)
  EXPECT_GT(corr.regression.slope, 0.0);
}

TEST(Integration, WarpSizeDiffersAcrossPlatforms) {
  // The same clause produces different table-sharing layouts on the two
  // platforms; both must run and account shared memory accordingly.
  apps::Blackscholes::Params params;
  params.num_options = 8192;
  for (const char* device : {"v100", "mi250x"}) {
    apps::Blackscholes app(params);
    Explorer explorer(app, device_for(device));
    const auto record =
        explorer.run_config(pragma::parse_approx("memo(in:4:0.5:16) in(o) out(p)"), 8);
    EXPECT_TRUE(record.feasible) << device;
  }
}

TEST(Integration, CuratedSweepFindsQualifyingConfigs) {
  apps::Blackscholes::Params params;
  params.num_options = 1 << 14;
  apps::Blackscholes app(params);
  Explorer explorer(app, sim::v100());
  explorer.sweep(curated_taf_specs({pragma::HierarchyLevel::kWarp}), {16});
  const auto best = best_under_error(explorer.db().records(), 10.0);
  ASSERT_TRUE(best.has_value());
  EXPECT_GT(best->speedup, 1.0);
}
