// Tests for the serving layers on top of ResultStore:
//   * harness::TuningService — memoized queries never evaluate (asserted
//     via the evaluation counters), cold queries evaluate exactly the
//     missing tuples, identical concurrent queries coalesce, the bounded
//     admission queue rejects with backpressure, and draining is
//     round-robin fair across clients;
//   * service::protocol — frames and message bodies round-trip and
//     malformed input raises ProtocolError instead of misparsing;
//   * service::TuningServer / TuningClient — the socket transport
//     end-to-end in-process, plus a subprocess smoke of the hpacd binary
//     when ctest provides HPACD_BIN (the `service` label).

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "harness/campaign.hpp"
#include "harness/result_store.hpp"
#include "harness/tuning_service.hpp"
#include "pragma/parser.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

using namespace hpac;
using namespace hpac::harness;

namespace {

TuningQuery query_for(const std::string& spec_text, std::uint64_t ipt = 8,
                      const std::string& benchmark = "blackscholes",
                      const std::string& device = "v100") {
  return TuningQuery{benchmark, device, spec_text, ipt};
}

/// Deterministic, scheduler-free evaluator: counts calls and records the
/// order tuples were evaluated in.
struct CountingEvaluator {
  std::mutex mutex;
  std::vector<std::string> order;  ///< spec_text per evaluation, in order
  std::atomic<std::uint64_t> calls{0};

  TuningServiceConfig config() {
    TuningServiceConfig cfg;
    cfg.evaluate_override = [this](const TuningQuery& q, const pragma::ApproxSpec&) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        order.push_back(q.spec_text);
      }
      ++calls;
      RunRecord r;
      r.speedup = 2.0;
      r.error_percent = 1.0;
      return r;
    };
    return cfg;
  }
};

/// A latch the evaluator blocks on until the test opens it — makes the
/// concurrency windows (coalescing, backpressure, fairness) deterministic.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> entered{0};

  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  void wait_open() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return open; });
  }
  void await_entered(int count) {
    while (entered.load() < count) std::this_thread::yield();
  }
};

void await_queries(const TuningService& service, std::uint64_t count) {
  // stats() takes the service lock, so once it reports `count` queries the
  // count-th query has finished its admission step too (same critical
  // section) — the poll is a deterministic ordering point.
  while (service.stats().queries < count) std::this_thread::yield();
}

std::string temp_socket(const std::string& stem) {
  const std::string path = testing::TempDir() + "hpacd_" + stem + ".sock";
  std::remove(path.c_str());
  return path;
}

}  // namespace

// --- TuningService -----------------------------------------------------------

TEST(TuningService, ColdThenMemoizedWithoutReEvaluation) {
  ResultStore store;
  CountingEvaluator eval;
  TuningService service(store, eval.config());

  const TuningAnswer cold = service.query(query_for("perfo(small:2)"));
  ASSERT_EQ(cold.status, TuningStatus::kOk);
  EXPECT_FALSE(cold.memoized);
  EXPECT_DOUBLE_EQ(cold.record.speedup, 2.0);
  EXPECT_EQ(cold.record.benchmark, "blackscholes");
  EXPECT_EQ(cold.record.spec_text, pragma::parse_approx("perfo(small:2)").to_string());
  EXPECT_EQ(eval.calls.load(), 1u);

  // The repeat is served from the store: the evaluator is never invoked
  // again — the counter is the proof the scheduler was not touched.
  const TuningAnswer warm = service.query(query_for("perfo(small:2)"));
  ASSERT_EQ(warm.status, TuningStatus::kOk);
  EXPECT_TRUE(warm.memoized);
  EXPECT_EQ(eval.calls.load(), 1u);

  const TuningService::Stats stats = service.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.evaluated, 1u);
  EXPECT_EQ(stats.memoized, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(TuningService, CanonicalizesDeviceAliasAndSpecSpelling) {
  ResultStore store;
  CountingEvaluator eval;
  TuningService service(store, eval.config());

  ASSERT_EQ(service.query(query_for("perfo(small:2)")).status, TuningStatus::kOk);
  // "nvidia" aliases the v100 preset; same tuple, so no second evaluation.
  const TuningAnswer aliased =
      service.query(query_for("perfo(small:2)", 8, "blackscholes", "nvidia"));
  ASSERT_EQ(aliased.status, TuningStatus::kOk);
  EXPECT_TRUE(aliased.memoized);
  EXPECT_EQ(aliased.record.device, "v100");
  EXPECT_EQ(eval.calls.load(), 1u);
}

TEST(TuningService, AnswersFromRecordsACampaignWroteToTheSameStore) {
  ResultStore store;
  const pragma::ApproxSpec spec = pragma::parse_approx("perfo(large:4)");
  RunRecord seeded;
  seeded.benchmark = "blackscholes";
  seeded.device = "v100";
  seeded.spec_text = spec.to_string();
  seeded.set_spec(spec);
  seeded.items_per_thread = 8;
  seeded.speedup = 3.5;
  store.append(seeded);

  CountingEvaluator eval;
  TuningService service(store, eval.config());
  const TuningAnswer answer = service.query(query_for("perfo(large:4)"));
  ASSERT_EQ(answer.status, TuningStatus::kOk);
  EXPECT_TRUE(answer.memoized);
  EXPECT_DOUBLE_EQ(answer.record.speedup, 3.5);
  EXPECT_EQ(eval.calls.load(), 0u);  // the store had it; no evaluation at all
}

TEST(TuningService, MalformedQueriesErrorWithoutEvaluation) {
  ResultStore store;
  CountingEvaluator eval;
  TuningService service(store, eval.config());

  EXPECT_EQ(service.query(query_for("perfo(small:2)", 8, "no_such_app")).status,
            TuningStatus::kError);
  EXPECT_EQ(service.query(query_for("perfo(small:2)", 0)).status, TuningStatus::kError);
  EXPECT_EQ(service.query(query_for("perfo(small:2)", 8, "blackscholes", "no_such_gpu"))
                .status,
            TuningStatus::kError);
  EXPECT_EQ(service.query(query_for("not a spec")).status, TuningStatus::kError);

  const TuningService::Stats stats = service.stats();
  EXPECT_EQ(stats.queries, 4u);
  EXPECT_EQ(stats.evaluated, 0u);
  EXPECT_EQ(eval.calls.load(), 0u);
  EXPECT_FALSE(service.query(query_for("not a spec")).error.empty());
}

TEST(TuningService, IdenticalConcurrentQueriesCoalesce) {
  ResultStore store;
  Gate gate;
  TuningServiceConfig cfg;
  cfg.evaluate_override = [&gate](const TuningQuery&, const pragma::ApproxSpec&) {
    ++gate.entered;
    gate.wait_open();
    RunRecord r;
    r.speedup = 2.0;
    return r;
  };
  TuningService service(store, cfg);

  std::thread first([&] {
    const TuningAnswer a = service.query(query_for("perfo(small:2)"), "alice");
    EXPECT_EQ(a.status, TuningStatus::kOk);
    EXPECT_FALSE(a.memoized);
  });
  gate.await_entered(1);  // alice is mid-evaluation, tuple inflight

  std::thread second([&] {
    const TuningAnswer a = service.query(query_for("perfo(small:2)"), "bob");
    EXPECT_EQ(a.status, TuningStatus::kOk);
    EXPECT_FALSE(a.memoized);  // waited on alice's evaluation, not a snapshot hit
  });
  await_queries(service, 2);  // bob has joined the wait on the inflight tuple
  gate.release();
  first.join();
  second.join();

  const TuningService::Stats stats = service.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.evaluated, 1u);  // one evaluation served both
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(TuningService, FullAdmissionQueueRejectsWithBackpressure) {
  ResultStore store;
  Gate gate;
  TuningServiceConfig cfg;
  cfg.max_pending = 1;
  cfg.evaluate_override = [&gate](const TuningQuery&, const pragma::ApproxSpec&) {
    ++gate.entered;
    gate.wait_open();
    return RunRecord{};
  };
  TuningService service(store, cfg);

  std::thread blocked([&] {
    EXPECT_EQ(service.query(query_for("perfo(small:2)"), "alice").status,
              TuningStatus::kOk);
  });
  gate.await_entered(1);  // the single admission slot is occupied

  const TuningAnswer rejected = service.query(query_for("perfo(large:4)"), "bob");
  EXPECT_EQ(rejected.status, TuningStatus::kRejected);
  EXPECT_FALSE(rejected.error.empty());

  gate.release();
  blocked.join();
  EXPECT_EQ(service.stats().rejected, 1u);

  // Backpressure means "retry later", and later works.
  EXPECT_EQ(service.query(query_for("perfo(large:4)"), "bob").status, TuningStatus::kOk);
}

TEST(TuningService, DrainsClientsRoundRobin) {
  ResultStore store;
  Gate gate;
  CountingEvaluator eval;
  TuningServiceConfig cfg = eval.config();
  const auto count_and_record = cfg.evaluate_override;
  cfg.evaluate_override = [&gate, count_and_record](const TuningQuery& q,
                                                    const pragma::ApproxSpec& spec) {
    const RunRecord r = count_and_record(q, spec);
    ++gate.entered;
    gate.wait_open();  // every evaluation blocks until the queue is staged
    return r;
  };
  TuningService service(store, cfg);

  // alice's first tuple starts evaluating and blocks; while it does, alice
  // floods two more tuples and bob asks one question.
  std::vector<std::thread> threads;
  threads.emplace_back([&] { service.query(query_for("perfo(small:2)"), "alice"); });
  gate.await_entered(1);
  threads.emplace_back([&] { service.query(query_for("perfo(small:4)"), "alice"); });
  await_queries(service, 2);
  threads.emplace_back([&] { service.query(query_for("perfo(small:8)"), "alice"); });
  await_queries(service, 3);
  threads.emplace_back([&] { service.query(query_for("perfo(large:2)"), "bob"); });
  await_queries(service, 4);

  gate.release();
  for (auto& t : threads) t.join();

  // Fair rotation: bob's single question is answered between alice's
  // queued tuples, not after all of them.
  const std::vector<std::string> expected = {
      pragma::parse_approx("perfo(small:2)").to_string(),
      pragma::parse_approx("perfo(small:4)").to_string(),
      pragma::parse_approx("perfo(large:2)").to_string(),
      pragma::parse_approx("perfo(small:8)").to_string(),
  };
  EXPECT_EQ(eval.order, expected);
  EXPECT_EQ(service.stats().evaluated, 4u);
}

// --- failure handling: deadlines, degraded answers, quarantine, read-only ----

namespace {

/// A store pre-seeded with one known blackscholes tuple (ipt 8) — the
/// candidate every degraded answer in these tests should fall back to.
RunRecord seed_known_tuple(ResultStore& store, std::uint64_t ipt = 8) {
  const pragma::ApproxSpec spec = pragma::parse_approx("perfo(small:2)");
  RunRecord seeded;
  seeded.benchmark = "blackscholes";
  seeded.device = "v100";
  seeded.spec_text = spec.to_string();
  seeded.set_spec(spec);
  seeded.items_per_thread = ipt;
  seeded.speedup = 4.0;
  seeded.feasible = true;
  store.append(seeded);
  return seeded;
}

TuningQuery with_deadline(TuningQuery query, std::uint32_t deadline_ms) {
  query.deadline_ms = deadline_ms;
  return query;
}

}  // namespace

TEST(TuningService, DeadlineExceededWhenEvaluatorIsBusyAndStoreIsEmpty) {
  ResultStore store;
  Gate gate;
  TuningServiceConfig cfg;
  cfg.evaluate_override = [&gate](const TuningQuery&, const pragma::ApproxSpec&) {
    ++gate.entered;
    gate.wait_open();
    RunRecord r;
    r.speedup = 2.0;
    return r;
  };
  TuningService service(store, cfg);

  std::thread blocked([&] {
    EXPECT_EQ(service.query(query_for("perfo(small:2)"), "alice").status,
              TuningStatus::kOk);
  });
  gate.await_entered(1);  // the evaluator is wedged on alice's tuple

  // bob's deadline fires while alice's evaluation holds the evaluator; the
  // store knows nothing, so there is no degraded fallback either.
  const TuningAnswer late =
      service.query(with_deadline(query_for("perfo(large:4)"), 30), "bob");
  EXPECT_EQ(late.status, TuningStatus::kDeadlineExceeded);
  EXPECT_FALSE(late.error.empty());

  gate.release();
  blocked.join();
  const TuningService::Stats stats = service.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.degraded, 0u);
}

TEST(TuningService, MissedDeadlineDegradesToNearestKnownConfig) {
  ResultStore store;
  const RunRecord seeded = seed_known_tuple(store, /*ipt=*/8);
  Gate gate;
  TuningServiceConfig cfg;
  cfg.evaluate_override = [&gate](const TuningQuery&, const pragma::ApproxSpec&) {
    ++gate.entered;
    gate.wait_open();
    RunRecord r;
    r.speedup = 2.0;
    return r;
  };
  TuningService service(store, cfg);

  std::thread blocked([&] {
    EXPECT_EQ(service.query(query_for("perfo(large:4)", 16), "alice").status,
              TuningStatus::kOk);
  });
  gate.await_entered(1);

  // Same benchmark, different ipt: past the deadline the service answers
  // with the seeded neighbor instead of stalling or refusing.
  const TuningAnswer degraded =
      service.query(with_deadline(query_for("perfo(small:2)", 64), 30), "bob");
  ASSERT_EQ(degraded.status, TuningStatus::kDegraded);
  EXPECT_FALSE(degraded.memoized);
  EXPECT_EQ(degraded.record.items_per_thread, seeded.items_per_thread);
  EXPECT_DOUBLE_EQ(degraded.record.speedup, seeded.speedup);
  EXPECT_FALSE(degraded.error.empty());  // explains why the exact tuple is missing

  gate.release();
  blocked.join();
  const TuningService::Stats stats = service.stats();
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);  // the deadline is what degraded it
}

TEST(TuningService, MemoizedAnswersIgnoreImpossibleDeadlines) {
  ResultStore store;
  seed_known_tuple(store, /*ipt=*/8);
  CountingEvaluator eval;
  TuningService service(store, eval.config());

  // Already-known tuples are always in time — even a 0-slack deadline.
  const TuningAnswer warm =
      service.query(with_deadline(query_for("perfo(small:2)", 8), 1));
  ASSERT_EQ(warm.status, TuningStatus::kOk);
  EXPECT_TRUE(warm.memoized);
  EXPECT_EQ(eval.calls.load(), 0u);
}

TEST(TuningService, ThrowingEvaluationsAreQuarantinedAfterTheRetryBudget) {
  ResultStore store;
  std::atomic<int> attempts{0};
  TuningServiceConfig cfg;
  cfg.max_eval_failures = 2;
  cfg.evaluate_override = [&attempts](const TuningQuery&, const pragma::ApproxSpec&) {
    ++attempts;
    throw Error("injected evaluation failure");
    return RunRecord{};  // unreachable
  };
  TuningService service(store, cfg);

  // The failing tuple exhausts its retry budget without ever escaping the
  // service as an exception; with an empty store there is no fallback.
  const TuningAnswer first = service.query(query_for("perfo(small:2)"));
  EXPECT_EQ(first.status, TuningStatus::kError);
  EXPECT_NE(first.error.find("quarantine"), std::string::npos) << first.error;
  EXPECT_NE(first.error.find("injected evaluation failure"), std::string::npos)
      << first.error;
  EXPECT_EQ(attempts.load(), 2);

  // Quarantine is remembered: the repeat answers without re-evaluating.
  const TuningAnswer repeat = service.query(query_for("perfo(small:2)"));
  EXPECT_EQ(repeat.status, TuningStatus::kError);
  EXPECT_EQ(attempts.load(), 2);

  const TuningService::Stats stats = service.stats();
  EXPECT_EQ(stats.eval_failures, 2u);
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(store.size(), 0u);

  // Once the store knows a neighbor, the quarantined tuple degrades to it
  // instead of erroring — availability improves as knowledge arrives.
  seed_known_tuple(store, /*ipt=*/16);
  const TuningAnswer degraded = service.query(query_for("perfo(small:2)"));
  EXPECT_EQ(degraded.status, TuningStatus::kDegraded);
  EXPECT_EQ(degraded.record.items_per_thread, 16u);
  EXPECT_EQ(attempts.load(), 2);  // still never re-evaluated
}

TEST(TuningService, ReadOnlyServiceServesKnownTuplesAndDegradesColdOnes) {
  ResultStore store;
  seed_known_tuple(store, /*ipt=*/8);
  CountingEvaluator eval;
  TuningServiceConfig cfg = eval.config();
  cfg.read_only = true;
  TuningService service(store, cfg);

  const TuningAnswer exact = service.query(query_for("perfo(small:2)", 8));
  ASSERT_EQ(exact.status, TuningStatus::kOk);
  EXPECT_TRUE(exact.memoized);

  const TuningAnswer cold = service.query(query_for("perfo(small:2)", 64));
  ASSERT_EQ(cold.status, TuningStatus::kDegraded);
  EXPECT_EQ(cold.record.items_per_thread, 8u);
  EXPECT_FALSE(cold.error.empty());

  // A (valid) benchmark the store has never seen has nothing to degrade to.
  const TuningAnswer unknown = service.query(query_for("perfo(small:2)", 8, "lavamd"));
  EXPECT_EQ(unknown.status, TuningStatus::kError);
  EXPECT_FALSE(unknown.error.empty());

  EXPECT_EQ(eval.calls.load(), 0u);  // read-only: the evaluator is never touched
  EXPECT_EQ(store.size(), 1u);
}

// --- wire protocol -----------------------------------------------------------

TEST(Protocol, ScalarsRoundTripLittleEndian) {
  std::string body;
  service::put_u16(body, 0xBEEF);
  service::put_u32(body, 0xDEADBEEFu);
  service::put_u64(body, 0x0123456789ABCDEFull);
  service::put_f64(body, -1234.5);
  service::put_string(body, std::string("nul\0inside", 10));

  EXPECT_EQ(static_cast<unsigned char>(body[0]), 0xEF);  // low byte first
  std::size_t offset = 0;
  EXPECT_EQ(service::get_u16(body, offset), 0xBEEF);
  EXPECT_EQ(service::get_u32(body, offset), 0xDEADBEEFu);
  EXPECT_EQ(service::get_u64(body, offset), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(service::get_f64(body, offset), -1234.5);
  EXPECT_EQ(service::get_string(body, offset), std::string("nul\0inside", 10));
  EXPECT_EQ(offset, body.size());
  EXPECT_THROW(service::get_u16(body, offset), service::ProtocolError);
}

TEST(Protocol, FramesRoundTripAndRejectForeignVersions) {
  const std::string wire = service::encode_frame(service::MessageType::kStatsRequest, "xy");
  // [u32 len] then the payload decode_frame parses.
  ASSERT_GT(wire.size(), 4u);
  const service::Frame frame = service::decode_frame(std::string_view(wire).substr(4));
  EXPECT_EQ(frame.type, service::MessageType::kStatsRequest);
  EXPECT_EQ(frame.body, "xy");

  std::string foreign;
  service::put_u16(foreign, service::kProtocolVersion + 1);
  service::put_u16(foreign, static_cast<std::uint16_t>(service::MessageType::kStatsRequest));
  EXPECT_THROW(service::decode_frame(foreign), service::ProtocolError);
  EXPECT_THROW(service::decode_frame("a"), service::ProtocolError);  // truncated header
}

TEST(Protocol, QueryAndStatsRoundTrip) {
  const TuningQuery query = query_for("memo(out:3:4:0.3) level(warp)", 16, "lulesh", "mi250x");
  const TuningQuery decoded = service::decode_query(service::encode_query(query));
  EXPECT_EQ(decoded.benchmark, query.benchmark);
  EXPECT_EQ(decoded.device, query.device);
  EXPECT_EQ(decoded.spec_text, query.spec_text);
  EXPECT_EQ(decoded.items_per_thread, query.items_per_thread);

  const TuningService::Stats stats{10, 4, 3, 2, 1};
  const TuningService::Stats back = service::decode_stats(service::encode_stats(stats));
  EXPECT_EQ(back.queries, 10u);
  EXPECT_EQ(back.memoized, 4u);
  EXPECT_EQ(back.evaluated, 3u);
  EXPECT_EQ(back.coalesced, 2u);
  EXPECT_EQ(back.rejected, 1u);
}

TEST(Protocol, V2DeadlineAndFailureCountersRoundTrip) {
  // The v2 additions: a query's deadline survives the wire...
  TuningQuery query = query_for("perfo(small:2)", 8);
  query.deadline_ms = 1500;
  EXPECT_EQ(service::decode_query(service::encode_query(query)).deadline_ms, 1500u);

  // ...and so do all the failure-handling counters.
  const TuningService::Stats stats{10, 4, 3, 2, 1, 9, 8, 7, 6};
  const TuningService::Stats back = service::decode_stats(service::encode_stats(stats));
  EXPECT_EQ(back.degraded, 9u);
  EXPECT_EQ(back.deadline_exceeded, 8u);
  EXPECT_EQ(back.eval_failures, 7u);
  EXPECT_EQ(back.quarantined, 6u);
}

TEST(Protocol, DegradedAnswersCarryTheirSubstituteRecord) {
  TuningAnswer degraded;
  degraded.status = TuningStatus::kDegraded;
  degraded.record.benchmark = "blackscholes";
  degraded.record.items_per_thread = 8;
  degraded.record.speedup = 4.0;
  degraded.error = "deadline exceeded; nearest known config substituted";

  const TuningAnswer back = service::decode_answer(service::encode_answer(degraded));
  EXPECT_EQ(back.status, TuningStatus::kDegraded);
  EXPECT_EQ(back.record.benchmark, "blackscholes");
  EXPECT_EQ(back.record.items_per_thread, 8u);
  EXPECT_DOUBLE_EQ(back.record.speedup, 4.0);
  EXPECT_EQ(back.error, degraded.error);

  // kDeadlineExceeded carries no record, like kRejected/kError.
  TuningAnswer late;
  late.status = TuningStatus::kDeadlineExceeded;
  late.error = "deadline exceeded before evaluation";
  const TuningAnswer late_back = service::decode_answer(service::encode_answer(late));
  EXPECT_EQ(late_back.status, TuningStatus::kDeadlineExceeded);
  EXPECT_EQ(late_back.error, late.error);
}

TEST(Protocol, AnswerRoundTripsEveryRecordField) {
  TuningAnswer answer;
  answer.status = TuningStatus::kOk;
  answer.memoized = true;
  answer.record.benchmark = "kmeans";
  answer.record.device = "v100";
  answer.record.technique = pragma::Technique::kTafMemo;
  answer.record.spec_text = "memo(out:3:4:0.3)";
  answer.record.level = pragma::HierarchyLevel::kWarp;
  answer.record.items_per_thread = 32;
  answer.record.feasible = false;
  answer.record.note = "infeasible: AC state";
  answer.record.speedup = 1.25;
  answer.record.error_percent = 0.75;
  answer.record.approx_ratio = 0.5;
  answer.record.kernel_seconds = 0.001;
  answer.record.end_to_end_seconds = 0.01;
  answer.record.iterations = 7;
  answer.record.baseline_iterations = 9;
  answer.record.threshold = 0.3;
  answer.record.history_size = 3;
  answer.record.prediction_size = 4;
  answer.record.table_size = 8;
  answer.record.tables_per_warp = 2;
  answer.record.perfo_kind = "small";
  answer.record.perfo_stride = 2;
  answer.record.perfo_fraction = 0.25;

  const TuningAnswer back = service::decode_answer(service::encode_answer(answer));
  EXPECT_EQ(back.status, TuningStatus::kOk);
  EXPECT_TRUE(back.memoized);
  // Field-by-field identity via the CSV row (covers every column).
  EXPECT_EQ(back.record.to_row(), answer.record.to_row());

  TuningAnswer rejected;
  rejected.status = TuningStatus::kRejected;
  rejected.error = "queue full";
  const TuningAnswer rejected_back =
      service::decode_answer(service::encode_answer(rejected));
  EXPECT_EQ(rejected_back.status, TuningStatus::kRejected);
  EXPECT_EQ(rejected_back.error, "queue full");

  // Truncation anywhere in the body is a ProtocolError, not a misparse.
  const std::string body = service::encode_answer(answer);
  EXPECT_THROW(service::decode_answer(std::string_view(body).substr(0, body.size() / 2)),
               service::ProtocolError);
}

// --- socket transport (in-process server) ------------------------------------

TEST(TuningServer, ServesColdAndMemoizedQueriesOverTheSocket) {
  const std::string socket_path = temp_socket("inprocess");
  ResultStore store;
  CountingEvaluator eval;
  service::TuningServer::Options options;
  options.socket_path = socket_path;
  options.service = eval.config();
  service::TuningServer server(store, options);
  server.start();

  {
    service::TuningClient client(socket_path);
    const TuningAnswer cold = client.query(query_for("perfo(small:2)"));
    ASSERT_EQ(cold.status, TuningStatus::kOk);
    EXPECT_FALSE(cold.memoized);
    EXPECT_DOUBLE_EQ(cold.record.speedup, 2.0);

    const TuningAnswer warm = client.query(query_for("perfo(small:2)"));
    ASSERT_EQ(warm.status, TuningStatus::kOk);
    EXPECT_TRUE(warm.memoized);

    // A malformed query errors over the wire instead of dropping the
    // connection: the same client keeps working afterwards.
    EXPECT_EQ(client.query(query_for("perfo(small:2)", 8, "no_such_app")).status,
              TuningStatus::kError);

    // A second connection is a distinct fairness client sharing the store.
    service::TuningClient other(socket_path);
    EXPECT_TRUE(other.query(query_for("perfo(small:2)")).memoized);

    const TuningService::Stats stats = client.stats();
    EXPECT_EQ(stats.queries, 4u);
    EXPECT_EQ(stats.evaluated, 1u);
    EXPECT_EQ(stats.memoized, 2u);
  }
  EXPECT_EQ(eval.calls.load(), 1u);

  // Graceful shutdown through the protocol.
  service::TuningClient(socket_path).shutdown_server();
  server.wait();
  server.stop();
  EXPECT_THROW(service::TuningClient probe(socket_path), Error);  // socket removed
}

TEST(TuningServer, StopWithoutClientsIsCleanAndIdempotent) {
  const std::string socket_path = temp_socket("idle");
  ResultStore store;
  service::TuningServer server(store, {socket_path, 4, {}});
  server.start();
  server.stop();
  server.stop();  // idempotent

  // The path is free again for a fresh server.
  service::TuningServer again(store, {socket_path, 4, {}});
  again.start();
  again.stop();
}

// --- hpacd subprocess smoke (ctest label: service) ---------------------------

TEST(Hpacd, DaemonAnswersQueriesAndShutsDownGracefully) {
  const char* binary = std::getenv("HPACD_BIN");
  if (binary == nullptr || *binary == '\0') {
    GTEST_SKIP() << "HPACD_BIN not set (examples not built)";
  }
  const std::string socket_path = temp_socket("smoke");
  const std::string store_path = testing::TempDir() + "hpacd_smoke_store.csv";
  std::remove(store_path.c_str());

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    const std::string socket_arg = "--socket=" + socket_path;
    const std::string store_arg = "--store=" + store_path;
    execl(binary, binary, socket_arg.c_str(), store_arg.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }

  // Wait for the daemon to listen (it prints after binding; we just retry
  // the connect). Budget is generous: CI machines are slow.
  bool connected = false;
  for (int attempt = 0; attempt < 200 && !connected; ++attempt) {
    try {
      service::TuningClient probe(socket_path);
      connected = true;
    } catch (const Error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  ASSERT_TRUE(connected) << "daemon never started listening";

  {
    service::TuningClient client(socket_path);
    // Cold: a real evaluation through Explorer/Scheduler inside the daemon.
    const TuningAnswer cold = client.query(query_for("perfo(small:2)"));
    ASSERT_EQ(cold.status, TuningStatus::kOk) << cold.error;
    EXPECT_FALSE(cold.memoized);
    EXPECT_GT(cold.record.speedup, 0.0);

    const TuningAnswer warm = client.query(query_for("perfo(small:2)"));
    ASSERT_EQ(warm.status, TuningStatus::kOk);
    EXPECT_TRUE(warm.memoized);

    const TuningService::Stats stats = client.stats();
    EXPECT_GE(stats.queries, 2u);
    EXPECT_EQ(stats.evaluated, 1u);
    EXPECT_GE(stats.memoized, 1u);

    client.shutdown_server();
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << "daemon did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // The journal the daemon leaves behind reloads as a store with exactly
  // the evaluated tuple.
  ResultStore reloaded(store_path);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_TRUE(reloaded.snapshot().contains_key(Campaign::tuple_key(
      "blackscholes", "v100", pragma::parse_approx("perfo(small:2)").to_string(), 8)));
}
