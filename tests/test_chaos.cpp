// Chaos rig for the hpacd service layer (ctest label: chaos).
//
// The daemon's fault-tolerance claims are only worth what survives real
// process-level abuse, so — like test_dist_campaign.cpp — this binary
// re-executes itself (`--chaos-daemon <socket> <store> [mode]`) to get a
// REAL daemon subprocess it can SIGKILL mid-evaluation and restart under
// live clients, SIGSTOP past client request timeouts, and SIGTERM to
// drain. In-process servers cover the per-connection abuse where process
// identity does not matter: torn frames at every offset, random-byte
// fuzz, oversized lengths, slow-loris trickling, and disconnecting before
// the reply (the SIGPIPE regression — without MSG_NOSIGNAL that one kills
// the whole process, so it cannot hide).
//
// Env knobs (set by the ctest/TSan wiring):
//   HPAC_CHAOS_TIME_SCALE     multiply every sleep/timeout (sanitizers)
//   HPAC_CHAOS_EVAL_SLEEP_MS  per-evaluation sleep inside the subprocess

#include <gtest/gtest.h>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "harness/campaign.hpp"
#include "harness/record.hpp"
#include "harness/result_store.hpp"
#include "harness/tuning_service.hpp"
#include "pragma/parser.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/socket_io.hpp"

using namespace hpac;
using namespace hpac::harness;

namespace {

int env_int(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  return (raw != nullptr && *raw != '\0') ? std::atoi(raw) : fallback;
}

/// Every duration in this file goes through here so one env knob slows
/// the whole rig down under sanitizers.
int ms(int base) { return base * env_int("HPAC_CHAOS_TIME_SCALE", 1); }

std::string temp_path(const std::string& stem) {
  const std::string path = testing::TempDir() + "hpac_chaos_" + stem;
  std::remove(path.c_str());
  return path;
}

TuningQuery chaos_query(std::uint64_t ipt, std::uint32_t deadline_ms = 0) {
  TuningQuery query{"blackscholes", "v100", "perfo(small:2)", ipt};
  query.deadline_ms = deadline_ms;
  return query;
}

std::string chaos_key(std::uint64_t ipt) {
  return Campaign::tuple_key("blackscholes", "v100",
                             pragma::parse_approx("perfo(small:2)").to_string(), ipt);
}

/// The deterministic evaluator both the subprocess daemon and the
/// in-process servers use: the record encodes the query (speedup =
/// 1 + ipt), so any answer can be checked for integrity after any number
/// of crashes and restarts. Tuples whose ipt is a multiple of 1000 throw
/// — the evaluator-crash injection.
TuningServiceConfig chaos_service_config() {
  TuningServiceConfig cfg;
  cfg.evaluate_override = [](const TuningQuery& q, const pragma::ApproxSpec&) {
    const int sleep_ms = env_int("HPAC_CHAOS_EVAL_SLEEP_MS", 0);
    if (sleep_ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    if (q.items_per_thread % 1000 == 0) {
      throw Error("injected evaluator crash (ipt " +
                  std::to_string(q.items_per_thread) + ")");
    }
    RunRecord r;
    r.speedup = 1.0 + static_cast<double>(q.items_per_thread);
    r.error_percent = 0.5;
    r.feasible = true;
    return r;
  };
  return cfg;
}

// --- subprocess plumbing (the test_dist_campaign re-exec pattern) ------------

pid_t spawn_self(const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  std::vector<char*> argv;
  std::string exe = "/proc/self/exe";
  argv.push_back(exe.data());
  std::vector<std::string> copy = args;
  for (auto& arg : copy) argv.push_back(arg.data());
  argv.push_back(nullptr);
  ::execv(exe.c_str(), argv.data());
  ::_exit(127);
}

pid_t spawn_daemon(const std::string& socket_path, const std::string& store_path,
                   const std::string& mode = "normal") {
  return spawn_self({"--chaos-daemon", socket_path, store_path, mode});
}

int wait_for(pid_t pid) {
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  return status;
}

void expect_clean_exit(pid_t pid, const std::string& who) {
  const int status = wait_for(pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << who << " status " << status;
}

void expect_sigkilled(pid_t pid, const std::string& who) {
  const int status = wait_for(pid);
  EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << who << " status " << status;
}

/// Retry-connect until the daemon listens (pattern from the hpacd smoke).
void await_listening(const std::string& socket_path) {
  for (int attempt = 0; attempt < 400; ++attempt) {
    try {
      service::TuningClient probe(socket_path);
      return;
    } catch (const Error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  FAIL() << "daemon never started listening on " << socket_path;
}

service::TuningClient::Options patient_client() {
  service::TuningClient::Options opt;
  opt.connect_timeout_ms = ms(2000);
  opt.request_timeout_ms = ms(4000);
  opt.frame_timeout_ms = ms(4000);
  opt.max_retries = 60;  // must outlast a kill->restart window
  opt.backoff_initial_ms = 10;
  opt.backoff_max_ms = ms(200);
  return opt;
}

/// Connect raw (no client protocol) for byte-level abuse. Abuse rounds
/// open connections faster than the accept loop drains the backlog, so a
/// full backlog (EAGAIN on AF_UNIX connect) is expected — back off and
/// retry rather than failing the rig on its own connection storm.
int raw_connect(const std::string& socket_path) {
  for (int attempt = 0;; ++attempt) {
    try {
      return service::connect_unix(socket_path, ms(2000));
    } catch (const Error&) {
      if (attempt >= 200) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

void send_all(int fd, const void* data, std::size_t size) {
  ASSERT_EQ(::send(fd, data, size, MSG_NOSIGNAL), static_cast<ssize_t>(size));
}

}  // namespace

// --- the headline: SIGKILL + restart under concurrent retrying clients -------

TEST(Chaos, SigkillAndRestartUnderConcurrentClientsLosesNothing) {
  const std::string socket_path = temp_path("kill.sock");
  const std::string store_path = temp_path("kill_store.csv");
  ::setenv("HPAC_CHAOS_EVAL_SLEEP_MS", std::to_string(ms(25)).c_str(), 1);

  pid_t daemon = spawn_daemon(socket_path, store_path);
  await_listening(socket_path);

  // 5 clients, disjoint tuples, all querying while the daemon dies and
  // comes back. Every client must end with a correct kOk answer for every
  // tuple — via transparent reconnect + resend, never by test-side help.
  constexpr int kClients = 5;
  constexpr int kTuplesPerClient = 4;
  std::vector<std::thread> clients;
  std::vector<std::string> failures;
  std::mutex failures_mutex;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        service::TuningClient client(socket_path, patient_client());
        for (int t = 0; t < kTuplesPerClient; ++t) {
          const std::uint64_t ipt = static_cast<std::uint64_t>(c * 100 + t + 1);
          const TuningAnswer answer = client.query(chaos_query(ipt));
          if (answer.status != TuningStatus::kOk ||
              answer.record.items_per_thread != ipt ||
              answer.record.speedup != 1.0 + static_cast<double>(ipt)) {
            std::lock_guard<std::mutex> lock(failures_mutex);
            failures.push_back("client " + std::to_string(c) + " tuple ipt " +
                               std::to_string(ipt) + ": status " +
                               std::to_string(static_cast<int>(answer.status)) + " " +
                               answer.error);
          }
        }
      } catch (const Error& e) {
        std::lock_guard<std::mutex> lock(failures_mutex);
        failures.push_back("client " + std::to_string(c) + " threw: " + e.what());
      }
    });
  }

  // Kill the daemon mid-fleet — twice, to also cover a restart that
  // resumes a journal the previous incarnation was killed while writing.
  for (int round = 0; round < 2; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms(120)));
    ASSERT_EQ(::kill(daemon, SIGKILL), 0);
    expect_sigkilled(daemon, "daemon round " + std::to_string(round));
    std::this_thread::sleep_for(std::chrono::milliseconds(ms(60)));
    daemon = spawn_daemon(socket_path, store_path);
  }

  for (auto& thread : clients) thread.join();
  EXPECT_TRUE(failures.empty()) << failures.front() << " (+" << failures.size() - 1
                                << " more)";

  // Graceful shutdown of the survivor, then audit the journal.
  await_listening(socket_path);
  service::TuningClient(socket_path, patient_client()).shutdown_server();
  expect_clean_exit(daemon, "final daemon");

  // Journal integrity: parseable WITHOUT torn-tail tolerance (the restart
  // truncated any torn row), one row per tuple (no duplicates even though
  // evaluations raced kills), and every answered tuple is present.
  const ResultDb journal = ResultDb::load(store_path, /*drop_torn_tail=*/false);
  std::set<std::string> keys;
  for (const RunRecord& record : journal.records()) {
    EXPECT_TRUE(keys.insert(ResultStore::key_of(record)).second)
        << "duplicate journal row for " << record.items_per_thread;
  }
  ResultStore reloaded(store_path);
  EXPECT_EQ(reloaded.load_stats().duplicates, 0u);
  for (int c = 0; c < kClients; ++c) {
    for (int t = 0; t < kTuplesPerClient; ++t) {
      const std::uint64_t ipt = static_cast<std::uint64_t>(c * 100 + t + 1);
      EXPECT_TRUE(reloaded.snapshot().contains_key(chaos_key(ipt)))
          << "tuple ipt " << ipt << " missing from the journal";
    }
  }
  ::unsetenv("HPAC_CHAOS_EVAL_SLEEP_MS");
}

// --- SIGSTOP past the client request timeout ---------------------------------

TEST(Chaos, SigstoppedDaemonTimesOutClientsWhoRecoverAfterSigcont) {
  const std::string socket_path = temp_path("stop.sock");
  const std::string store_path = temp_path("stop_store.csv");
  const pid_t daemon = spawn_daemon(socket_path, store_path);
  await_listening(socket_path);

  service::TuningClient::Options opt = patient_client();
  opt.request_timeout_ms = ms(150);  // short: the wedge must surface as timeouts
  service::TuningClient client(socket_path, opt);
  ASSERT_EQ(client.query(chaos_query(7)).status, TuningStatus::kOk);

  ASSERT_EQ(::kill(daemon, SIGSTOP), 0);
  std::thread resume([&] {
    // Hold the daemon wedged across several client timeouts, then revive.
    std::this_thread::sleep_for(std::chrono::milliseconds(ms(500)));
    ASSERT_EQ(::kill(daemon, SIGCONT), 0);
  });

  // The query rides through: timeouts + reconnects while wedged, success
  // after SIGCONT — the client never surfaces the wedge to its caller.
  const TuningAnswer answer = client.query(chaos_query(8));
  EXPECT_EQ(answer.status, TuningStatus::kOk) << answer.error;
  EXPECT_DOUBLE_EQ(answer.record.speedup, 9.0);
  resume.join();

  service::TuningClient(socket_path, patient_client()).shutdown_server();
  expect_clean_exit(daemon, "daemon");
}

// --- SIGTERM drains: in-flight replies are delivered -------------------------

TEST(Chaos, SigtermDrainDeliversInFlightRepliesThenExits) {
  const std::string socket_path = temp_path("drain.sock");
  const std::string store_path = temp_path("drain_store.csv");
  ::setenv("HPAC_CHAOS_EVAL_SLEEP_MS", std::to_string(ms(300)).c_str(), 1);
  const pid_t daemon = spawn_daemon(socket_path, store_path);
  await_listening(socket_path);

  service::TuningClient::Options opt = patient_client();
  opt.max_retries = 0;  // the drained reply must arrive on THIS connection
  service::TuningClient client(socket_path, opt);
  std::thread in_flight([&] {
    const TuningAnswer answer = client.query(chaos_query(42));
    EXPECT_EQ(answer.status, TuningStatus::kOk) << answer.error;
    EXPECT_DOUBLE_EQ(answer.record.speedup, 43.0);
  });

  // The request is on the wire within milliseconds; the evaluation sleeps
  // far longer, so SIGTERM lands mid-evaluation.
  std::this_thread::sleep_for(std::chrono::milliseconds(ms(100)));
  ASSERT_EQ(::kill(daemon, SIGTERM), 0);
  in_flight.join();  // reply delivered despite the drain
  expect_clean_exit(daemon, "drained daemon");

  // The drained evaluation reached the journal before exit.
  ResultStore reloaded(store_path);
  EXPECT_TRUE(reloaded.snapshot().contains_key(chaos_key(42)));
  ::unsetenv("HPAC_CHAOS_EVAL_SLEEP_MS");
}

// --- read-only daemon serves a finalized store without writing it ------------

TEST(Chaos, ReadOnlyDaemonServesDegradedAnswersAndNeverWrites) {
  const std::string store_path = temp_path("ro_store.csv");
  {
    ResultStore seed(store_path);
    RunRecord record;
    record.benchmark = "blackscholes";
    record.device = "v100";
    const pragma::ApproxSpec spec = pragma::parse_approx("perfo(small:2)");
    record.set_spec(spec);
    record.spec_text = spec.to_string();
    record.items_per_thread = 8;
    record.speedup = 9.0;
    record.feasible = true;
    seed.append(record);
  }
  std::ifstream before_stream(store_path, std::ios::binary);
  std::string before((std::istreambuf_iterator<char>(before_stream)),
                     std::istreambuf_iterator<char>());
  before_stream.close();

  const std::string socket_path = temp_path("ro.sock");
  const pid_t daemon = spawn_daemon(socket_path, store_path, "read-only");
  await_listening(socket_path);
  {
    service::TuningClient client(socket_path, patient_client());
    // Exact tuple: served memoized.
    const TuningAnswer exact = client.query(chaos_query(8));
    ASSERT_EQ(exact.status, TuningStatus::kOk);
    EXPECT_TRUE(exact.memoized);
    EXPECT_DOUBLE_EQ(exact.record.speedup, 9.0);
    // Cold tuple: degraded to the nearest known config, never evaluated.
    const TuningAnswer degraded = client.query(chaos_query(64));
    ASSERT_EQ(degraded.status, TuningStatus::kDegraded) << degraded.error;
    EXPECT_EQ(degraded.record.items_per_thread, 8u);  // the seeded neighbor
    EXPECT_FALSE(degraded.error.empty());
    client.shutdown_server();
  }
  expect_clean_exit(daemon, "read-only daemon");

  std::ifstream after_stream(store_path, std::ios::binary);
  std::string after((std::istreambuf_iterator<char>(after_stream)),
                    std::istreambuf_iterator<char>());
  EXPECT_EQ(before, after) << "read-only daemon modified its store";
}

// --- byte-level abuse against an in-process server ---------------------------

namespace {

/// In-process server fixture for connection-level chaos: tight frame
/// timeout, deterministic evaluator, and a helper that proves the server
/// still answers correctly after each round of abuse.
struct AbusedServer {
  ResultStore store;
  service::TuningServer server;

  explicit AbusedServer(const std::string& stem)
      : server(store, options(temp_path(stem + ".sock"))) {
    server.start();
  }

  static service::TuningServer::Options options(const std::string& socket_path) {
    service::TuningServer::Options opt;
    opt.socket_path = socket_path;
    opt.backlog = 64;  // the abuse rounds connect faster than one-by-one accept
    opt.frame_timeout_ms = ms(200);
    opt.service = chaos_service_config();
    return opt;
  }

  void expect_still_serving(std::uint64_t ipt) {
    service::TuningClient client(server.socket_path(), patient_client());
    const TuningAnswer answer = client.query(chaos_query(ipt));
    EXPECT_EQ(answer.status, TuningStatus::kOk) << answer.error;
    EXPECT_DOUBLE_EQ(answer.record.speedup, 1.0 + static_cast<double>(ipt));
  }
};

}  // namespace

TEST(Chaos, TornQueryFramesAtEveryOffsetNeverKillTheServer) {
  AbusedServer rig("torn");
  const std::string frame = service::encode_frame(
      service::MessageType::kQueryRequest, service::encode_query(chaos_query(3)));

  // Every prefix of a valid frame, connection dropped mid-frame: the
  // server must treat each as one dead peer and keep serving.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    const int fd = raw_connect(rig.server.socket_path());
    if (cut > 0) send_all(fd, frame.data(), cut);
    ::close(fd);
  }
  rig.expect_still_serving(3);
  rig.server.stop();  // joins every connection thread: none may be stuck
}

TEST(Chaos, FuzzedAndOversizedFramesAreRejectedWithoutCrashOrHang) {
  AbusedServer rig("fuzz");

  // Oversized length prefix: rejected before any allocation of that size.
  {
    const int fd = raw_connect(rig.server.socket_path());
    std::string huge;
    service::put_u32(huge, 0xFFFFFFFFu);
    huge += "abcd";
    send_all(fd, huge.data(), huge.size());
    char byte = 0;
    // The server drops the connection; the read observes EOF/reset.
    EXPECT_LE(::read(fd, &byte, 1), 0);
    ::close(fd);
  }

  // Seeded random garbage, assorted sizes — some will parse as plausible
  // prefixes, none may crash, wedge, or leak the connection thread.
  std::mt19937 rng(0xC0FFEE);
  for (int round = 0; round < 50; ++round) {
    std::uniform_int_distribution<int> size_dist(1, 256);
    std::string blob(static_cast<std::size_t>(size_dist(rng)), '\0');
    for (char& byte : blob) byte = static_cast<char>(rng() & 0xFF);
    const int fd = raw_connect(rig.server.socket_path());
    send_all(fd, blob.data(), blob.size());
    ::close(fd);
  }
  rig.expect_still_serving(4);
  rig.server.stop();
}

TEST(Chaos, SlowLorisIsCutOffByTheFrameTimeoutWithoutBlockingOthers) {
  AbusedServer rig("loris");
  const std::string frame = service::encode_frame(
      service::MessageType::kQueryRequest, service::encode_query(chaos_query(5)));

  // Start a frame, then trickle nothing: the frame clock is running.
  const int loris = raw_connect(rig.server.socket_path());
  send_all(loris, frame.data(), 5);

  // A well-behaved client on another connection is not blocked behind it.
  rig.expect_still_serving(5);

  // The server cuts the loris off once frame_timeout_ms passes: its
  // connection observes EOF/reset instead of staying open forever.
  pollfd pfd{loris, POLLIN, 0};
  ASSERT_GT(::poll(&pfd, 1, ms(5000)), 0) << "loris connection never closed";
  char byte = 0;
  EXPECT_LE(::read(loris, &byte, 1), 0);
  ::close(loris);
  rig.server.stop();
}

TEST(Chaos, ClientDisconnectMidReplyLeavesTheServerServing) {
  // The SIGPIPE regression: the peer vanishes between request and reply,
  // so the server's send hits a closed socket. Without MSG_NOSIGNAL the
  // default SIGPIPE disposition kills this whole process — the assertion
  // below cannot even run — so a pass here IS the regression proof.
  AbusedServer rig("sigpipe");
  ::setenv("HPAC_CHAOS_EVAL_SLEEP_MS", std::to_string(ms(150)).c_str(), 1);

  const std::string frame = service::encode_frame(
      service::MessageType::kQueryRequest, service::encode_query(chaos_query(6)));
  const int fd = raw_connect(rig.server.socket_path());
  send_all(fd, frame.data(), frame.size());
  // The evaluation sleeps; close before the reply can be written.
  std::this_thread::sleep_for(std::chrono::milliseconds(ms(30)));
  ::close(fd);

  // The abandoned evaluation still reached the store (nothing is lost
  // when a client hangs up early; a retry would find it memoized).
  for (int i = 0; i < 400 && !rig.store.snapshot().contains_key(chaos_key(6)); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  EXPECT_TRUE(rig.store.snapshot().contains_key(chaos_key(6)));
  // Safe only now: the evaluation (the lone concurrent getenv reader) is
  // done, so mutating the environment cannot race it.
  ::unsetenv("HPAC_CHAOS_EVAL_SLEEP_MS");
  rig.expect_still_serving(9);
  rig.server.stop();
}

// --- service-level failure answers over a real socket ------------------------

TEST(Chaos, EvaluatorCrashesAreQuarantinedWithoutKillingTheDaemon) {
  const std::string socket_path = temp_path("quarantine.sock");
  const std::string store_path = temp_path("quarantine_store.csv");
  const pid_t daemon = spawn_daemon(socket_path, store_path);
  await_listening(socket_path);
  {
    service::TuningClient client(socket_path, patient_client());
    // ipt 1000 is the injected poison tuple: evaluation always throws.
    // The daemon must survive, exhaust the tuple's retry budget, and
    // answer degraded from the record a healthy tuple produced.
    ASSERT_EQ(client.query(chaos_query(11)).status, TuningStatus::kOk);
    const TuningAnswer poisoned = client.query(chaos_query(1000));
    EXPECT_EQ(poisoned.status, TuningStatus::kDegraded) << poisoned.error;
    EXPECT_EQ(poisoned.record.items_per_thread, 11u);
    // The daemon is still alive and serving after the crash storm.
    ASSERT_EQ(client.query(chaos_query(12)).status, TuningStatus::kOk);
    const TuningService::Stats stats = client.stats();
    EXPECT_GE(stats.eval_failures, 1u);
    EXPECT_GE(stats.quarantined, 1u);
    client.shutdown_server();
  }
  expect_clean_exit(daemon, "daemon");
}

// --- the daemon subprocess ---------------------------------------------------

namespace {

int chaos_pipe[2] = {-1, -1};

void chaos_on_signal(int signo) {
  const unsigned char byte = static_cast<unsigned char>(signo);
  [[maybe_unused]] const ssize_t n = ::write(chaos_pipe[1], &byte, 1);
}

/// `--chaos-daemon <socket> <store> [normal|read-only]` — a real daemon
/// process with the deterministic chaos evaluator and hpacd's SIGTERM
/// drain, for the kill/stop/drain tests above.
int chaos_daemon_main(int argc, char** argv) {
  if (argc < 4) return 2;
  const std::string socket_path = argv[2];
  const std::string store_path = argv[3];
  const bool read_only = argc > 4 && std::string(argv[4]) == "read-only";
  try {
    ResultStore store(store_path, read_only);
    service::TuningServer::Options options;
    options.socket_path = socket_path;
    options.frame_timeout_ms = ms(2000);
    options.service = chaos_service_config();
    options.service.read_only = read_only;
    service::TuningServer server(store, options);

    if (::pipe(chaos_pipe) != 0) return 1;
    std::signal(SIGTERM, chaos_on_signal);
    std::thread drainer([&server] {
      unsigned char signo = 0;
      if (::read(chaos_pipe[0], &signo, 1) == 1 && signo == SIGTERM) server.drain();
    });

    server.start();
    server.wait();
    server.stop();
    ::close(chaos_pipe[1]);
    chaos_pipe[1] = -1;
    drainer.join();
    ::close(chaos_pipe[0]);
  } catch (const Error& e) {
    std::fprintf(stderr, "chaos daemon: %s\n", e.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--chaos-daemon") {
    return chaos_daemon_main(argc, argv);
  }
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
