// Tests for iACT tables: lookup, insertion, replacement policies and
// storage accounting.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "approx/iact.hpp"
#include "approx/taf.hpp"
#include "common/error.hpp"

using namespace hpac;
using namespace hpac::approx;

namespace {
struct TableFixture {
  std::vector<double> storage;
  IactTable make(int tsize, int in_dims, int out_dims,
                 Replacement policy = Replacement::kRoundRobin) {
    storage.assign(IactTable::storage_doubles(tsize, in_dims, out_dims), 0.0);
    return IactTable(tsize, in_dims, out_dims, policy, storage);
  }
};
}  // namespace

TEST(Euclidean, MatchesHandComputation) {
  const std::vector<double> a{0, 0, 0};
  const std::vector<double> b{1, 2, 2};
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), 3.0);
  EXPECT_DOUBLE_EQ(euclidean_distance(a, a), 0.0);
}

TEST(Euclidean, SizeMismatchThrows) {
  const std::vector<double> a{1};
  const std::vector<double> b{1, 2};
  EXPECT_THROW(euclidean_distance(a, b), Error);
}

TEST(Iact, EmptyTableHasNoMatch) {
  TableFixture f;
  auto table = f.make(4, 2, 1);
  const std::vector<double> probe{1, 1};
  EXPECT_FALSE(table.find_nearest(probe).valid());
  EXPECT_EQ(table.valid_count(), 0);
}

TEST(Iact, ExactHitAfterInsert) {
  TableFixture f;
  auto table = f.make(4, 2, 1);
  const std::vector<double> in{1, 2};
  const std::vector<double> out{42};
  table.insert(in, out);
  const auto match = table.find_nearest(in);
  ASSERT_TRUE(match.valid());
  EXPECT_DOUBLE_EQ(match.distance, 0.0);
  EXPECT_DOUBLE_EQ(table.output_at(match.index)[0], 42.0);
}

TEST(Iact, NearestOfSeveralEntries) {
  TableFixture f;
  auto table = f.make(4, 1, 1);
  for (double x : {0.0, 10.0, 20.0}) {
    const std::vector<double> in{x};
    const std::vector<double> out{x * 2};
    table.insert(in, out);
  }
  const std::vector<double> probe{12.0};
  const auto match = table.find_nearest(probe);
  ASSERT_TRUE(match.valid());
  EXPECT_DOUBLE_EQ(match.distance, 2.0);
  EXPECT_DOUBLE_EQ(table.output_at(match.index)[0], 20.0);
}

TEST(Iact, RoundRobinEvictsOldestSlot) {
  TableFixture f;
  auto table = f.make(2, 1, 1);
  const auto ins = [&table](double x) {
    const std::vector<double> in{x};
    const std::vector<double> out{x};
    table.insert(in, out);
  };
  ins(1);
  ins(2);
  ins(3);  // evicts slot 0 (value 1)
  const std::vector<double> probe{1.0};
  const auto match = table.find_nearest(probe);
  EXPECT_DOUBLE_EQ(table.input_at(match.index)[0], 2.0);
  EXPECT_EQ(table.valid_count(), 2);
}

TEST(Iact, ClockSparesRecentlyUsedEntries) {
  TableFixture f;
  auto table = f.make(2, 1, 1, Replacement::kClock);
  const auto ins = [&table](double x) {
    const std::vector<double> in{x};
    const std::vector<double> out{x};
    table.insert(in, out);
  };
  ins(1);
  ins(2);
  // Touch entry 0 (value 1): its reference bit protects it.
  const std::vector<double> probe{1.0};
  table.mark_used(table.find_nearest(probe).index);
  ins(3);  // must evict value 2, not the referenced value 1
  EXPECT_TRUE(table.find_nearest(probe).distance == 0.0);
}

TEST(Iact, MarkUsedIsNoOpForRoundRobin) {
  TableFixture f;
  auto table = f.make(2, 1, 1, Replacement::kRoundRobin);
  const auto ins = [&table](double x) {
    const std::vector<double> in{x};
    const std::vector<double> out{x};
    table.insert(in, out);
  };
  ins(1);
  table.mark_used(0);  // must not perturb round-robin order
  ins(2);
  ins(3);  // evicts slot 0 (value 1) regardless of mark_used
  const std::vector<double> probe{1};
  const auto match = table.find_nearest(probe);
  EXPECT_GT(match.distance, 0.0);
}

TEST(Iact, MultiDimensionalOutputsRoundTrip) {
  TableFixture f;
  auto table = f.make(4, 3, 4);
  const std::vector<double> in{1, 2, 3};
  const std::vector<double> out{10, 20, 30, 40};
  table.insert(in, out);
  const auto match = table.find_nearest(in);
  const auto cached = table.output_at(match.index);
  for (int d = 0; d < 4; ++d) EXPECT_DOUBLE_EQ(cached[d], out[static_cast<std::size_t>(d)]);
}

TEST(Iact, StorageAccounting) {
  EXPECT_EQ(IactTable::storage_doubles(5, 4, 1), 25u);
  // Figure 3's assumption is 36 bytes per entry for 4+ doubles... our
  // footprint adds validity bookkeeping on top of the raw entries.
  EXPECT_GT(IactTable::footprint_bytes(5, 4, 1), 25u * 8u);
  std::vector<double> small(3);
  EXPECT_THROW(IactTable(4, 2, 1, Replacement::kRoundRobin, small), Error);
}

TEST(Iact, DimensionMismatchesThrow) {
  TableFixture f;
  auto table = f.make(2, 2, 1);
  const std::vector<double> bad_probe{1};
  EXPECT_THROW(table.find_nearest(bad_probe), Error);
  const std::vector<double> in{1, 2};
  const std::vector<double> bad_out{1, 2};  // out_dims is 1
  EXPECT_THROW(table.insert(in, bad_out), Error);
}

class IactFillSweep : public ::testing::TestWithParam<int> {};

TEST_P(IactFillSweep, ValidCountSaturatesAtCapacity) {
  const int tsize = GetParam();
  TableFixture f;
  auto table = f.make(tsize, 1, 1);
  for (int i = 0; i < 3 * tsize; ++i) {
    const std::vector<double> in{static_cast<double>(i)};
    const std::vector<double> out{0.0};
    table.insert(in, out);
    EXPECT_LE(table.valid_count(), tsize);
  }
  EXPECT_EQ(table.valid_count(), tsize);
}

INSTANTIATE_TEST_SUITE_P(Table2Sizes, IactFillSweep, ::testing::Values(1, 2, 4, 8));

// Property: after heavy mixed traffic, round-robin and CLOCK hold the
// same number of entries (capacity) and both still produce valid matches.
TEST(Iact, PoliciesAgreeOnCapacityUnderChurn) {
  for (auto policy : {Replacement::kRoundRobin, Replacement::kClock}) {
    TableFixture f;
    auto table = f.make(8, 2, 1, policy);
    for (int i = 0; i < 100; ++i) {
      const std::vector<double> in{static_cast<double>(i % 13), static_cast<double>(i % 7)};
      const std::vector<double> out{static_cast<double>(i)};
      const auto m = table.find_nearest(in);
      if (m.valid() && m.distance < 0.5) {
        table.mark_used(m.index);
      } else {
        table.insert(in, out);
      }
    }
    EXPECT_EQ(table.valid_count(), 8);
    const std::vector<double> probe{1, 1};
    EXPECT_TRUE(table.find_nearest(probe).valid());
  }
}

// --- storage accounting (mirrors the TAF invariants; both sizes gate
// feasibility against the device's shared memory) ---

TEST(Iact, StorageAccountingIsSelfConsistent) {
  for (const int tsize : {1, 2, 4, 8}) {
    for (const int in_dims : {1, 2, 3}) {
      for (const int out_dims : {1, 2}) {
        const std::size_t doubles = IactTable::storage_doubles(tsize, in_dims, out_dims);
        EXPECT_EQ(doubles,
                  static_cast<std::size_t>(tsize) * (static_cast<std::size_t>(in_dims) + out_dims));
        const std::size_t bytes = IactTable::footprint_bytes(tsize, in_dims, out_dims);
        EXPECT_EQ(bytes, doubles * sizeof(double) + static_cast<std::size_t>(tsize) * 2 +
                             sizeof(std::int32_t));
        EXPECT_GE(bytes, doubles * sizeof(double));
      }
    }
  }
}

TEST(Iact, FootprintAgreesWithTafAccounting) {
  // Both AC-state types count storage the same way: footprint_bytes is the
  // double storage at 8 bytes each plus a small bookkeeping overhead, so
  // the shared-memory planner can treat them uniformly.
  for (const int n : {1, 2, 4, 8}) {
    const std::size_t taf_overhead =
        hpac::approx::TafState::footprint_bytes(n, 1) -
        hpac::approx::TafState::storage_doubles(n, 1) * sizeof(double);
    const std::size_t iact_overhead =
        IactTable::footprint_bytes(n, 1, 1) - IactTable::storage_doubles(n, 1, 1) * sizeof(double);
    EXPECT_GT(taf_overhead, 0u);
    EXPECT_GT(iact_overhead, 0u);
    EXPECT_LE(taf_overhead, 64u);   // bookkeeping, not a second copy of the state
    EXPECT_LE(iact_overhead, 64u);
  }
}

TEST(Iact, RejectsUndersizedStorageSpan) {
  std::vector<double> storage(IactTable::storage_doubles(4, 2, 1) - 1, 0.0);
  EXPECT_THROW(IactTable(4, 2, 1, Replacement::kRoundRobin, storage), Error);
  storage.assign(IactTable::storage_doubles(4, 2, 1), 0.0);
  EXPECT_NO_THROW(IactTable(4, 2, 1, Replacement::kRoundRobin, storage));
}
