// Tests for iACT tables: lookup, insertion, replacement policies and
// storage accounting.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "approx/iact.hpp"
#include "approx/taf.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"

using namespace hpac;
using namespace hpac::approx;

namespace {
struct TableFixture {
  std::vector<double> storage;
  IactTable make(int tsize, int in_dims, int out_dims,
                 Replacement policy = Replacement::kRoundRobin) {
    storage.assign(IactTable::storage_doubles(tsize, in_dims, out_dims), 0.0);
    return IactTable(tsize, in_dims, out_dims, policy, storage);
  }
};
}  // namespace

TEST(Euclidean, MatchesHandComputation) {
  const std::vector<double> a{0, 0, 0};
  const std::vector<double> b{1, 2, 2};
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), 3.0);
  EXPECT_DOUBLE_EQ(euclidean_distance(a, a), 0.0);
}

TEST(Euclidean, SizeMismatchThrows) {
  const std::vector<double> a{1};
  const std::vector<double> b{1, 2};
  EXPECT_THROW(euclidean_distance(a, b), Error);
}

TEST(Iact, EmptyTableHasNoMatch) {
  TableFixture f;
  auto table = f.make(4, 2, 1);
  const std::vector<double> probe{1, 1};
  EXPECT_FALSE(table.find_nearest(probe).valid());
  EXPECT_EQ(table.valid_count(), 0);
}

TEST(Iact, ExactHitAfterInsert) {
  TableFixture f;
  auto table = f.make(4, 2, 1);
  const std::vector<double> in{1, 2};
  const std::vector<double> out{42};
  table.insert(in, out);
  const auto match = table.find_nearest(in);
  ASSERT_TRUE(match.valid());
  EXPECT_DOUBLE_EQ(match.distance, 0.0);
  EXPECT_DOUBLE_EQ(table.output_at(match.index)[0], 42.0);
}

TEST(Iact, NearestOfSeveralEntries) {
  TableFixture f;
  auto table = f.make(4, 1, 1);
  for (double x : {0.0, 10.0, 20.0}) {
    const std::vector<double> in{x};
    const std::vector<double> out{x * 2};
    table.insert(in, out);
  }
  const std::vector<double> probe{12.0};
  const auto match = table.find_nearest(probe);
  ASSERT_TRUE(match.valid());
  EXPECT_DOUBLE_EQ(match.distance, 2.0);
  EXPECT_DOUBLE_EQ(table.output_at(match.index)[0], 20.0);
}

TEST(Iact, RoundRobinEvictsOldestSlot) {
  TableFixture f;
  auto table = f.make(2, 1, 1);
  const auto ins = [&table](double x) {
    const std::vector<double> in{x};
    const std::vector<double> out{x};
    table.insert(in, out);
  };
  ins(1);
  ins(2);
  ins(3);  // evicts slot 0 (value 1)
  const std::vector<double> probe{1.0};
  const auto match = table.find_nearest(probe);
  EXPECT_DOUBLE_EQ(table.input_at(match.index)[0], 2.0);
  EXPECT_EQ(table.valid_count(), 2);
}

TEST(Iact, ClockSparesRecentlyUsedEntries) {
  TableFixture f;
  auto table = f.make(2, 1, 1, Replacement::kClock);
  const auto ins = [&table](double x) {
    const std::vector<double> in{x};
    const std::vector<double> out{x};
    table.insert(in, out);
  };
  ins(1);
  ins(2);
  // Touch entry 0 (value 1): its reference bit protects it.
  const std::vector<double> probe{1.0};
  table.mark_used(table.find_nearest(probe).index);
  ins(3);  // must evict value 2, not the referenced value 1
  EXPECT_TRUE(table.find_nearest(probe).distance == 0.0);
}

TEST(Iact, MarkUsedIsNoOpForRoundRobin) {
  TableFixture f;
  auto table = f.make(2, 1, 1, Replacement::kRoundRobin);
  const auto ins = [&table](double x) {
    const std::vector<double> in{x};
    const std::vector<double> out{x};
    table.insert(in, out);
  };
  ins(1);
  table.mark_used(0);  // must not perturb round-robin order
  ins(2);
  ins(3);  // evicts slot 0 (value 1) regardless of mark_used
  const std::vector<double> probe{1};
  const auto match = table.find_nearest(probe);
  EXPECT_GT(match.distance, 0.0);
}

TEST(Iact, MultiDimensionalOutputsRoundTrip) {
  TableFixture f;
  auto table = f.make(4, 3, 4);
  const std::vector<double> in{1, 2, 3};
  const std::vector<double> out{10, 20, 30, 40};
  table.insert(in, out);
  const auto match = table.find_nearest(in);
  const auto cached = table.output_at(match.index);
  for (int d = 0; d < 4; ++d) EXPECT_DOUBLE_EQ(cached[d], out[static_cast<std::size_t>(d)]);
}

TEST(Iact, StorageAccounting) {
  EXPECT_EQ(IactTable::storage_doubles(5, 4, 1), 25u);
  // Figure 3's assumption is 36 bytes per entry for 4+ doubles... our
  // footprint adds validity bookkeeping on top of the raw entries.
  EXPECT_GT(IactTable::footprint_bytes(5, 4, 1), 25u * 8u);
  std::vector<double> small(3);
  EXPECT_THROW(IactTable(4, 2, 1, Replacement::kRoundRobin, small), Error);
}

TEST(Iact, DimensionMismatchesThrow) {
  TableFixture f;
  auto table = f.make(2, 2, 1);
  const std::vector<double> bad_probe{1};
  EXPECT_THROW(table.find_nearest(bad_probe), Error);
  const std::vector<double> in{1, 2};
  const std::vector<double> bad_out{1, 2};  // out_dims is 1
  EXPECT_THROW(table.insert(in, bad_out), Error);
}

class IactFillSweep : public ::testing::TestWithParam<int> {};

TEST_P(IactFillSweep, ValidCountSaturatesAtCapacity) {
  const int tsize = GetParam();
  TableFixture f;
  auto table = f.make(tsize, 1, 1);
  for (int i = 0; i < 3 * tsize; ++i) {
    const std::vector<double> in{static_cast<double>(i)};
    const std::vector<double> out{0.0};
    table.insert(in, out);
    EXPECT_LE(table.valid_count(), tsize);
  }
  EXPECT_EQ(table.valid_count(), tsize);
}

INSTANTIATE_TEST_SUITE_P(Table2Sizes, IactFillSweep, ::testing::Values(1, 2, 4, 8));

// Property: after heavy mixed traffic, round-robin and CLOCK hold the
// same number of entries (capacity) and both still produce valid matches.
TEST(Iact, PoliciesAgreeOnCapacityUnderChurn) {
  for (auto policy : {Replacement::kRoundRobin, Replacement::kClock}) {
    TableFixture f;
    auto table = f.make(8, 2, 1, policy);
    for (int i = 0; i < 100; ++i) {
      const std::vector<double> in{static_cast<double>(i % 13), static_cast<double>(i % 7)};
      const std::vector<double> out{static_cast<double>(i)};
      const auto m = table.find_nearest(in);
      if (m.valid() && m.distance < 0.5) {
        table.mark_used(m.index);
      } else {
        table.insert(in, out);
      }
    }
    EXPECT_EQ(table.valid_count(), 8);
    const std::vector<double> probe{1, 1};
    EXPECT_TRUE(table.find_nearest(probe).valid());
  }
}

// --- storage accounting (mirrors the TAF invariants; both sizes gate
// feasibility against the device's shared memory) ---

TEST(Iact, StorageAccountingIsSelfConsistent) {
  for (const int tsize : {1, 2, 4, 8}) {
    for (const int in_dims : {1, 2, 3}) {
      for (const int out_dims : {1, 2}) {
        const std::size_t doubles = IactTable::storage_doubles(tsize, in_dims, out_dims);
        EXPECT_EQ(doubles,
                  static_cast<std::size_t>(tsize) * (static_cast<std::size_t>(in_dims) + out_dims));
        const std::size_t bytes = IactTable::footprint_bytes(tsize, in_dims, out_dims);
        EXPECT_EQ(bytes, doubles * sizeof(double) + static_cast<std::size_t>(tsize) * 2 +
                             sizeof(std::int32_t));
        EXPECT_GE(bytes, doubles * sizeof(double));
      }
    }
  }
}

TEST(Iact, FootprintAgreesWithTafAccounting) {
  // Both AC-state types count storage the same way: footprint_bytes is the
  // double storage at 8 bytes each plus a small bookkeeping overhead, so
  // the shared-memory planner can treat them uniformly.
  for (const int n : {1, 2, 4, 8}) {
    const std::size_t taf_overhead =
        hpac::approx::TafState::footprint_bytes(n, 1) -
        hpac::approx::TafState::storage_doubles(n, 1) * sizeof(double);
    const std::size_t iact_overhead =
        IactTable::footprint_bytes(n, 1, 1) - IactTable::storage_doubles(n, 1, 1) * sizeof(double);
    EXPECT_GT(taf_overhead, 0u);
    EXPECT_GT(iact_overhead, 0u);
    EXPECT_LE(taf_overhead, 64u);   // bookkeeping, not a second copy of the state
    EXPECT_LE(iact_overhead, 64u);
  }
}

TEST(Iact, RejectsUndersizedStorageSpan) {
  std::vector<double> storage(IactTable::storage_doubles(4, 2, 1) - 1, 0.0);
  EXPECT_THROW(IactTable(4, 2, 1, Replacement::kRoundRobin, storage), Error);
  storage.assign(IactTable::storage_doubles(4, 2, 1), 0.0);
  EXPECT_NO_THROW(IactTable(4, 2, 1, Replacement::kRoundRobin, storage));
}

// --- property/fuzz: find_nearest vs. a naive reference scan -----------------
//
// PR 3 rewrote the probe scan (squared-distance prefix sums, sqrt only on
// improvements) and ROADMAP plans a SIMD rewrite; this suite is the
// contract both must satisfy: bit-identical winning index *and*
// tie-breaking (first strictly-nearer entry wins) against the textbook
// per-entry-sqrt scan, across randomized shapes, seeds and deliberately
// tie-rich value distributions.

namespace {

/// The historical scan, verbatim: sqrt of every entry's distance, strict
/// less-than against the best so far, ascending slot order.
IactTable::Match naive_find_nearest(const IactTable& table, std::span<const double> probe) {
  IactTable::Match best;
  for (int i = 0; i < table.valid_count(); ++i) {
    const double distance = euclidean_distance(probe, table.input_at(i));
    if (distance < best.distance) {
      best.distance = distance;
      best.index = i;
    }
  }
  return best;
}

}  // namespace

TEST(IactProperty, FindNearestMatchesNaiveReferenceScan) {
  for (const std::uint64_t seed : {1u, 7u, 42u, 1234u}) {
    Xoshiro256 rng(seed);
    for (const int in_dims : {1, 2, 3, 5, 10}) {
      for (const int tsize : {1, 2, 4, 8, 16}) {
        TableFixture fixture;
        IactTable table = fixture.make(tsize, in_dims, 1);
        std::vector<double> in(static_cast<std::size_t>(in_dims));
        std::vector<double> out{0.0};
        // Quantized values make exact distance ties likely, exercising the
        // first-wins rule; fills beyond capacity exercise eviction too.
        const auto quantized = [&rng] {
          return 0.25 * static_cast<double>(rng.uniform_index(9));
        };
        const int fills = tsize + static_cast<int>(rng.uniform_index(4));
        for (int f = 0; f < fills; ++f) {
          for (auto& v : in) v = quantized();
          out[0] = static_cast<double>(f);
          table.insert(in, out);
        }
        for (int probe = 0; probe < 64; ++probe) {
          for (auto& v : in) v = quantized();
          const IactTable::Match fast = table.find_nearest(in);
          const IactTable::Match naive = naive_find_nearest(table, in);
          ASSERT_EQ(fast.index, naive.index)
              << "seed " << seed << " dims " << in_dims << " tsize " << tsize;
          ASSERT_EQ(fast.distance, naive.distance);  // bitwise, not approximate
        }
      }
    }
  }
}

TEST(IactProperty, FindNearestTieBreaksToFirstEntryWithDuplicates) {
  // Explicit duplicate-entry construction: several slots hold the exact
  // probe value, so every candidate distance is identical (0.0) and only
  // the first-strictly-nearer rule decides. The winner must be the lowest
  // slot index, matching the naive ascending scan.
  TableFixture fixture;
  IactTable table = fixture.make(8, 3, 1);
  const std::vector<double> dup{1.0, 2.0, 3.0};
  const std::vector<double> other{5.0, 5.0, 5.0};
  std::vector<double> out{0.0};
  table.insert(other, out);
  for (int f = 0; f < 4; ++f) table.insert(dup, out);
  const IactTable::Match match = table.find_nearest(dup);
  EXPECT_EQ(match.index, 1);  // slot 0 is `other`; first duplicate wins
  EXPECT_EQ(match.distance, 0.0);
  EXPECT_EQ(naive_find_nearest(table, dup).index, 1);
}

TEST(IactProperty, FindNearestMatchesNaiveAfterResetAndRefill) {
  // The scan's no-validity-check fast path relies on valid entries always
  // occupying the slot prefix; reset + refill is the sequence that would
  // break it if that invariant ever regressed.
  Xoshiro256 rng(99);
  TableFixture fixture;
  IactTable table = fixture.make(4, 2, 1);
  std::vector<double> in(2);
  std::vector<double> out{0.0};
  for (int round = 0; round < 3; ++round) {
    table.reset();
    const int fills = 1 + static_cast<int>(rng.uniform_index(6));
    for (int f = 0; f < fills; ++f) {
      in[0] = rng.uniform(-2.0, 2.0);
      in[1] = rng.uniform(-2.0, 2.0);
      table.insert(in, out);
    }
    for (int probe = 0; probe < 32; ++probe) {
      in[0] = rng.uniform(-2.0, 2.0);
      in[1] = rng.uniform(-2.0, 2.0);
      const IactTable::Match fast = table.find_nearest(in);
      const IactTable::Match naive = naive_find_nearest(table, in);
      ASSERT_EQ(fast.index, naive.index);
      ASSERT_EQ(fast.distance, naive.distance);
    }
  }
}

// --- O(1) victim selection regression ---------------------------------------
//
// `victim_index` once rescanned the valid flags from slot 0 on every
// insert (O(n²) across a fill). The fix returns `valid_count_` directly
// off the valid-prefix invariant. These assertions pin the observable
// contract the rescan provided, so the CSV bytes that depend on slot
// order cannot move: ascending fill order, then the replacement policy's
// order once full.
TEST(Iact, FillOrderUnchangedByConstantTimeVictimSelection) {
  TableFixture f;
  auto table = f.make(4, 1, 1);
  for (int i = 0; i < 4; ++i) {
    const std::vector<double> in{static_cast<double>(10 + i)};
    const std::vector<double> out{static_cast<double>(i)};
    table.insert(in, out);
    // Slot i received insert i: empty slots fill in ascending order.
    EXPECT_EQ(table.valid_count(), i + 1);
    EXPECT_DOUBLE_EQ(table.input_at(i)[0], 10.0 + i);
  }
  // Once full, round-robin eviction starts at slot 0 — exactly where the
  // historical rescan left the cursor.
  table.insert(std::vector<double>{99.0}, std::vector<double>{9.0});
  EXPECT_DOUBLE_EQ(table.input_at(0)[0], 99.0);
  EXPECT_DOUBLE_EQ(table.input_at(1)[0], 11.0);

  // And after a reset the prefix invariant (and fill order) start over.
  table.reset();
  EXPECT_EQ(table.valid_count(), 0);
  table.insert(std::vector<double>{5.0}, std::vector<double>{0.0});
  EXPECT_DOUBLE_EQ(table.input_at(0)[0], 5.0);
  EXPECT_EQ(table.valid_count(), 1);
}

// --- SIMD dispatch-level bit-identity ---------------------------------------

namespace {

/// Restores the process-wide dispatch level even on assertion failure.
class SimdLevelGuard {
 public:
  SimdLevelGuard() : previous_(hpac::simd::active_level()) {}
  ~SimdLevelGuard() { hpac::simd::set_level(previous_); }

 private:
  hpac::simd::Level previous_;
};

std::vector<hpac::simd::Level> reachable_levels() {
  std::vector<hpac::simd::Level> levels{hpac::simd::Level::kOff};
  if (hpac::simd::max_runtime_level() >= hpac::simd::Level::kSse2) {
    levels.push_back(hpac::simd::Level::kSse2);
  }
  if (hpac::simd::max_runtime_level() >= hpac::simd::Level::kAvx2) {
    levels.push_back(hpac::simd::Level::kAvx2);
  }
  return levels;
}

}  // namespace

// The central property of the vector scan: at EVERY reachable dispatch
// level, find_nearest returns the bit-identical index and distance of the
// naive reference, across in_dims 1..9 (specialized kernels 1..8 plus the
// generic runtime-loop fallback), odd table sizes (vector remainder
// rows), and tie-rich quantized values (first-strictly-nearer-in-
// sqrt-domain tie-break). Tables are constructed after set_level because
// the kernel is cached at construction.
TEST(IactProperty, FindNearestMatchesNaiveAtEveryDispatchLevel) {
  SimdLevelGuard guard;
  for (const hpac::simd::Level level : reachable_levels()) {
    ASSERT_EQ(hpac::simd::set_level(level), level);
    for (int in_dims = 1; in_dims <= 9; ++in_dims) {
      for (const int tsize : {1, 2, 3, 5, 8, 13, 19}) {
        Xoshiro256 rng(static_cast<std::uint64_t>(in_dims) * 100 + tsize);
        TableFixture fixture;
        IactTable table = fixture.make(tsize, in_dims, 1);
        std::vector<double> in(static_cast<std::size_t>(in_dims));
        std::vector<double> out{0.0};
        const auto quantized = [&rng] {
          return 0.25 * static_cast<double>(rng.uniform_index(9));
        };
        const int fills = tsize + static_cast<int>(rng.uniform_index(4));
        for (int f = 0; f < fills; ++f) {
          for (auto& v : in) v = quantized();
          out[0] = static_cast<double>(f);
          table.insert(in, out);
        }
        for (int probe = 0; probe < 48; ++probe) {
          for (auto& v : in) v = quantized();
          const IactTable::Match fast = table.find_nearest(in);
          const IactTable::Match naive = naive_find_nearest(table, in);
          ASSERT_EQ(fast.index, naive.index)
              << "level " << hpac::simd::level_name(level) << " dims " << in_dims << " tsize "
              << tsize;
          ASSERT_EQ(fast.distance, naive.distance);  // bitwise, not approximate
        }
      }
    }
  }
}

// Same property over a storage span at an odd offset into a larger
// buffer: every row of the span (and every SoA-mirror vector load) is
// 8-byte- but not 16/32-byte-aligned, so the kernels' unaligned-load
// assumption is exercised rather than assumed.
TEST(IactProperty, FindNearestMatchesNaiveWithUnalignedStorageOffset) {
  SimdLevelGuard guard;
  for (const hpac::simd::Level level : reachable_levels()) {
    ASSERT_EQ(hpac::simd::set_level(level), level);
    for (const int in_dims : {1, 3, 4, 7}) {
      Xoshiro256 rng(static_cast<std::uint64_t>(in_dims));
      std::vector<double> buffer(IactTable::storage_doubles(9, in_dims, 1) + 3, 0.0);
      // +1 double keeps the span 8-byte aligned but breaks any wider
      // alignment the vector's allocation happened to provide.
      std::span<double> storage(buffer.data() + 1, buffer.size() - 1);
      IactTable table(9, in_dims, 1, Replacement::kRoundRobin, storage);
      std::vector<double> in(static_cast<std::size_t>(in_dims));
      std::vector<double> out{0.0};
      for (int f = 0; f < 11; ++f) {
        for (auto& v : in) v = rng.uniform(-3.0, 3.0);
        table.insert(in, out);
      }
      for (int probe = 0; probe < 48; ++probe) {
        for (auto& v : in) v = rng.uniform(-3.0, 3.0);
        const IactTable::Match fast = table.find_nearest(in);
        const IactTable::Match naive = naive_find_nearest(table, in);
        ASSERT_EQ(fast.index, naive.index);
        ASSERT_EQ(fast.distance, naive.distance);
      }
    }
  }
}

// Early-abandon stress: a probe far from every entry except the last
// slot maximizes block abandonment in the vector kernels; the winner and
// its distance must still be bit-identical.
TEST(IactProperty, FindNearestMatchesNaiveUnderHeavyEarlyAbandon) {
  SimdLevelGuard guard;
  for (const hpac::simd::Level level : reachable_levels()) {
    ASSERT_EQ(hpac::simd::set_level(level), level);
    TableFixture fixture;
    IactTable table = fixture.make(16, 4, 1);
    std::vector<double> out{0.0};
    for (int f = 0; f < 16; ++f) {
      // Entries march away from the origin; the last inserted is closest
      // to the probe below.
      std::vector<double> in(4, static_cast<double>(100 - f));
      table.insert(in, out);
    }
    const std::vector<double> probe(4, 84.0);
    const IactTable::Match fast = table.find_nearest(probe);
    const IactTable::Match naive = naive_find_nearest(table, probe);
    ASSERT_EQ(fast.index, naive.index);
    ASSERT_EQ(fast.distance, naive.distance);
    EXPECT_EQ(fast.index, 15);
  }
}
