// Behavioral tests of the RegionExecutor — the warp-synchronous engine
// that implements the paper's GPU AC algorithms.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "approx/iact.hpp"
#include "approx/region.hpp"
#include "approx/taf.hpp"
#include "common/error.hpp"
#include "common/scheduler.hpp"
#include "common/stats.hpp"
#include "pragma/parser.hpp"
#include "sim/device.hpp"

using namespace hpac;
using namespace hpac::approx;

namespace {

struct TestRegion {
  std::uint64_t n = 1 << 12;
  std::vector<double> out;
  std::function<double(std::uint64_t)> f = [](std::uint64_t i) {
    return 1.0 + static_cast<double>(i % 7);
  };

  RegionBinding binding(double cost = 100.0, int in_dims = 1) {
    out.assign(n, -1.0);
    RegionBinding b;
    b.in_dims = in_dims;
    b.out_dims = 1;
    b.gather = [this](std::uint64_t i, std::span<double> in) {
      in[0] = static_cast<double>(i % 7);
    };
    b.accurate = [this](std::uint64_t i, std::span<const double>, std::span<double> o) {
      o[0] = f(i);
    };
    b.accurate_cost = [cost](std::uint64_t) { return cost; };
    b.commit = [this](std::uint64_t i, std::span<const double> o) { out[i] = o[0]; };
    b.independent_items = true;  // commits touch only out[i]
    return b;
  }

  /// The same region through the batched fast-path API.
  RegionBinding batched_binding(double cost = 100.0, int in_dims = 1) {
    RegionBinding b = binding(cost, in_dims);
    const int id = std::max(1, in_dims);
    b.gather_batch = [id](std::uint64_t first, sim::LaneMask lanes, std::span<double> in) {
      sim::for_each_lane(lanes, [&](int lane) {
        in[static_cast<std::size_t>(lane) * id] =
            static_cast<double>((first + static_cast<std::uint64_t>(lane)) % 7);
      });
    };
    b.accurate_batch = [this](std::uint64_t first, sim::LaneMask lanes, std::span<const double>,
                              std::span<double> o) {
      sim::for_each_lane(lanes, [&](int lane) {
        o[static_cast<std::size_t>(lane)] = f(first + static_cast<std::uint64_t>(lane));
      });
    };
    b.accurate_cost_batch = [cost](std::uint64_t, sim::LaneMask) { return cost; };
    b.commit_batch = [this](std::uint64_t first, sim::LaneMask lanes,
                            std::span<const double> o) {
      sim::for_each_lane(lanes, [&](int lane) {
        out[first + static_cast<std::uint64_t>(lane)] = o[static_cast<std::size_t>(lane)];
      });
    };
    return b;
  }

  std::vector<double> reference() const {
    std::vector<double> ref(n);
    for (std::uint64_t i = 0; i < n; ++i) ref[i] = f(i);
    return ref;
  }
};

RegionReport run_spec(TestRegion& region, const RegionBinding& binding, const char* clause,
                      std::uint64_t ipt = 16,
                      sim::DeviceConfig dev = sim::v100()) {
  RegionExecutor executor(dev);
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, ipt, 128);
  return executor.run(pragma::parse_approx(clause), binding, region.n, launch);
}

}  // namespace

TEST(Region, BaselineComputesEveryItemExactly) {
  TestRegion region;
  auto binding = region.binding();
  const auto report = run_spec(region, binding, "none");
  EXPECT_EQ(region.out, region.reference());
  EXPECT_EQ(report.stats.accurate_items, region.n);
  EXPECT_EQ(report.stats.approx_items, 0u);
  EXPECT_EQ(report.stats.region_invocations, region.n);
}

TEST(Region, StatsPartitionInvocations) {
  TestRegion region;
  auto binding = region.binding();
  for (const char* clause :
       {"none", "perfo(small:4)", "memo(out:2:8:0.5)", "memo(in:4:0.5:2) in(x) out(y)"}) {
    const auto report = run_spec(region, binding, clause);
    EXPECT_EQ(report.stats.accurate_items + report.stats.approx_items +
                  report.stats.skipped_items,
              report.stats.region_invocations)
        << clause;
  }
}

TEST(Region, ConstantFunctionTafIsErrorFree) {
  TestRegion region;
  region.f = [](std::uint64_t) { return 42.0; };
  auto binding = region.binding();
  const auto report = run_spec(region, binding, "memo(out:3:16:0.3)");
  EXPECT_GT(report.stats.approx_items, region.n / 2);
  for (double v : region.out) ASSERT_DOUBLE_EQ(v, 42.0);
}

TEST(Region, TafRespectsThreshold) {
  TestRegion region;  // i % 7: wildly varying outputs per grid-stride step
  auto binding = region.binding();
  const auto strict = run_spec(region, binding, "memo(out:3:16:0.01)");
  EXPECT_EQ(strict.stats.approx_items, 0u);
  EXPECT_EQ(region.out, region.reference());
}

TEST(Region, TafSpeedsUpStableRegions) {
  TestRegion region;
  region.f = [](std::uint64_t) { return 7.0; };
  auto binding = region.binding(500.0);
  const auto base = run_spec(region, binding, "none");
  const auto taf = run_spec(region, binding, "memo(out:2:32:0.3)");
  EXPECT_LT(taf.timing.seconds, base.timing.seconds);
}

TEST(Region, IactExactRepeatsHitCache) {
  TestRegion region;
  // Inputs repeat with period 7 along each thread's grid-stride walk.
  auto binding = region.binding(200.0, 1);
  const auto report = run_spec(region, binding, "memo(in:8:0.1:2) in(x) out(y)");
  EXPECT_GT(report.stats.iact_hits, 0u);
  EXPECT_GT(report.stats.approx_items, 0u);
  // Exact-repeat workload: cached outputs are identical to accurate ones.
  EXPECT_EQ(region.out, region.reference());
}

TEST(Region, IactRequiresUniformInputs) {
  TestRegion region;
  auto binding = region.binding(100.0, 0);  // no uniform input key
  binding.gather = nullptr;
  RegionExecutor executor(sim::v100());
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, 8, 128);
  EXPECT_THROW(executor.run(pragma::parse_approx("memo(in:4:0.5:2) in(x) out(y)"), binding,
                            region.n, launch),
               ConfigError);
}

TEST(Region, IactTablesPerWarpMustDivideWarp) {
  TestRegion region;
  auto binding = region.binding();
  EXPECT_THROW(run_spec(region, binding, "memo(in:4:0.5:3) in(x) out(y)"), ConfigError);
  // 64 tables per warp only fit the AMD wavefront (Table 2).
  EXPECT_THROW(run_spec(region, binding, "memo(in:4:0.5:64) in(x) out(y)"), ConfigError);
  EXPECT_NO_THROW(
      run_spec(region, binding, "memo(in:4:0.5:64) in(x) out(y)", 16, sim::mi250x()));
}

TEST(Region, SharedMemoryOverflowIsConfigError) {
  TestRegion region;
  auto binding = region.binding();
  // History 512 x 128 threads x 8B >> 96KB shared memory.
  pragma::ApproxSpec spec;
  spec.technique = pragma::Technique::kTafMemo;
  spec.taf = pragma::TafParams{4096, 8, 0.5};
  spec.out_sections.push_back("o");
  RegionExecutor executor(sim::v100());
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, 8, 128);
  EXPECT_THROW(executor.run(spec, binding, region.n, launch), ConfigError);
}

TEST(Region, AcStateBytesMatchFootprints) {
  TestRegion region;
  auto binding = region.binding();
  RegionExecutor executor(sim::v100());
  sim::LaunchConfig launch;
  launch.num_teams = 4;
  launch.threads_per_team = 128;

  pragma::ApproxSpec taf = pragma::parse_approx("memo(out:3:8:0.5)");
  EXPECT_EQ(executor.ac_state_bytes_per_block(taf, binding, launch),
            128 * TafState::footprint_bytes(3, 1));

  pragma::ApproxSpec iact = pragma::parse_approx("memo(in:4:0.5:2) in(x) out(y)");
  EXPECT_EQ(executor.ac_state_bytes_per_block(iact, binding, launch),
            4u * 2u * IactTable::footprint_bytes(4, 1, 1));

  pragma::ApproxSpec perfo = pragma::parse_approx("perfo(small:2)");
  EXPECT_EQ(executor.ac_state_bytes_per_block(perfo, binding, launch), 0u);
}

TEST(Region, PerforationSkipsExpectedFraction) {
  TestRegion region;
  auto binding = region.binding();
  const auto report = run_spec(region, binding, "perfo(small:4)", 16);
  const double skipped =
      static_cast<double>(report.stats.skipped_items) / region.n;
  EXPECT_NEAR(skipped, 0.25, 0.05);
  // Skipped items keep their prior (initialization) value.
  std::size_t untouched = 0;
  for (double v : region.out) untouched += v == -1.0;
  EXPECT_EQ(untouched, report.stats.skipped_items);
}

TEST(Region, IniPerforationDropsPrefixAtAnyLaunch) {
  TestRegion region;
  auto binding = region.binding();
  const auto report = run_spec(region, binding, "perfo(ini:0.5)", 1);
  EXPECT_NEAR(static_cast<double>(report.stats.skipped_items) / region.n, 0.5, 0.01);
  EXPECT_EQ(region.out[0], -1.0);
  EXPECT_NE(region.out[region.n - 1], -1.0);
}

TEST(Region, HerdedPerforationAvoidsFragmentedWarps) {
  TestRegion region;
  auto binding = region.binding(50.0);
  const auto herded = run_spec(region, binding, "perfo(small:2)", 16);
  const auto cpu_style = run_spec(region, binding, "perfo(small:2) herded(0)", 16);
  // Same work dropped, but the herded pattern issues fewer transactions.
  EXPECT_NEAR(static_cast<double>(herded.stats.skipped_items),
              static_cast<double>(cpu_style.stats.skipped_items),
              static_cast<double>(region.n) * 0.05);
  EXPECT_LT(herded.timing.total_transactions, cpu_style.timing.total_transactions);
  EXPECT_LE(herded.timing.seconds, cpu_style.timing.seconds);
}

TEST(Region, WarpLevelEliminatesDivergence) {
  TestRegion region;
  // 60% of items stable, interleaved: thread-level decisions split warps.
  region.f = [](std::uint64_t i) {
    return i % 5 < 3 ? 10.0 : 10.0 + std::sin(static_cast<double>(i));
  };
  auto binding = region.binding(300.0);
  const auto thread_level = run_spec(region, binding, "memo(out:3:16:0.05)");
  const auto warp_level = run_spec(region, binding, "memo(out:3:16:0.05) level(warp)");
  EXPECT_GT(thread_level.timing.divergent_regions, 0u);
  EXPECT_EQ(warp_level.timing.divergent_regions, 0u);
  EXPECT_LT(warp_level.timing.seconds, thread_level.timing.seconds);
  EXPECT_GT(warp_level.stats.forced_approx + warp_level.stats.forced_accurate, 0u);
}

TEST(Region, BlockLevelDecisionsAreBlockUniform) {
  TestRegion region;
  region.f = [](std::uint64_t) { return 3.0; };
  auto binding = region.binding();
  const auto report = run_spec(region, binding, "memo(out:2:16:0.3) level(team)");
  // With uniformly stable outputs, whole blocks flip to the approximate
  // path; divergence must be zero.
  EXPECT_EQ(report.timing.divergent_regions, 0u);
  EXPECT_GT(report.stats.approx_items, 0u);
}

TEST(Region, MissingCallbacksAreRejected) {
  TestRegion region;
  RegionBinding empty;
  RegionExecutor executor(sim::v100());
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(64, 1, 32);
  EXPECT_THROW(executor.run(pragma::parse_approx("none"), empty, 64, launch), Error);
}

TEST(Region, PartialTailWarpHandled) {
  TestRegion region;
  region.n = 1000;  // not a multiple of warp or team sizes
  auto binding = region.binding();
  const auto report = run_spec(region, binding, "none", 3);
  EXPECT_EQ(report.stats.region_invocations, 1000u);
  EXPECT_EQ(region.out, region.reference());
}

TEST(Region, DeterministicAcrossRuns) {
  TestRegion region;
  auto binding = region.binding();
  const auto a = run_spec(region, binding, "memo(out:3:8:0.5) level(warp)");
  const std::vector<double> first = region.out;
  const auto b = run_spec(region, binding, "memo(out:3:8:0.5) level(warp)");
  EXPECT_EQ(first, region.out);
  EXPECT_DOUBLE_EQ(a.timing.seconds, b.timing.seconds);
  EXPECT_EQ(a.stats.approx_items, b.stats.approx_items);
}

class RegionDeviceSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(RegionDeviceSweep, AllTechniquesRunOnBothPlatforms) {
  for (const auto& dev : {sim::v100(), sim::mi250x()}) {
    TestRegion region;
    auto binding = region.binding();
    const auto report = run_spec(region, binding, GetParam(), 16, dev);
    EXPECT_GT(report.timing.seconds, 0.0) << dev.name;
    EXPECT_EQ(report.stats.region_invocations, region.n) << dev.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Clauses, RegionDeviceSweep,
                         ::testing::Values("none", "perfo(small:2)", "perfo(fini:0.3)",
                                           "memo(out:3:8:0.5)",
                                           "memo(out:3:8:0.5) level(warp)",
                                           "memo(out:3:8:0.5) level(team)",
                                           "memo(in:4:0.5:2) in(x) out(y)",
                                           "memo(in:4:0.5:2) level(warp) in(x) out(y)"));

TEST(Region, TafReducesMemoryTraffic) {
  // Approximated steps skip the accurate path's loads; with a stable
  // region most transactions disappear.
  TestRegion region;
  region.f = [](std::uint64_t) { return 1.0; };
  auto binding = region.binding(100.0);
  binding.in_bytes = 32;
  const auto base = run_spec(region, binding, "none");
  const auto taf = run_spec(region, binding, "memo(out:1:64:0.5) level(warp)");
  EXPECT_LT(taf.timing.total_transactions, base.timing.total_transactions / 2);
}

TEST(Region, IactHitsNeverExceedInvocations) {
  TestRegion region;
  auto binding = region.binding();
  const auto report = run_spec(region, binding, "memo(in:8:0.5:2) in(x) out(y)");
  EXPECT_LE(report.stats.iact_hits, report.stats.region_invocations);
}

TEST(Region, OccupancyReportedInUnitInterval) {
  TestRegion region;
  auto binding = region.binding();
  for (std::uint64_t ipt : {1ull, 8ull, 64ull}) {
    const auto report = run_spec(region, binding, "none", ipt);
    EXPECT_GT(report.timing.occupancy, 0.0);
    EXPECT_LE(report.timing.occupancy, 1.0);
  }
}

TEST(Region, TafStableEntriesCounted) {
  TestRegion region;
  region.f = [](std::uint64_t) { return 2.0; };
  auto binding = region.binding();
  const auto report = run_spec(region, binding, "memo(out:2:4:0.5)");
  EXPECT_GT(report.stats.taf_stable_entries, 0u);
}

TEST(Region, SharedStateScopedToKernel) {
  // Two consecutive runs behave identically: AC state must not leak
  // across kernel launches (paper: destroyed at kernel completion).
  TestRegion region;
  region.f = [](std::uint64_t) { return 3.0; };
  auto binding = region.binding();
  const auto first = run_spec(region, binding, "memo(out:2:8:0.5)");
  const auto second = run_spec(region, binding, "memo(out:2:8:0.5)");
  EXPECT_EQ(first.stats.approx_items, second.stats.approx_items);
  EXPECT_EQ(first.stats.taf_stable_entries, second.stats.taf_stable_entries);
}

// --- Figure 2 composition: perforation around a memoized region ---------

TEST(Composed, PerfoPlusTafPartitionsInvocations) {
  TestRegion region;
  region.f = [](std::uint64_t) { return 5.0; };
  auto binding = region.binding();
  RegionExecutor executor(sim::v100());
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, 16, 128);
  const auto report = executor.run_composed(pragma::parse_approx("perfo(small:4)"),
                                            pragma::parse_approx("memo(out:2:8:0.5)"),
                                            binding, region.n, launch);
  EXPECT_NEAR(static_cast<double>(report.stats.skipped_items) / region.n, 0.25, 0.05);
  EXPECT_GT(report.stats.approx_items, 0u);
  EXPECT_EQ(report.stats.accurate_items + report.stats.approx_items +
                report.stats.skipped_items,
            report.stats.region_invocations);
}

TEST(Composed, PaperFigure2Example) {
  // perfo(small:4) around memo(in:10:0.5f) — the paper's exact example.
  TestRegion region;
  auto binding = region.binding();
  RegionExecutor executor(sim::v100());
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, 16, 128);
  const auto report = executor.run_composed(
      pragma::parse_approx("perfo(small:4)"),
      pragma::parse_approx("memo(in: 10 : 0.5f) in(input[i]) out(output[i])"), binding,
      region.n, launch);
  EXPECT_GT(report.stats.skipped_items, 0u);
  EXPECT_GT(report.stats.iact_hits, 0u);
}

TEST(Composed, CpuStylePerfoFiltersLanes) {
  TestRegion region;
  auto binding = region.binding();
  RegionExecutor executor(sim::v100());
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, 16, 128);
  const auto report = executor.run_composed(pragma::parse_approx("perfo(large:4) herded(0)"),
                                            pragma::parse_approx("memo(out:2:8:0.5)"),
                                            binding, region.n, launch);
  EXPECT_NEAR(static_cast<double>(report.stats.skipped_items) / region.n, 0.75, 0.05);
}

TEST(Composed, RejectsWrongDirectiveKinds) {
  TestRegion region;
  auto binding = region.binding();
  RegionExecutor executor(sim::v100());
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, 16, 128);
  EXPECT_THROW(executor.run_composed(pragma::parse_approx("memo(out:2:8:0.5)"),
                                     pragma::parse_approx("memo(out:2:8:0.5)"), binding,
                                     region.n, launch),
               ConfigError);
  EXPECT_THROW(executor.run_composed(pragma::parse_approx("perfo(small:2)"),
                                     pragma::parse_approx("perfo(small:2)"), binding,
                                     region.n, launch),
               ConfigError);
}

TEST(Composed, SkippedItemsNeverTouchAcState) {
  // With everything perforated away except one step per cycle, the memo
  // logic sees a sparser stream; outputs of skipped items stay at the
  // initialization value.
  TestRegion region;
  auto binding = region.binding();
  RegionExecutor executor(sim::v100());
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, 16, 128);
  executor.run_composed(pragma::parse_approx("perfo(large:16)"),
                        pragma::parse_approx("memo(out:1:4:0.5)"), binding, region.n,
                        launch);
  std::size_t untouched = 0;
  for (double v : region.out) untouched += v == -1.0;
  EXPECT_GT(untouched, region.n / 2);
}

// --- the rebuilt engine's dispatch paths and team sharding ---------------

namespace {

/// Forced-sharding tuning: splits even the small test launches.
ExecTuning forced_shards(std::size_t threads) {
  ExecTuning tuning;
  tuning.max_threads = threads;
  tuning.min_teams = 1;
  tuning.min_items = 0;
  tuning.min_teams_per_shard = 1;
  return tuning;
}

struct EngineRun {
  std::vector<double> out;
  RegionReport report;
};

EngineRun run_with_tuning(TestRegion& region, RegionBinding binding, const char* clause,
                          const ExecTuning& tuning, std::uint64_t ipt = 16) {
  RegionExecutor executor(sim::v100());
  executor.set_tuning(tuning);
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, ipt, 128);
  EngineRun run;
  run.report = executor.run(pragma::parse_approx(clause), binding, region.n, launch);
  run.out = region.out;
  return run;
}

void expect_identical(const EngineRun& a, const EngineRun& b, const char* what) {
  EXPECT_EQ(a.out, b.out) << what;
  EXPECT_EQ(a.report.stats.accurate_items, b.report.stats.accurate_items) << what;
  EXPECT_EQ(a.report.stats.approx_items, b.report.stats.approx_items) << what;
  EXPECT_EQ(a.report.stats.skipped_items, b.report.stats.skipped_items) << what;
  EXPECT_EQ(a.report.stats.iact_hits, b.report.stats.iact_hits) << what;
  EXPECT_EQ(a.report.stats.taf_stable_entries, b.report.stats.taf_stable_entries) << what;
  // Bit-identical timing, not approximately-equal timing: the merge is
  // deterministic and every charge is computed in the same order.
  EXPECT_EQ(a.report.timing.seconds, b.report.timing.seconds) << what;
  EXPECT_EQ(a.report.timing.critical_path_cycles, b.report.timing.critical_path_cycles)
      << what;
  EXPECT_EQ(a.report.timing.total_transactions, b.report.timing.total_transactions) << what;
  EXPECT_EQ(a.report.timing.divergent_regions, b.report.timing.divergent_regions) << what;
  EXPECT_EQ(a.report.timing.compute_cycles_total, b.report.timing.compute_cycles_total)
      << what;
}

const char* kEngineClauses[] = {
    "none",
    "perfo(small:4)",
    "perfo(small:2) herded(0)",
    "memo(out:3:8:0.5)",
    "memo(out:3:8:0.5) level(warp)",
    "memo(in:4:0.5:2) in(x) out(y)",
    "memo(in:4:0.5:2) level(team) in(x) out(y)",
};

}  // namespace

TEST(EngineDispatch, BatchedBindingMatchesScalarAdapter) {
  ExecTuning serial;
  serial.max_threads = 1;
  for (const char* clause : kEngineClauses) {
    TestRegion region;
    const EngineRun scalar = run_with_tuning(region, region.binding(), clause, serial);
    const EngineRun batched = run_with_tuning(region, region.batched_binding(), clause, serial);
    expect_identical(scalar, batched, clause);
  }
}

TEST(EngineDispatch, ForceScalarRoutesBatchedBindingThroughAdapter) {
  ExecTuning serial;
  serial.max_threads = 1;
  ExecTuning forced = serial;
  forced.force_scalar = true;
  TestRegion region;
  const EngineRun batched =
      run_with_tuning(region, region.batched_binding(), "memo(out:3:8:0.5)", serial);
  const EngineRun adapter =
      run_with_tuning(region, region.batched_binding(), "memo(out:3:8:0.5)", forced);
  expect_identical(batched, adapter, "force_scalar");
}

TEST(EngineDispatch, BatchOnlyBindingRuns) {
  // A binding that provides *only* the batched form is complete.
  TestRegion region;
  RegionBinding b = region.batched_binding();
  b.gather = nullptr;
  b.accurate = nullptr;
  b.accurate_cost = nullptr;
  b.commit = nullptr;
  ExecTuning serial;
  serial.max_threads = 1;
  const EngineRun batch_only = run_with_tuning(region, b, "memo(in:4:0.5:2) in(x) out(y)", serial);
  const EngineRun full = run_with_tuning(region, region.binding(), "memo(in:4:0.5:2) in(x) out(y)", serial);
  expect_identical(batch_only, full, "batch-only");
}

TEST(RegionParallel, TeamShardingIsBitIdenticalToSerial) {
  ExecTuning serial;
  serial.max_threads = 1;
  for (const char* clause : kEngineClauses) {
    TestRegion region;
    const EngineRun reference = run_with_tuning(region, region.binding(), clause, serial);
    for (std::size_t threads : {2u, 3u, 4u}) {
      TestRegion sharded_region;
      const EngineRun sharded = run_with_tuning(sharded_region, sharded_region.binding(),
                                                clause, forced_shards(threads));
      expect_identical(reference, sharded, clause);
    }
  }
}

TEST(RegionParallel, ComposedShardingIsBitIdenticalToSerial) {
  const auto run_composed = [](TestRegion& region, const ExecTuning& tuning) {
    RegionExecutor executor(sim::v100());
    executor.set_tuning(tuning);
    const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, 16, 128);
    EngineRun run;
    run.report = executor.run_composed(pragma::parse_approx("perfo(small:4)"),
                                       pragma::parse_approx("memo(out:2:8:0.5)"),
                                       region.binding(), region.n, launch);
    run.out = region.out;
    return run;
  };
  ExecTuning serial;
  serial.max_threads = 1;
  TestRegion serial_region;
  const EngineRun reference = run_composed(serial_region, serial);
  TestRegion sharded_region;
  const EngineRun sharded = run_composed(sharded_region, forced_shards(4));
  expect_identical(reference, sharded, "composed");
}

TEST(RegionParallel, NonIndependentBindingStaysSerial) {
  // A binding that accumulates across items must not be sharded; the
  // executor falls back to serial execution and the reduction order is
  // preserved exactly.
  TestRegion region;
  RegionBinding b = region.binding();
  b.independent_items = false;
  double sum = 0.0;
  b.commit = [&sum](std::uint64_t, std::span<const double> o) { sum += o[0]; };
  ExecTuning tuning = forced_shards(4);
  RegionExecutor executor(sim::v100());
  executor.set_tuning(tuning);
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, 16, 128);
  executor.run(pragma::parse_approx("none"), b, region.n, launch);
  double expected = 0.0;
  for (std::uint64_t i = 0; i < region.n; ++i) expected += region.f(i);
  EXPECT_EQ(sum, expected);
}

TEST(RegionParallel, NestedLaunchInsideSchedulerTaskStillShards) {
  // PR 3's engine forced shards = 1 whenever the caller was a pool worker
  // (the binary on_worker_thread gate), so a region launched from an
  // Explorer/Campaign worker silently ran serial. On the shared
  // work-stealing scheduler the nested launch fans out: its shards are
  // stealable tasks and the submitting worker executes its share. The
  // shard decision is observable via stats.host_shards; results stay
  // bit-identical to the serial engine.
  ExecTuning serial;
  serial.max_threads = 1;
  TestRegion serial_region;
  const EngineRun reference =
      run_with_tuning(serial_region, serial_region.binding(), "memo(out:3:8:0.5)", serial);
  EXPECT_EQ(reference.report.stats.host_shards, 1u);

  EngineRun nested;
  Scheduler::shared().parallel_for(1, [&](std::size_t, std::size_t) {
    ASSERT_TRUE(Scheduler::in_task());
    TestRegion region;
    nested = run_with_tuning(region, region.binding(), "memo(out:3:8:0.5)",
                             forced_shards(4));
  });
  EXPECT_GT(nested.report.stats.host_shards, 1u);
  expect_identical(reference, nested, "nested launch");
}

TEST(RegionParallel, ConcurrentIndependentLaunchesAllShard) {
  // Two concurrent independent_items launches used to race for a
  // try-locked pool gate: the loser quietly serialized. With the shared
  // scheduler both fan out and both stay bit-identical to serial.
  ExecTuning serial;
  serial.max_threads = 1;
  TestRegion serial_region;
  const EngineRun reference =
      run_with_tuning(serial_region, serial_region.binding(), "memo(out:3:8:0.5)", serial);

  std::vector<EngineRun> runs(2);
  Scheduler::shared().parallel_for(runs.size(), [&](std::size_t, std::size_t i) {
    TestRegion region;
    runs[i] = run_with_tuning(region, region.binding(), "memo(out:3:8:0.5)",
                              forced_shards(4));
  });
  for (const EngineRun& run : runs) {
    EXPECT_GT(run.report.stats.host_shards, 1u);
    expect_identical(reference, run, "concurrent launch");
  }
}

TEST(RegionParallel, ShardMergeStress) {
  // TSan target: many concurrent launches publishing shard tasks onto the
  // shared work-stealing scheduler at once. Every launch fans out (no
  // pool gate to lose anymore) — results must be identical regardless of
  // which thread steals which shard.
  ExecTuning serial;
  serial.max_threads = 1;
  TestRegion golden_region;
  const EngineRun reference =
      run_with_tuning(golden_region, golden_region.binding(), "memo(out:3:8:0.5)", serial, 8);

  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 3;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRunsPerThread; ++r) {
        TestRegion region;
        const EngineRun run = run_with_tuning(region, region.binding(), "memo(out:3:8:0.5)",
                                              forced_shards(4), 8);
        if (run.out != reference.out ||
            run.report.timing.seconds != reference.report.timing.seconds ||
            run.report.stats.approx_items != reference.report.stats.approx_items) {
          ++mismatches[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0);
}
