// Behavioral tests of the RegionExecutor — the warp-synchronous engine
// that implements the paper's GPU AC algorithms.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "approx/iact.hpp"
#include "approx/region.hpp"
#include "approx/taf.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "pragma/parser.hpp"
#include "sim/device.hpp"

using namespace hpac;
using namespace hpac::approx;

namespace {

struct TestRegion {
  std::uint64_t n = 1 << 12;
  std::vector<double> out;
  std::function<double(std::uint64_t)> f = [](std::uint64_t i) {
    return 1.0 + static_cast<double>(i % 7);
  };

  RegionBinding binding(double cost = 100.0, int in_dims = 1) {
    out.assign(n, -1.0);
    RegionBinding b;
    b.in_dims = in_dims;
    b.out_dims = 1;
    b.gather = [this](std::uint64_t i, std::span<double> in) {
      in[0] = static_cast<double>(i % 7);
    };
    b.accurate = [this](std::uint64_t i, std::span<const double>, std::span<double> o) {
      o[0] = f(i);
    };
    b.accurate_cost = [cost](std::uint64_t) { return cost; };
    b.commit = [this](std::uint64_t i, std::span<const double> o) { out[i] = o[0]; };
    return b;
  }

  std::vector<double> reference() const {
    std::vector<double> ref(n);
    for (std::uint64_t i = 0; i < n; ++i) ref[i] = f(i);
    return ref;
  }
};

RegionReport run_spec(TestRegion& region, const RegionBinding& binding, const char* clause,
                      std::uint64_t ipt = 16,
                      sim::DeviceConfig dev = sim::v100()) {
  RegionExecutor executor(dev);
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, ipt, 128);
  return executor.run(pragma::parse_approx(clause), binding, region.n, launch);
}

}  // namespace

TEST(Region, BaselineComputesEveryItemExactly) {
  TestRegion region;
  auto binding = region.binding();
  const auto report = run_spec(region, binding, "none");
  EXPECT_EQ(region.out, region.reference());
  EXPECT_EQ(report.stats.accurate_items, region.n);
  EXPECT_EQ(report.stats.approx_items, 0u);
  EXPECT_EQ(report.stats.region_invocations, region.n);
}

TEST(Region, StatsPartitionInvocations) {
  TestRegion region;
  auto binding = region.binding();
  for (const char* clause :
       {"none", "perfo(small:4)", "memo(out:2:8:0.5)", "memo(in:4:0.5:2) in(x) out(y)"}) {
    const auto report = run_spec(region, binding, clause);
    EXPECT_EQ(report.stats.accurate_items + report.stats.approx_items +
                  report.stats.skipped_items,
              report.stats.region_invocations)
        << clause;
  }
}

TEST(Region, ConstantFunctionTafIsErrorFree) {
  TestRegion region;
  region.f = [](std::uint64_t) { return 42.0; };
  auto binding = region.binding();
  const auto report = run_spec(region, binding, "memo(out:3:16:0.3)");
  EXPECT_GT(report.stats.approx_items, region.n / 2);
  for (double v : region.out) ASSERT_DOUBLE_EQ(v, 42.0);
}

TEST(Region, TafRespectsThreshold) {
  TestRegion region;  // i % 7: wildly varying outputs per grid-stride step
  auto binding = region.binding();
  const auto strict = run_spec(region, binding, "memo(out:3:16:0.01)");
  EXPECT_EQ(strict.stats.approx_items, 0u);
  EXPECT_EQ(region.out, region.reference());
}

TEST(Region, TafSpeedsUpStableRegions) {
  TestRegion region;
  region.f = [](std::uint64_t) { return 7.0; };
  auto binding = region.binding(500.0);
  const auto base = run_spec(region, binding, "none");
  const auto taf = run_spec(region, binding, "memo(out:2:32:0.3)");
  EXPECT_LT(taf.timing.seconds, base.timing.seconds);
}

TEST(Region, IactExactRepeatsHitCache) {
  TestRegion region;
  // Inputs repeat with period 7 along each thread's grid-stride walk.
  auto binding = region.binding(200.0, 1);
  const auto report = run_spec(region, binding, "memo(in:8:0.1:2) in(x) out(y)");
  EXPECT_GT(report.stats.iact_hits, 0u);
  EXPECT_GT(report.stats.approx_items, 0u);
  // Exact-repeat workload: cached outputs are identical to accurate ones.
  EXPECT_EQ(region.out, region.reference());
}

TEST(Region, IactRequiresUniformInputs) {
  TestRegion region;
  auto binding = region.binding(100.0, 0);  // no uniform input key
  binding.gather = nullptr;
  RegionExecutor executor(sim::v100());
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, 8, 128);
  EXPECT_THROW(executor.run(pragma::parse_approx("memo(in:4:0.5:2) in(x) out(y)"), binding,
                            region.n, launch),
               ConfigError);
}

TEST(Region, IactTablesPerWarpMustDivideWarp) {
  TestRegion region;
  auto binding = region.binding();
  EXPECT_THROW(run_spec(region, binding, "memo(in:4:0.5:3) in(x) out(y)"), ConfigError);
  // 64 tables per warp only fit the AMD wavefront (Table 2).
  EXPECT_THROW(run_spec(region, binding, "memo(in:4:0.5:64) in(x) out(y)"), ConfigError);
  EXPECT_NO_THROW(
      run_spec(region, binding, "memo(in:4:0.5:64) in(x) out(y)", 16, sim::mi250x()));
}

TEST(Region, SharedMemoryOverflowIsConfigError) {
  TestRegion region;
  auto binding = region.binding();
  // History 512 x 128 threads x 8B >> 96KB shared memory.
  pragma::ApproxSpec spec;
  spec.technique = pragma::Technique::kTafMemo;
  spec.taf = pragma::TafParams{4096, 8, 0.5};
  spec.out_sections.push_back("o");
  RegionExecutor executor(sim::v100());
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, 8, 128);
  EXPECT_THROW(executor.run(spec, binding, region.n, launch), ConfigError);
}

TEST(Region, AcStateBytesMatchFootprints) {
  TestRegion region;
  auto binding = region.binding();
  RegionExecutor executor(sim::v100());
  sim::LaunchConfig launch;
  launch.num_teams = 4;
  launch.threads_per_team = 128;

  pragma::ApproxSpec taf = pragma::parse_approx("memo(out:3:8:0.5)");
  EXPECT_EQ(executor.ac_state_bytes_per_block(taf, binding, launch),
            128 * TafState::footprint_bytes(3, 1));

  pragma::ApproxSpec iact = pragma::parse_approx("memo(in:4:0.5:2) in(x) out(y)");
  EXPECT_EQ(executor.ac_state_bytes_per_block(iact, binding, launch),
            4u * 2u * IactTable::footprint_bytes(4, 1, 1));

  pragma::ApproxSpec perfo = pragma::parse_approx("perfo(small:2)");
  EXPECT_EQ(executor.ac_state_bytes_per_block(perfo, binding, launch), 0u);
}

TEST(Region, PerforationSkipsExpectedFraction) {
  TestRegion region;
  auto binding = region.binding();
  const auto report = run_spec(region, binding, "perfo(small:4)", 16);
  const double skipped =
      static_cast<double>(report.stats.skipped_items) / region.n;
  EXPECT_NEAR(skipped, 0.25, 0.05);
  // Skipped items keep their prior (initialization) value.
  std::size_t untouched = 0;
  for (double v : region.out) untouched += v == -1.0;
  EXPECT_EQ(untouched, report.stats.skipped_items);
}

TEST(Region, IniPerforationDropsPrefixAtAnyLaunch) {
  TestRegion region;
  auto binding = region.binding();
  const auto report = run_spec(region, binding, "perfo(ini:0.5)", 1);
  EXPECT_NEAR(static_cast<double>(report.stats.skipped_items) / region.n, 0.5, 0.01);
  EXPECT_EQ(region.out[0], -1.0);
  EXPECT_NE(region.out[region.n - 1], -1.0);
}

TEST(Region, HerdedPerforationAvoidsFragmentedWarps) {
  TestRegion region;
  auto binding = region.binding(50.0);
  const auto herded = run_spec(region, binding, "perfo(small:2)", 16);
  const auto cpu_style = run_spec(region, binding, "perfo(small:2) herded(0)", 16);
  // Same work dropped, but the herded pattern issues fewer transactions.
  EXPECT_NEAR(static_cast<double>(herded.stats.skipped_items),
              static_cast<double>(cpu_style.stats.skipped_items),
              static_cast<double>(region.n) * 0.05);
  EXPECT_LT(herded.timing.total_transactions, cpu_style.timing.total_transactions);
  EXPECT_LE(herded.timing.seconds, cpu_style.timing.seconds);
}

TEST(Region, WarpLevelEliminatesDivergence) {
  TestRegion region;
  // 60% of items stable, interleaved: thread-level decisions split warps.
  region.f = [](std::uint64_t i) {
    return i % 5 < 3 ? 10.0 : 10.0 + std::sin(static_cast<double>(i));
  };
  auto binding = region.binding(300.0);
  const auto thread_level = run_spec(region, binding, "memo(out:3:16:0.05)");
  const auto warp_level = run_spec(region, binding, "memo(out:3:16:0.05) level(warp)");
  EXPECT_GT(thread_level.timing.divergent_regions, 0u);
  EXPECT_EQ(warp_level.timing.divergent_regions, 0u);
  EXPECT_LT(warp_level.timing.seconds, thread_level.timing.seconds);
  EXPECT_GT(warp_level.stats.forced_approx + warp_level.stats.forced_accurate, 0u);
}

TEST(Region, BlockLevelDecisionsAreBlockUniform) {
  TestRegion region;
  region.f = [](std::uint64_t) { return 3.0; };
  auto binding = region.binding();
  const auto report = run_spec(region, binding, "memo(out:2:16:0.3) level(team)");
  // With uniformly stable outputs, whole blocks flip to the approximate
  // path; divergence must be zero.
  EXPECT_EQ(report.timing.divergent_regions, 0u);
  EXPECT_GT(report.stats.approx_items, 0u);
}

TEST(Region, MissingCallbacksAreRejected) {
  TestRegion region;
  RegionBinding empty;
  RegionExecutor executor(sim::v100());
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(64, 1, 32);
  EXPECT_THROW(executor.run(pragma::parse_approx("none"), empty, 64, launch), Error);
}

TEST(Region, PartialTailWarpHandled) {
  TestRegion region;
  region.n = 1000;  // not a multiple of warp or team sizes
  auto binding = region.binding();
  const auto report = run_spec(region, binding, "none", 3);
  EXPECT_EQ(report.stats.region_invocations, 1000u);
  EXPECT_EQ(region.out, region.reference());
}

TEST(Region, DeterministicAcrossRuns) {
  TestRegion region;
  auto binding = region.binding();
  const auto a = run_spec(region, binding, "memo(out:3:8:0.5) level(warp)");
  const std::vector<double> first = region.out;
  const auto b = run_spec(region, binding, "memo(out:3:8:0.5) level(warp)");
  EXPECT_EQ(first, region.out);
  EXPECT_DOUBLE_EQ(a.timing.seconds, b.timing.seconds);
  EXPECT_EQ(a.stats.approx_items, b.stats.approx_items);
}

class RegionDeviceSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(RegionDeviceSweep, AllTechniquesRunOnBothPlatforms) {
  for (const auto& dev : {sim::v100(), sim::mi250x()}) {
    TestRegion region;
    auto binding = region.binding();
    const auto report = run_spec(region, binding, GetParam(), 16, dev);
    EXPECT_GT(report.timing.seconds, 0.0) << dev.name;
    EXPECT_EQ(report.stats.region_invocations, region.n) << dev.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Clauses, RegionDeviceSweep,
                         ::testing::Values("none", "perfo(small:2)", "perfo(fini:0.3)",
                                           "memo(out:3:8:0.5)",
                                           "memo(out:3:8:0.5) level(warp)",
                                           "memo(out:3:8:0.5) level(team)",
                                           "memo(in:4:0.5:2) in(x) out(y)",
                                           "memo(in:4:0.5:2) level(warp) in(x) out(y)"));

TEST(Region, TafReducesMemoryTraffic) {
  // Approximated steps skip the accurate path's loads; with a stable
  // region most transactions disappear.
  TestRegion region;
  region.f = [](std::uint64_t) { return 1.0; };
  auto binding = region.binding(100.0);
  binding.in_bytes = 32;
  const auto base = run_spec(region, binding, "none");
  const auto taf = run_spec(region, binding, "memo(out:1:64:0.5) level(warp)");
  EXPECT_LT(taf.timing.total_transactions, base.timing.total_transactions / 2);
}

TEST(Region, IactHitsNeverExceedInvocations) {
  TestRegion region;
  auto binding = region.binding();
  const auto report = run_spec(region, binding, "memo(in:8:0.5:2) in(x) out(y)");
  EXPECT_LE(report.stats.iact_hits, report.stats.region_invocations);
}

TEST(Region, OccupancyReportedInUnitInterval) {
  TestRegion region;
  auto binding = region.binding();
  for (std::uint64_t ipt : {1ull, 8ull, 64ull}) {
    const auto report = run_spec(region, binding, "none", ipt);
    EXPECT_GT(report.timing.occupancy, 0.0);
    EXPECT_LE(report.timing.occupancy, 1.0);
  }
}

TEST(Region, TafStableEntriesCounted) {
  TestRegion region;
  region.f = [](std::uint64_t) { return 2.0; };
  auto binding = region.binding();
  const auto report = run_spec(region, binding, "memo(out:2:4:0.5)");
  EXPECT_GT(report.stats.taf_stable_entries, 0u);
}

TEST(Region, SharedStateScopedToKernel) {
  // Two consecutive runs behave identically: AC state must not leak
  // across kernel launches (paper: destroyed at kernel completion).
  TestRegion region;
  region.f = [](std::uint64_t) { return 3.0; };
  auto binding = region.binding();
  const auto first = run_spec(region, binding, "memo(out:2:8:0.5)");
  const auto second = run_spec(region, binding, "memo(out:2:8:0.5)");
  EXPECT_EQ(first.stats.approx_items, second.stats.approx_items);
  EXPECT_EQ(first.stats.taf_stable_entries, second.stats.taf_stable_entries);
}

// --- Figure 2 composition: perforation around a memoized region ---------

TEST(Composed, PerfoPlusTafPartitionsInvocations) {
  TestRegion region;
  region.f = [](std::uint64_t) { return 5.0; };
  auto binding = region.binding();
  RegionExecutor executor(sim::v100());
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, 16, 128);
  const auto report = executor.run_composed(pragma::parse_approx("perfo(small:4)"),
                                            pragma::parse_approx("memo(out:2:8:0.5)"),
                                            binding, region.n, launch);
  EXPECT_NEAR(static_cast<double>(report.stats.skipped_items) / region.n, 0.25, 0.05);
  EXPECT_GT(report.stats.approx_items, 0u);
  EXPECT_EQ(report.stats.accurate_items + report.stats.approx_items +
                report.stats.skipped_items,
            report.stats.region_invocations);
}

TEST(Composed, PaperFigure2Example) {
  // perfo(small:4) around memo(in:10:0.5f) — the paper's exact example.
  TestRegion region;
  auto binding = region.binding();
  RegionExecutor executor(sim::v100());
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, 16, 128);
  const auto report = executor.run_composed(
      pragma::parse_approx("perfo(small:4)"),
      pragma::parse_approx("memo(in: 10 : 0.5f) in(input[i]) out(output[i])"), binding,
      region.n, launch);
  EXPECT_GT(report.stats.skipped_items, 0u);
  EXPECT_GT(report.stats.iact_hits, 0u);
}

TEST(Composed, CpuStylePerfoFiltersLanes) {
  TestRegion region;
  auto binding = region.binding();
  RegionExecutor executor(sim::v100());
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, 16, 128);
  const auto report = executor.run_composed(pragma::parse_approx("perfo(large:4) herded(0)"),
                                            pragma::parse_approx("memo(out:2:8:0.5)"),
                                            binding, region.n, launch);
  EXPECT_NEAR(static_cast<double>(report.stats.skipped_items) / region.n, 0.75, 0.05);
}

TEST(Composed, RejectsWrongDirectiveKinds) {
  TestRegion region;
  auto binding = region.binding();
  RegionExecutor executor(sim::v100());
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, 16, 128);
  EXPECT_THROW(executor.run_composed(pragma::parse_approx("memo(out:2:8:0.5)"),
                                     pragma::parse_approx("memo(out:2:8:0.5)"), binding,
                                     region.n, launch),
               ConfigError);
  EXPECT_THROW(executor.run_composed(pragma::parse_approx("perfo(small:2)"),
                                     pragma::parse_approx("perfo(small:2)"), binding,
                                     region.n, launch),
               ConfigError);
}

TEST(Composed, SkippedItemsNeverTouchAcState) {
  // With everything perforated away except one step per cycle, the memo
  // logic sees a sparser stream; outputs of skipped items stay at the
  // initialization value.
  TestRegion region;
  auto binding = region.binding();
  RegionExecutor executor(sim::v100());
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, 16, 128);
  executor.run_composed(pragma::parse_approx("perfo(large:16)"),
                        pragma::parse_approx("memo(out:1:4:0.5)"), binding, region.n,
                        launch);
  std::size_t untouched = 0;
  for (double v : region.out) untouched += v == -1.0;
  EXPECT_GT(untouched, region.n / 2);
}
