// Tests for the HPAC-Offload clause grammar: the paper's own examples
// (Figures 2 and 5), every clause form, validation rules and round-trips.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pragma/parser.hpp"

using namespace hpac;
using namespace hpac::pragma;

TEST(Parser, PaperFigure2Memo) {
  // Figure 2: #pragma approx memo(in: 10 : 0.5f) in(input[i]) out(output[i])
  const auto spec = parse_approx("memo(in: 10 : 0.5f) in(input[i]) out(output[i])");
  EXPECT_EQ(spec.technique, Technique::kIactMemo);
  ASSERT_TRUE(spec.iact.has_value());
  EXPECT_EQ(spec.iact->table_size, 10);
  EXPECT_DOUBLE_EQ(spec.iact->threshold, 0.5);
  EXPECT_EQ(spec.iact->tables_per_warp, 0);  // default: warp size
  ASSERT_EQ(spec.in_sections.size(), 1u);
  EXPECT_EQ(spec.in_sections[0], "input[i]");
}

TEST(Parser, PaperFigure2Perfo) {
  const auto spec = parse_approx("perfo(small:4)");
  EXPECT_EQ(spec.technique, Technique::kPerforation);
  EXPECT_EQ(spec.perfo->kind, PerfoKind::kSmall);
  EXPECT_EQ(spec.perfo->stride, 4);
  EXPECT_TRUE(spec.perfo->herded);
}

TEST(Parser, PaperFigure5IactLine) {
  // Figure 5 line 9: memo(in:2:0.5f:4) level(warp) in(input[i*5:5:N]) out(output1[i])
  const auto spec =
      parse_approx("memo(in:2:0.5f:4) level(warp) in(input[i*5:5:N]) out(output1[i])");
  EXPECT_EQ(spec.technique, Technique::kIactMemo);
  EXPECT_EQ(spec.iact->table_size, 2);
  EXPECT_DOUBLE_EQ(spec.iact->threshold, 0.5);
  EXPECT_EQ(spec.iact->tables_per_warp, 4);
  EXPECT_EQ(spec.level, HierarchyLevel::kWarp);
  EXPECT_EQ(spec.in_sections[0], "input[i*5:5:N]");
}

TEST(Parser, PaperFigure5TafLine) {
  // Figure 5 line 13: memo(out:3:5:1.5f) level(thread) out(output2[i])
  const auto spec = parse_approx("memo(out:3:5:1.5f) level(thread) out(output2[i])");
  EXPECT_EQ(spec.technique, Technique::kTafMemo);
  EXPECT_EQ(spec.taf->history_size, 3);
  EXPECT_EQ(spec.taf->prediction_size, 5);
  EXPECT_DOUBLE_EQ(spec.taf->rsd_threshold, 1.5);
  EXPECT_EQ(spec.level, HierarchyLevel::kThread);
}

TEST(Parser, FullPragmaPrefixIsAccepted) {
  const auto spec = parse_approx("#pragma approx perfo(large:8)");
  EXPECT_EQ(spec.perfo->kind, PerfoKind::kLarge);
}

TEST(Parser, TeamMapsToBlockLevel) {
  EXPECT_EQ(parse_approx("memo(out:1:2:0.5) level(team)").level, HierarchyLevel::kBlock);
  EXPECT_EQ(parse_approx("memo(out:1:2:0.5) level(block)").level, HierarchyLevel::kBlock);
}

TEST(Parser, IniFiniTakeFractions) {
  const auto ini = parse_approx("perfo(ini:0.25)");
  EXPECT_EQ(ini.perfo->kind, PerfoKind::kIni);
  EXPECT_DOUBLE_EQ(ini.perfo->fraction, 0.25);
  const auto fini = parse_approx("perfo(fini:0.9)");
  EXPECT_EQ(fini.perfo->kind, PerfoKind::kFini);
}

TEST(Parser, HerdedFlagForms) {
  EXPECT_TRUE(parse_approx("perfo(small:2)").perfo->herded);
  EXPECT_FALSE(parse_approx("perfo(small:2) herded(0)").perfo->herded);
  EXPECT_TRUE(parse_approx("perfo(small:2) herded(1)").perfo->herded);
  EXPECT_TRUE(parse_approx("perfo(small:2) herded").perfo->herded);
}

TEST(Parser, ReplacementClause) {
  EXPECT_TRUE(parse_approx("memo(in:4:0.5) replacement(clock) in(x) out(y)")
                  .iact->clock_replacement);
  EXPECT_FALSE(
      parse_approx("memo(in:4:0.5) replacement(rr) in(x) out(y)").iact->clock_replacement);
  EXPECT_THROW(parse_approx("replacement(clock)"), ParseError);
}

TEST(Parser, LabelClause) {
  EXPECT_EQ(parse_approx("memo(out:1:2:0.5) label(hourglass)").label, "hourglass");
}

TEST(Parser, NoneIsAccurateOnly) {
  const auto spec = parse_approx("none");
  EXPECT_EQ(spec.technique, Technique::kNone);
  const auto empty = parse_approx("");
  EXPECT_EQ(empty.technique, Technique::kNone);
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW(parse_approx("memo(sideways:1:2:3)"), ParseError);
  EXPECT_THROW(parse_approx("memo(out:1:2)"), ParseError);           // missing threshold
  EXPECT_THROW(parse_approx("perfo(small)"), ParseError);            // missing stride
  EXPECT_THROW(parse_approx("level(warp)x"), ParseError);            // trailing junk
  EXPECT_THROW(parse_approx("memo(out:1:2:0.5) level(galaxy)"), ParseError);
  EXPECT_THROW(parse_approx("frobnicate(3)"), ParseError);
  EXPECT_THROW(parse_approx("memo(out:1:2:0.5"), ParseError);        // unbalanced
}

TEST(Parser, RejectsTwoTechniques) {
  EXPECT_THROW(parse_approx("memo(out:1:2:0.5) perfo(small:2)"), ParseError);
  EXPECT_THROW(parse_approx("memo(out:1:2:0.5) memo(in:2:0.5) in(x)"), ParseError);
}

TEST(Parser, ValidationRules) {
  EXPECT_THROW(parse_approx("memo(in:2:0.5)"), ParseError);   // iACT needs in(...)
  EXPECT_THROW(parse_approx("perfo(small:1)"), ParseError);   // stride >= 2
  EXPECT_THROW(parse_approx("perfo(ini:1.5)"), ParseError);   // fraction in (0,1)
  EXPECT_THROW(parse_approx("perfo(ini:0.5) level(warp)"), ParseError);
  EXPECT_THROW(parse_approx("memo(out:0:2:0.5)"), ParseError);
}

TEST(Parser, RoundTripThroughToString) {
  for (const char* text :
       {"memo(out:3:5:1.5) level(warp) out(o[i])",
        "memo(in:2:0.5:4) in(a[i]) out(b[i])",
        "memo(in:2:0.5:4) replacement(clock) in(a[i]) out(b[i])",
        "perfo(small:4)", "perfo(ini:0.3)", "perfo(large:16) herded(0)"}) {
    const auto spec = parse_approx(text);
    const auto again = parse_approx(spec.to_string());
    EXPECT_EQ(again.to_string(), spec.to_string()) << text;
  }
}

TEST(Parser, WhitespaceInsensitive) {
  const auto a = parse_approx("memo(out:3:5:1.5)");
  const auto b = parse_approx("  memo ( out : 3 : 5 : 1.5 )  ");
  EXPECT_EQ(a.to_string(), b.to_string());
}

class PerfoStrideParse : public ::testing::TestWithParam<int> {};

TEST_P(PerfoStrideParse, AllTable2StridesParse) {
  const int stride = GetParam();
  const auto spec = parse_approx("perfo(small:" + std::to_string(stride) + ")");
  EXPECT_EQ(spec.perfo->stride, stride);
}

INSTANTIATE_TEST_SUITE_P(Table2, PerfoStrideParse, ::testing::Values(2, 4, 8, 16, 32, 64));
