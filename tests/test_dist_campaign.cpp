// Fault-injection rig for the distributed campaign (ROADMAP item 2).
//
// These tests fork REAL worker subprocesses (fork + exec of this binary in
// --dist-worker mode, so no fork-from-multithreaded hazards), SIGKILL them
// at controlled points through env-driven injection hooks compiled into
// the library (HPAC_DIST_TEST_KILL_AFTER, HPAC_DIST_TEST_TORN_APPEND,
// HPAC_DIST_TEST_STALL_MS), SIGSTOP/SIGCONT them to force lease expiry,
// restart them, and assert the merged final CSV is byte-identical to the
// serial single-process reference — kill-and-resume semantics already
// proven per-process (test_campaign.cpp), here proven per-fleet.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fileops.hpp"
#include "harness/campaign.hpp"
#include "harness/dist_campaign.hpp"
#include "harness/lease_journal.hpp"
#include "harness/result_store.hpp"
#include "pragma/parser.hpp"

using namespace hpac;
using namespace hpac::harness;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string fresh_dir(const std::string& stem) {
  const std::string path = testing::TempDir() + "hpac_dist_" + stem;
  std::filesystem::remove_all(path);
  fileops::ensure_dir(path);
  return path;
}

// --- the two plans worker subprocesses and tests agree on --------------------
// Identified by name on the worker command line; both sides must build the
// identical plan or the lease journal's fingerprint check rejects the
// worker (which is itself a property one test asserts).

CampaignPlan plan_by_name(const std::string& name) {
  CampaignPlan plan;
  plan.num_threads = 1;
  plan.specs_for = [](const sim::DeviceConfig&) {
    return std::vector<pragma::ApproxSpec>{
        pragma::parse_approx("perfo(small:2)"),
        pragma::parse_approx("perfo(large:4)"),
        pragma::parse_approx("perfo(fini:0.3)"),
    };
  };
  plan.items_per_thread = {1, 8};
  if (name == "tiny") {
    // 6 tuples, 1 shard.
    plan.benchmarks = {"lavamd"};
    plan.devices = {"v100"};
  } else if (name == "multi") {
    // 16 tuples, 4 shards.
    plan.benchmarks = {"lavamd", "binomial_options"};
    plan.devices = {"v100", "mi250x"};
    plan.specs_for = [](const sim::DeviceConfig&) {
      return std::vector<pragma::ApproxSpec>{
          pragma::parse_approx("perfo(small:2)"),
          pragma::parse_approx("perfo(fini:0.3)"),
      };
    };
  } else {
    throw Error("unknown test plan: " + name);
  }
  return plan;
}

DistributedCampaign::Options dist_options(const std::string& dir,
                                          const std::string& worker,
                                          std::uint32_t ttl_ms, std::size_t chunk,
                                          const std::string& mode) {
  DistributedCampaign::Options opt;
  opt.dir = dir;
  opt.worker = worker;
  opt.ttl_ms = ttl_ms;
  opt.claim_chunk = chunk;
  opt.mode = mode == "rename" ? LeaseJournal::AppendMode::kRenameRewrite
                              : LeaseJournal::AppendMode::kAtomicAppend;
  return opt;
}

// --- subprocess plumbing -----------------------------------------------------

using Env = std::vector<std::pair<std::string, std::string>>;

pid_t spawn_self(const std::vector<std::string>& args, const Env& env) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  for (const auto& [key, value] : env) ::setenv(key.c_str(), value.c_str(), 1);
  std::vector<char*> argv;
  std::string exe = "/proc/self/exe";
  argv.push_back(exe.data());
  std::vector<std::string> copy = args;
  for (auto& arg : copy) argv.push_back(arg.data());
  argv.push_back(nullptr);
  ::execv(exe.c_str(), argv.data());
  ::_exit(127);
}

pid_t spawn_worker(const std::string& dir, const std::string& worker,
                   const std::string& plan, std::uint32_t ttl_ms, std::size_t chunk,
                   const Env& env = {}, const std::string& mode = "append") {
  return spawn_self({"--dist-worker", dir, worker, plan, std::to_string(ttl_ms),
                     std::to_string(chunk), mode},
                    env);
}

int wait_for(pid_t pid) {
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  return status;
}

void expect_clean_exit(pid_t pid, const std::string& who) {
  const int status = wait_for(pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << who << " status " << status;
}

void expect_sigkilled(pid_t pid, const std::string& who) {
  const int status = wait_for(pid);
  EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << who << " status " << status;
}

/// Parse the key=value stats file a finished worker publishes.
std::map<std::string, long long> read_stats(const std::string& dir,
                                            const std::string& worker) {
  std::map<std::string, long long> out;
  std::string text;
  EXPECT_TRUE(fileops::read_file(dir + "/stats." + worker, text)) << worker;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t eq = line.find('=');
    if (eq != std::string::npos) {
      out[line.substr(0, eq)] = std::atoll(line.c_str() + eq + 1);
    }
  }
  return out;
}

bool wait_for_file(const std::string& path, int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    if (std::filesystem::exists(path)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return std::filesystem::exists(path);
}

/// The single-process serial reference CSV for a plan.
std::string serial_reference(const std::string& plan_name, const std::string& stem) {
  CampaignPlan plan = plan_by_name(plan_name);
  plan.output_path = testing::TempDir() + "hpac_dist_ref_" + stem + ".csv";
  std::remove(plan.output_path.c_str());
  Campaign campaign(plan);
  campaign.run();
  return plan.output_path;
}

DistributedCampaign::FinalizeStats finalize_dir(const std::string& plan_name,
                                                const std::string& dir) {
  Campaign campaign(plan_by_name(plan_name));
  DistributedCampaign dist(campaign, dist_options(dir, "finalizer", 1000, 4, "append"));
  return dist.finalize();
}

}  // namespace

// ============================================================================
// LeaseJournal unit coverage
// ============================================================================

namespace {

LeaseJournal::Options lease_options(const std::string& path, const std::string& worker,
                                    std::size_t domain, std::uint32_t ttl_ms = 3000,
                                    LeaseJournal::AppendMode mode =
                                        LeaseJournal::AppendMode::kAtomicAppend) {
  LeaseJournal::Options opt;
  opt.path = path;
  opt.worker = worker;
  opt.domain = domain;
  opt.fingerprint = 0x1234abcd5678ef00ull;
  opt.ttl_ms = ttl_ms;
  opt.mode = mode;
  return opt;
}

}  // namespace

TEST(LeaseJournal, ClaimsAreExclusiveAndReleasesStick) {
  const std::string dir = fresh_dir("lease_basic");
  const std::string path = dir + "/leases.journal";
  LeaseJournal a(lease_options(path, "a", 8));
  LeaseJournal b(lease_options(path, "b", 8));

  EXPECT_EQ(a.claim(0, 4), (std::vector<std::size_t>{0, 1, 2, 3}));
  // b's overlapping claim only wins the tuples a did not reach.
  EXPECT_EQ(b.claim(2, 4), (std::vector<std::size_t>{4, 5}));
  EXPECT_TRUE(a.holds(2));
  EXPECT_FALSE(b.holds(2));

  a.release(1);
  EXPECT_FALSE(a.holds(1));
  // A released tuple is terminal: nobody can claim it again.
  EXPECT_TRUE(b.claim(1, 1).empty());

  const auto run = b.next_unclaimed_run(8, 8, 0);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->first, 6u);
  EXPECT_EQ(run->second, 2u);

  // A release from a non-owner is appended but ignored by every reader.
  b.release(3);
  EXPECT_TRUE(a.holds(3));
  EXPECT_EQ(a.invalid_lines(), 0u);
}

TEST(LeaseJournal, ExpiredLeaseIsReclaimedExactlyOnce) {
  const std::string dir = fresh_dir("lease_expire");
  const std::string path = dir + "/leases.journal";
  LeaseJournal stale(lease_options(path, "stale", 4, /*ttl_ms=*/120));
  LeaseJournal r1(lease_options(path, "r1", 4, 120));
  LeaseJournal r2(lease_options(path, "r2", 4, 120));

  EXPECT_EQ(stale.claim(0, 1).size(), 1u);
  // Still alive: reclaim refuses.
  EXPECT_FALSE(r1.try_reclaim(0).won);

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(r1.expired(0, 4), (std::vector<std::size_t>{0}));
  const auto first = r1.try_reclaim(0);
  const auto second = r2.try_reclaim(0);
  EXPECT_TRUE(first.won);
  EXPECT_EQ(first.prev_worker, "stale");
  EXPECT_FALSE(second.won);  // CAS names an incumbent that no longer owns it
  EXPECT_TRUE(r1.holds(0));

  // The original owner's late release is ignored; r1's counts.
  stale.release(0);
  EXPECT_TRUE(r1.holds(0));
  r1.release(0);
  EXPECT_TRUE(r1.all_released(0, 1));

  const auto inspection = LeaseJournal::inspect(path);
  // Only the winner's CAS record landed: the second reclaimer re-read the
  // journal, saw a fresh incumbent, and never appended.
  EXPECT_EQ(inspection.reclaims, 1u);
  EXPECT_EQ(inspection.invalid_lines, 0u);
  EXPECT_TRUE(inspection.tuples[0].released);
  EXPECT_EQ(inspection.tuples[0].worker, "r1");
}

TEST(LeaseJournal, RejectsMismatchedJoiners) {
  const std::string dir = fresh_dir("lease_mismatch");
  const std::string path = dir + "/leases.journal";
  LeaseJournal a(lease_options(path, "a", 8));

  auto wrong_fp = lease_options(path, "b", 8);
  wrong_fp.fingerprint ^= 1;
  EXPECT_THROW(LeaseJournal{wrong_fp}, ConfigError);

  EXPECT_THROW(LeaseJournal{lease_options(path, "b", 9)}, ConfigError);

  EXPECT_THROW(
      LeaseJournal{lease_options(path, "b", 8, 3000,
                                 LeaseJournal::AppendMode::kRenameRewrite)},
      ConfigError);

  auto bad_name = lease_options(path, "has space", 8);
  EXPECT_THROW(LeaseJournal{bad_name}, Error);
}

TEST(LeaseJournal, RenameRewriteModeCoordinatesLikeAppendMode) {
  const std::string dir = fresh_dir("lease_rename");
  const std::string path = dir + "/leases.journal";
  const auto mode = LeaseJournal::AppendMode::kRenameRewrite;
  LeaseJournal a(lease_options(path, "a", 4, 120, mode));
  LeaseJournal b(lease_options(path, "b", 4, 120, mode));

  EXPECT_EQ(a.claim(0, 3).size(), 3u);
  EXPECT_EQ(b.claim(0, 4), (std::vector<std::size_t>{3}));
  a.release(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  b.heartbeat();
  EXPECT_TRUE(b.try_reclaim(1).won);
  EXPECT_TRUE(b.holds(1));
  EXPECT_FALSE(a.holds(1));

  const auto inspection = LeaseJournal::inspect(path);
  EXPECT_EQ(inspection.mode, "rename");
  EXPECT_EQ(inspection.invalid_lines, 0u);
}

// --- satellite: torn-write hardening (every byte offset) ---------------------

TEST(LeaseJournal, TruncatedRecordDropsOnlyTheTornTail) {
  const std::string dir = fresh_dir("lease_torn");
  const std::string path = dir + "/leases.journal";
  {
    LeaseJournal w(lease_options(path, "w", 4));
    w.claim(0, 2);
    w.heartbeat();
    w.release(0);  // header + C + H + R
  }
  const std::string bytes = slurp(path);
  const std::size_t last_start = bytes.rfind('\n', bytes.size() - 2) + 1;

  const std::string torn = dir + "/torn.journal";
  for (std::size_t cut = last_start; cut < bytes.size(); ++cut) {
    fileops::write_file_atomic(torn, bytes.substr(0, cut));
    const auto inspection = LeaseJournal::inspect(torn);
    // Everything before the torn record is intact...
    EXPECT_EQ(inspection.claims, 1u) << "cut=" << cut;
    EXPECT_EQ(inspection.heartbeats, 1u) << "cut=" << cut;
    EXPECT_EQ(inspection.valid_records, 2u) << "cut=" << cut;
    ASSERT_EQ(inspection.tuples.size(), 4u);
    EXPECT_TRUE(inspection.tuples[0].claimed);
    EXPECT_TRUE(inspection.tuples[1].claimed);
    // ...and only the torn release is lost.
    EXPECT_FALSE(inspection.tuples[0].released) << "cut=" << cut;
    EXPECT_EQ(inspection.invalid_lines, cut == last_start ? 0u : 1u) << "cut=" << cut;
  }

  // A torn half glued to a live writer's next O_APPEND record yields ONE
  // invalid line (the checksum covers the garbage prefix); records after
  // that parse normally — the reader recovers instead of derailing.
  std::vector<std::string> lines;
  std::istringstream is(bytes);
  for (std::string line; std::getline(is, line);) lines.push_back(line + "\n");
  ASSERT_EQ(lines.size(), 4u);
  const std::string half = lines[3].substr(0, lines[3].size() / 2);
  fileops::write_file_atomic(torn, bytes.substr(0, last_start) + half + lines[2] +
                                       lines[3]);
  const auto glued = LeaseJournal::inspect(torn);
  EXPECT_EQ(glued.invalid_lines, 1u);
  EXPECT_EQ(glued.valid_records, 3u);  // C, H, then the re-appended R applies
  EXPECT_TRUE(glued.tuples[0].released);

  // A live journal joining the torn file sees the same recovered state.
  fileops::write_file_atomic(torn, bytes.substr(0, last_start) + half);
  LeaseJournal survivor(lease_options(torn, "s", 4));
  EXPECT_EQ(survivor.invalid_lines(), 0u);  // unterminated tail stays pending
  EXPECT_FALSE(survivor.state(0).released);
  EXPECT_EQ(survivor.state(0).worker, "w");
}

// ============================================================================
// Satellite: concurrent ResultStore::append_if_absent across processes
// ============================================================================

TEST(DistResultStore, ConcurrentAppendIfAbsentKeepsFirstAndDropsNothing) {
  const std::string dir = fresh_dir("store_race");
  const std::string path = dir + "/journal.csv";
  constexpr int kTuples = 40;
  { ResultStore create(path); }  // header written once, before any racer

  const pid_t a = spawn_self({"--append-worker", path, "a", std::to_string(kTuples),
                              "asc"},
                             {});
  const pid_t b = spawn_self({"--append-worker", path, "b", std::to_string(kTuples),
                              "desc"},
                             {});
  expect_clean_exit(a, "append-worker a");
  expect_clean_exit(b, "append-worker b");

  // Raw journal: every row parses (no torn/interleaved rows) and the first
  // occurrence of each tuple is what the store must keep.
  const ResultDb raw = ResultDb::load(path);
  std::map<std::string, std::string> first_note;
  for (const RunRecord& record : raw.records()) {
    first_note.emplace(ResultStore::key_of(record), record.note);
  }
  EXPECT_EQ(first_note.size(), static_cast<std::size_t>(kTuples));  // none dropped

  ResultStore store(path);
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kTuples));  // none duplicated
  EXPECT_EQ(store.load_stats().restored, static_cast<std::size_t>(kTuples));
  EXPECT_EQ(store.load_stats().duplicates, raw.size() - first_note.size());
  const ResultStore::Snapshot snapshot = store.snapshot();
  snapshot.for_each([&](const RunRecord& record) {
    EXPECT_EQ(record.note, first_note.at(ResultStore::key_of(record)));
  });
}

// ============================================================================
// DistributedCampaign: fleet semantics under injected faults
// ============================================================================

TEST(DistCampaign, SingleWorkerFleetMatchesSerialReference) {
  const std::string dir = fresh_dir("solo");
  expect_clean_exit(spawn_worker(dir, "w0", "tiny", 1000, 4), "w0");

  const auto stats = read_stats(dir, "w0");
  EXPECT_EQ(stats.at("evaluated"), 6);
  EXPECT_EQ(stats.at("reclaimed"), 0);
  EXPECT_EQ(stats.at("baselines_computed"), 1);

  const auto merge = finalize_dir("tiny", dir);
  EXPECT_EQ(merge.merged, 6u);
  EXPECT_EQ(merge.duplicates, 0u);
  EXPECT_EQ(merge.journals, 1u);
  EXPECT_EQ(slurp(dir + "/results.csv"), slurp(serial_reference("tiny", "solo")));
}

TEST(DistCampaign, KilledWorkerRestartsAndResumesItsOwnJournal) {
  const std::string dir = fresh_dir("killrestart");
  // Killed right after flushing its 3rd result row, BEFORE that tuple's
  // release — the worst-ordered crash: a durable result under an
  // unreleased (soon-expired) lease.
  expect_sigkilled(
      spawn_worker(dir, "w0", "tiny", 500, 6, {{"HPAC_DIST_TEST_KILL_AFTER", "3"}}),
      "killed w0");
  EXPECT_EQ(ResultDb::load(dir + "/results.w0.csv", true).size(), 3u);

  // Same id, fresh nonce: reclaims its own expired leases, releases the
  // already-persisted tuple without re-evaluating, runs the rest.
  expect_clean_exit(spawn_worker(dir, "w0", "tiny", 500, 6), "restarted w0");
  const auto stats = read_stats(dir, "w0");
  EXPECT_EQ(stats.at("restored"), 1);  // the append-without-release tuple
  EXPECT_EQ(stats.at("evaluated"), 3);
  EXPECT_GE(stats.at("reclaimed"), 1);
  EXPECT_EQ(stats.at("baselines_loaded"), 1);  // cache survives the crash

  const auto merge = finalize_dir("tiny", dir);
  EXPECT_EQ(merge.merged, 6u);
  EXPECT_EQ(merge.duplicates, 0u);  // restore path never re-evaluates
  EXPECT_EQ(merge.conflicting, 0u);
  EXPECT_EQ(slurp(dir + "/results.csv"), slurp(serial_reference("tiny", "killrestart")));
}

TEST(DistCampaign, TornJournalAppendIsAbsorbedByTheFleet) {
  const std::string dir = fresh_dir("torn");
  // Dies writing HALF of its 3rd lease record: the journal ends in a
  // checksummed-garbage tail every later reader and appender must survive.
  expect_sigkilled(
      spawn_worker(dir, "w0", "tiny", 500, 2, {{"HPAC_DIST_TEST_TORN_APPEND", "3"}}),
      "torn w0");

  expect_clean_exit(spawn_worker(dir, "w1", "tiny", 500, 2), "w1");

  const auto inspection = LeaseJournal::inspect(dir + "/leases.journal");
  EXPECT_GE(inspection.invalid_lines, 1u);  // the torn (possibly glued) record

  const auto merge = finalize_dir("tiny", dir);
  EXPECT_EQ(merge.merged, 6u);
  EXPECT_EQ(merge.conflicting, 0u);
  EXPECT_EQ(slurp(dir + "/results.csv"), slurp(serial_reference("tiny", "torn")));
}

// --- satellite: lease expiry via SIGSTOP -------------------------------------

TEST(DistCampaign, FrozenWorkerIsReclaimedOnceAndItsLateResultDiscarded) {
  const std::string dir = fresh_dir("frozen");
  const std::string marker = dir + "/stalled";
  const std::uint32_t ttl = 2000;

  // Worker A touches the marker right before evaluating its first tuple,
  // then sleeps while STILL holding every lease of its claimed chunk.
  const pid_t a = spawn_worker(dir, "a", "tiny", ttl, 6,
                               {{"HPAC_DIST_TEST_STALL_MS", "3000"},
                                {"HPAC_DIST_TEST_STALL_MARKER", marker}});
  ASSERT_TRUE(wait_for_file(marker, 30000));
  ASSERT_EQ(::kill(a, SIGSTOP), 0);  // freeze heartbeats too

  // B waits out the TTL, reclaims A's leases, and finishes the campaign.
  expect_clean_exit(spawn_worker(dir, "b", "tiny", ttl, 6), "b");
  const auto b_stats = read_stats(dir, "b");
  EXPECT_GE(b_stats.at("reclaimed"), 1);
  EXPECT_EQ(b_stats.at("evaluated") + b_stats.at("restored"), 6);

  // Resume A: it finishes its in-flight evaluation late (a duplicate the
  // merge discards), then observes every other lease lost and exits clean.
  ASSERT_EQ(::kill(a, SIGCONT), 0);
  expect_clean_exit(a, "resumed a");
  const auto a_stats = read_stats(dir, "a");
  EXPECT_EQ(a_stats.at("evaluated"), 1);  // exactly the stalled tuple
  // A held one lease per tuple B reclaimed; all but the stalled one were
  // observed as lost (holds() false) and skipped without evaluation.
  EXPECT_EQ(a_stats.at("lost"), b_stats.at("reclaimed") - 1);

  // Exactly-once re-evaluation: 6 tuples, 7 evaluations total, the one
  // extra being A's late duplicate — dropped by kept-first, byte-identical.
  EXPECT_EQ(a_stats.at("evaluated") + b_stats.at("evaluated"), 7);
  const auto inspection = LeaseJournal::inspect(dir + "/leases.journal");
  EXPECT_EQ(inspection.invalid_lines, 0u);  // late release did not corrupt
  const auto merge = finalize_dir("tiny", dir);
  EXPECT_EQ(merge.merged, 6u);
  EXPECT_EQ(merge.duplicates, 1u);
  EXPECT_EQ(merge.conflicting, 0u);
  EXPECT_EQ(slurp(dir + "/results.csv"), slurp(serial_reference("tiny", "frozen")));
}

// --- satellite: baselines computed once per fleet ----------------------------

TEST(DistCampaign, BaselinesComputedOncePerShardAcrossTheFleet) {
  const std::string dir = fresh_dir("baselines");
  const pid_t w0 = spawn_worker(dir, "w0", "multi", 3000, 2);
  const pid_t w1 = spawn_worker(dir, "w1", "multi", 3000, 2);
  expect_clean_exit(w0, "w0");
  expect_clean_exit(w1, "w1");

  const auto s0 = read_stats(dir, "w0");
  const auto s1 = read_stats(dir, "w1");
  // The lease serializes baseline computation: 4 shards, 4 computations
  // fleet-wide, no matter how the two workers interleave.
  EXPECT_EQ(s0.at("baselines_computed") + s1.at("baselines_computed"), 4);
  for (std::size_t shard = 0; shard < 4; ++shard) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/baseline." + std::to_string(shard) +
                                        ".txt"));
  }

  // Parity: records evaluated against a seeded (file-loaded) baseline are
  // byte-identical to ones evaluated after a locally computed baseline.
  const auto merge = finalize_dir("multi", dir);
  EXPECT_EQ(merge.merged, 16u);
  EXPECT_EQ(merge.conflicting, 0u);
  EXPECT_EQ(slurp(dir + "/results.csv"), slurp(serial_reference("multi", "baselines")));
}

TEST(DistCampaign, RenameRewriteFleetMatchesSerialReference) {
  const std::string dir = fresh_dir("rename_fleet");
  const pid_t w0 = spawn_worker(dir, "w0", "tiny", 3000, 2, {}, "rename");
  const pid_t w1 = spawn_worker(dir, "w1", "tiny", 3000, 2, {}, "rename");
  expect_clean_exit(w0, "w0");
  expect_clean_exit(w1, "w1");

  EXPECT_EQ(LeaseJournal::inspect(dir + "/leases.journal").mode, "rename");
  const auto merge = finalize_dir("tiny", dir);
  EXPECT_EQ(merge.merged, 6u);
  EXPECT_EQ(slurp(dir + "/results.csv"),
            slurp(serial_reference("tiny", "rename_fleet")));
}

TEST(DistCampaign, FinalizeRefusesAnIncompleteFleet) {
  const std::string dir = fresh_dir("incomplete");
  EXPECT_THROW(finalize_dir("tiny", dir), Error);
}

// --- the acceptance gate: 4 workers, 2 kills, reclaim, byte-identity ---------

TEST(DistCampaign, FourWorkerFleetWithTwoKillsFinalizesByteIdentical) {
  const std::string dir = fresh_dir("fleet");
  const std::uint32_t ttl = 1000;

  // Phase 1: two workers are killed mid-campaign at different points (one
  // right after its first result row, one after its second), both leaving
  // durable results under unreleased leases.
  const pid_t k0 = spawn_worker(dir, "w0", "multi", ttl, 2,
                                {{"HPAC_DIST_TEST_KILL_AFTER", "1"}});
  const pid_t k1 = spawn_worker(dir, "w1", "multi", ttl, 2,
                                {{"HPAC_DIST_TEST_KILL_AFTER", "2"}});
  expect_sigkilled(k0, "killed w0");
  expect_sigkilled(k1, "killed w1");

  // Phase 2: a 4-worker fleet — the two ids restarted plus two fresh —
  // reclaims the dead incarnations' leases and finishes the campaign.
  const pid_t w0 = spawn_worker(dir, "w0", "multi", ttl, 2);
  const pid_t w1 = spawn_worker(dir, "w1", "multi", ttl, 2);
  const pid_t w2 = spawn_worker(dir, "w2", "multi", ttl, 2);
  const pid_t w3 = spawn_worker(dir, "w3", "multi", ttl, 2);
  expect_clean_exit(w0, "w0");
  expect_clean_exit(w1, "w1");
  expect_clean_exit(w2, "w2");
  expect_clean_exit(w3, "w3");

  long long reclaimed = 0, evaluated = 0, restored = 0;
  for (const std::string id : {"w0", "w1", "w2", "w3"}) {
    const auto stats = read_stats(dir, id);
    reclaimed += stats.at("reclaimed");
    evaluated += stats.at("evaluated");
    restored += stats.at("restored");
  }
  // Each killed incarnation died holding at least its in-flight tuple, so
  // the fleet performed at least two reclaims (the acceptance criterion's
  // ">= 1 lease reclaim", with margin).
  EXPECT_GE(reclaimed, 2);
  EXPECT_GE(evaluated + restored, 16 - 3);  // 3 rows were persisted pre-kill

  const auto merge = finalize_dir("multi", dir);
  EXPECT_EQ(merge.planned, 16u);
  EXPECT_EQ(merge.merged, 16u);
  EXPECT_EQ(merge.conflicting, 0u);  // duplicates are byte-identical re-evals
  EXPECT_EQ(slurp(dir + "/results.csv"), slurp(serial_reference("multi", "fleet")));

  // And finalize is idempotent: a second merge republishes the same bytes.
  const std::string first = slurp(dir + "/results.csv");
  finalize_dir("multi", dir);
  EXPECT_EQ(slurp(dir + "/results.csv"), first);
}

// ============================================================================
// Subprocess entry points + main
// ============================================================================

namespace {

int dist_worker_main(int argc, char** argv) {
  // --dist-worker <dir> <worker> <plan> <ttl_ms> <chunk> <mode>
  if (argc != 8) {
    std::fprintf(stderr, "bad --dist-worker args\n");
    return 2;
  }
  const std::string dir = argv[2];
  const std::string worker = argv[3];
  try {
    Campaign campaign(plan_by_name(argv[4]));
    DistributedCampaign dist(
        campaign,
        dist_options(dir, worker, static_cast<std::uint32_t>(std::atoi(argv[5])),
                     static_cast<std::size_t>(std::atoi(argv[6])), argv[7]));
    const DistributedCampaign::WorkerStats stats = dist.run_worker();
    std::ostringstream os;
    os << "evaluated=" << stats.evaluated << "\n"
       << "restored=" << stats.restored << "\n"
       << "reclaimed=" << stats.reclaimed << "\n"
       << "lost=" << stats.lost << "\n"
       << "baselines_computed=" << stats.baselines_computed << "\n"
       << "baselines_loaded=" << stats.baselines_loaded << "\n";
    fileops::write_file_atomic(dir + "/stats." + worker, os.str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dist worker %s failed: %s\n", worker.c_str(), e.what());
    return 1;
  }
}

int append_worker_main(int argc, char** argv) {
  // --append-worker <journal> <tag> <count> <asc|desc>
  if (argc != 6) {
    std::fprintf(stderr, "bad --append-worker args\n");
    return 2;
  }
  try {
    ResultStore store(argv[2]);
    const std::string tag = argv[3];
    const int count = std::atoi(argv[4]);
    const bool ascending = std::string(argv[5]) == "asc";
    for (int step = 0; step < count; ++step) {
      const int i = ascending ? step : count - 1 - step;
      RunRecord record;
      record.benchmark = "racebench";
      record.device = "racedev";
      record.spec_text = "perfo(small:2)";
      record.items_per_thread = static_cast<std::uint64_t>(i + 1);
      record.note = tag + "#" + std::to_string(i);
      record.speedup = 1.0 + i;
      store.append_if_absent(record);
      // Yield so the two processes genuinely interleave appends.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "append worker failed: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--dist-worker") {
    return dist_worker_main(argc, argv);
  }
  if (argc > 1 && std::string(argv[1]) == "--append-worker") {
    return append_worker_main(argc, argv);
  }
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
