// Tests for perforation predicates: exact skip sets for every pattern,
// herded vs per-iteration behavior, and skip-fraction properties.

#include <gtest/gtest.h>

#include "approx/perforation.hpp"
#include "common/error.hpp"

using namespace hpac;
using namespace hpac::approx;
using pragma::PerfoKind;
using pragma::PerfoParams;

namespace {
std::size_t count_skipped_items(const PerfoParams& p, std::uint64_t n) {
  std::size_t skipped = 0;
  for (std::uint64_t i = 0; i < n; ++i) skipped += perfo_skip_item(p, i, n);
  return skipped;
}
}  // namespace

TEST(Perfo, SmallSkipsOneOfEveryM) {
  PerfoParams p{PerfoKind::kSmall, 4, 0.0, false};
  // Skips the last of each group of 4: indices 3, 7, 11, ...
  EXPECT_FALSE(perfo_skip_item(p, 0, 16));
  EXPECT_FALSE(perfo_skip_item(p, 2, 16));
  EXPECT_TRUE(perfo_skip_item(p, 3, 16));
  EXPECT_TRUE(perfo_skip_item(p, 7, 16));
  EXPECT_EQ(count_skipped_items(p, 16), 4u);
}

TEST(Perfo, LargeExecutesOneOfEveryM) {
  PerfoParams p{PerfoKind::kLarge, 4, 0.0, false};
  EXPECT_FALSE(perfo_skip_item(p, 0, 16));
  EXPECT_FALSE(perfo_skip_item(p, 4, 16));
  EXPECT_TRUE(perfo_skip_item(p, 1, 16));
  EXPECT_EQ(count_skipped_items(p, 16), 12u);
}

TEST(Perfo, IniDropsTheFirstFraction) {
  PerfoParams p{PerfoKind::kIni, 2, 0.25, false};
  EXPECT_TRUE(perfo_skip_item(p, 0, 100));
  EXPECT_TRUE(perfo_skip_item(p, 24, 100));
  EXPECT_FALSE(perfo_skip_item(p, 25, 100));
  EXPECT_FALSE(perfo_skip_item(p, 99, 100));
  EXPECT_EQ(count_skipped_items(p, 100), 25u);
}

TEST(Perfo, FiniDropsTheLastFraction) {
  PerfoParams p{PerfoKind::kFini, 2, 0.25, false};
  EXPECT_FALSE(perfo_skip_item(p, 0, 100));
  EXPECT_FALSE(perfo_skip_item(p, 74, 100));
  EXPECT_TRUE(perfo_skip_item(p, 75, 100));
  EXPECT_TRUE(perfo_skip_item(p, 99, 100));
  EXPECT_EQ(count_skipped_items(p, 100), 25u);
}

TEST(Perfo, HerdedStepPredicateMatchesItemPattern) {
  PerfoParams p{PerfoKind::kSmall, 2, 0.0, true};
  // Steps: skip the last of every 2 -> odd steps skipped.
  EXPECT_FALSE(perfo_skip_step(p, 0, 8));
  EXPECT_TRUE(perfo_skip_step(p, 1, 8));
  EXPECT_FALSE(perfo_skip_step(p, 2, 8));
}

TEST(Perfo, SingleStepLaunchIsNotWipedOut) {
  // At items-per-thread 1 there is a single grid-stride step; small/large
  // must not drop the whole kernel.
  PerfoParams small{PerfoKind::kSmall, 4, 0.0, true};
  EXPECT_FALSE(perfo_skip_step(small, 0, 1));
  PerfoParams large{PerfoKind::kLarge, 4, 0.0, true};
  EXPECT_FALSE(perfo_skip_step(large, 0, 1));
}

TEST(Perfo, OutOfRangeIndexThrows) {
  PerfoParams p{PerfoKind::kSmall, 2, 0.0, false};
  EXPECT_THROW(perfo_skip_item(p, 10, 10), Error);
  EXPECT_THROW(perfo_skip_step(p, 5, 5), Error);
}

class PerfoFraction
    : public ::testing::TestWithParam<std::tuple<pragma::PerfoKind, int, double>> {};

TEST_P(PerfoFraction, MeasuredSkipFractionMatchesExpected) {
  const auto [kind, stride, fraction] = GetParam();
  PerfoParams p{kind, stride, fraction, false};
  const std::uint64_t n = 6400;
  const double measured = static_cast<double>(count_skipped_items(p, n)) / n;
  EXPECT_NEAR(measured, perfo_expected_skip_fraction(p), 0.01)
      << perfo_kind_name(kind) << " stride=" << stride << " frac=" << fraction;
}

INSTANTIATE_TEST_SUITE_P(
    Table2, PerfoFraction,
    ::testing::Values(std::make_tuple(PerfoKind::kSmall, 2, 0.0),
                      std::make_tuple(PerfoKind::kSmall, 8, 0.0),
                      std::make_tuple(PerfoKind::kSmall, 64, 0.0),
                      std::make_tuple(PerfoKind::kLarge, 2, 0.0),
                      std::make_tuple(PerfoKind::kLarge, 16, 0.0),
                      std::make_tuple(PerfoKind::kIni, 2, 0.1),
                      std::make_tuple(PerfoKind::kIni, 2, 0.9),
                      std::make_tuple(PerfoKind::kFini, 2, 0.5),
                      std::make_tuple(PerfoKind::kFini, 2, 0.3)));
