// Golden-parity tests of the rebuilt region execution engine.
//
// The PR 3 engine rebuild (FunctionRef dispatch, batched bindings, O(1)
// active masks, AC-state reuse, team-sharded parallelism) promises
// *byte-identical* results to the pre-refactor serial engine. These tests
// hold it to that: `engine_parity_golden.inc` embeds RunRecord CSV rows
// produced by the PR 2 engine for all seven apps under all four
// techniques on both platforms, and every engine path — the scalar
// std::function adapter, the batched bindings, and forced team-parallel
// execution — must reproduce them exactly, doubles and all.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "apps/registry.hpp"
#include "approx/region.hpp"
#include "harness/explorer.hpp"
#include "pragma/parser.hpp"
#include "sim/device.hpp"

using namespace hpac;

namespace {

#include "engine_parity_golden.inc"

/// The exact configuration grid the golden file was captured with.
const char* kV100Specs[] = {
    "none",
    "perfo(small:4)",
    "memo(out:3:8:0.5) level(warp)",
    "memo(in:4:0.5:2) in(x) out(y)",
};
const char* kMi250xSpecs[] = {
    "memo(out:3:8:0.5)",
    "memo(in:4:0.5:2) level(warp) in(x) out(y)",
};

std::string run_grid_csv() {
  harness::ResultDb db;
  for (const auto& name : apps::benchmark_names()) {
    {
      auto app = apps::make_benchmark(name);
      harness::Explorer explorer(*app, sim::v100());
      for (const char* clause : kV100Specs) {
        explorer.run_config(pragma::parse_approx(clause), 8);
      }
      for (const auto& record : explorer.db().records()) db.add(record);
    }
    {
      auto app = apps::make_benchmark(name);
      harness::Explorer explorer(*app, sim::mi250x());
      for (const char* clause : kMi250xSpecs) {
        explorer.run_config(pragma::parse_approx(clause), 8);
      }
      for (const auto& record : explorer.db().records()) db.add(record);
    }
  }
  std::ostringstream os;
  db.to_csv().write(os);
  return os.str();
}

/// Runs the grid under a tuning default and restores the previous default
/// even on assertion failure.
class TuningGuard {
 public:
  explicit TuningGuard(const approx::ExecTuning& tuning)
      : previous_(approx::RegionExecutor::default_tuning()) {
    approx::RegionExecutor::set_default_tuning(tuning);
  }
  ~TuningGuard() { approx::RegionExecutor::set_default_tuning(previous_); }

 private:
  approx::ExecTuning previous_;
};

}  // namespace

TEST(EngineParity, BatchedBindingsMatchPreRefactorGolden) {
  approx::ExecTuning tuning;
  tuning.max_threads = 1;  // serial engine, batched dispatch (the default form)
  TuningGuard guard(tuning);
  EXPECT_EQ(run_grid_csv(), kGoldenCsv);
}

TEST(EngineParity, ScalarAdapterMatchesPreRefactorGolden) {
  approx::ExecTuning tuning;
  tuning.max_threads = 1;
  tuning.force_scalar = true;  // route through the std::function adapter
  TuningGuard guard(tuning);
  EXPECT_EQ(run_grid_csv(), kGoldenCsv);
}

TEST(EngineParity, TeamParallelMatchesPreRefactorGolden) {
  approx::ExecTuning tuning;
  tuning.max_threads = 4;  // force sharding even on small launches
  tuning.min_teams = 1;
  tuning.min_items = 0;
  tuning.min_teams_per_shard = 1;
  TuningGuard guard(tuning);
  EXPECT_EQ(run_grid_csv(), kGoldenCsv);
}
