// Tests for the seven reproduced benchmarks: workload determinism,
// accurate-path correctness against reference computations, QoI sanity
// and the per-app applicability rules the paper reports.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/binomial.hpp"
#include "apps/blackscholes.hpp"
#include "apps/kmeans.hpp"
#include "apps/lavamd.hpp"
#include "apps/leukocyte.hpp"
#include "apps/lulesh.hpp"
#include "apps/minife.hpp"
#include "apps/registry.hpp"
#include "common/error.hpp"
#include "pragma/parser.hpp"
#include "sim/device.hpp"

using namespace hpac;
using namespace hpac::apps;

namespace {
const pragma::ApproxSpec kNone;
}

TEST(Registry, AllSevenBenchmarksConstruct) {
  const auto names = benchmark_names();
  EXPECT_EQ(names.size(), 7u);
  for (const auto& name : names) {
    auto bench = make_benchmark(name);
    EXPECT_EQ(bench->name(), name);
  }
  EXPECT_THROW(make_benchmark("doom"), ConfigError);
}

TEST(Blackscholes, CallPriceMatchesKnownValue) {
  // S=100, K=100, r=0.05, v=0.2, T=1: canonical BS call ~ 10.45.
  EXPECT_NEAR(Blackscholes::call_price(100, 100, 0.05, 0.2, 1.0), 10.45, 0.01);
}

TEST(Blackscholes, DeepInTheMoneyApproachesIntrinsic) {
  const double price = Blackscholes::call_price(100, 10, 0.01, 0.1, 0.5);
  EXPECT_NEAR(price, 100 - 10 * std::exp(-0.01 * 0.5), 0.1);
}

TEST(Blackscholes, AccurateRunIsSelfConsistent) {
  Blackscholes::Params params;
  params.num_options = 4096;
  Blackscholes app(params);
  const auto a = app.run(kNone, 1, sim::v100());
  const auto b = app.run(kNone, 8, sim::v100());
  EXPECT_EQ(a.qoi, b.qoi);  // launch geometry must not change results
  EXPECT_EQ(a.qoi.size(), 4096u);
}

TEST(Blackscholes, KernelOnlyTimingScope) {
  Blackscholes app;
  EXPECT_EQ(app.timing_scope(), harness::TimingScope::kKernelOnly);
}

TEST(Binomial, TreePriceConvergesToBlackScholes) {
  // European call via CRR converges to the closed form as steps grow.
  const double bs = Blackscholes::call_price(30, 30, 0.02, 0.3, 1.0);
  const double tree = BinomialOptions::tree_price(30, 30, 1.0, 256, 0.02, 0.3);
  EXPECT_NEAR(tree, bs, 0.05);
}

TEST(Binomial, DeterministicPortfolio) {
  BinomialOptions a, b;
  const auto ra = a.run(kNone, 1, sim::v100());
  const auto rb = b.run(kNone, 1, sim::v100());
  EXPECT_EQ(ra.qoi, rb.qoi);
}

TEST(Binomial, PricesAreNonNegative) {
  BinomialOptions::Params params;
  params.num_options = 2048;
  BinomialOptions app(params);
  const auto out = app.run(kNone, 1, sim::v100());
  for (double p : out.qoi) ASSERT_GE(p, 0.0);
}

TEST(Lulesh, BlastProducesShockAndConservesEnergySign) {
  Lulesh::Params params;
  params.num_elems = 2048;
  params.num_steps = 50;
  Lulesh app(params);
  const auto out = app.run(kNone, 1, sim::v100());
  ASSERT_EQ(out.qoi.size(), 1u);
  const double origin_energy = out.qoi[0];
  EXPECT_GT(origin_energy, 0.0);
  // The blast disperses: origin energy decays from its initial value.
  EXPECT_LT(origin_energy, params.blast_energy);
}

TEST(Lulesh, IniPerforationHurtsMoreThanFini) {
  // Paper Figure 7: the first (origin/blast) elements matter more, so
  // dropping them (ini) is costlier than dropping the far field (fini).
  Lulesh::Params params;
  params.num_elems = 2048;
  params.num_steps = 50;
  Lulesh accurate_app(params);
  const auto accurate = accurate_app.run(kNone, 1, sim::v100());

  Lulesh ini_app(params);
  const auto ini = ini_app.run(pragma::parse_approx("perfo(ini:0.3)"), 1, sim::v100());
  Lulesh fini_app(params);
  const auto fini = fini_app.run(pragma::parse_approx("perfo(fini:0.3)"), 1, sim::v100());

  const double err_ini = std::abs(ini.qoi[0] - accurate.qoi[0]) / accurate.qoi[0];
  const double err_fini = std::abs(fini.qoi[0] - accurate.qoi[0]) / accurate.qoi[0];
  EXPECT_GT(err_ini, err_fini);
}

TEST(Leukocyte, CentroidsTrackGeneratedCells) {
  Leukocyte::Params params;
  params.num_cells = 4;
  params.iterations = 20;
  Leukocyte app(params);
  const auto out = app.run(kNone, 1, sim::v100());
  ASSERT_EQ(out.qoi.size(), 8u);
  // Intensity centroids should land near the patch center where the
  // synthetic cells were drawn.
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(out.qoi[c * 2 + 0], params.patch / 2.0, 4.0);
    EXPECT_NEAR(out.qoi[c * 2 + 1], params.patch / 2.0, 4.0);
  }
}

TEST(Leukocyte, PixelCountMatchesGeometry) {
  Leukocyte app;
  EXPECT_EQ(app.num_pixels(),
            static_cast<std::uint64_t>(app.params().num_cells) * app.params().patch *
                app.params().patch);
}

TEST(MiniFe, BaselineCgConverges) {
  MiniFe::Params params;
  params.grid = 8;
  MiniFe app(params);
  const auto out = app.run(kNone, 1, sim::v100());
  ASSERT_EQ(out.qoi.size(), 1u);
  // Residual norm far below the initial ||b|| = sqrt(512).
  EXPECT_LT(out.qoi[0], 1e-4);
  EXPECT_GT(out.iterations, 2.0);
}

TEST(MiniFe, TafCorruptsConvergence) {
  // Paper §4.1: approximating SpMV propagates errors through CG and the
  // residual explodes (593%..3.4e22%).
  MiniFe::Params params;
  params.grid = 8;
  MiniFe accurate_app(params);
  const auto accurate = accurate_app.run(kNone, 1, sim::v100());
  MiniFe approx_app(params);
  const auto approx =
      approx_app.run(pragma::parse_approx("memo(out:2:16:5) level(warp)"), 16, sim::v100());
  EXPECT_GT(approx.qoi[0], accurate.qoi[0] * 100.0);
}

TEST(MiniFe, IactIsNotApplicable) {
  MiniFe::Params params;
  params.grid = 8;
  MiniFe app(params);
  EXPECT_THROW(
      app.run(pragma::parse_approx("memo(in:4:0.5:2) in(row) out(y)"), 8, sim::v100()),
      ConfigError);
}

TEST(LavaMd, PotentialIsPositiveAndDeterministic) {
  LavaMd::Params params;
  params.boxes_per_dim = 3;
  params.particles_per_box = 8;
  LavaMd app(params);
  const auto a = app.run(kNone, 1, sim::v100());
  const auto b = app.run(kNone, 1, sim::v100());
  EXPECT_EQ(a.qoi, b.qoi);
  // QoI layout: (potential, |f|, x, y, z) per particle.
  ASSERT_EQ(a.qoi.size(), app.num_particles() * 5);
  for (std::size_t i = 0; i < a.qoi.size(); i += 5) {
    EXPECT_GT(a.qoi[i], 0.0);       // potential
    EXPECT_GE(a.qoi[i + 1], 0.0);   // force magnitude
  }
}

TEST(LavaMd, LaunchGeometryDoesNotChangePhysics) {
  LavaMd::Params params;
  params.boxes_per_dim = 3;
  params.particles_per_box = 8;
  LavaMd app(params);
  const auto a = app.run(kNone, 1, sim::v100());
  const auto b = app.run(kNone, 4, sim::mi250x());
  ASSERT_EQ(a.qoi.size(), b.qoi.size());
  for (std::size_t i = 0; i < a.qoi.size(); ++i) ASSERT_NEAR(a.qoi[i], b.qoi[i], 1e-12);
}

TEST(KMeans, BaselineConvergesAndLabelsEveryPoint) {
  KMeans::Params params;
  params.num_points = 4096;
  KMeans app(params);
  const auto out = app.run(kNone, 1, sim::v100());
  EXPECT_LT(out.iterations, params.max_iterations);
  ASSERT_EQ(out.qoi_labels.size(), params.num_points);
  for (int label : out.qoi_labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, params.clusters);
  }
}

TEST(KMeans, UsesMisclassificationRate) {
  KMeans app;
  EXPECT_EQ(app.error_metric(), harness::ErrorMetric::kMcr);
}

TEST(KMeans, ApproximationAcceleratesConvergence) {
  // Figure 12c: memoized assignments herd observations and the benchmark
  // converges in fewer iterations.
  KMeans::Params params;
  params.num_points = 8192;
  KMeans accurate_app(params);
  const auto accurate = accurate_app.run(kNone, 1, sim::v100());
  KMeans approx_app(params);
  const auto approx =
      approx_app.run(pragma::parse_approx("memo(out:2:64:1.5) level(warp)"), 64, sim::v100());
  EXPECT_LE(approx.iterations, accurate.iterations);
}

class AppSmokeSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(AppSmokeSweep, EveryBenchmarkRunsEveryTechnique) {
  auto bench = make_benchmark(GetParam());
  for (const char* clause : {"perfo(fini:0.2)", "memo(out:2:8:1.5) level(warp)"}) {
    const auto out = bench->run(pragma::parse_approx(clause), 8, sim::v100());
    EXPECT_GT(out.timeline.end_to_end_seconds(), 0.0) << clause;
    EXPECT_GT(out.stats.region_invocations, 0u) << clause;
  }
}

INSTANTIATE_TEST_SUITE_P(Table1, AppSmokeSweep,
                         ::testing::Values("lulesh", "leukocyte", "binomial_options",
                                           "minife", "blackscholes", "lavamd", "kmeans"));

TEST(Lulesh, TotalEnergyApproximatelyConserved) {
  // The staggered scheme should roughly conserve internal + kinetic
  // energy over a short accurate run; a broken integrator would not.
  Lulesh::Params params;
  params.num_elems = 1024;
  params.num_steps = 30;
  Lulesh app(params);
  const auto out = app.run(kNone, 1, sim::v100());
  // Origin energy decayed but remains a sizeable fraction of the blast.
  EXPECT_GT(out.qoi[0], params.blast_energy * 0.05);
  EXPECT_LT(out.qoi[0], params.blast_energy);
}

TEST(Lulesh, PerforationLeavesPerforatedElementsStale) {
  Lulesh::Params params;
  params.num_elems = 1024;
  params.num_steps = 10;
  Lulesh app(params);
  const auto out = app.run(pragma::parse_approx("perfo(large:64)"), 1, sim::v100());
  // Skipping ~98% of force work still yields finite, positive energy.
  EXPECT_TRUE(std::isfinite(out.qoi[0]));
  EXPECT_GT(out.qoi[0], 0.0);
}

TEST(Binomial, ResonantStrideYieldsLowTafError) {
  // When the grid stride is a multiple of the 64-contract tiling period,
  // each thread re-prices near-identical contracts: TAF errors collapse
  // to the jitter scale (the dataset-redundancy mechanism of §4.1).
  BinomialOptions app;
  const auto accurate = app.run(kNone, 1, sim::v100());
  BinomialOptions approx_app;
  const auto approx = approx_app.run(
      pragma::parse_approx("memo(out:1:64:1.5) level(team) out(p)"), 16, sim::v100());
  double mape = 0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < accurate.qoi.size(); ++i) {
    if (accurate.qoi[i] == 0.0) continue;
    mape += std::abs(accurate.qoi[i] - approx.qoi[i]) / accurate.qoi[i];
    ++counted;
  }
  mape = 100.0 * mape / static_cast<double>(counted);
  EXPECT_LT(mape, 10.0);
}

TEST(KMeans, PerforationHerdsButConverges) {
  KMeans::Params params;
  params.num_points = 4096;
  KMeans app(params);
  const auto out = app.run(pragma::parse_approx("perfo(small:2)"), 8, sim::v100());
  EXPECT_LE(out.iterations, params.max_iterations);
  for (int label : out.qoi_labels) ASSERT_GE(label, -1);
}
