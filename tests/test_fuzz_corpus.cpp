// Replays the checked-in fuzzer seed corpora (fuzz/corpus/*) through the
// fuzz target bodies in a regular build — no libFuzzer required — so an
// input that once broke a parser keeps failing loudly in every
// configuration, and the corpora cannot silently rot as the wire/journal
// formats evolve. The targets abort() on a violated round-trip invariant,
// which a gtest death is loud about.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "targets.hpp"

namespace {

using FuzzTarget = int (*)(const std::uint8_t*, std::size_t);

std::vector<std::filesystem::path> corpus_files(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(HPAC_FUZZ_CORPUS_DIR) / name;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

void replay_all(const std::string& name, FuzzTarget target) {
  const std::vector<std::filesystem::path> files = corpus_files(name);
  ASSERT_FALSE(files.empty()) << "no seed corpus at fuzz/corpus/" << name;
  for (const std::filesystem::path& path : files) {
    SCOPED_TRACE(path.string());
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    EXPECT_EQ(0, target(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                        bytes.size()));
  }
}

TEST(FuzzCorpus, ProtocolSeedsStayGreen) {
  replay_all("fuzz_protocol", hpac::fuzz::run_protocol);
}

TEST(FuzzCorpus, CsvSeedsStayGreen) { replay_all("fuzz_csv", hpac::fuzz::run_csv); }

TEST(FuzzCorpus, LeaseJournalSeedsStayGreen) {
  replay_all("fuzz_lease_journal", hpac::fuzz::run_lease_journal);
}

TEST(FuzzCorpus, SpecSeedsStayGreen) { replay_all("fuzz_spec", hpac::fuzz::run_spec); }

}  // namespace
