// The work-stealing scheduler: coverage, slot exclusivity, caller
// participation, re-entrant nesting with stealing, determinism against
// the serial path, and first-exception-wins propagation. The stress tests
// double as the ThreadSanitizer targets for the steal paths.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/scheduler.hpp"

using namespace hpac;

namespace {

/// Bounded spin so a broken scheduler fails a test instead of hanging it.
bool spin_until(const std::function<bool()>& predicate,
                std::chrono::seconds budget = std::chrono::seconds(20)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!predicate()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

}  // namespace

TEST(Scheduler, ParallelForCoversEveryIndexExactlyOnce) {
  Scheduler scheduler(4);
  EXPECT_EQ(scheduler.workers(), 4u);
  EXPECT_EQ(scheduler.parallelism(), 5u);
  std::vector<int> hits(257, 0);
  // Distinct indices write distinct slots, so no synchronization needed.
  scheduler.parallel_for(hits.size(), [&](std::size_t, std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), static_cast<int>(hits.size()));
}

TEST(Scheduler, IsReusableAcrossJobs) {
  Scheduler scheduler(2);
  int total = 0;
  for (int job = 0; job < 5; ++job) {
    std::vector<int> hits(64, 0);
    scheduler.parallel_for(hits.size(), [&](std::size_t, std::size_t i) { hits[i] = 1; });
    total += std::accumulate(hits.begin(), hits.end(), 0);
  }
  EXPECT_EQ(total, 5 * 64);
}

TEST(Scheduler, SlotsAreInRangeAndExclusive) {
  // A slot belongs to exactly one participating thread for the whole job —
  // the contract that lets the Explorer index forked benchmarks by slot.
  Scheduler scheduler(4);
  constexpr std::size_t kLimit = 3;
  std::vector<std::atomic<int>> in_use(kLimit);
  std::atomic<bool> slot_out_of_range{false};
  std::atomic<bool> slot_collision{false};
  scheduler.parallel_for(
      256,
      [&](std::size_t slot, std::size_t) {
        if (slot >= kLimit) {
          slot_out_of_range = true;
          return;
        }
        if (in_use[slot].fetch_add(1) != 0) slot_collision = true;
        std::this_thread::yield();
        in_use[slot].fetch_sub(1);
      },
      /*max_participants=*/kLimit);
  EXPECT_FALSE(slot_out_of_range.load());
  EXPECT_FALSE(slot_collision.load());
}

TEST(Scheduler, ZeroWorkersRunsInline) {
  Scheduler scheduler(0);
  EXPECT_EQ(scheduler.workers(), 0u);
  std::vector<int> hits(8, 0);
  const auto caller = std::this_thread::get_id();
  scheduler.parallel_for(hits.size(), [&](std::size_t slot, std::size_t i) {
    EXPECT_EQ(slot, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    hits[i] = 1;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 8);
}

TEST(Scheduler, MaxParticipantsOneRunsInlineOnCaller) {
  Scheduler scheduler(4);
  const auto caller = std::this_thread::get_id();
  std::size_t ran = 0;
  scheduler.parallel_for(
      16,
      [&](std::size_t slot, std::size_t) {
        EXPECT_EQ(slot, 0u);
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++ran;  // unsynchronized on purpose: serial contract
      },
      /*max_participants=*/1);
  EXPECT_EQ(ran, 16u);
}

TEST(Scheduler, CallerClaimsIndicesInsteadOfParking) {
  // Occupy the only worker with another thread's job, then submit from the
  // main thread: the job must complete entirely on the caller. The old
  // ThreadPool parked the submitting thread on a condition variable, so
  // this scenario starved until the worker freed up.
  Scheduler scheduler(1);
  std::atomic<bool> release{false};
  std::atomic<int> blockers_started{0};
  std::thread occupant([&] {
    scheduler.parallel_for(
        2,
        [&](std::size_t, std::size_t) {
          blockers_started.fetch_add(1);
          ASSERT_TRUE(spin_until([&] { return release.load(); }));
        },
        /*max_participants=*/2);
  });
  // Both blocker indices running: one on the occupant thread, one on the
  // worker (proving the worker stole the occupant's published ticket).
  ASSERT_TRUE(spin_until([&] { return blockers_started.load() == 2; }));

  const auto caller = std::this_thread::get_id();
  std::atomic<int> on_caller{0};
  scheduler.parallel_for(8, [&](std::size_t, std::size_t) {
    if (std::this_thread::get_id() == caller) on_caller.fetch_add(1);
  });
  EXPECT_EQ(on_caller.load(), 8);

  release = true;
  occupant.join();
}

TEST(Scheduler, NestedParallelForCompletes) {
  Scheduler scheduler(2);
  std::atomic<int> leaves{0};
  scheduler.parallel_for(3, [&](std::size_t, std::size_t) {
    scheduler.parallel_for(4, [&](std::size_t, std::size_t) {
      scheduler.parallel_for(5, [&](std::size_t, std::size_t) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 3 * 4 * 5);
}

TEST(Scheduler, NestedTicketsAreStolenByIdleWorkers) {
  // An inner job whose two indices each wait for the other to start can
  // only finish if a second thread joins — i.e. if an idle worker steals
  // the nested ticket. Under the old binary worker gate this pattern was
  // impossible: nested fan-out from a task ran serial, full stop.
  Scheduler scheduler(2);
  std::atomic<int> started{0};
  std::atomic<int> saw_both{0};
  scheduler.parallel_for(1, [&](std::size_t, std::size_t) {
    scheduler.parallel_for(2, [&](std::size_t, std::size_t) {
      started.fetch_add(1);
      if (spin_until([&] { return started.load() == 2; })) saw_both.fetch_add(1);
    });
  });
  // BOTH bodies must observe the other one running. If nothing steals the
  // nested ticket the two indices run sequentially on one thread: the
  // first body's spin times out at started == 1, so saw_both stays at 1
  // and the regression fails loudly instead of passing after a slow spin.
  EXPECT_EQ(saw_both.load(), 2);
}

TEST(Scheduler, CrossSchedulerSubmissionGoesThroughTheInbox) {
  // A worker of one scheduler submitting to *another* scheduler must not
  // index the target's deques with its own worker index (worker 3 of a
  // 4-worker scheduler would address past the end of a 1-worker
  // scheduler's deque array). The submission lands in the target's inbox
  // and completes normally.
  Scheduler outer(4);
  Scheduler inner(1);
  std::atomic<int> leaves{0};
  outer.parallel_for(4, [&](std::size_t, std::size_t) {
    inner.parallel_for(8, [&](std::size_t, std::size_t) { leaves.fetch_add(1); });
  });
  EXPECT_EQ(leaves.load(), 4 * 8);
}

TEST(Scheduler, NestedFanoutMatchesSerialBitForBit) {
  // Determinism contract: results land at their index, so any interleaving
  // of participants produces the identical output buffer.
  constexpr std::size_t kOuter = 6;
  constexpr std::size_t kInner = 64;
  std::vector<double> serial(kOuter * kInner);
  for (std::size_t o = 0; o < kOuter; ++o) {
    for (std::size_t i = 0; i < kInner; ++i) {
      serial[o * kInner + i] =
          static_cast<double>(o + 1) / static_cast<double>(i + 3) + 0.1 * static_cast<double>(i);
    }
  }
  Scheduler scheduler(3);
  std::vector<double> nested(kOuter * kInner, -1.0);
  scheduler.parallel_for(kOuter, [&](std::size_t, std::size_t o) {
    scheduler.parallel_for(kInner, [&](std::size_t, std::size_t i) {
      nested[o * kInner + i] =
          static_cast<double>(o + 1) / static_cast<double>(i + 3) + 0.1 * static_cast<double>(i);
    });
  });
  EXPECT_EQ(serial, nested);  // exact, not approximate
}

TEST(Scheduler, PropagatesFirstExceptionAndStaysUsable) {
  Scheduler scheduler(2);
  EXPECT_THROW(scheduler.parallel_for(16,
                                      [](std::size_t, std::size_t i) {
                                        if (i == 3) throw std::runtime_error("boom");
                                      }),
               std::runtime_error);
  std::vector<int> hits(4, 0);
  scheduler.parallel_for(hits.size(), [&](std::size_t, std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 4);
}

TEST(Scheduler, ExceptionInNestedJobPropagatesToItsOwnCaller) {
  // The inner join rethrows inside the outer body; the outer body turns it
  // into a value, so the outer join must complete cleanly — exceptions
  // follow the join structure, not the worker that happened to run the
  // task.
  Scheduler scheduler(2);
  std::atomic<int> caught{0};
  scheduler.parallel_for(3, [&](std::size_t, std::size_t) {
    try {
      scheduler.parallel_for(8, [](std::size_t, std::size_t i) {
        if (i == 5) throw Error("inner failure");
      });
    } catch (const Error&) {
      caught.fetch_add(1);
    }
  });
  EXPECT_EQ(caught.load(), 3);
}

TEST(Scheduler, StressRepeatedThrowingJobsDoNotDeadlock) {
  // A task throwing mid-job must leave the scheduler consistent: the
  // caller sees the exception (nothing dropped silently) and the next job
  // runs normally. Loop to shake out lost-wakeup interleavings.
  Scheduler scheduler(8);
  for (int iteration = 0; iteration < 50; ++iteration) {
    std::atomic<int> executed{0};
    try {
      scheduler.parallel_for(256, [&](std::size_t, std::size_t i) {
        if (i % 7 == 0) throw std::runtime_error("boom");
        executed.fetch_add(1, std::memory_order_relaxed);
      });
      FAIL() << "parallel_for must rethrow";
    } catch (const std::runtime_error&) {
    }
    EXPECT_LT(executed.load(), 256);
    std::atomic<int> clean{0};
    scheduler.parallel_for(64, [&](std::size_t, std::size_t) {
      clean.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(clean.load(), 64);
  }
}

TEST(Scheduler, StressConcurrentThrowsKeepFirstException) {
  // First-exception-wins across participants, stolen tickets included:
  // every task throws, exactly one exception must surface per job.
  Scheduler scheduler(8);
  for (int iteration = 0; iteration < 25; ++iteration) {
    EXPECT_THROW(scheduler.parallel_for(128,
                                        [&](std::size_t, std::size_t) {
                                          throw Error("every task throws");
                                        }),
                 Error);
  }
}

TEST(Scheduler, ShutdownAfterJobsDoesNotHang) {
  // Construct, run work whose stale tickets may still sit in the deques as
  // the join returns, and destroy immediately — repeatedly. A lost stop
  // notification or a worker stuck on a dead ticket would deadlock here.
  for (int iteration = 0; iteration < 40; ++iteration) {
    Scheduler scheduler(4);
    std::atomic<int> executed{0};
    scheduler.parallel_for(64, [&](std::size_t, std::size_t) {
      executed.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(executed.load(), 64);
  }
}

TEST(Scheduler, StealStressManySubmittersWithNesting) {
  // TSan target: external submitters racing through the shared inbox while
  // their nested jobs publish stealable tickets onto worker deques.
  Scheduler scheduler(4);
  constexpr int kThreads = 4;
  constexpr int kRounds = 10;
  std::atomic<long long> leaves{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        scheduler.parallel_for(8, [&](std::size_t, std::size_t) {
          scheduler.parallel_for(4, [&](std::size_t, std::size_t) {
            leaves.fetch_add(1, std::memory_order_relaxed);
          });
        });
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  EXPECT_EQ(leaves.load(), static_cast<long long>(kThreads) * kRounds * 8 * 4);
}

TEST(Scheduler, InTaskReflectsBodyExecution) {
  EXPECT_FALSE(Scheduler::in_task());
  Scheduler scheduler(2);
  std::atomic<int> inside{0};
  scheduler.parallel_for(8, [&](std::size_t, std::size_t) {
    if (Scheduler::in_task()) inside.fetch_add(1);
  });
  EXPECT_EQ(inside.load(), 8);
  EXPECT_FALSE(Scheduler::in_task());
  // The inline path counts too: in_task means "inside a parallel_for
  // body", not "on a worker thread" — nothing gates on it anymore.
  bool inline_inside = false;
  Scheduler zero(0);
  zero.parallel_for(1, [&](std::size_t, std::size_t) { inline_inside = Scheduler::in_task(); });
  EXPECT_TRUE(inline_inside);
  EXPECT_FALSE(Scheduler::in_task());
}

TEST(Scheduler, RecommendedThreadsClamps) {
  EXPECT_EQ(Scheduler::recommended_threads(8, 3), 3u);
  EXPECT_EQ(Scheduler::recommended_threads(2, 100), 2u);
  EXPECT_EQ(Scheduler::recommended_threads(5, 0), 1u);
  EXPECT_GE(Scheduler::recommended_threads(0, 100), 1u);
}

TEST(Scheduler, SharedInstanceIsStealReady) {
  // The process-wide instance must keep stealing exercisable even on
  // one-core machines — every layer of the harness relies on it.
  EXPECT_GE(Scheduler::shared().workers(), 2u);
  EXPECT_EQ(Scheduler::shared().parallelism(), Scheduler::shared().workers() + 1);
  std::atomic<int> ran{0};
  Scheduler::shared().parallel_for(32, [&](std::size_t, std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 32);
}
