// Unit tests for the common substrate: RNG determinism, statistics,
// CSV/table output and string utilities.

#include <gtest/gtest.h>

#include <atomic>
#include <clocale>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/function_ref.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

using namespace hpac;

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroIsDeterministicAcrossInstances) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexIsUnbiasedEnough) {
  Xoshiro256 rng(5);
  std::array<int, 7> counts{};
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) EXPECT_NEAR(c, draws / 7.0, draws / 7.0 * 0.1);
}

TEST(Rng, NormalHasExpectedMoments) {
  Xoshiro256 rng(6);
  stats::RunningStats acc;
  for (int i = 0; i < 100000; ++i) acc.push(rng.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(stats::variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(stats::stddev(xs), std::sqrt(1.25));
}

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_EQ(stats::mean({}), 0.0); }

TEST(Stats, RsdMatchesPaperDefinition) {
  // RSD = sigma / mu (population); constant data has RSD 0.
  const std::vector<double> constant{5, 5, 5};
  EXPECT_DOUBLE_EQ(stats::rsd(constant), 0.0);
  const std::vector<double> xs{9, 10, 11};
  EXPECT_NEAR(stats::rsd(xs), std::sqrt(2.0 / 3.0) / 10.0, 1e-12);
}

TEST(Stats, RsdOfZeroMeanIsInfinite) {
  const std::vector<double> xs{-1, 1};
  EXPECT_TRUE(std::isinf(stats::rsd(xs)));
  const std::vector<double> zeros{0, 0};
  EXPECT_DOUBLE_EQ(stats::rsd(zeros), 0.0);
}

TEST(Stats, GeomeanOfPowers) {
  const std::vector<double> xs{1.0, 4.0};
  EXPECT_DOUBLE_EQ(stats::geomean(xs), 2.0);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW(stats::geomean(xs), Error);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 50), 25);
}

TEST(Stats, BoxStatsOrdering) {
  std::vector<double> xs;
  for (int i = 100; i >= 1; --i) xs.push_back(i);
  const auto box = stats::box_stats(xs);
  EXPECT_LE(box.min, box.q1);
  EXPECT_LE(box.q1, box.median);
  EXPECT_LE(box.median, box.q3);
  EXPECT_LE(box.q3, box.max);
  EXPECT_DOUBLE_EQ(box.median, 50.5);
}

TEST(Stats, PerfectLinearRegression) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{3, 5, 7, 9};  // y = 1 + 2x
  const auto r = stats::linear_regression(x, y);
  EXPECT_NEAR(r.slope, 2.0, 1e-12);
  EXPECT_NEAR(r.intercept, 1.0, 1e-12);
  EXPECT_NEAR(r.r2, 1.0, 1e-12);
}

TEST(Stats, NoisyRegressionHasR2BelowOne) {
  std::vector<double> x, y;
  Xoshiro256 rng(8);
  for (int i = 0; i < 200; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + 10.0 * rng.normal());
  }
  const auto r = stats::linear_regression(x, y);
  EXPECT_GT(r.r2, 0.9);
  EXPECT_LT(r.r2, 1.0);
}

TEST(Stats, MapeMatchesPaperEquationOne) {
  const std::vector<double> acc{10, 20};
  const std::vector<double> apx{11, 18};
  // (|10-11|/10 + |20-18|/20)/2 = (0.1 + 0.1)/2 = 0.1 -> 10%
  EXPECT_NEAR(stats::mape_percent(acc, apx), 10.0, 1e-12);
}

TEST(Stats, MapeSkipsZeroReferences) {
  const std::vector<double> acc{0, 10};
  const std::vector<double> apx{5, 10};
  EXPECT_DOUBLE_EQ(stats::mape_percent(acc, apx), 0.0);
}

TEST(Stats, McrMatchesPaperEquationTwo) {
  const std::vector<int> acc{1, 2, 3, 4};
  const std::vector<int> apx{1, 2, 9, 9};
  EXPECT_DOUBLE_EQ(stats::mcr_percent(acc, apx), 50.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Xoshiro256 rng(9);
  std::vector<double> xs;
  stats::RunningStats acc;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(0, 100);
    xs.push_back(v);
    acc.push(v);
  }
  EXPECT_NEAR(acc.mean(), stats::mean(xs), 1e-9);
  EXPECT_NEAR(acc.variance(), stats::variance(xs), 1e-6);
}

TEST(Csv, RoundTripAndAccessors) {
  CsvTable t({"name", "value"});
  t.add_row({std::string("a"), 1.5});
  t.add_row({std::string("b"), static_cast<long long>(7)});
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_DOUBLE_EQ(t.number_at(0, "value"), 1.5);
  EXPECT_DOUBLE_EQ(t.number_at(1, 1), 7.0);
  EXPECT_EQ(std::get<std::string>(t.at(0, 0)), "a");
}

TEST(Csv, RejectsWrongRowWidth) {
  CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), Error);
}

TEST(Csv, QuotesSpecialCharacters) {
  CsvTable t({"text"});
  t.add_row({std::string("hello, \"world\"")});
  std::ostringstream os;
  t.write(os);
  EXPECT_NE(os.str().find("\"hello, \"\"world\"\"\""), std::string::npos);
}

TEST(Csv, UnknownColumnThrows) {
  CsvTable t({"a"});
  EXPECT_THROW(t.column_index("missing"), Error);
}

namespace {

std::string rendered(const CsvTable& t) {
  std::ostringstream os;
  t.write(os);
  return os.str();
}

}  // namespace

TEST(Csv, LoadRoundTripsSpecialCharacters) {
  CsvTable t({"text", "more"});
  t.add_row({std::string("comma, inside"), std::string("plain")});
  t.add_row({std::string("quote \"q\" here"), std::string("line\nbreak")});
  t.add_row({std::string("\"leading"), std::string("mix,\"of\"\nall three")});
  const std::string bytes = rendered(t);

  std::istringstream is(bytes);
  const CsvTable loaded = CsvTable::load(is);
  ASSERT_EQ(loaded.row_count(), 3u);
  EXPECT_EQ(loaded.text_at(0, "text"), "comma, inside");
  EXPECT_EQ(loaded.text_at(1, "text"), "quote \"q\" here");
  EXPECT_EQ(loaded.text_at(1, "more"), "line\nbreak");
  EXPECT_EQ(loaded.text_at(2, "text"), "\"leading");
  EXPECT_EQ(loaded.text_at(2, "more"), "mix,\"of\"\nall three");
  EXPECT_EQ(rendered(loaded), bytes);
}

TEST(Csv, NumericFormattingIsStableAcrossRepeatedRoundTrips) {
  CsvTable t({"d", "i", "s"});
  t.add_row({1.0 / 3.0, static_cast<long long>(-7), std::string("x")});
  t.add_row({1.23456789012e-17, static_cast<long long>(1LL << 60), std::string("42x")});
  t.add_row({-0.000123456789, static_cast<long long>(0), std::string("")});
  t.add_row({2.0, static_cast<long long>(9), std::string("1e5")});
  const std::string first = rendered(t);

  std::istringstream is1(first);
  const std::string second = rendered(CsvTable::load(is1));
  std::istringstream is2(second);
  const std::string third = rendered(CsvTable::load(is2));
  EXPECT_EQ(second, first);
  EXPECT_EQ(third, first);
}

TEST(Csv, LoadRestoresNumericTypes) {
  CsvTable t({"d", "i"});
  t.add_row({1.5, static_cast<long long>(7)});
  std::istringstream is(rendered(t));
  const CsvTable loaded = CsvTable::load(is);
  EXPECT_DOUBLE_EQ(loaded.number_at(0, "d"), 1.5);
  EXPECT_DOUBLE_EQ(loaded.number_at(0, "i"), 7.0);
  EXPECT_TRUE(std::holds_alternative<double>(loaded.at(0, 0)));
  EXPECT_TRUE(std::holds_alternative<long long>(loaded.at(0, 1)));
}

TEST(Csv, LoadKeepsNonCanonicalNumbersAsText) {
  // "007" parses as 7 but re-formats differently; it must stay a string so
  // the bytes survive.
  std::istringstream is("col\n007\n");
  const CsvTable loaded = CsvTable::load(is);
  EXPECT_TRUE(std::holds_alternative<std::string>(loaded.at(0, 0)));
  EXPECT_EQ(rendered(loaded), "col\n007\n");
}

TEST(Csv, RandomizedRoundTripIsByteIdentical) {
  // Property test: rows mixing random nasty strings and random numerics
  // survive write -> load -> write untouched.
  Xoshiro256 rng(2026);
  const std::string alphabet = "ab,\"\n x0.-";
  CsvTable t({"s", "d", "i"});
  for (int row = 0; row < 200; ++row) {
    std::string s;
    const std::size_t len = rng.uniform_index(12);
    for (std::size_t i = 0; i < len; ++i) s.push_back(alphabet[rng.uniform_index(alphabet.size())]);
    t.add_row({s, rng.uniform(-1e6, 1e6) * std::pow(10.0, rng.uniform(-12, 12)),
               static_cast<long long>(rng.next())});
  }
  const std::string bytes = rendered(t);
  std::istringstream is(bytes);
  EXPECT_EQ(rendered(CsvTable::load(is)), bytes);
}

TEST(Csv, ReaderHandlesCrlfAndMissingFinalNewline) {
  std::istringstream is("a,b\r\n1,2\r\n3,4");
  CsvReader reader(is);
  const auto header = reader.next_row();
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ((*header)[0], "a");
  EXPECT_EQ((*header)[1], "b");
  const auto row1 = reader.next_row();
  ASSERT_TRUE(row1.has_value());
  EXPECT_EQ((*row1)[1], "2");
  const auto row2 = reader.next_row();
  ASSERT_TRUE(row2.has_value());
  EXPECT_EQ((*row2)[1], "4");
  EXPECT_FALSE(reader.next_row().has_value());
}

TEST(Csv, ReaderSpansQuotedNewlines) {
  std::istringstream is("\"one\ncell\",two\n");
  CsvReader reader(is);
  const auto row = reader.next_row();
  ASSERT_TRUE(row.has_value());
  ASSERT_EQ(row->size(), 2u);
  EXPECT_EQ((*row)[0], "one\ncell");
  EXPECT_EQ((*row)[1], "two");
}

TEST(Csv, LoadRejectsMalformedInput) {
  std::istringstream empty("");
  EXPECT_THROW(CsvTable::load(empty), Error);
  std::istringstream ragged("a,b\n1\n");
  EXPECT_THROW(CsvTable::load(ragged), Error);
  std::istringstream unterminated("a\n\"open\n");
  EXPECT_THROW(CsvTable::load(unterminated), Error);
}

TEST(Csv, LoadFileMissingPathThrows) {
  EXPECT_THROW(CsvTable::load_file("/nonexistent/dir/f.csv"), Error);
}

TEST(Csv, DropTornTailRecoversJournalsKilledMidRow) {
  // The signature of an append-mode journal whose writer died mid-write:
  // a final record with too few cells ...
  std::istringstream torn_cells("a,b\n1,2\n3\n");
  const CsvTable recovered = CsvTable::load(torn_cells, /*drop_torn_tail=*/true);
  EXPECT_EQ(recovered.row_count(), 1u);
  // ... or one ending inside a quoted cell.
  std::istringstream torn_quote("a,b\n1,2\n3,\"unterm");
  EXPECT_EQ(CsvTable::load(torn_quote, true).row_count(), 1u);
  // Without the flag both stay hard errors ...
  std::istringstream strict("a,b\n1,2\n3\n");
  EXPECT_THROW(CsvTable::load(strict), Error);
  // ... and a ragged row in the *middle* is corruption either way.
  std::istringstream mid("a,b\n1\n3,4\n");
  EXPECT_THROW(CsvTable::load(mid, true), Error);
}

TEST(Strings, TrimRemovesWhitespace) {
  EXPECT_EQ(strings::trim("  hi \t\n"), "hi");
  EXPECT_EQ(strings::trim(""), "");
  EXPECT_EQ(strings::trim("   "), "");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = strings::split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, ParseIntStrict) {
  long long v = 0;
  EXPECT_TRUE(strings::parse_int("42", v));
  EXPECT_EQ(v, 42);
  EXPECT_FALSE(strings::parse_int("42x", v));
  EXPECT_FALSE(strings::parse_int("", v));
}

TEST(Strings, ParseDoubleAcceptsFloatSuffix) {
  double v = 0;
  EXPECT_TRUE(strings::parse_double("0.5f", v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_TRUE(strings::parse_double("1e-3", v));
  EXPECT_FALSE(strings::parse_double("abc", v));
}

TEST(Strings, FormatBehavesLikePrintf) {
  EXPECT_EQ(strings::format("%d-%s", 7, "x"), "7-x");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "long_header"});
  t.add_row({"xxxx", "1"});
  const std::string out = t.render();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("xxxx"), std::string::npos);
}

TEST(TextTable, RejectsWrongWidth) {
  TextTable t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), Error);
}

// --- FunctionRef ----------------------------------------------------------

TEST(FunctionRef, BindsLambdasAndForwardsArguments) {
  int calls = 0;
  auto add = [&calls](int a, int b) {
    ++calls;
    return a + b;
  };
  FunctionRef<int(int, int)> ref = add;
  EXPECT_EQ(ref(2, 3), 5);
  EXPECT_EQ(ref(10, -4), 6);
  EXPECT_EQ(calls, 2);
}

TEST(FunctionRef, DefaultConstructedIsEmpty) {
  FunctionRef<void()> ref;
  EXPECT_FALSE(static_cast<bool>(ref));
}

TEST(FunctionRef, ObservesMutationsOfTheReferencedCallable) {
  // Non-owning: the ref sees the callable's *current* state, it holds no
  // copy.
  int factor = 2;
  auto scale = [&factor](int v) { return v * factor; };
  FunctionRef<int(int)> ref = scale;
  EXPECT_EQ(ref(21), 42);
  factor = 3;
  EXPECT_EQ(ref(21), 63);
}

TEST(FunctionRef, BindsStdFunction) {
  std::function<double(double)> doubler = [](double v) { return 2.0 * v; };
  FunctionRef<double(double)> ref = doubler;
  EXPECT_DOUBLE_EQ(ref(1.5), 3.0);
  doubler = [](double v) { return 10.0 * v; };  // ref tracks the object
  EXPECT_DOUBLE_EQ(ref(1.5), 15.0);
}

TEST(FunctionRef, RebindsByAssignment) {
  auto one = [](int) { return 1; };
  auto two = [](int) { return 2; };
  FunctionRef<int(int)> ref = one;
  EXPECT_EQ(ref(0), 1);
  ref = two;
  EXPECT_EQ(ref(0), 2);
}

// --- locale-independent parsing -------------------------------------------

namespace {

/// RAII LC_NUMERIC override; `ok()` is false when the host has not
/// generated the requested locale, in which case dependent tests skip.
class ScopedNumericLocale {
 public:
  explicit ScopedNumericLocale(const char* name) {
    const char* current = std::setlocale(LC_NUMERIC, nullptr);
    saved_ = current ? current : "C";
    ok_ = std::setlocale(LC_NUMERIC, name) != nullptr;
  }
  ~ScopedNumericLocale() { std::setlocale(LC_NUMERIC, saved_.c_str()); }
  bool ok() const { return ok_; }

 private:
  std::string saved_;
  bool ok_ = false;
};

/// When the ctest harness sets HPAC_TEST_FORCE_LOCALE (the non-C-locale
/// re-run of these suites), adopt it for the whole binary: a C++ process
/// starts in the "C" locale regardless of the environment, so without
/// this the re-run would be vacuous.
const bool g_locale_env_adopted = [] {
  if (const char* name = std::getenv("HPAC_TEST_FORCE_LOCALE")) {
    if (!std::setlocale(LC_ALL, name)) {
      std::fprintf(stderr, "note: locale %s not generated on this host; staying in C\n",
                   name);
    }
  }
  return true;
}();

}  // namespace

TEST(Strings, ParseIntRejectsOverflow) {
  long long v = 0;
  // One past LLONG_MAX / LLONG_MIN: strtoll clamped these (its ERANGE
  // went unchecked), so out-of-range literals silently parsed as the
  // clamped boundary value instead of failing.
  EXPECT_FALSE(strings::parse_int("9223372036854775808", v));
  EXPECT_FALSE(strings::parse_int("-9223372036854775809", v));
  EXPECT_FALSE(strings::parse_int("123456789012345678901234567890", v));
  // The exact boundaries still parse.
  EXPECT_TRUE(strings::parse_int("9223372036854775807", v));
  EXPECT_EQ(v, std::numeric_limits<long long>::max());
  EXPECT_TRUE(strings::parse_int("-9223372036854775808", v));
  EXPECT_EQ(v, std::numeric_limits<long long>::min());
}

TEST(Strings, ParseIntKeepsExplicitPlusCompatibility) {
  long long v = 0;
  EXPECT_TRUE(strings::parse_int("+42", v));
  EXPECT_EQ(v, 42);
  EXPECT_FALSE(strings::parse_int("+-42", v));
  EXPECT_FALSE(strings::parse_int("+", v));
}

TEST(Strings, ParseDoubleRejectsOutOfRangeAndKeepsPlus) {
  double v = 0;
  EXPECT_FALSE(strings::parse_double("1e999", v));
  EXPECT_FALSE(strings::parse_double("-1e999", v));
  EXPECT_TRUE(strings::parse_double("+0.25", v));
  EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_FALSE(strings::parse_double("+-0.25", v));
  EXPECT_FALSE(strings::parse_double("+", v));
}

TEST(StringsLocale, ParsersIgnoreCommaDecimalLocale) {
  ScopedNumericLocale de("de_DE.UTF-8");
  if (!de.ok()) GTEST_SKIP() << "de_DE.UTF-8 not generated on this host";
  double v = 0;
  // Under LC_NUMERIC=de_DE, strtod stopped at the '.' and rejected these.
  EXPECT_TRUE(strings::parse_double("0.5", v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_TRUE(strings::parse_double("1e-3", v));
  EXPECT_DOUBLE_EQ(v, 1e-3);
  EXPECT_TRUE(strings::parse_double("0.5f", v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  // A comma decimal separator is not part of the clause/CSV grammar in
  // any locale.
  EXPECT_FALSE(strings::parse_double("0,5", v));
  long long i = 0;
  EXPECT_TRUE(strings::parse_int("-123456", i));
  EXPECT_EQ(i, -123456);
}

TEST(CsvLocale, CheckpointRoundTripSurvivesCommaDecimalLocale) {
  // A campaign checkpoint is written with std::to_chars and re-parsed on
  // resume through parse_double; under a comma-decimal LC_NUMERIC the
  // strtod-based parser rejected the file it had itself written, so the
  // typed re-parse degraded doubles to strings and resume blew up in
  // number_at. The round trip must stay typed and byte-stable.
  CsvTable table({"name", "speedup", "count"});
  table.add_row({std::string("a"), 1.0 / 3.0, 42LL});
  table.add_row({std::string("b"), 6.02214076e23, -7LL});
  table.add_row({std::string("c"), 0.5, 9000000000000LL});
  std::ostringstream first;
  table.write(first);

  ScopedNumericLocale de("de_DE.UTF-8");
  if (!de.ok()) GTEST_SKIP() << "de_DE.UTF-8 not generated on this host";
  std::istringstream in(first.str());
  const CsvTable loaded = CsvTable::load(in);
  EXPECT_DOUBLE_EQ(loaded.number_at(0, "speedup"), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(loaded.number_at(1, "speedup"), 6.02214076e23);
  EXPECT_DOUBLE_EQ(loaded.number_at(2, "count"), 9000000000000.0);
  std::ostringstream second;
  loaded.write(second);
  EXPECT_EQ(first.str(), second.str());
}
